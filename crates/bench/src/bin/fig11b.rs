//! Regenerates **Figure 11(b)**: iterative-QPE circuit duration vs number of
//! phase bits, comparing full (1 µs) and halved (500 ns) readout — the
//! mid-circuit-measurement application where HERQULES's per-qubit fast
//! readout pays off (the paper reads the feedback qubit with qubit 5, which
//! Table 3 shows can be read twice as fast).
//!
//! Run with `cargo run --release -p herqles-bench --bin fig11b`.

use herqles_bench::render_table;
use nisq_sim::qpe::QpeTimings;

fn main() {
    let slow = QpeTimings::with_readout_ns(1000.0);
    let fast = QpeTimings::with_readout_ns(500.0);
    let mut rows = Vec::new();
    for bits in (4..=14).step_by(2) {
        let d_slow = slow.circuit_duration_us(bits);
        let d_fast = fast.circuit_duration_us(bits);
        rows.push(vec![
            bits.to_string(),
            format!("{d_slow:.2}"),
            format!("{d_fast:.2}"),
            format!("{:.1} %", 100.0 * (1.0 - d_fast / d_slow)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fig 11b: iterative QPE duration vs phase bits",
            &["bits", "1 µs readout (µs)", "500 ns readout (µs)", "saving"],
            &rows,
        )
    );
}
