//! Regenerates **Figure 4**: (a) the MTV scatter showing excited-state shots
//! relaxing into the ground region, (b) per-state correct/incorrect
//! discrimination counts for every qubit under a simple discriminator, and
//! (c) the FPGA cost of the 40 %-scale baseline network (400-200-100-32).
//!
//! Run with `cargo run --release -p herqles-bench --bin fig4`.

use fpga_model::{estimate_pipeline, FpgaDevice, NetworkShape, PipelineSpec};
use herqles_bench::{render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::metrics::evaluate;
use herqles_core::trainer::ReadoutTrainer;
use readout_dsp::Demodulator;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let demod = Demodulator::new(&dataset.config);

    // (a) MTV scatter for the highest-relaxation qubit (CSV on stdout, first
    // 400 points per class; pipe to a plotting tool of choice).
    let q = 3;
    println!(
        "# fig4a: MTV scatter for qubit {} (i, q, prepared, relaxed)",
        q + 1
    );
    println!("i,q,prepared,relaxed");
    let mut per_class = [0usize; 2];
    for &idx in &split.test {
        let shot = &dataset.shots[idx];
        let class = usize::from(shot.prepared.qubit(q));
        if per_class[class] >= 400 {
            continue;
        }
        per_class[class] += 1;
        let mtv = demod.demodulate_qubit(&shot.raw, q).mtv();
        println!(
            "{:.4},{:.4},{},{}",
            mtv.i,
            mtv.q,
            class,
            u8::from(shot.truth.relaxation_time_s[q].is_some())
        );
    }

    // (b) correct/incorrect per prepared state per qubit with the simple
    // centroid discriminator (IBM-Manila-style hardware default).
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    let disc = trainer.train(DesignKind::Centroid);
    let result = evaluate(disc.as_ref(), &dataset, &split.test);
    let mut rows = Vec::new();
    for qi in 0..dataset.n_qubits() {
        let (ground_err, excited_err) = result.misclassification_counts(qi);
        let n0 = result
            .outcomes()
            .iter()
            .filter(|(prep, _)| !prep.qubit(qi))
            .count();
        let n1 = result.n_shots() - n0;
        rows.push(vec![
            format!("qubit {}", qi + 1),
            format!("{}/{}", n0 - ground_err, n0),
            format!("{}/{}", n1 - excited_err, n1),
        ]);
    }
    println!(
        "\n{}",
        render_table(
            "fig4b: centroid-discriminator correct shots per prepared state",
            &["Qubit", "ground correct", "excited correct"],
            &rows,
        )
    );

    // (c) 40 %-scale baseline on the paper's RF-25 synthesis point.
    let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn_40pct(), 25);
    let util = estimate_pipeline(&spec).utilization(&FpgaDevice::XCZU7EV);
    println!(
        "\nfig4c: 400-200-100-32 baseline at RF 25 on xczu7ev: {:.0} % LUT ({}×{} over capacity)",
        util.lut_pct,
        (util.lut_pct / 100.0).floor(),
        if util.fits() { " — fits" } else { "" }
    );
}
