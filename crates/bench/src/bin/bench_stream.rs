//! Streaming QEC-cycle throughput benchmark.
//!
//! Trains the `mf` discriminator once on the five-qubit default chip, then
//! runs the streaming [`CycleEngine`] at distances 3, 5, 7, 9 and 11
//! (rounds = d)
//! at **both pipeline precisions** (`CycleEngine<f64>` and
//! `CycleEngine<f32>`) and at **several worker counts**: the serial engine
//! (`threads = 1`) plus a pooled [`ParallelCycleEngine`] on a
//! [`ShardPool`] for every count in `--threads` (default `2,4`). All
//! variants are bit-identical per seed; the rows measure cycles/second and
//! the per-stage nanosecond breakdown (synth / discriminate / syndrome /
//! decode) of the warm engine. On pooled rows the synth figure is the
//! *exposed* synthesis latency — what the two-stage pipeline could not hide
//! behind discrimination. The offline materializing path (f64, serial by
//! construction) is timed on the same workload for the speedup column.
//!
//! Results land in `BENCH_stream.json` (cwd), continuing the performance
//! trajectory seeded by `BENCH_inference.json`.
//!
//! Every engine the benchmark runs carries **registry-backed telemetry**
//! (`herqles-telemetry`): per-stage latency histograms scoped by an
//! `engine="d{d}-{precision}-t{threads}-{kernel}"` label. The JSON rows gain
//! `p50_ns` / `p99_ns` / `max_ns` per-stage percentile objects, and the whole
//! registry can be exported after the run:
//!
//! * `--serve-text` — dump the Prometheus text exposition to **stdout**
//!   (bench progress goes to stderr, so `bench_stream --serve-text >
//!   metrics.prom` scrapes cleanly in CI);
//! * `--serve-text ADDR` (e.g. `127.0.0.1:9184`) — serve `GET /metrics`
//!   (and `GET /trace`, the Chrome-trace JSON) forever on a plain TCP
//!   listener;
//! * `--metrics-json PATH` — write the JSON export of the same snapshot;
//! * `--trace-json PATH` — write the **flight recorder** export: every
//!   variant's stage spans and typed trace events as Chrome Trace Event
//!   Format JSON, one process per engine variant (tid 0 = the engine's
//!   stage track, tid 1+w = pool worker `w`'s task track), loadable in
//!   Perfetto / `chrome://tracing`.
//!
//! Flags: `--threads N[,M…]` (pooled worker counts; `--threads 0` disables
//! pooled rows), `--assert-synth-share PCT` (fail the run if synthesis
//! exceeds PCT percent of the per-cycle stage time on any serial row of the
//! dispatched backend — the CI guard that vectorized synthesis stays out of
//! the dominant-stage regime), `--assert-decode-p99 NS` (fail the run if the
//! serial d = 7 decode p99 exceeds NS nanoseconds on the dispatched backend
//! — the CI guard that the union-find decoder stays at or under the 56 µs
//! the paper's d = 7 budget allows), and `--drift` (append fault-injection
//! robustness rows: the
//! adaptive engine's cycles/s under an active centroid drift plus its
//! rounds-to-detect and rounds-to-recover, per precision, serial and pooled,
//! kernel-tagged — emitted under a `"drift"` key in the JSON; each drift
//! variant also evaluates the demo SLO alert set
//! ([`demo_alert_rules`](herqles_stream::demo_alert_rules)) every cycle and
//! reports how many alerts fired and cleared).
//!
//! # Environment knobs — two prefixes, deliberately different
//!
//! The bench's **workload** knobs all share the `HERQULES_STREAM_*` prefix
//! (plus the run-wide `HERQULES_SEED`), while the SIMD **kernel dispatch**
//! is the `herqles-num` crate's own `HERQLES_KERNEL` variable — note the
//! spelling difference (`HERQULES_` vs `HERQLES_`). The kernel variable
//! predates the bench prefix and is read process-wide by every crate that
//! links `herqles-num`, so it keeps its historical name; everything the
//! bench itself owns is namespaced under the longer prefix:
//!
//! * `HERQULES_STREAM_CYCLES` — measured cycles per distance (default 40);
//! * `HERQULES_STREAM_SHOTS` — calibration shots per basis state
//!   (default 12);
//! * `HERQULES_STREAM_THREADS` — same as `--threads`;
//! * `HERQULES_SEED` — the run seed;
//! * `HERQLES_KERNEL` — `scalar` | `avx2` | `auto` GEMM/noise backend
//!   dispatch (consumed by `herqles-num`, not parsed here).

use std::sync::Arc;

use herqles_bench::{env_usize, with_scalar_kernel, JsonReport};
use herqles_core::Real;
use herqles_num::kernel::active_kernel_name;
use herqles_stream::{
    demo_alert_rules, run_cycles_offline, train_mf_discriminator_typed, AdaptiveMf, CycleConfig,
    CycleEngine, DriftEvent, EngineTelemetry, FaultPlan, HealthConfig, HealthStatus,
    LatencySummary, PoolTelemetry, RecalConfig, ShardPool, StageLatency,
};
use herqles_telemetry::{AlertEngine, ChromeTrace, Registry, SpanKind, StageTimer};
use readout_sim::ChipConfig;
use surface_code::RotatedSurfaceCode;

const DISTANCES: [usize; 5] = [3, 5, 7, 9, 11];

/// How `--serve-text` exports the metrics registry after the run.
enum ServeText {
    /// Flag absent.
    Off,
    /// Bare `--serve-text`: dump the exposition to stdout once.
    Stdout,
    /// `--serve-text ADDR`: serve `GET /metrics` forever.
    Addr(String),
}

/// Parsed command line.
struct Args {
    /// Pooled worker counts; empty means serial only.
    threads: Vec<usize>,
    /// Append the fault-injection robustness rows.
    drift: bool,
    /// Prometheus-text export mode.
    serve_text: ServeText,
    /// Write the registry's JSON export here.
    metrics_json: Option<String>,
    /// Write the Chrome-trace flight-recorder export here.
    trace_json: Option<String>,
    /// `--assert-synth-share PCT`: fail the run if synthesis exceeds this
    /// percentage of the measured per-cycle stage time on any serial row of
    /// the dispatched backend. CI uses it to pin that vectorized synthesis
    /// stays out of the dominant-stage regime.
    assert_synth_share: Option<f64>,
    /// `--assert-decode-p99 NS`: fail the run if any serial d = 7 row of the
    /// dispatched backend reports a decode p99 above NS nanoseconds. CI uses
    /// it to pin the union-find decoder at or under the d = 7 real-time
    /// budget the old exact-matcher baseline met.
    assert_decode_p99: Option<u64>,
}

/// Parses the command line. `--threads 2,4` wins over
/// `HERQULES_STREAM_THREADS` wins over the default `2,4`; `0` (or an empty
/// list) means serial only.
fn parse_args() -> Args {
    let mut spec: Option<String> = std::env::var("HERQULES_STREAM_THREADS").ok();
    let mut drift = false;
    let mut serve_text = ServeText::Off;
    let mut metrics_json = None;
    let mut trace_json = None;
    let mut assert_synth_share = None;
    let mut assert_decode_p99 = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threads" => {
                i += 1;
                spec = Some(
                    argv.get(i)
                        .expect("--threads requires a value, e.g. --threads 2,4")
                        .clone(),
                );
            }
            "--drift" => drift = true,
            "--serve-text" => {
                // Optional value: an address to serve on; bare means stdout.
                serve_text = match argv.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        ServeText::Addr(v.clone())
                    }
                    _ => ServeText::Stdout,
                };
            }
            "--metrics-json" => {
                i += 1;
                metrics_json = Some(argv.get(i).expect("--metrics-json requires a path").clone());
            }
            "--trace-json" => {
                i += 1;
                trace_json = Some(argv.get(i).expect("--trace-json requires a path").clone());
            }
            "--assert-synth-share" => {
                i += 1;
                let pct: f64 = argv
                    .get(i)
                    .expect("--assert-synth-share requires a percentage, e.g. 80")
                    .parse()
                    .expect("--assert-synth-share must be a number");
                assert!(
                    (0.0..=100.0).contains(&pct),
                    "--assert-synth-share must be in 0..=100"
                );
                assert_synth_share = Some(pct);
            }
            "--assert-decode-p99" => {
                i += 1;
                assert_decode_p99 = Some(
                    argv.get(i)
                        .expect("--assert-decode-p99 requires nanoseconds, e.g. 56000")
                        .parse::<u64>()
                        .expect("--assert-decode-p99 must be an integer nanosecond count"),
                );
            }
            other => {
                panic!(
                    "unknown argument {other:?} (supported: --threads N[,M…], --drift, \
                     --serve-text [ADDR], --metrics-json PATH, --trace-json PATH, \
                     --assert-synth-share PCT, --assert-decode-p99 NS)"
                )
            }
        }
        i += 1;
    }
    let spec = spec.unwrap_or_else(|| "2,4".to_string());
    let threads = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>()
                .unwrap_or_else(|_| panic!("--threads entries must be integers, got {s:?}"))
        })
        .filter(|&t| {
            if t == 1 {
                eprintln!(
                    "[bench_stream] ignoring --threads 1: a 1-thread pool is the inline path, \
                     already covered by the serial (threads=1) rows"
                );
            }
            t > 1
        })
        .collect();
    Args {
        threads,
        drift,
        serve_text,
        metrics_json,
        trace_json,
        assert_synth_share,
        assert_decode_p99,
    }
}

/// Accumulates every variant's flight-recorder output into one Chrome
/// trace: one process (pid) per engine variant, tid 0 = the engine's stage
/// track, tid `1 + w` = pool worker `w`'s task track (worker 0 is the
/// calling thread). Always built — draining the rings doubles as the
/// in-bench check that span recording actually happened — and written out
/// only under `--trace-json` / served under `--serve-text ADDR`.
struct TraceSink {
    chrome: ChromeTrace,
    next_pid: u32,
}

impl TraceSink {
    fn new() -> Self {
        TraceSink {
            chrome: ChromeTrace::new(),
            next_pid: 1,
        }
    }

    /// Registers a new variant process and returns its pid.
    fn alloc_pid(&mut self, name: &str) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.chrome.set_process_name(pid, name);
        self.chrome.set_thread_name(pid, 0, "engine");
        pid
    }

    /// Drains one engine variant's telemetry into the trace and asserts the
    /// flight recorder really recorded: a `Cycle` span per measured cycle
    /// (unless the ring wrapped) and, for pooled variants, at least one
    /// task span on a background-worker track.
    fn drain_engine(
        &mut self,
        label: &str,
        telem: &EngineTelemetry,
        pool_telem: Option<&PoolTelemetry>,
        measured_cycles: usize,
    ) {
        let pid = self.alloc_pid(label);
        let spans = telem.spans().snapshot();
        let cycle_spans = spans.iter().filter(|s| s.kind == SpanKind::Cycle).count();
        if telem.spans().dropped() == 0 {
            assert!(
                cycle_spans >= measured_cycles,
                "variant {label}: {cycle_spans} cycle spans recorded for {measured_cycles} \
                 measured cycles"
            );
        } else {
            assert!(
                cycle_spans > 0,
                "variant {label}: span ring wrapped but kept no cycle spans"
            );
        }
        self.chrome.add_spans(pid, 0, &spans);
        self.chrome.add_instants(pid, 0, &telem.trace().snapshot());
        if let Some(t) = pool_telem {
            let tasks = t.spans().snapshot();
            assert!(
                tasks.iter().any(|s| s.track >= 1),
                "variant {label}: pooled run recorded no background-worker task spans"
            );
            for w in 0..t.workers() {
                let name = if w == 0 {
                    "worker 0 (caller)".to_string()
                } else {
                    format!("worker {w}")
                };
                self.chrome.set_thread_name(pid, 1 + w as u32, &name);
            }
            self.chrome.add_spans(pid, 1, &tasks);
        }
    }
}

/// One fault-injection robustness row: throughput under an active centroid
/// drift plus the detect/recover latencies of the health → hot-swap loop.
struct DriftRow {
    precision: &'static str,
    kernel: &'static str,
    threads: usize,
    clean_cycles_per_sec: f64,
    faulted_cycles_per_sec: f64,
    /// Rounds from fault onset until the health monitor left `Nominal`
    /// (−1 if it never tripped within the budget).
    rounds_to_detect: i64,
    /// Rounds from fault onset until a hot-swap had fired *and* the monitor
    /// re-baselined to `Nominal` (−1 if not reached within the budget).
    rounds_to_recover: i64,
    hot_swaps: u64,
    degraded_decodes: u64,
    /// Demo-alert-set fire transitions over the whole scenario.
    alerts_fired: u64,
    /// Demo-alert-set clear transitions over the whole scenario.
    alerts_cleared: u64,
}

/// Runs the drift → detect → hot-swap → recover scenario (the same recipe
/// `crates/stream/tests/drift.rs` pins): calibrate clean on the two-channel
/// chip at d = 3, step both readout clouds by 0.3 of their ground/excited
/// separation, then stream adaptively until the monitor re-baselines.
///
/// The demo SLO alert set rides along: an [`AlertEngine`] over the
/// variant's own registry is evaluated after every cycle, and once the
/// engine has recovered the scenario keeps streaming quiet cycles until
/// every alert has cleared — asserting the fire → hold → clear lifecycle
/// end to end.
fn measure_drift<R: Real>(
    shots: usize,
    seed: u64,
    pool: Option<&ShardPool>,
    sink: &mut TraceSink,
) -> DriftRow
where
    herqles_stream::AdaptiveMf: herqles_core::PrecisionDiscriminator<R>,
{
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let mf = train_mf_discriminator_typed(&chip, shots, seed);
    let adaptive = AdaptiveMf::from_mf(
        &mf,
        RecalConfig {
            capacity: 128,
            min_windows: 8,
            ..RecalConfig::default()
        },
    );
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.03,
        seed,
    };
    let mut engine = match pool {
        Some(pool) => CycleEngine::<R, _>::with_pool(cfg, &chip, &code, &adaptive, pool),
        None => CycleEngine::<R, _>::new(cfg, &chip, &code, &adaptive),
    };
    engine.set_health_config(HealthConfig {
        alpha: 0.04,
        baseline_rounds: 60,
        hold_rounds: 4,
        degraded_defect_factor: 3.0,
        critical_defect_factor: 8.0,
        ..HealthConfig::default()
    });
    engine.set_recal_cooldown(12);

    // Per-variant registry + the demo SLO alert set, evaluated once per
    // cycle against fresh registry snapshots.
    let registry = Registry::new();
    let label = format!(
        "drift-{}-t{}-{}",
        R::NAME,
        pool.map_or(1, ShardPool::threads),
        active_kernel_name()
    );
    let scope = registry.scope(&[("engine", label.as_str())]);
    engine.set_telemetry(EngineTelemetry::registered(&scope));
    let mut alerts = AlertEngine::registered(demo_alert_rules(), &scope);

    // Clean calibration phase (also the clean-throughput measurement).
    const CLEAN_CYCLES: usize = 40;
    let timer = StageTimer::start();
    let _ = engine.run_cycles_adaptive(CLEAN_CYCLES);
    let clean_cps = CLEAN_CYCLES as f64 / timer.elapsed_secs();
    // Two quiet evaluations: the first baselines the rate rules, the
    // second confirms the clean phase evaluates to Ok across the board.
    alerts.evaluate(&registry.snapshot());
    alerts.evaluate(&registry.snapshot());
    assert_eq!(
        alerts.firing(),
        0,
        "{label}: demo alerts must be quiet on the clean baseline"
    );

    let onset = engine.stats().rounds;
    let mut plan = FaultPlan::none();
    for (k, q) in chip.qubits.iter().enumerate() {
        plan.push(DriftEvent::CentroidDrift {
            qubit: k,
            start_round: onset,
            end_round: onset,
            delta: q.separation_dir() * (0.30 * q.separation()),
        });
    }
    engine.set_fault_plan(plan);

    let mut detect_round: Option<u64> = None;
    let mut recover_round: Option<u64> = None;
    let mut faulted_cycles = 0usize;
    let timer = StageTimer::start();
    for _ in 0..400 {
        let r = engine.run_cycle_adaptive();
        faulted_cycles += 1;
        alerts.evaluate(&registry.snapshot());
        if detect_round.is_none() && r.stats.health != HealthStatus::Nominal {
            detect_round = Some(engine.stats().rounds);
        }
        if detect_round.is_some()
            && engine.stats().hot_swaps >= 1
            && r.stats.health == HealthStatus::Nominal
        {
            recover_round = Some(engine.stats().rounds);
            break;
        }
    }
    let faulted_cps = faulted_cycles as f64 / timer.elapsed_secs();

    // Post-recovery: stream quiet cycles until every alert's clear debounce
    // has run down (the demo set's longest is 6 evaluations).
    if recover_round.is_some() {
        for _ in 0..40 {
            if alerts.firing() == 0 {
                break;
            }
            let _ = engine.run_cycle_adaptive();
            alerts.evaluate(&registry.snapshot());
        }
    }

    let (alerts_fired, alerts_cleared) = alerts
        .statuses()
        .iter()
        .fold((0, 0), |acc, s| (acc.0 + s.fired, acc.1 + s.cleared));
    if recover_round.is_some() {
        assert!(
            alerts_fired >= 1,
            "{label}: drift was detected and recovered but no demo alert fired"
        );
        assert_eq!(
            alerts.firing(),
            0,
            "{label}: demo alerts must all clear after recovery (fired {alerts_fired}, \
             cleared {alerts_cleared})"
        );
    }

    // Flight-recorder export: the drift variant's stage spans plus its
    // typed engine events and alert fire/clear instants on the same track.
    let telem = engine.telemetry();
    let pid = sink.alloc_pid(&label);
    sink.chrome.add_spans(pid, 0, &telem.spans().snapshot());
    sink.chrome.add_instants(pid, 0, &telem.trace().snapshot());
    sink.chrome.add_instants(pid, 0, &alerts.trace().snapshot());

    let since_onset = |round: Option<u64>| round.map_or(-1, |r| (r - onset) as i64);
    DriftRow {
        precision: R::NAME,
        kernel: active_kernel_name(),
        threads: pool.map_or(1, ShardPool::threads),
        clean_cycles_per_sec: clean_cps,
        faulted_cycles_per_sec: faulted_cps,
        rounds_to_detect: since_onset(detect_round),
        rounds_to_recover: since_onset(recover_round),
        hot_swaps: engine.stats().hot_swaps,
        degraded_decodes: engine.stats().degraded_decodes,
        alerts_fired,
        alerts_cleared,
    }
}

struct Row {
    distance: usize,
    precision: &'static str,
    /// SIMD microkernel backend the discriminate GEMM ran on.
    kernel: &'static str,
    threads: usize,
    groups: usize,
    cycles: usize,
    cycles_per_sec: f64,
    offline_cycles_per_sec: f64,
    logical_errors: u64,
    synth_ns: u64,
    discriminate_ns: u64,
    syndrome_ns: u64,
    decode_ns: u64,
    /// Per-stage latency percentiles (p50/p90/p99/max, ns per cycle) from
    /// the engine's registered histograms, warm cycles only.
    latency: StageLatency,
}

fn main() {
    let cycles = env_usize("HERQULES_STREAM_CYCLES", 40);
    assert!(cycles > 0, "HERQULES_STREAM_CYCLES must be at least 1");
    let shots = env_usize("HERQULES_STREAM_SHOTS", 12);
    let seed = env_usize("HERQULES_SEED", 20_230_612) as u64;
    let args = parse_args();

    let chip = ChipConfig::five_qubit_default();
    eprintln!("[bench_stream] training mf discriminator ({shots} shots/state)…");
    let disc = train_mf_discriminator_typed(&chip, shots, seed);

    // One registry spans the whole run; every engine variant registers its
    // histograms and counters under a distinguishing `engine=…` label, so the
    // exports at the end expose the full matrix in one scrape.
    let registry = Registry::new();

    /// Run-wide invariants shared by every `measure` call.
    struct MeasureCtx<'a> {
        disc: &'a herqles_core::designs::MfDiscriminator,
        chip: &'a ChipConfig,
        cycles: usize,
        registry: &'a Registry,
    }

    /// One warm-up cycle, then the measured run; returns a precision- and
    /// thread-tagged row. `pool: None` is the serial engine. Offline
    /// throughput is supplied by the caller (the materializing reference is
    /// serial `f64` by construction and shared by every row of a distance).
    fn measure<R: Real>(
        ctx: &MeasureCtx<'_>,
        code: &RotatedSurfaceCode,
        cfg: CycleConfig,
        pool: Option<&ShardPool>,
        offline_cycles_per_sec: f64,
        sink: &mut TraceSink,
    ) -> Row
    where
        herqles_core::designs::MfDiscriminator: herqles_core::PrecisionDiscriminator<R>,
    {
        let cycles = ctx.cycles;
        let mut engine = match pool {
            Some(pool) => CycleEngine::<R, _>::with_pool(cfg, ctx.chip, code, ctx.disc, pool),
            None => CycleEngine::<R, _>::new(cfg, ctx.chip, code, ctx.disc),
        };
        let label = format!(
            "d{}-{}-t{}-{}",
            code.distance(),
            R::NAME,
            pool.map_or(1, ShardPool::threads),
            active_kernel_name()
        );
        engine.set_telemetry(EngineTelemetry::registered(
            &ctx.registry.scope(&[("engine", label.as_str())]),
        ));
        // Pooled variants get per-worker instrumentation for the flight
        // recorder (a generous ring so a full measured run fits). The
        // warm-up fan-out is barrier-synchronized — every thread claims
        // exactly one task — so with telemetry already attached each
        // background worker deterministically records at least one span,
        // however the measured cycles themselves get scheduled.
        let pool_telem = pool.map(|p| {
            let t = Arc::new(PoolTelemetry::with_span_capacity(p.threads(), 1 << 16));
            p.set_telemetry(Some(Arc::clone(&t)));
            p.warm_up();
            t
        });
        let _ = engine.run_cycle();
        // Drop the warm-up cycle from the histograms so the percentiles
        // describe the same warm cycles the throughput figure does.
        engine.telemetry().clear_latency();
        let warm = *engine.stats();
        let timer = StageTimer::start();
        let results = engine.run_cycles(cycles);
        let elapsed = timer.elapsed_secs();
        if let Some(p) = pool {
            p.set_telemetry(None);
        }
        sink.drain_engine(&label, engine.telemetry(), pool_telem.as_deref(), cycles);
        let mut stage = herqles_stream::StageNanos::default();
        for r in &results {
            stage.add(&r.stats.stage);
        }
        let n = cycles as u64;
        Row {
            distance: code.distance(),
            precision: R::NAME,
            kernel: active_kernel_name(),
            threads: pool.map_or(1, ShardPool::threads),
            groups: engine.ancilla_map().n_groups(),
            cycles,
            cycles_per_sec: cycles as f64 / elapsed,
            offline_cycles_per_sec,
            logical_errors: engine.stats().logical_errors - warm.logical_errors,
            synth_ns: stage.synth / n,
            discriminate_ns: stage.discriminate / n,
            syndrome_ns: stage.syndrome / n,
            decode_ns: stage.decode / n,
            latency: engine.stage_latency(),
        }
    }

    let ctx = MeasureCtx {
        disc: &disc,
        chip: &chip,
        cycles,
        registry: &registry,
    };

    let pools: Vec<ShardPool> = args.threads.iter().map(|&t| ShardPool::new(t)).collect();
    let mut sink = TraceSink::new();
    let mut rows = Vec::new();
    for d in DISTANCES {
        let code = RotatedSurfaceCode::new(d);
        let cfg = CycleConfig {
            rounds: d,
            data_error_prob: 4e-3,
            seed,
        };

        // Offline materializing path on the same cycle count.
        let off_timer = StageTimer::start();
        let _ = run_cycles_offline(&cfg, &chip, &code, &disc, cycles);
        let offline_cps = cycles as f64 / off_timer.elapsed_secs();

        let mut variants: Vec<Row> = Vec::new();
        variants.push(measure::<f64>(
            &ctx,
            &code,
            cfg,
            None,
            offline_cps,
            &mut sink,
        ));
        variants.push(measure::<f32>(
            &ctx,
            &code,
            cfg,
            None,
            offline_cps,
            &mut sink,
        ));
        for pool in &pools {
            variants.push(measure::<f64>(
                &ctx,
                &code,
                cfg,
                Some(pool),
                offline_cps,
                &mut sink,
            ));
            variants.push(measure::<f32>(
                &ctx,
                &code,
                cfg,
                Some(pool),
                offline_cps,
                &mut sink,
            ));
        }

        // Scalar-kernel reference rows (serial, both precisions): when the
        // dispatch resolved to a SIMD backend, the discriminate-stage
        // multiplier is dispatched-vs-scalar at the same distance. The
        // offline baseline is re-measured under the scalar backend so the
        // rows' offline/speedup fields describe one backend, not a mix.
        if let Some((r64, r32)) = with_scalar_kernel(|| {
            let off_timer = StageTimer::start();
            let _ = run_cycles_offline(&cfg, &chip, &code, &disc, cycles);
            let scalar_offline_cps = cycles as f64 / off_timer.elapsed_secs();
            (
                measure::<f64>(&ctx, &code, cfg, None, scalar_offline_cps, &mut sink),
                measure::<f32>(&ctx, &code, cfg, None, scalar_offline_cps, &mut sink),
            )
        }) {
            variants.push(r64);
            variants.push(r32);
        }

        for row in variants {
            eprintln!(
                "[bench_stream] d={}/{}/{}/t={}: {:>8.1} cycles/s streamed ({:>8.1} offline, {:.2}x), per-cycle \
                 synth {} ns | discriminate {} ns | syndrome {} ns | decode {} ns, \
                 cycle p50 {} ns | p99 {} ns | max {} ns, {} logical errors",
                row.distance,
                row.precision,
                row.kernel,
                row.threads,
                row.cycles_per_sec,
                row.offline_cycles_per_sec,
                row.cycles_per_sec / row.offline_cycles_per_sec,
                row.synth_ns,
                row.discriminate_ns,
                row.syndrome_ns,
                row.decode_ns,
                row.latency.cycle.p50,
                row.latency.cycle.p99,
                row.latency.cycle.max,
                row.logical_errors,
            );
            rows.push(row);
        }
    }

    // `--assert-synth-share`: pin how dominant the synthesis stage is.
    // Serial rows of the dispatched backend only — pooled rows report the
    // *exposed* synth latency (pipelining hides most of it), and the scalar
    // reference rows exist precisely to show the unvectorized cost. The
    // asserted quantity is the **mean** share across those rows: the
    // non-synth stages are only microseconds per cycle, so a single row's
    // share carries a few points of run-to-run jitter, while the mean over
    // both precisions and every distance separates the vectorized regime
    // (~93 %) from the pre-vectorization one (~99 %) with real margin.
    if let Some(limit) = args.assert_synth_share {
        let dispatched = active_kernel_name();
        let mut shares = Vec::new();
        for r in rows
            .iter()
            .filter(|r| r.threads == 1 && r.kernel == dispatched)
        {
            let total = (r.synth_ns + r.discriminate_ns + r.syndrome_ns + r.decode_ns) as f64;
            let share = 100.0 * r.synth_ns as f64 / total.max(1.0);
            eprintln!(
                "[bench_stream] synth share d={}/{}: {share:.1}%",
                r.distance, r.precision
            );
            shares.push(share);
        }
        if !shares.is_empty() {
            let mean = shares.iter().sum::<f64>() / shares.len() as f64;
            eprintln!(
                "[bench_stream] mean synth share over {} serial {dispatched} rows: \
                 {mean:.1}% (limit {limit}%)",
                shares.len()
            );
            assert!(
                mean <= limit,
                "synth averages {mean:.1}% of the serial {dispatched} cycle (> {limit}%): \
                 vectorized synthesis regressed back toward the pre-vectorization \
                 dominant-stage regime"
            );
        }
    }

    // `--assert-decode-p99`: pin the decoder's tail latency at the paper's
    // d = 7 operating point. Serial rows of the dispatched backend only —
    // pooled decode timing includes scheduling noise from the overlap, and
    // d = 7 is the distance whose budget the retired exact matcher already
    // met, so it is the regression boundary (larger distances are *new*
    // capability with no baseline to hold).
    if let Some(limit) = args.assert_decode_p99 {
        let dispatched = active_kernel_name();
        let mut checked = 0usize;
        for r in rows
            .iter()
            .filter(|r| r.distance == 7 && r.threads == 1 && r.kernel == dispatched)
        {
            let p99 = r.latency.decode.p99;
            eprintln!(
                "[bench_stream] decode p99 d={}/{}: {p99} ns (limit {limit} ns)",
                r.distance, r.precision
            );
            assert!(
                p99 <= limit,
                "d=7/{} decode p99 {p99} ns exceeds the {limit} ns budget: the union-find \
                 decoder regressed past the exact-matcher baseline it replaced",
                r.precision
            );
            checked += 1;
        }
        assert!(
            checked > 0,
            "--assert-decode-p99 given but no serial d=7 {dispatched} rows were measured"
        );
    }

    // `--drift`: fault-injection robustness rows — the adaptive engine under
    // an injected centroid drift, serial plus the first pooled worker count.
    let mut drift_rows: Vec<DriftRow> = Vec::new();
    if args.drift {
        eprintln!("[bench_stream] drift scenario (inject → detect → hot-swap → recover)…");
        let drift_pools: Vec<Option<&ShardPool>> = std::iter::once(None)
            .chain(pools.first().map(Some))
            .collect();
        for pool in drift_pools {
            drift_rows.push(measure_drift::<f64>(shots, seed, pool, &mut sink));
            drift_rows.push(measure_drift::<f32>(shots, seed, pool, &mut sink));
        }
        for r in &drift_rows {
            eprintln!(
                "[bench_stream] drift {}/{}/t={}: {:>8.1} cycles/s clean, {:>8.1} under fault, \
                 detect {} rounds | recover {} rounds | {} hot-swaps | {} degraded decodes | \
                 {} alerts fired, {} cleared",
                r.precision,
                r.kernel,
                r.threads,
                r.clean_cycles_per_sec,
                r.faulted_cycles_per_sec,
                r.rounds_to_detect,
                r.rounds_to_recover,
                r.hot_swaps,
                r.degraded_decodes,
                r.alerts_fired,
                r.alerts_cleared,
            );
        }
    }

    /// One `{"synth": …, "discriminate": …, "syndrome": …, "decode": …,
    /// "cycle": …}` object built from a single percentile of every stage
    /// histogram.
    fn pct_json(l: &StageLatency, pick: fn(LatencySummary) -> u64) -> String {
        format!(
            "{{\"synth\": {}, \"discriminate\": {}, \"syndrome\": {}, \"decode\": {}, \"cycle\": {}}}",
            pick(l.synth),
            pick(l.discriminate),
            pick(l.syndrome),
            pick(l.decode),
            pick(l.cycle)
        )
    }

    let mut report = JsonReport::new("stream_cycle_throughput", "cycles_per_second");
    report.scalar("shots_per_state", shots);
    for r in &drift_rows {
        report.row(
            "drift",
            format!(
                "{{\"precision\": \"{}\", \"kernel\": \"{}\", \"threads\": {}, \
                 \"clean\": {:.1}, \"faulted\": {:.1}, \"rounds_to_detect\": {}, \
                 \"rounds_to_recover\": {}, \"hot_swaps\": {}, \"degraded_decodes\": {}, \
                 \"alerts_fired\": {}, \"alerts_cleared\": {}}}",
                r.precision,
                r.kernel,
                r.threads,
                r.clean_cycles_per_sec,
                r.faulted_cycles_per_sec,
                r.rounds_to_detect,
                r.rounds_to_recover,
                r.hot_swaps,
                r.degraded_decodes,
                r.alerts_fired,
                r.alerts_cleared,
            ),
        );
    }
    for r in &rows {
        report.row(
            "results",
            format!(
                "{{\"distance\": {}, \"rounds\": {}, \"precision\": \"{}\", \"kernel\": \"{}\", \
                 \"threads\": {}, \"groups\": {}, \
                 \"cycles\": {}, \"streamed\": {:.1}, \"offline\": {:.1}, \"speedup\": {:.3}, \
                 \"per_cycle_ns\": {{\"synth\": {}, \"discriminate\": {}, \"syndrome\": {}, \
                 \"decode\": {}}}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"logical_errors\": {}}}",
                r.distance,
                r.distance,
                r.precision,
                r.kernel,
                r.threads,
                r.groups,
                r.cycles,
                r.cycles_per_sec,
                r.offline_cycles_per_sec,
                r.cycles_per_sec / r.offline_cycles_per_sec,
                r.synth_ns,
                r.discriminate_ns,
                r.syndrome_ns,
                r.decode_ns,
                pct_json(&r.latency, |s| s.p50),
                pct_json(&r.latency, |s| s.p99),
                pct_json(&r.latency, |s| s.max),
                r.logical_errors,
            ),
        );
    }
    report.write("BENCH_stream.json");

    // Flight-recorder export: one Chrome trace spanning every variant.
    let trace_body = sink.chrome.to_json();
    if let Some(path) = &args.trace_json {
        std::fs::write(path, &trace_body).expect("write trace JSON");
        eprintln!(
            "[bench_stream] wrote Chrome trace ({} events) to {path} — load it in \
             Perfetto or chrome://tracing",
            sink.chrome.event_count()
        );
    }

    // Registry exports: the same snapshot drives every export format.
    let snapshot = registry.snapshot();
    if let Some(path) = &args.metrics_json {
        std::fs::write(path, snapshot.to_json()).expect("write metrics JSON");
        eprintln!("[bench_stream] wrote metrics JSON to {path}");
    }
    match args.serve_text {
        ServeText::Off => {}
        ServeText::Stdout => {
            // Stdout is reserved for the exposition (progress goes to
            // stderr), so `bench_stream --serve-text > metrics.prom`
            // produces a clean scrape file.
            print!("{}", snapshot.to_prometheus_text());
        }
        ServeText::Addr(addr) => {
            serve_metrics(&addr, &snapshot.to_prometheus_text(), &trace_body);
        }
    }
}

/// Serves `GET /metrics` (the default for any unrecognized path — a scraper
/// only asks for one) and `GET /trace` (the Chrome-trace JSON) forever on a
/// plain TCP listener. Deliberately minimal: read the request head, route
/// on the request-line path, answer 200, close.
fn serve_metrics(addr: &str, metrics: &str, trace: &str) -> ! {
    use std::io::{Read as _, Write as _};
    let listener = std::net::TcpListener::bind(addr)
        .unwrap_or_else(|e| panic!("--serve-text: cannot bind {addr}: {e}"));
    eprintln!(
        "[bench_stream] serving metrics on http://{addr}/metrics and the flight \
         recorder on http://{addr}/trace (ctrl-c to stop)"
    );
    loop {
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        // Read the request head; the request line is all we route on.
        let mut buf = [0u8; 1024];
        let n = stream.read(&mut buf).unwrap_or(0);
        let head = String::from_utf8_lossy(&buf[..n]);
        let path = head
            .lines()
            .next()
            .and_then(|line| line.split_whitespace().nth(1))
            .unwrap_or("/metrics");
        let (body, content_type) = if path == "/trace" || path.starts_with("/trace?") {
            (trace, "application/json")
        } else {
            (metrics, "text/plain; version=0.0.4")
        };
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            content_type,
            body.len(),
            body
        );
        let _ = stream.write_all(response.as_bytes());
    }
}
