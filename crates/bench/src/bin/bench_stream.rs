//! Streaming QEC-cycle throughput benchmark.
//!
//! Trains the `mf` discriminator once on the five-qubit default chip, then
//! runs the streaming [`CycleEngine`] at distances 3, 5 and 7 (rounds = d)
//! at **both pipeline precisions** (`CycleEngine<f64>` and
//! `CycleEngine<f32>`), measuring cycles/second and the per-stage nanosecond
//! breakdown (synth / discriminate / syndrome / decode) of the warm engine.
//! The offline materializing path (f64 by construction) is timed on the same
//! workload for the speedup column of both precision rows.
//!
//! Results land in `BENCH_stream.json` (cwd), continuing the performance
//! trajectory seeded by `BENCH_inference.json`.
//!
//! Environment overrides: `HERQULES_STREAM_CYCLES` (measured cycles per
//! distance, default 40), `HERQULES_STREAM_SHOTS` (calibration shots per
//! basis state, default 12), `HERQULES_SEED`.

use std::fmt::Write as _;
use std::time::Instant;

use herqles_core::Real;
use herqles_stream::{run_cycles_offline, train_mf_discriminator_typed, CycleConfig, CycleEngine};
use readout_sim::ChipConfig;
use surface_code::RotatedSurfaceCode;

const DISTANCES: [usize; 3] = [3, 5, 7];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} must be an integer"))
        })
        .unwrap_or(default)
}

struct Row {
    distance: usize,
    precision: &'static str,
    groups: usize,
    cycles: usize,
    cycles_per_sec: f64,
    offline_cycles_per_sec: f64,
    logical_errors: u64,
    synth_ns: u64,
    discriminate_ns: u64,
    syndrome_ns: u64,
    decode_ns: u64,
}

fn main() {
    let cycles = env_usize("HERQULES_STREAM_CYCLES", 40);
    assert!(cycles > 0, "HERQULES_STREAM_CYCLES must be at least 1");
    let shots = env_usize("HERQULES_STREAM_SHOTS", 12);
    let seed = env_usize("HERQULES_SEED", 20_230_612) as u64;

    let chip = ChipConfig::five_qubit_default();
    eprintln!("[bench_stream] training mf discriminator ({shots} shots/state)…");
    let disc = train_mf_discriminator_typed(&chip, shots, seed);

    /// One warm-up cycle, then the measured run; returns a precision-tagged
    /// row. Offline throughput is supplied by the caller (the materializing
    /// reference is `f64` by construction and shared by both rows).
    fn measure<R: Real>(
        disc: &herqles_core::designs::MfDiscriminator,
        chip: &ChipConfig,
        code: &RotatedSurfaceCode,
        cfg: CycleConfig,
        cycles: usize,
        offline_cycles_per_sec: f64,
    ) -> Row
    where
        herqles_core::designs::MfDiscriminator: herqles_core::PrecisionDiscriminator<R>,
    {
        let mut engine = CycleEngine::<R, _>::new(cfg, chip, code, disc);
        let _ = engine.run_cycle();
        let warm = *engine.stats();
        let start = Instant::now();
        let results = engine.run_cycles(cycles);
        let elapsed = start.elapsed().as_secs_f64();
        let mut stage = herqles_stream::StageNanos::default();
        for r in &results {
            stage.add(&r.stats.stage);
        }
        let n = cycles as u64;
        Row {
            distance: code.distance(),
            precision: R::NAME,
            groups: engine.ancilla_map().n_groups(),
            cycles,
            cycles_per_sec: cycles as f64 / elapsed,
            offline_cycles_per_sec,
            logical_errors: engine.stats().logical_errors - warm.logical_errors,
            synth_ns: stage.synth / n,
            discriminate_ns: stage.discriminate / n,
            syndrome_ns: stage.syndrome / n,
            decode_ns: stage.decode / n,
        }
    }

    let mut rows = Vec::new();
    for d in DISTANCES {
        let code = RotatedSurfaceCode::new(d);
        let cfg = CycleConfig {
            rounds: d,
            data_error_prob: 4e-3,
            seed,
        };

        // Offline materializing path on the same cycle count.
        let off_start = Instant::now();
        let _ = run_cycles_offline(&cfg, &chip, &code, &disc, cycles);
        let off_elapsed = off_start.elapsed().as_secs_f64();
        let offline_cps = cycles as f64 / off_elapsed;

        for row in [
            measure::<f64>(&disc, &chip, &code, cfg, cycles, offline_cps),
            measure::<f32>(&disc, &chip, &code, cfg, cycles, offline_cps),
        ] {
            eprintln!(
                "[bench_stream] d={}/{}: {:>8.1} cycles/s streamed ({:>8.1} offline, {:.2}x), per-cycle \
                 synth {} ns | discriminate {} ns | syndrome {} ns | decode {} ns, {} logical errors",
                row.distance,
                row.precision,
                row.cycles_per_sec,
                row.offline_cycles_per_sec,
                row.cycles_per_sec / row.offline_cycles_per_sec,
                row.synth_ns,
                row.discriminate_ns,
                row.syndrome_ns,
                row.decode_ns,
                row.logical_errors,
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"stream_cycle_throughput\",\n");
    let _ = writeln!(json, "  \"unit\": \"cycles_per_second\",");
    let _ = writeln!(
        json,
        "  \"cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"shots_per_state\": {shots},");
    let _ = writeln!(json, "  \"results\": [");
    for (k, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"distance\": {}, \"rounds\": {}, \"precision\": \"{}\", \"groups\": {}, \"cycles\": {}, \
             \"streamed\": {:.1}, \"offline\": {:.1}, \"speedup\": {:.3}, \
             \"per_cycle_ns\": {{\"synth\": {}, \"discriminate\": {}, \"syndrome\": {}, \
             \"decode\": {}}}, \"logical_errors\": {}}}{}",
            r.distance,
            r.distance,
            r.precision,
            r.groups,
            r.cycles,
            r.cycles_per_sec,
            r.offline_cycles_per_sec,
            r.cycles_per_sec / r.offline_cycles_per_sec,
            r.synth_ns,
            r.discriminate_ns,
            r.syndrome_ns,
            r.decode_ns,
            r.logical_errors,
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    eprintln!("[bench_stream] wrote BENCH_stream.json");
}
