//! Regenerates **Table 2**: mean absolute cross-fidelity `⟨|F^CF|⟩` per
//! Hamming (chain) distance for the baseline, mf, mf-nn, mf-rmf-svm and
//! mf-rmf-nn designs. Lower is better; the paper's headline is the >3×
//! reduction of distance-1 crosstalk going from SVM to NN heads.
//!
//! Run with `cargo run --release -p herqles-bench --bin table2`.

use herqles_bench::{f4, render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::metrics::evaluate;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);

    let designs = [
        DesignKind::BaselineFnn,
        DesignKind::Mf,
        DesignKind::MfNn,
        DesignKind::MfRmfSvm,
        DesignKind::MfRmfNn,
    ];
    let mut rows = Vec::new();
    for kind in designs {
        eprintln!("[table2] training {kind}…");
        let disc = trainer.train(kind);
        let result = evaluate(disc.as_ref(), &dataset, &split.test);
        let mut row = vec![kind.label().to_string()];
        for dist in 1..=4 {
            row.push(f4(result.mean_abs_cross_fidelity(dist)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Table 2: mean |cross-fidelity| by qubit distance (lower is better)",
            &["Design", "|i-j|=1", "|i-j|=2", "|i-j|=3", "|i-j|=4"],
            &rows,
        )
    );
}
