//! Ablation (beyond the paper's figures): accuracy of the HERQULES NN head
//! when executed in fixed-point arithmetic at different bit widths — the
//! datapath choice an FPGA implementation actually has to make.
//!
//! Run with `cargo run --release -p herqles-bench --bin ablation_quant`.

use herqles_bench::{f3, render_table, BenchConfig};
use herqles_core::trainer::ReadoutTrainer;
use herqles_core::FilterBank;
use readout_dsp::Demodulator;
use readout_nn::net::TrainConfig;
use readout_nn::{Mlp, QuantConfig, QuantizedMlp, Standardizer};

fn main() {
    let bench = BenchConfig {
        shots_per_state: BenchConfig::from_env().shots_per_state.min(400),
        ..BenchConfig::from_env()
    };
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    let bank = FilterBank::with_rmfs(
        trainer.matched_filters().to_vec(),
        trainer.relaxation_filters().to_vec(),
    );
    let demod = Demodulator::new(&dataset.config);

    // Train the head directly so we can wrap it in a quantized copy.
    let features = |idx: &[usize]| -> Vec<Vec<f64>> {
        idx.iter()
            .map(|&i| bank.features(&demod.demodulate(&dataset.shots[i].raw)))
            .collect()
    };
    let train_f = features(&split.train);
    let standardizer = Standardizer::fit(&train_f);
    let train_f = standardizer.transform_all(&train_f);
    let labels: Vec<usize> = split
        .train
        .iter()
        .map(|&i| dataset.shots[i].prepared.index())
        .collect();
    let mut net = Mlp::new(&[10, 20, 40, 20, 32], 5);
    eprintln!("[ablation_quant] training float head…");
    net.train(
        &train_f,
        &labels,
        &TrainConfig {
            epochs: 150,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        },
    );

    let test_f = standardizer.transform_all(&features(&split.test));
    let test_labels: Vec<usize> = split
        .test
        .iter()
        .map(|&i| dataset.shots[i].prepared.index())
        .collect();
    let accuracy = |preds: &[usize]| -> f64 {
        preds
            .iter()
            .zip(&test_labels)
            .filter(|(p, l)| p == l)
            .count() as f64
            / test_labels.len() as f64
    };

    let float_acc = accuracy(&net.predict_batch(&test_f));
    let mut rows = vec![vec!["float64".to_string(), f3(float_acc), "-".into()]];
    for (total, frac) in [(16u32, 10u32), (12, 7), (8, 4), (6, 3), (4, 2)] {
        let qnet = QuantizedMlp::from_mlp(
            &net,
            QuantConfig {
                total_bits: total,
                frac_bits: frac,
            },
        );
        let acc = accuracy(&qnet.predict_batch(&test_f));
        rows.push(vec![
            format!("fixed<{total},{frac}>"),
            f3(acc),
            format!("{:+.3}", acc - float_acc),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Quantization ablation: mf-rmf-nn head state accuracy vs bit width",
            &["datapath", "state accuracy", "vs float"],
            &rows,
        )
    );
}
