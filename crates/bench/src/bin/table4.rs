//! Regenerates **Table 4**: inference latency (cycles) and LUT utilization on
//! the `xczu7ev` for HERQULES (reuse factors 4 and 64) and for a hypothetical
//! hardware implementation of the baseline FNN (reuse factors 200/500/1000).
//!
//! Paper reference: HERQULES 8–21 cycles at 7.2–7.8 % LUT; baseline 924–4023
//! cycles at 216–469 % LUT (infeasible). Our analytic model reproduces the
//! structure (tens of cycles and <15 % vs thousands of cycles and >150 %);
//! absolute constants differ from Vivado HLS reports — see EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p herqles-bench --bin table4`.

use fpga_model::{estimate_pipeline, FpgaDevice, NetworkShape, PipelineSpec};
use herqles_bench::render_table;

fn main() {
    let device = FpgaDevice::XCZU7EV;
    let mut rows = Vec::new();

    for rf in [4usize, 64] {
        let spec = PipelineSpec::herqules(5, true, rf);
        let est = estimate_pipeline(&spec);
        let util = est.utilization(&device);
        rows.push(vec![
            format!("herqles (RF = {rf})"),
            est.latency_cycles.to_string(),
            format!("{:.2}", util.lut_pct),
            if util.fits() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    for rf in [200usize, 500, 1000] {
        let spec = PipelineSpec::baseline(NetworkShape::baseline_fnn(), rf);
        let est = estimate_pipeline(&spec);
        let util = est.utilization(&device);
        rows.push(vec![
            format!("baseline (RF = {rf})"),
            est.latency_cycles.to_string(),
            format!("{:.2}", util.lut_pct),
            if util.fits() { "yes" } else { "NO" }.to_string(),
        ]);
    }

    println!(
        "{}",
        render_table(
            "Table 4: inference latency and LUT utilization on xczu7ev",
            &["Design", "Latency (cycles)", "LUT util (%)", "fits?"],
            &rows,
        )
    );
}
