//! Calibration helper (not a paper artifact): trains the filter-based
//! designs only and prints their Table 1 rows, so simulator/hyper-parameter
//! tuning can iterate without paying for baseline-FNN training.
//!
//! `HERQULES_SHOTS` / `HERQULES_SEED` control the dataset as usual.

use herqles_bench::{f3, render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::metrics::evaluate;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);

    let designs = [DesignKind::Mf, DesignKind::MfNn, DesignKind::MfRmfNn];
    let mut rows = Vec::new();
    for kind in designs {
        let t = std::time::Instant::now();
        let disc = trainer.train(kind);
        let result = evaluate(disc.as_ref(), &dataset, &split.test);
        let mut row = vec![kind.label().to_string()];
        row.extend(result.per_qubit_accuracy().iter().map(|&a| f3(a)));
        row.push(f3(result.cumulative_accuracy()));
        row.push(format!("{:.1?}", t.elapsed()));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Calibration",
            &["Design", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q", "train+eval"],
            &rows,
        )
    );
}
