//! Regenerates **Table 3**: mf-rmf-nn accuracy at shortened readout
//! durations (1 µs / 750 ns / 500 ns) *without retraining* — the filters and
//! network trained on the full window are applied to truncated traces.
//!
//! Paper reference: F5Q 0.927 → 0.914 → 0.819 at 1 µs → 750 ns → 500 ns.
//!
//! Run with `cargo run --release -p herqles-bench --bin table3`.

use herqles_bench::{f3, render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::duration::evaluate_truncated;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    eprintln!("[table3] training mf-rmf-nn on the full 1 µs window…");
    let disc = trainer.train(DesignKind::MfRmfNn);

    let bin_ns = dataset.config.demod_bin_s * 1e9;
    let mut rows = Vec::new();
    for (label, bins) in [("1 µs", 20usize), ("750 ns", 15), ("500 ns", 10)] {
        let result = evaluate_truncated(disc.as_ref(), &dataset, &split.test, bins)
            .expect("mf-rmf-nn supports truncated inference");
        let mut row = vec![label.to_string(), format!("{:.0}", bins as f64 * bin_ns)];
        row.extend(result.per_qubit_accuracy().iter().map(|&a| f3(a)));
        row.push(f3(result.cumulative_accuracy()));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Table 3: mf-rmf-nn fidelity vs readout duration (no retraining)",
            &["Duration", "ns", "Qubit 1", "Qubit 2", "Qubit 3", "Qubit 4", "Qubit 5", "F5Q"],
            &rows,
        )
    );
}
