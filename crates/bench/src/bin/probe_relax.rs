//! Diagnostic (not a paper artifact): where do the MF threshold's errors on
//! an excited qubit come from, and do relaxers occupy a distinct region of
//! the (MF, RMF) plane?

use herqles_bench::BenchConfig;
use herqles_core::trainer::ReadoutTrainer;
use herqles_core::FilterBank;
use readout_classifiers::ThresholdDiscriminator;
use readout_dsp::Demodulator;

fn main() {
    let q = 3; // qubit 4: highest relaxation fraction
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    let bank = FilterBank::with_rmfs(
        trainer.matched_filters().to_vec(),
        trainer.relaxation_filters().to_vec(),
    );
    let demod = Demodulator::new(&dataset.config);

    let feat = |i: usize| -> (f64, f64) {
        let f = bank.features(&demod.demodulate(&dataset.shots[i].raw));
        (f[2 * q], f[2 * q + 1])
    };

    let e: Vec<f64> = split
        .train
        .iter()
        .filter(|&&i| dataset.shots[i].prepared.qubit(q))
        .map(|&i| feat(i).0)
        .collect();
    let g: Vec<f64> = split
        .train
        .iter()
        .filter(|&&i| !dataset.shots[i].prepared.qubit(q))
        .map(|&i| feat(i).0)
        .collect();
    let th = ThresholdDiscriminator::train(&e, &g);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let sd = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len().max(1) as f64).sqrt()
    };
    println!(
        "threshold = {:.2} (excited above: {})",
        th.threshold(),
        th.a_is_above()
    );
    println!(
        "train MF: ground {:.2}±{:.2}, excited {:.2}±{:.2}",
        mean(&g),
        sd(&g),
        mean(&e),
        sd(&e)
    );

    let mut n_exc = 0usize;
    let mut errors = 0usize;
    let mut errors_relax = 0usize;
    let mut relax_mf = Vec::new();
    let mut relax_rmf = Vec::new();
    let mut ground_mf = Vec::new();
    let mut ground_rmf = Vec::new();
    let mut relax_times = Vec::new();
    for &i in &split.test {
        let shot = &dataset.shots[i];
        let (mf, rmf) = feat(i);
        if shot.prepared.qubit(q) {
            n_exc += 1;
            let correct = th.classify_a(mf);
            if !correct {
                errors += 1;
                if shot.truth.relaxation_time_s[q].is_some() {
                    errors_relax += 1;
                }
            }
            if let Some(t) = shot.truth.relaxation_time_s[q] {
                relax_mf.push(mf);
                relax_rmf.push(rmf);
                relax_times.push(t * 1e9);
            }
        } else {
            ground_mf.push(mf);
            ground_rmf.push(rmf);
        }
    }
    println!("excited shots: {n_exc}, threshold errors: {errors}, of which true relaxers: {errors_relax}");
    println!(
        "relaxers: {} traces, mean t_r = {:.0} ns",
        relax_mf.len(),
        mean(&relax_times)
    );
    println!(
        "relaxer   MF {:.2}±{:.2}  RMF {:.2}±{:.2}",
        mean(&relax_mf),
        sd(&relax_mf),
        mean(&relax_rmf),
        sd(&relax_rmf)
    );
    println!(
        "ground    MF {:.2}±{:.2}  RMF {:.2}±{:.2}",
        mean(&ground_mf),
        sd(&ground_mf),
        mean(&ground_rmf),
        sd(&ground_rmf)
    );

    // Conditional on MF below threshold (the ambiguous region), how well
    // does RMF separate relaxers from ground?
    let thr = th.threshold();
    let amb_relax: Vec<f64> = relax_mf
        .iter()
        .zip(&relax_rmf)
        .filter(|(&m, _)| m < thr)
        .map(|(_, &r)| r)
        .collect();
    let amb_ground: Vec<f64> = ground_mf
        .iter()
        .zip(&ground_rmf)
        .filter(|(&m, _)| m < thr)
        .map(|(_, &r)| r)
        .collect();
    println!(
        "ambiguous region: relaxer RMF {:.2}±{:.2} ({} shots) vs ground RMF {:.2}±{:.2} ({} shots)",
        mean(&amb_relax),
        sd(&amb_relax),
        amb_relax.len(),
        mean(&amb_ground),
        sd(&amb_ground),
        amb_ground.len()
    );
}
