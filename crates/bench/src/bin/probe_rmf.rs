//! Diagnostic (not a paper artifact): per-qubit information content of the
//! (MF, RMF) feature pair.
//!
//! For each qubit trains (a) the optimal 1-D threshold on the MF output and
//! (b) a small per-qubit binary network on the 2-D (MF, RMF) pair, and
//! prints both test accuracies. If (b) does not beat (a), the relaxation
//! matched filter carries no usable signal in the current simulator
//! calibration.

use herqles_bench::{f3, render_table, BenchConfig};
use herqles_core::trainer::ReadoutTrainer;
use herqles_core::FilterBank;
use readout_classifiers::ThresholdDiscriminator;
use readout_dsp::Demodulator;
use readout_nn::net::TrainConfig;
use readout_nn::{Mlp, Standardizer};

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    let bank = FilterBank::with_rmfs(
        trainer.matched_filters().to_vec(),
        trainer.relaxation_filters().to_vec(),
    );
    let demod = Demodulator::new(&dataset.config);

    let features = |idx: &[usize]| -> Vec<Vec<f64>> {
        idx.iter()
            .map(|&i| bank.features(&demod.demodulate(&dataset.shots[i].raw)))
            .collect()
    };
    let train_f = features(&split.train);
    let test_f = features(&split.test);

    let mut rows = Vec::new();
    for q in 0..dataset.n_qubits() {
        let label = |i: usize| dataset.shots[i].prepared.qubit(q);
        let (mf_i, rmf_i) = (2 * q, 2 * q + 1);

        // (a) optimal threshold on the raw MF output.
        let e: Vec<f64> = split
            .train
            .iter()
            .zip(&train_f)
            .filter(|(&i, _)| label(i))
            .map(|(_, f)| f[mf_i])
            .collect();
        let g: Vec<f64> = split
            .train
            .iter()
            .zip(&train_f)
            .filter(|(&i, _)| !label(i))
            .map(|(_, f)| f[mf_i])
            .collect();
        let th = ThresholdDiscriminator::train(&e, &g);
        let th_acc = split
            .test
            .iter()
            .zip(&test_f)
            .filter(|(&i, f)| th.classify_a(f[mf_i]) == label(i))
            .count() as f64
            / split.test.len() as f64;

        // (b) 2-feature per-qubit network.
        let pair = |f: &Vec<f64>| vec![f[mf_i], f[rmf_i]];
        let train_pairs: Vec<Vec<f64>> = train_f.iter().map(pair).collect();
        let st = Standardizer::fit(&train_pairs);
        let train_pairs = st.transform_all(&train_pairs);
        let labels: Vec<usize> = split.train.iter().map(|&i| usize::from(label(i))).collect();
        let mut net = Mlp::new(&[2, 16, 16, 2], 7);
        let cfg = TrainConfig {
            epochs: 200,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        };
        net.train(&train_pairs, &labels, &cfg);
        let test_pairs: Vec<Vec<f64>> = test_f.iter().map(|f| st.transform(&pair(f))).collect();
        let preds = net.predict_batch(&test_pairs);
        let nn_acc = split
            .test
            .iter()
            .zip(&preds)
            .filter(|(&i, &p)| (p == 1) == label(i))
            .count() as f64
            / split.test.len() as f64;

        rows.push(vec![
            format!("qubit {}", q + 1),
            f3(th_acc),
            f3(nn_acc),
            format!("{:+.3}", nn_acc - th_acc),
        ]);
    }
    println!(
        "{}",
        render_table(
            "RMF information probe",
            &["Qubit", "MF threshold", "(MF,RMF) net", "gain"],
            &rows,
        )
    );
}
