//! Regenerates **Figure 14**: (a) HERQULES FPGA resource utilization by
//! category (paper: BRAM 2.56 %, DSP 1.85 %, FF 0.75 %, LUT 7.79 %), and
//! (b) the normalized surface-code syndrome cycle time with a 25 % shorter
//! readout on Google-like and IBM-like gate sets (paper: 0.795 and 0.836).
//!
//! Run with `cargo run --release -p herqles-bench --bin fig14`.

use fpga_model::{estimate_pipeline, FpgaDevice, PipelineSpec};
use herqles_bench::render_table;
use surface_code::{CycleTimes, GateSet};

fn main() {
    // (a) resource categories for the flagship pipeline.
    let est = estimate_pipeline(&PipelineSpec::herqules(5, true, 4));
    let util = est.utilization(&FpgaDevice::XCZU7EV);
    let rows = vec![
        vec![
            "BRAM".to_string(),
            est.brams.to_string(),
            format!("{:.2}", util.bram_pct),
        ],
        vec![
            "DSP".to_string(),
            est.dsps.to_string(),
            format!("{:.2}", util.dsp_pct),
        ],
        vec![
            "FF".to_string(),
            est.ffs.to_string(),
            format!("{:.2}", util.ff_pct),
        ],
        vec![
            "LUT".to_string(),
            est.luts.to_string(),
            format!("{:.2}", util.lut_pct),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Fig 14a: HERQULES resource utilization (xczu7ev, RF 4)",
            &["Resource", "used", "util (%)"],
            &rows,
        )
    );

    // (b) syndrome cycle time at 75 % readout duration.
    let mut rows = Vec::new();
    for gates in [GateSet::GOOGLE, GateSet::IBM] {
        let norm = CycleTimes::SURFACE17.normalized_duration(&gates, 0.75);
        rows.push(vec![
            gates.name.to_string(),
            format!("{:.0}", CycleTimes::SURFACE17.duration_ns(&gates)),
            format!("{norm:.3}"),
        ]);
    }
    println!(
        "\n{}",
        render_table(
            "Fig 14b: surface-17 syndrome cycle with 25% shorter readout",
            &["Gate set", "full cycle (ns)", "normalized cycle"],
            &rows,
        )
    );
}
