//! Regenerates **Table 5**: total training time per discriminator design.
//!
//! Paper reference (AMD EPYC, 32 cores): baseline 38 min, mf-rmf-nn 19 min,
//! mf-nn 17 min, mf 3 min. Absolute times scale with the dataset volume
//! (ours is reduced); the *ratios* — baseline ≈ 2× the HERQULES designs,
//! plain mf far cheaper — are the reproduced shape.
//!
//! Each design is trained with a fresh trainer so shared stages (matched
//! filters, Algorithm 1) are honestly re-computed per row.
//!
//! Run with `cargo run --release -p herqles-bench --bin table5`.

use std::time::Instant;

use herqles_bench::{render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();

    let designs = [
        DesignKind::BaselineFnn,
        DesignKind::MfRmfNn,
        DesignKind::MfNn,
        DesignKind::Mf,
    ];
    let mut rows = Vec::new();
    let mut baseline_time = None;
    for kind in designs {
        eprintln!("[table5] training {kind}…");
        let start = Instant::now();
        let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
        let _disc = trainer.train(kind);
        let elapsed = start.elapsed();
        if kind == DesignKind::BaselineFnn {
            baseline_time = Some(elapsed);
        }
        let relative = baseline_time
            .map(|b| elapsed.as_secs_f64() / b.as_secs_f64())
            .unwrap_or(1.0);
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
            format!("{relative:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 5: total training time per design",
            &["Design", "Training time (s)", "relative to baseline"],
            &rows,
        )
    );
}
