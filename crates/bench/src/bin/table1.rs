//! Regenerates **Table 1**: per-qubit readout accuracy and cumulative
//! accuracy (`F5Q`, `F4Q`) for every discriminator design.
//!
//! Paper reference values (five-qubit dataset, 1 µs readout):
//!
//! ```text
//! Design      Q1    Q2    Q3    Q4    Q5    F5Q   F4Q
//! Baseline   0.969 0.753 0.943 0.946 0.970 0.912 0.957
//! mf         0.968 0.734 0.891 0.934 0.956 0.892 0.937
//! mf-svm     0.968 0.738 0.895 0.928 0.953 0.892 0.936
//! mf-nn      0.969 0.740 0.901 0.936 0.957 0.896 0.940
//! mf-rmf-svm 0.981 0.752 0.959 0.957 0.986 0.923 0.970
//! mf-rmf-nn  0.985 0.754 0.966 0.962 0.989 0.927 0.975
//! ```
//!
//! Run with `cargo run --release -p herqles-bench --bin table1`.

use herqles_bench::{f3, render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::metrics::evaluate;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);

    let designs = [
        DesignKind::BaselineFnn,
        DesignKind::Mf,
        DesignKind::MfSvm,
        DesignKind::MfNn,
        DesignKind::MfRmfSvm,
        DesignKind::MfRmfNn,
    ];

    let mut rows = Vec::new();
    for kind in designs {
        eprintln!("[table1] training {kind}…");
        let disc = trainer.train(kind);
        let result = evaluate(disc.as_ref(), &dataset, &split.test);
        let mut row = vec![kind.label().to_string()];
        row.extend(result.per_qubit_accuracy().iter().map(|&a| f3(a)));
        row.push(f3(result.cumulative_accuracy()));
        row.push(f3(result.cumulative_accuracy_excluding(&[1])));
        rows.push(row);

        if kind == DesignKind::MfRmfNn {
            let precision: Vec<String> = (0..5).map(|q| f3(result.precision(q))).collect();
            let recall: Vec<String> = (0..5).map(|q| f3(result.recall(q))).collect();
            eprintln!("[table1] mf-rmf-nn precision: {}", precision.join(" "));
            eprintln!("[table1] mf-rmf-nn recall:    {}", recall.join(" "));
        }
    }

    let fractions = trainer.relaxation_fractions();
    eprintln!(
        "[table1] Algorithm 1 relaxation fractions: {}",
        fractions
            .iter()
            .map(|f| format!("{:.1}%", 100.0 * f))
            .collect::<Vec<_>>()
            .join(" ")
    );

    println!(
        "{}",
        render_table(
            "Table 1: qubit-readout accuracy per design",
            &["Design", "Qubit 1", "Qubit 2", "Qubit 3", "Qubit 4", "Qubit 5", "F5Q", "F4Q"],
            &rows,
        )
    );
}
