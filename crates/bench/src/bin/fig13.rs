//! Regenerates **Figure 13**: distance-7 surface-code logical error rate per
//! round vs physical gate error rate, for readout errors
//! `εR ∈ {0, 0.5 %, 1 %, 2 %}`.
//!
//! The paper's point: a 1 % increase in readout error can push the logical
//! error rate past the physical rate, undoing the code's protection. The
//! dash-dot "logical = physical" line is printed as its own column for easy
//! comparison.
//!
//! `HERQULES_BLOCKS` overrides the Monte-Carlo block count (default 20 000).
//!
//! Run with `cargo run --release -p herqles-bench --bin fig13`.

use herqles_bench::render_table;
use surface_code::{estimate_logical_error_rate, LogicalErrorConfig};

fn main() {
    let blocks: usize = std::env::var("HERQULES_BLOCKS")
        .ok()
        .map(|v| v.parse().expect("HERQULES_BLOCKS must be an integer"))
        .unwrap_or(20_000);
    let physical = [2e-3, 3e-3, 4e-3, 6e-3];
    let readout = [0.0, 0.005, 0.01, 0.02];

    let mut rows = Vec::new();
    for &p in &physical {
        let mut row = vec![format!("{p:.0e}")];
        for &er in &readout {
            let cfg = LogicalErrorConfig {
                distance: 7,
                rounds: 7,
                data_error_prob: p,
                meas_error_prob: er,
                blocks,
                seed: 0xF1613,
            };
            let rate = estimate_logical_error_rate(&cfg);
            row.push(format!("{rate:.2e}"));
        }
        row.push(format!("{p:.0e}"));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &format!("Fig 13: distance-7 logical error rate per round ({blocks} blocks/point)"),
            &[
                "physical p",
                "eR=0",
                "eR=0.5%",
                "eR=1%",
                "eR=2%",
                "logical=physical"
            ],
            &rows,
        )
    );
}
