//! Ablation (paper §5.1.2): boxcar pre-filtering before the matched filter.
//! Sweeps the boxcar window length and reports per-qubit threshold accuracy
//! on the filtered traces — longer windows average more noise but smear the
//! relaxation edge, so an optimum exists per qubit.
//!
//! Run with `cargo run --release -p herqles-bench --bin ablation_boxcar`.

use herqles_bench::{f3, render_table, BenchConfig};
use readout_classifiers::ThresholdDiscriminator;
use readout_dsp::filters::MatchedFilter;
use readout_dsp::{boxcar_filter, Demodulator};
use readout_sim::trace::IqTrace;

fn main() {
    let bench = BenchConfig {
        shots_per_state: BenchConfig::from_env().shots_per_state.min(400),
        ..BenchConfig::from_env()
    };
    let (dataset, split) = bench.standard_dataset();
    let demod = Demodulator::new(&dataset.config);
    let n = dataset.n_qubits();

    let windows = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for &w in &windows {
        let mut row = vec![format!("boxcar {w}")];
        for q in 0..n {
            let filtered = |idx: &[usize]| -> Vec<IqTrace> {
                idx.iter()
                    .map(|&i| boxcar_filter(&demod.demodulate_qubit(&dataset.shots[i].raw, q), w))
                    .collect()
            };
            let train_traces = filtered(&split.train);
            let (mut exc, mut gnd) = (Vec::new(), Vec::new());
            for (&i, tr) in split.train.iter().zip(&train_traces) {
                if dataset.shots[i].prepared.qubit(q) {
                    exc.push(tr);
                } else {
                    gnd.push(tr);
                }
            }
            let mf = MatchedFilter::train(&exc, &gnd).expect("non-empty classes");
            let e_out: Vec<f64> = exc.iter().map(|t| mf.apply(t)).collect();
            let g_out: Vec<f64> = gnd.iter().map(|t| mf.apply(t)).collect();
            let th = ThresholdDiscriminator::train(&e_out, &g_out);

            let test_traces = filtered(&split.test);
            let correct = split
                .test
                .iter()
                .zip(&test_traces)
                .filter(|(&i, tr)| {
                    th.classify_a(mf.apply(tr)) == dataset.shots[i].prepared.qubit(q)
                })
                .count();
            row.push(f3(correct as f64 / split.test.len() as f64));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Boxcar ablation: per-qubit MF+threshold accuracy vs boxcar window (bins)",
            &["prefilter", "Q1", "Q2", "Q3", "Q4", "Q5"],
            &rows,
        )
    );
}
