//! Regenerates **Figure 8**: (a) Algorithm 1's geometry — per-qubit MTV
//! centroids, circle radius, and detected relaxation fractions; (b) the mean
//! time evolution of ground, excited, and relaxation traces, showing the
//! distinctive decay shape the RMF keys on.
//!
//! Run with `cargo run --release -p herqles-bench --bin fig8`.

use herqles_bench::{render_table, BenchConfig};
use herqles_core::relabel::identify_relaxation_traces;
use readout_dsp::Demodulator;
use readout_sim::trace::IqTrace;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let demod = Demodulator::new(&dataset.config);

    // Demodulate the training shots once.
    let traces: Vec<Vec<IqTrace>> = split
        .train
        .iter()
        .map(|&i| demod.demodulate(&dataset.shots[i].raw))
        .collect();

    let mut rows = Vec::new();
    let mut q4_relax_profile: Option<(Vec<f64>, Vec<f64>, Vec<f64>)> = None;
    for q in 0..dataset.n_qubits() {
        let ground: Vec<&IqTrace> = split
            .train
            .iter()
            .zip(&traces)
            .filter(|(&i, _)| !dataset.shots[i].prepared.qubit(q))
            .map(|(_, t)| &t[q])
            .collect();
        let excited: Vec<&IqTrace> = split
            .train
            .iter()
            .zip(&traces)
            .filter(|(&i, _)| dataset.shots[i].prepared.qubit(q))
            .map(|(_, t)| &t[q])
            .collect();
        let labels = identify_relaxation_traces(&ground, &excited);
        rows.push(vec![
            format!("qubit {}", q + 1),
            format!("{}", labels.centroid_ground),
            format!("{}", labels.centroid_excited),
            format!("{:.3}", labels.radius),
            format!("{:.1} %", 100.0 * labels.relaxation_fraction(excited.len())),
        ]);

        if q == 3 {
            // (b): mean I-channel profile of each class along the separation.
            let mean_profile = |set: &[&IqTrace]| -> Vec<f64> {
                let bins = set[0].len();
                let mut m = vec![0.0; bins];
                for tr in set {
                    for (acc, &v) in m.iter_mut().zip(tr.i()) {
                        *acc += v;
                    }
                }
                m.iter().map(|v| v / set.len() as f64).collect()
            };
            let relax: Vec<&IqTrace> = labels
                .relaxation_indices
                .iter()
                .map(|&i| excited[i])
                .collect();
            if !relax.is_empty() {
                q4_relax_profile = Some((
                    mean_profile(&ground),
                    mean_profile(&excited),
                    mean_profile(&relax),
                ));
            }
        }
    }
    println!(
        "{}",
        render_table(
            "Fig 8a: Algorithm 1 geometry per qubit",
            &[
                "Qubit",
                "centroid |0>",
                "centroid |1>",
                "radius",
                "relax fraction"
            ],
            &rows,
        )
    );

    if let Some((g, e, r)) = q4_relax_profile {
        println!("\nFig 8b: mean I-channel per 50 ns bin, qubit 4 (ground / excited / relaxation)");
        println!("bin,ground,excited,relaxation");
        for t in 0..g.len() {
            println!("{t},{:.3},{:.3},{:.3}", g[t], e[t], r[t]);
        }
    }
}
