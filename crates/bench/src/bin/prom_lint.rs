//! Lints a Prometheus text exposition file — or, in `--trace` mode, a
//! Chrome Trace Event Format JSON export.
//!
//! CI observability smoke: `bench_stream --serve-text > metrics.prom` followed
//! by `prom_lint metrics.prom herqles_cycle_latency_ns …` proves the
//! telemetry registry's export both *parses* as the text format and *contains*
//! the metric families the dashboards expect — under every kernel-dispatch
//! arm the workflow runs. `bench_stream --trace-json trace.json` followed by
//! `prom_lint --trace trace.json` does the same for the flight recorder.
//!
//! Usage:
//!
//! * `prom_lint PATH [REQUIRED_FAMILY…]` — Prometheus text mode;
//! * `prom_lint --trace PATH [--min-spans N]` — Chrome-trace mode.
//!
//! Prometheus checks, all hand-rolled (no regex, no deps):
//!
//! * every non-empty line is a `# HELP`, `# TYPE`, or a sample
//!   `name{labels} value` / `name value`;
//! * metric and label names are `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels without
//!   the colon), label values are double-quoted, sample values parse as
//!   finite `f64`;
//! * every `REQUIRED_FAMILY` argument has at least one sample whose name is
//!   the family or a `_sum`/`_count`-suffixed series of it.
//!
//! Chrome-trace checks (hand-rolled JSON walk, same zero-dependency rule):
//!
//! * the file parses as JSON and the root object carries a `traceEvents`
//!   array;
//! * every event is an object with a string `name`, a `ph` in
//!   `{"X", "I", "M"}`, non-negative integer `pid`/`tid`, and a numeric
//!   `ts`;
//! * every `"X"` (complete) event carries a numeric `dur ≥ 0`;
//! * within one `(pid, tid)` track the `"X"` events' `ts` values are
//!   monotone non-decreasing (the exporter sorts — a violation means a
//!   torn or mis-merged export);
//! * at least `--min-spans` (default 1) `"X"` spans exist.
//!
//! Exits 0 on success, 1 with a per-line diagnostic otherwise.

use std::collections::BTreeSet;
use std::process::ExitCode;

/// `true` for a legal metric-name character (`:` allowed per the exposition
/// format; first position must not be a digit — checked by the caller).
fn name_char(c: char, allow_colon: bool) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':')
}

/// Parses a metric/label name prefix of `s`; returns (name, rest) or an
/// error string.
fn parse_name(s: &str, allow_colon: bool) -> Result<(&str, &str), String> {
    let end = s
        .char_indices()
        .find(|&(_, c)| !name_char(c, allow_colon))
        .map_or(s.len(), |(i, _)| i);
    if end == 0 {
        return Err(format!("expected a name at {s:?}"));
    }
    let name = &s[..end];
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        return Err(format!("name {name:?} must not start with a digit"));
    }
    Ok((name, &s[end..]))
}

/// Validates one `{label="value",…}` block; returns the rest after `}`.
fn parse_labels(s: &str) -> Result<&str, String> {
    let mut rest = s.strip_prefix('{').expect("caller saw '{'");
    loop {
        let (_, after_name) = parse_name(rest, false)?;
        rest = after_name
            .strip_prefix("=\"")
            .ok_or_else(|| format!("expected =\"…\" after label name at {rest:?}"))?;
        // Label values may escape `\"`, `\\` and `\n`.
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                None => return Err("unterminated label value".to_string()),
                Some((_, '\\')) => {
                    chars.next(); // skip whatever is escaped
                }
                Some((i, '"')) => break i,
                Some(_) => {}
            }
        };
        rest = &rest[close + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None => {
                return rest
                    .strip_prefix('}')
                    .ok_or_else(|| format!("expected , or }} at {rest:?}"))
            }
        }
    }
}

/// Validates one sample line; returns the metric name on success.
fn lint_sample(line: &str) -> Result<&str, String> {
    let (name, mut rest) = parse_name(line, true)?;
    if rest.starts_with('{') {
        rest = parse_labels(rest)?;
    }
    let value = rest.trim_start();
    if value == rest {
        return Err(format!("expected whitespace before the value at {rest:?}"));
    }
    let v: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("sample value {value:?} is not a number"))?;
    if !v.is_finite() {
        return Err(format!("sample value {value:?} is not finite"));
    }
    Ok(name)
}

/// Validates a `# HELP name text` / `# TYPE name type` comment line.
fn lint_comment(line: &str) -> Result<(), String> {
    let body = line.strip_prefix('#').expect("caller saw '#'").trim_start();
    for keyword in ["HELP", "TYPE"] {
        if let Some(rest) = body.strip_prefix(keyword) {
            let rest = rest.trim_start();
            let (_, after) = parse_name(rest, true)?;
            if !after.starts_with(' ') {
                return Err(format!("# {keyword} needs text after the metric name"));
            }
            return Ok(());
        }
    }
    // Other comments are legal in the format; the exporter never emits them,
    // so flag anything unexpected rather than silently passing it.
    Err(format!(
        "unexpected comment {line:?} (only # HELP / # TYPE)"
    ))
}

/// A parsed JSON value — just enough structure for the trace walk.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match; the exporter never duplicates keys).
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Minimal recursive-descent JSON parser (no deps, enough for the trace
/// format: no surrogate-pair decoding — `\uXXXX` escapes are validated and
/// replaced, not transcoded).
struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON byte {}: {msg}", self.i)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.s.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.s.get(self.i) {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(_) => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(&c) = self.s.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.s.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out).map_err(|_| self.err("invalid UTF-8"));
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'u') => {
                            // Validate 4 hex digits; substitute — the trace
                            // checks never compare escaped content.
                            for k in 1..=4 {
                                if !self.s.get(self.i + k).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(self.err("invalid \\u escape"));
                                }
                            }
                            self.i += 4;
                            out.push(b'?');
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.s.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.s.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

/// Parses a complete JSON document (trailing garbage is an error).
fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing data after the JSON document"));
    }
    Ok(v)
}

/// A non-negative integer field (Chrome trace pids/tids).
fn as_index(v: &Json) -> Option<u64> {
    let n = v.as_num()?;
    (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
}

/// Lints a Chrome Trace Event Format document. Returns the accepted span
/// count or the list of diagnostics.
fn lint_trace(text: &str, min_spans: usize) -> Result<usize, Vec<String>> {
    let root = match parse_json(text) {
        Ok(v) => v,
        Err(e) => return Err(vec![e]),
    };
    let Some(Json::Arr(events)) = root.get("traceEvents") else {
        return Err(vec![
            "root object must carry a traceEvents array".to_string()
        ]);
    };
    let mut errors = Vec::new();
    let mut spans = 0usize;
    // Last "X" timestamp per (pid, tid) track: the exporter sorts tracks,
    // so a decrease means a torn or mis-merged export.
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let mut fail = |msg: String| errors.push(format!("traceEvents[{i}]: {msg}"));
        if !matches!(ev, Json::Obj(_)) {
            fail("event is not an object".to_string());
            continue;
        }
        if ev.get("name").and_then(Json::as_str).is_none() {
            fail("missing string \"name\"".to_string());
        }
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default();
        if !matches!(ph, "X" | "I" | "M") {
            fail(format!("ph {ph:?} is not one of \"X\", \"I\", \"M\""));
            continue;
        }
        let pid = ev.get("pid").and_then(as_index);
        let tid = ev.get("tid").and_then(as_index);
        if pid.is_none() {
            fail("missing non-negative integer \"pid\"".to_string());
        }
        if tid.is_none() {
            fail("missing non-negative integer \"tid\"".to_string());
        }
        let ts = ev.get("ts").and_then(Json::as_num);
        if ts.is_none() {
            fail("missing numeric \"ts\"".to_string());
        }
        if ph == "X" {
            match ev.get("dur").and_then(Json::as_num) {
                Some(d) if d >= 0.0 => {}
                Some(_) => fail("\"X\" event has negative \"dur\"".to_string()),
                None => fail("\"X\" event missing numeric \"dur\"".to_string()),
            }
            if let (Some(pid), Some(tid), Some(ts)) = (pid, tid, ts) {
                let last = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
                if ts < *last {
                    fail(format!(
                        "track ({pid}, {tid}) timestamps regress: {ts} after {last}"
                    ));
                }
                *last = ts;
                spans += 1;
            }
        }
    }
    if spans < min_spans {
        errors.push(format!(
            "only {spans} \"X\" span(s) found, need at least {min_spans}"
        ));
    }
    if errors.is_empty() {
        Ok(spans)
    } else {
        Err(errors)
    }
}

/// `--trace` mode entry point.
fn trace_main(mut argv: impl Iterator<Item = String>) -> ExitCode {
    let Some(path) = argv.next() else {
        eprintln!("usage: prom_lint --trace PATH [--min-spans N]");
        return ExitCode::FAILURE;
    };
    let mut min_spans = 1usize;
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--min-spans" => {
                i += 1;
                min_spans = rest.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("prom_lint: --min-spans requires an integer");
                    std::process::exit(1);
                });
            }
            other => {
                eprintln!("prom_lint: unknown trace-mode argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("prom_lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match lint_trace(&text, min_spans) {
        Ok(spans) => {
            eprintln!("prom_lint: {path}: OK ({spans} spans)");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("prom_lint: {path}: {e}");
            }
            eprintln!("prom_lint: {path}: {} error(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(path) = argv.next() else {
        eprintln!(
            "usage: prom_lint PATH [REQUIRED_FAMILY…] | prom_lint --trace PATH [--min-spans N]"
        );
        return ExitCode::FAILURE;
    };
    if path == "--trace" {
        return trace_main(argv);
    }
    let required: Vec<String> = argv.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("prom_lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut families: BTreeSet<String> = BTreeSet::new();
    let mut errors = 0usize;
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let result = if line.starts_with('#') {
            lint_comment(line)
        } else {
            lint_sample(line).map(|name| {
                samples += 1;
                // A summary family owns its `_sum` / `_count` series.
                let family = name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or(name);
                families.insert(family.to_string());
                families.insert(name.to_string());
            })
        };
        if let Err(msg) = result {
            eprintln!("prom_lint: {path}:{}: {msg}", i + 1);
            errors += 1;
        }
    }
    if samples == 0 {
        eprintln!("prom_lint: {path}: no samples found");
        errors += 1;
    }
    for family in &required {
        if !families.contains(family) {
            eprintln!("prom_lint: {path}: required family {family:?} is missing");
            errors += 1;
        }
    }
    if errors > 0 {
        eprintln!("prom_lint: {path}: {errors} error(s)");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "prom_lint: {path}: OK ({samples} samples, {} families, {} required present)",
        families.len(),
        required.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_parse() {
        assert_eq!(lint_sample("m_total 3").unwrap(), "m_total");
        assert_eq!(
            lint_sample("m{engine=\"d3-f64\",quantile=\"0.5\"} 12.5").unwrap(),
            "m"
        );
        assert!(lint_sample("m{unterminated 3").is_err());
        assert!(lint_sample("m NaN").is_err());
        assert!(lint_sample("3m 1").is_err());
    }

    #[test]
    fn comments_parse() {
        assert!(lint_comment("# HELP m help text").is_ok());
        assert!(lint_comment("# TYPE m summary").is_ok());
        assert!(lint_comment("# random chatter").is_err());
    }

    #[test]
    fn escaped_label_values() {
        assert!(lint_sample("m{l=\"a\\\"b\"} 1").is_ok());
    }

    #[test]
    fn trace_mode_accepts_a_wellformed_export() {
        let trace = r#"{"displayTimeUnit":"ns","traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"ts":0,
             "args":{"name":"d3-f64-t1"}},
            {"name":"cycle","ph":"X","pid":1,"tid":0,"ts":1.5,"dur":100.25,
             "args":{"arg":0}},
            {"name":"decode","ph":"X","pid":1,"tid":0,"ts":50,"dur":10},
            {"name":"task","ph":"X","pid":1,"tid":2,"ts":3,"dur":7},
            {"name":"alert_firing","ph":"I","pid":1,"tid":0,"ts":60,"s":"t"}
        ]}"#;
        assert_eq!(lint_trace(trace, 3), Ok(3));
        // min-spans floor is enforced.
        assert!(lint_trace(trace, 4).is_err());
    }

    #[test]
    fn trace_mode_rejects_malformed_events() {
        // Not JSON at all.
        assert!(lint_trace("nonsense", 0).is_err());
        // No traceEvents array.
        assert!(lint_trace(r#"{"foo": 1}"#, 0).is_err());
        // Unknown phase.
        let bad_ph = r#"{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0,"ts":0}]}"#;
        assert!(lint_trace(bad_ph, 0).is_err());
        // "X" without dur.
        let no_dur = r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":0}]}"#;
        assert!(lint_trace(no_dur, 0).is_err());
        // Fractional pid.
        let bad_pid = r#"{"traceEvents":[{"name":"x","ph":"X","pid":1.5,"tid":0,"ts":0,"dur":1}]}"#;
        assert!(lint_trace(bad_pid, 0).is_err());
        // Timestamps regress within one track.
        let regress = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":0,"ts":10,"dur":1},
            {"name":"b","ph":"X","pid":1,"tid":0,"ts":5,"dur":1}
        ]}"#;
        assert!(lint_trace(regress, 0).is_err());
        // ...but not across tracks.
        let across = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":1,"tid":0,"ts":10,"dur":1},
            {"name":"b","ph":"X","pid":1,"tid":1,"ts":5,"dur":1}
        ]}"#;
        assert_eq!(lint_trace(across, 0), Ok(2));
    }
}
