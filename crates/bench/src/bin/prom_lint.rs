//! Lints a Prometheus text exposition file.
//!
//! CI observability smoke: `bench_stream --serve-text > metrics.prom` followed
//! by `prom_lint metrics.prom herqles_cycle_latency_ns …` proves the
//! telemetry registry's export both *parses* as the text format and *contains*
//! the metric families the dashboards expect — under every kernel-dispatch
//! arm the workflow runs.
//!
//! Usage: `prom_lint PATH [REQUIRED_FAMILY…]`
//!
//! Checks, all hand-rolled (no regex, no deps):
//!
//! * every non-empty line is a `# HELP`, `# TYPE`, or a sample
//!   `name{labels} value` / `name value`;
//! * metric and label names are `[a-zA-Z_:][a-zA-Z0-9_:]*` (labels without
//!   the colon), label values are double-quoted, sample values parse as
//!   finite `f64`;
//! * every `REQUIRED_FAMILY` argument has at least one sample whose name is
//!   the family or a `_sum`/`_count`-suffixed series of it.
//!
//! Exits 0 on success, 1 with a per-line diagnostic otherwise.

use std::collections::BTreeSet;
use std::process::ExitCode;

/// `true` for a legal metric-name character (`:` allowed per the exposition
/// format; first position must not be a digit — checked by the caller).
fn name_char(c: char, allow_colon: bool) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':')
}

/// Parses a metric/label name prefix of `s`; returns (name, rest) or an
/// error string.
fn parse_name(s: &str, allow_colon: bool) -> Result<(&str, &str), String> {
    let end = s
        .char_indices()
        .find(|&(_, c)| !name_char(c, allow_colon))
        .map_or(s.len(), |(i, _)| i);
    if end == 0 {
        return Err(format!("expected a name at {s:?}"));
    }
    let name = &s[..end];
    if name.starts_with(|c: char| c.is_ascii_digit()) {
        return Err(format!("name {name:?} must not start with a digit"));
    }
    Ok((name, &s[end..]))
}

/// Validates one `{label="value",…}` block; returns the rest after `}`.
fn parse_labels(s: &str) -> Result<&str, String> {
    let mut rest = s.strip_prefix('{').expect("caller saw '{'");
    loop {
        let (_, after_name) = parse_name(rest, false)?;
        rest = after_name
            .strip_prefix("=\"")
            .ok_or_else(|| format!("expected =\"…\" after label name at {rest:?}"))?;
        // Label values may escape `\"`, `\\` and `\n`.
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                None => return Err("unterminated label value".to_string()),
                Some((_, '\\')) => {
                    chars.next(); // skip whatever is escaped
                }
                Some((i, '"')) => break i,
                Some(_) => {}
            }
        };
        rest = &rest[close + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None => {
                return rest
                    .strip_prefix('}')
                    .ok_or_else(|| format!("expected , or }} at {rest:?}"))
            }
        }
    }
}

/// Validates one sample line; returns the metric name on success.
fn lint_sample(line: &str) -> Result<&str, String> {
    let (name, mut rest) = parse_name(line, true)?;
    if rest.starts_with('{') {
        rest = parse_labels(rest)?;
    }
    let value = rest.trim_start();
    if value == rest {
        return Err(format!("expected whitespace before the value at {rest:?}"));
    }
    let v: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("sample value {value:?} is not a number"))?;
    if !v.is_finite() {
        return Err(format!("sample value {value:?} is not finite"));
    }
    Ok(name)
}

/// Validates a `# HELP name text` / `# TYPE name type` comment line.
fn lint_comment(line: &str) -> Result<(), String> {
    let body = line.strip_prefix('#').expect("caller saw '#'").trim_start();
    for keyword in ["HELP", "TYPE"] {
        if let Some(rest) = body.strip_prefix(keyword) {
            let rest = rest.trim_start();
            let (_, after) = parse_name(rest, true)?;
            if !after.starts_with(' ') {
                return Err(format!("# {keyword} needs text after the metric name"));
            }
            return Ok(());
        }
    }
    // Other comments are legal in the format; the exporter never emits them,
    // so flag anything unexpected rather than silently passing it.
    Err(format!(
        "unexpected comment {line:?} (only # HELP / # TYPE)"
    ))
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(path) = argv.next() else {
        eprintln!("usage: prom_lint PATH [REQUIRED_FAMILY…]");
        return ExitCode::FAILURE;
    };
    let required: Vec<String> = argv.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("prom_lint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut families: BTreeSet<String> = BTreeSet::new();
    let mut errors = 0usize;
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let result = if line.starts_with('#') {
            lint_comment(line)
        } else {
            lint_sample(line).map(|name| {
                samples += 1;
                // A summary family owns its `_sum` / `_count` series.
                let family = name
                    .strip_suffix("_sum")
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or(name);
                families.insert(family.to_string());
                families.insert(name.to_string());
            })
        };
        if let Err(msg) = result {
            eprintln!("prom_lint: {path}:{}: {msg}", i + 1);
            errors += 1;
        }
    }
    if samples == 0 {
        eprintln!("prom_lint: {path}: no samples found");
        errors += 1;
    }
    for family in &required {
        if !families.contains(family) {
            eprintln!("prom_lint: {path}: required family {family:?} is missing");
            errors += 1;
        }
    }
    if errors > 0 {
        eprintln!("prom_lint: {path}: {errors} error(s)");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "prom_lint: {path}: OK ({samples} samples, {} families, {} required present)",
        families.len(),
        required.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_parse() {
        assert_eq!(lint_sample("m_total 3").unwrap(), "m_total");
        assert_eq!(
            lint_sample("m{engine=\"d3-f64\",quantile=\"0.5\"} 12.5").unwrap(),
            "m"
        );
        assert!(lint_sample("m{unterminated 3").is_err());
        assert!(lint_sample("m NaN").is_err());
        assert!(lint_sample("3m 1").is_err());
    }

    #[test]
    fn comments_parse() {
        assert!(lint_comment("# HELP m help text").is_ok());
        assert!(lint_comment("# TYPE m summary").is_ok());
        assert!(lint_comment("# random chatter").is_err());
    }

    #[test]
    fn escaped_label_values() {
        assert!(lint_sample("m{l=\"a\\\"b\"} 1").is_ok());
    }
}
