//! Regenerates **Figure 11(a)**: cumulative readout accuracy vs readout
//! duration for the baseline FNN and for `mf-rmf-nn`.
//!
//! The asymmetry is the figure's whole point: `mf-rmf-nn` is trained **once**
//! on the full window and merely evaluated on truncated traces, while the
//! baseline must be **retrained from scratch at every duration** because its
//! input layer is the duration. The baseline is therefore swept at fewer
//! points (it is expensive by construction).
//!
//! Run with `cargo run --release -p herqles-bench --bin fig11a`.

use herqles_bench::{f3, render_table, truncated_dataset, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::duration::evaluate_truncated;
use herqles_core::metrics::evaluate;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let bin_ns = dataset.config.demod_bin_s * 1e9;

    // mf-rmf-nn: train once, sweep every even bin count.
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    eprintln!("[fig11a] training mf-rmf-nn once on the full window…");
    let herqules = trainer.train(DesignKind::MfRmfNn);
    let herq_bins: Vec<usize> = (2..=20).step_by(2).collect();
    let mut herq_points = Vec::new();
    for &bins in &herq_bins {
        let result = evaluate_truncated(herqules.as_ref(), &dataset, &split.test, bins)
            .expect("mf-rmf-nn supports truncation");
        herq_points.push((bins, result.cumulative_accuracy()));
    }

    // Baseline: retrain per duration at a coarser grid.
    let base_bins = [10usize, 15, 20];
    let mut base_points = Vec::new();
    for &bins in &base_bins {
        eprintln!("[fig11a] retraining baseline at {bins} bins…");
        let cut = truncated_dataset(&dataset, bins);
        let mut trainer = ReadoutTrainer::new(&cut, &split.train);
        let disc = trainer.train(DesignKind::BaselineFnn);
        let result = evaluate(disc.as_ref(), &cut, &split.test);
        base_points.push((bins, result.cumulative_accuracy()));
    }

    let mut rows = Vec::new();
    for (bins, acc) in &herq_points {
        rows.push(vec![
            format!("{:.0}", *bins as f64 * bin_ns),
            f3(*acc),
            base_points
                .iter()
                .find(|(b, _)| b == bins)
                .map(|(_, a)| f3(*a))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fig 11a: cumulative accuracy vs readout duration",
            &[
                "Duration (ns)",
                "mf-rmf-nn (no retraining)",
                "baseline (retrained)"
            ],
            &rows,
        )
    );
    if let (Some((_, h20)), Some((_, b20))) = (
        herq_points.iter().find(|(b, _)| *b == 20),
        base_points.iter().find(|(b, _)| *b == 20),
    ) {
        let crossover = herq_points
            .iter()
            .find(|(_, acc)| acc >= b20)
            .map(|(bins, _)| *bins as f64 * bin_ns);
        println!(
            "\nfull-window: mf-rmf-nn {h20:.3} vs baseline {b20:.3}; mf-rmf-nn matches the baseline's full-window accuracy from {} ns",
            crossover.map(|c| format!("{c:.0}")).unwrap_or_else(|| "n/a".into())
        );
    }
}
