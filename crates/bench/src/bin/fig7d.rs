//! Regenerates **Figure 7(d)**: FPGA LUT utilization of the `mf-nn` pipeline
//! vs the `mf-rmf-nn` pipeline — the point being that adding RMFs and
//! doubling the network input costs only a marginal amount of fabric
//! (paper: 7.15 % → 7.79 %).
//!
//! Run with `cargo run --release -p herqles-bench --bin fig7d`.

use fpga_model::{estimate_pipeline, FpgaDevice, PipelineSpec};
use herqles_bench::render_table;

fn main() {
    let device = FpgaDevice::XCZU7EV;
    let mut rows = Vec::new();
    for (label, with_rmf) in [("mf-nn", false), ("mf-rmf-nn", true)] {
        let est = estimate_pipeline(&PipelineSpec::herqules(5, with_rmf, 4));
        let util = est.utilization(&device);
        rows.push(vec![
            label.to_string(),
            est.luts.to_string(),
            format!("{:.2}", util.lut_pct),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fig 7d: LUT utilization, mf-nn vs mf-rmf-nn (xczu7ev, RF 4)",
            &["Design", "LUTs", "LUT util (%)"],
            &rows,
        )
    );
}
