//! Regenerates **Figure 15**: test accuracy of `mf-rmf-nn` vs training-set
//! size — per-qubit accuracies plus cumulative accuracy with and without
//! qubit 2. The paper's observation: accuracy saturates quickly (+0.77 %
//! from ~1.5 k to 9.75 k traces), i.e. the design does not overfit.
//!
//! Run with `cargo run --release -p herqles-bench --bin fig15`.

use herqles_bench::{f3, render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::metrics::evaluate;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();

    let max_train = split.train.len();
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, max_train]
        .into_iter()
        .filter(|&s| s <= max_train)
        .collect();

    let mut rows = Vec::new();
    for &size in &sizes {
        eprintln!("[fig15] training with {size} traces…");
        // Strided sampling keeps the subset stratified across basis states
        // (the split's train indices are grouped by prepared state).
        let subset: Vec<usize> = (0..size)
            .map(|k| split.train[k * split.train.len() / size])
            .collect();
        let mut trainer = ReadoutTrainer::new(&dataset, &subset);
        let disc = trainer.train(DesignKind::MfRmfNn);
        let result = evaluate(disc.as_ref(), &dataset, &split.test);
        let mut row = vec![size.to_string()];
        row.extend(result.per_qubit_accuracy().iter().map(|&a| f3(a)));
        row.push(f3(result.cumulative_accuracy()));
        row.push(f3(result.cumulative_accuracy_excluding(&[1])));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            "Fig 15: mf-rmf-nn accuracy vs training-set size",
            &[
                "train traces",
                "Q1",
                "Q2",
                "Q3",
                "Q4",
                "Q5",
                "all qubits",
                "without Q2"
            ],
            &rows,
        )
    );
}
