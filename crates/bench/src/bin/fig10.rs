//! Regenerates **Figure 10**: ground vs excited misclassification counts per
//! qubit for `mf-nn` and `mf-rmf-nn` — the RMF's effect is concentrated on
//! the excited-state bars.
//!
//! Run with `cargo run --release -p herqles-bench --bin fig10`.

use herqles_bench::{render_table, BenchConfig};
use herqles_core::designs::DesignKind;
use herqles_core::metrics::evaluate;
use herqles_core::trainer::ReadoutTrainer;

fn main() {
    let bench = BenchConfig::from_env();
    let (dataset, split) = bench.standard_dataset();
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);

    let mut rows = Vec::new();
    for kind in [DesignKind::MfNn, DesignKind::MfRmfNn] {
        eprintln!("[fig10] training {kind}…");
        let disc = trainer.train(kind);
        let result = evaluate(disc.as_ref(), &dataset, &split.test);
        for q in 0..dataset.n_qubits() {
            let (ground_err, excited_err) = result.misclassification_counts(q);
            rows.push(vec![
                kind.label().to_string(),
                format!("qubit {}", q + 1),
                ground_err.to_string(),
                excited_err.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Fig 10: misclassification counts (test set)",
            &[
                "Design",
                "Qubit",
                "prepared |0> errors",
                "prepared |1> errors"
            ],
            &rows,
        )
    );
}
