//! Inference-throughput benchmark: per-shot loop vs the fused batched path.
//!
//! Trains every discriminator design once on the five-qubit default chip,
//! then measures shots/second at batch sizes 1, 64, and 1024 through
//!
//! * the **per-shot** loop (`discriminate` per trace — the pre-batching
//!   hot path, allocating per-qubit basebands and features per shot), and
//! * the **batched** path (`discriminate_shot_batch` on a packed
//!   [`ShotBatch`] — fused demod + matched-filter GEMM, zero per-shot
//!   allocation).
//!
//! Results land in `BENCH_inference.json` (cwd) to seed the performance
//! trajectory; the `speedup` field at batch 1024 is the headline number.
//! Every row carries a `precision` field: the full Table 1 sweep runs at
//! `f64`, and the fused-kernel designs (`mf`, `mf-rmf-nn`) are additionally
//! measured at `f32` through the precision-generic batch path — the
//! `f32_vs_f64` field on those rows is the single-precision multiplier over
//! the `f64` batched number at the same batch size.
//!
//! Every row also carries a `kernel` field naming the SIMD microkernel
//! backend it ran on. The sweep runs on the dispatched backend
//! (`HERQLES_KERNEL`, default best-available); when that resolves to a SIMD
//! backend, the fused designs are re-measured at batch 1024 with the scalar
//! reference forced, so the JSON tracks the SIMD multiplier
//! (dispatched-vs-scalar, both precisions) alongside the batching and
//! precision multipliers.
//!
//! Environment overrides: `HERQULES_BENCH_SHOTS` (shots per basis state for
//! the dataset, default 50), `HERQULES_SEED`, `HERQLES_KERNEL`.

use herqles_bench::{env_usize, with_scalar_kernel, JsonReport};
use herqles_core::designs::DesignKind;
use herqles_core::trainer::{ReadoutTrainer, TrainerConfig};
use herqles_core::{Discriminator, PrecisionDiscriminator};
use herqles_num::kernel::active_kernel_name;
use herqles_telemetry::StageTimer;
use readout_nn::net::TrainConfig;
use readout_sim::{ChipConfig, Dataset, ShotBatch};

const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

/// Repeats `f` until ~200 ms of samples accumulate; returns seconds/call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up
    let mut reps = 1u32;
    loop {
        let timer = StageTimer::start();
        for _ in 0..reps {
            f();
        }
        let elapsed = timer.elapsed_secs();
        if elapsed > 0.2 {
            return elapsed / f64::from(reps);
        }
        reps = reps.saturating_mul(if elapsed > 0.0 {
            ((0.25 / elapsed).ceil() as u32).clamp(2, 1 << 16)
        } else {
            16
        });
    }
}

struct Row {
    design: &'static str,
    precision: &'static str,
    /// SIMD microkernel backend the row's GEMMs ran on.
    kernel: &'static str,
    batch: usize,
    per_shot: f64,
    batched: f64,
    /// For f32 rows: multiplier over the f64 batched throughput of the
    /// *same trained instance* on the same traces.
    f32_vs_f64: Option<f64>,
}

/// Concretely-typed fused designs measured through the precision-generic
/// batch path (the Table 1 sweep only hands out `Box<dyn Discriminator>`).
enum Typed {
    Mf(herqles_core::designs::MfDiscriminator),
    Nn(herqles_core::designs::NnDiscriminator),
}

/// One typed-instance measurement at one batch size, on whatever kernel
/// backend is currently selected.
struct TypedTiming {
    per_shot_secs: f64,
    batched64_secs: f64,
    batched32_secs: f64,
}

/// Times `disc` over the shots `idx`: the per-shot f64 loop, the batched
/// f64 path, and the batched f32 path, in seconds per call. Shared by the
/// dispatched-backend sweep and the scalar-reference rows so the
/// measurement protocol cannot drift between them.
fn time_typed(disc: &Typed, dataset: &Dataset, idx: &[usize]) -> TypedTiming {
    let batch64: ShotBatch = ShotBatch::from_dataset(dataset, idx);
    let batch32: ShotBatch<f32> = ShotBatch::from_dataset(dataset, idx);
    let raws: Vec<_> = idx.iter().map(|&i| &dataset.shots[i].raw).collect();
    let per_shot_secs = time_per_call(|| {
        for raw in &raws {
            match disc {
                Typed::Mf(d) => std::hint::black_box(d.discriminate(raw)),
                Typed::Nn(d) => std::hint::black_box(d.discriminate(raw)),
            };
        }
    });
    let batched64_secs = time_per_call(|| match disc {
        Typed::Mf(d) => {
            std::hint::black_box(d.discriminate_shot_batch(&batch64));
        }
        Typed::Nn(d) => {
            std::hint::black_box(d.discriminate_shot_batch(&batch64));
        }
    });
    let mut scratch: Vec<f32> = Vec::new();
    let mut out = Vec::new();
    let batched32_secs = time_per_call(|| match disc {
        Typed::Mf(d) => {
            d.discriminate_shot_batch_r_into(&batch32, &mut scratch, &mut out);
            std::hint::black_box(out.len());
        }
        Typed::Nn(d) => {
            d.discriminate_shot_batch_r_into(&batch32, &mut scratch, &mut out);
            std::hint::black_box(out.len());
        }
    });
    TypedTiming {
        per_shot_secs,
        batched64_secs,
        batched32_secs,
    }
}

/// Progress line for one measured row.
fn log_row(row: &Row) {
    eprintln!(
        "[bench_inference] {:>12}/{}/{} batch {:>5}: per-shot {:>12.0} shots/s, batched {:>12.0} shots/s ({:.2}x)",
        row.design,
        row.precision,
        row.kernel,
        row.batch,
        row.per_shot,
        row.batched,
        row.batched / row.per_shot
    );
}

fn main() {
    let shots_per_state = env_usize("HERQULES_BENCH_SHOTS", 50);
    let seed = env_usize("HERQULES_SEED", 20_230_612) as u64;

    let config = ChipConfig::five_qubit_default();
    eprintln!("[bench_inference] generating {shots_per_state} shots/state…");
    let dataset = Dataset::generate(&config, shots_per_state, seed);
    let split = dataset.split(0.3, 0.0, seed ^ 0x5117);
    assert!(
        split.test.len() >= *BATCH_SIZES.last().expect("non-empty"),
        "need at least {} test shots, have {} (raise HERQULES_BENCH_SHOTS)",
        BATCH_SIZES.last().expect("non-empty"),
        split.test.len()
    );

    let trainer_config = TrainerConfig {
        nn_train: TrainConfig {
            epochs: 30,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 2,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    };
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, trainer_config);

    // The backend HERQLES_KERNEL resolved to; the whole sweep runs on it.
    let dispatched = active_kernel_name();
    eprintln!("[bench_inference] dispatched kernel backend: {dispatched}");

    let mut rows: Vec<Row> = Vec::new();
    for kind in DesignKind::ALL {
        eprintln!("[bench_inference] training {kind}…");
        let disc: Box<dyn Discriminator> = trainer.train(kind);
        for &batch_size in &BATCH_SIZES {
            let idx = &split.test[..batch_size];
            let batch = ShotBatch::from_dataset(&dataset, idx);
            let raws: Vec<_> = idx.iter().map(|&i| &dataset.shots[i].raw).collect();

            let per_shot_secs = time_per_call(|| {
                for raw in &raws {
                    std::hint::black_box(disc.discriminate(raw));
                }
            });
            let batched_secs = time_per_call(|| {
                std::hint::black_box(disc.discriminate_shot_batch(&batch));
            });

            let row = Row {
                design: kind.label(),
                precision: "f64",
                kernel: dispatched,
                batch: batch_size,
                per_shot: batch_size as f64 / per_shot_secs,
                batched: batch_size as f64 / batched_secs,
                f32_vs_f64: None,
            };
            log_row(&row);
            rows.push(row);
        }
    }

    // The f32 instantiation of the precision-generic batch path, on the
    // fused-kernel designs where narrow precision pays: the cheapest design
    // (`mf`) and the flagship (`mf-rmf-nn`). These are fresh typed
    // instances (the sweep above only hands out `Box<dyn Discriminator>`),
    // so the f32-vs-f64 ratio is computed against an f64 batched
    // measurement of the *same instance* — same weights on both sides.
    // Per-shot reference throughput is precision-independent (the per-shot
    // path is f64 by construction).
    let typed: Vec<(&'static str, Typed)> = vec![
        ("mf", Typed::Mf(trainer.train_mf())),
        ("mf-rmf-nn", Typed::Nn(trainer.train_nn(true))),
    ];
    for (label, disc) in &typed {
        for &batch_size in &BATCH_SIZES {
            let t = time_typed(disc, &dataset, &split.test[..batch_size]);
            let row = Row {
                design: label,
                precision: "f32",
                kernel: dispatched,
                batch: batch_size,
                per_shot: batch_size as f64 / t.per_shot_secs,
                batched: batch_size as f64 / t.batched32_secs,
                f32_vs_f64: Some(t.batched64_secs / t.batched32_secs),
            };
            log_row(&row);
            rows.push(row);
        }
    }

    // Scalar-backend reference rows: when the dispatch resolved to a SIMD
    // backend, re-measure the same typed instances at the headline batch
    // size with the scalar reference forced, so the JSON carries the SIMD
    // multiplier (dispatched vs scalar) for both precisions.
    let scalar_rows = with_scalar_kernel(|| {
        let batch_size = *BATCH_SIZES.last().expect("non-empty");
        let mut out = Vec::new();
        for (label, disc) in &typed {
            let t = time_typed(disc, &dataset, &split.test[..batch_size]);
            for (precision, batched_secs, f32_vs_f64) in [
                ("f64", t.batched64_secs, None),
                (
                    "f32",
                    t.batched32_secs,
                    Some(t.batched64_secs / t.batched32_secs),
                ),
            ] {
                let row = Row {
                    design: label,
                    precision,
                    kernel: "scalar",
                    batch: batch_size,
                    per_shot: batch_size as f64 / t.per_shot_secs,
                    batched: batch_size as f64 / batched_secs,
                    f32_vs_f64,
                };
                log_row(&row);
                out.push(row);
            }
        }
        out
    });
    match scalar_rows {
        Some(extra) => rows.extend(extra),
        None => {
            eprintln!(
                "[bench_inference] dispatch resolved to scalar; skipping duplicate scalar rows"
            )
        }
    }

    let mut report = JsonReport::new("inference_throughput", "shots_per_second");
    report.scalar("shots_per_state", shots_per_state);
    for row in &rows {
        let f32_vs_f64 = row
            .f32_vs_f64
            .map(|r| format!(", \"f32_vs_f64\": {r:.3}"))
            .unwrap_or_default();
        report.row(
            "results",
            format!(
                "{{\"design\": \"{}\", \"precision\": \"{}\", \"kernel\": \"{}\", \"batch_size\": {}, \"per_shot\": {:.1}, \"batched\": {:.1}, \"speedup\": {:.3}{}}}",
                row.design,
                row.precision,
                row.kernel,
                row.batch,
                row.per_shot,
                row.batched,
                row.batched / row.per_shot,
                f32_vs_f64,
            ),
        );
    }
    report.write("BENCH_inference.json");

    let mf_1024 = rows
        .iter()
        .find(|r| r.design == "mf" && r.precision == "f64" && r.batch == 1024)
        .expect("mf @ 1024 measured");
    eprintln!(
        "[bench_inference] headline: batched mf at batch 1024 = {:.2}x per-shot",
        mf_1024.batched / mf_1024.per_shot
    );
    let mf32_1024 = rows
        .iter()
        .find(|r| {
            r.design == "mf" && r.precision == "f32" && r.batch == 1024 && r.kernel == dispatched
        })
        .expect("f32 mf @ 1024 measured");
    let ratio = mf32_1024.f32_vs_f64.expect("f32 rows carry the ratio");
    eprintln!(
        "[bench_inference] precision headline: f32 fused-MF batched = {:.2}x the f64 batched number at batch 1024{}",
        ratio,
        if ratio >= 1.3 { "" } else { " (below the 1.3x target!)" }
    );
    if let Some(mf32_scalar) = rows
        .iter()
        .find(|r| {
            r.design == "mf" && r.precision == "f32" && r.batch == 1024 && r.kernel == "scalar"
        })
        .filter(|_| dispatched != "scalar")
    {
        let simd = mf32_1024.batched / mf32_scalar.batched;
        eprintln!(
            "[bench_inference] kernel headline: {dispatched} f32 fused-MF batched = {simd:.2}x \
             the scalar-backend row at batch 1024{}",
            if simd > 1.0 { "" } else { " (no SIMD win!)" }
        );
    }
}
