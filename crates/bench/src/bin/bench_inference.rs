//! Inference-throughput benchmark: per-shot loop vs the fused batched path.
//!
//! Trains every discriminator design once on the five-qubit default chip,
//! then measures shots/second at batch sizes 1, 64, and 1024 through
//!
//! * the **per-shot** loop (`discriminate` per trace — the pre-batching
//!   hot path, allocating per-qubit basebands and features per shot), and
//! * the **batched** path (`discriminate_shot_batch` on a packed
//!   [`ShotBatch`] — fused demod + matched-filter GEMM, zero per-shot
//!   allocation).
//!
//! Results land in `BENCH_inference.json` (cwd) to seed the performance
//! trajectory; the `speedup` field at batch 1024 is the headline number.
//! Every row carries a `precision` field: the full Table 1 sweep runs at
//! `f64`, and the fused-kernel designs (`mf`, `mf-rmf-nn`) are additionally
//! measured at `f32` through the precision-generic batch path — the
//! `f32_vs_f64` field on those rows is the single-precision multiplier over
//! the `f64` batched number at the same batch size.
//!
//! Environment overrides: `HERQULES_BENCH_SHOTS` (shots per basis state for
//! the dataset, default 50), `HERQULES_SEED`.

use std::fmt::Write as _;
use std::time::Instant;

use herqles_core::designs::DesignKind;
use herqles_core::trainer::{ReadoutTrainer, TrainerConfig};
use herqles_core::{Discriminator, PrecisionDiscriminator};
use readout_nn::net::TrainConfig;
use readout_sim::{ChipConfig, Dataset, ShotBatch};

const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

/// Repeats `f` until ~200 ms of samples accumulate; returns seconds/call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up
    let mut reps = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.2 {
            return elapsed / f64::from(reps);
        }
        reps = reps.saturating_mul(if elapsed > 0.0 {
            ((0.25 / elapsed).ceil() as u32).clamp(2, 1 << 16)
        } else {
            16
        });
    }
}

struct Row {
    design: &'static str,
    precision: &'static str,
    batch: usize,
    per_shot: f64,
    batched: f64,
    /// For f32 rows: multiplier over the f64 batched throughput of the
    /// *same trained instance* on the same traces.
    f32_vs_f64: Option<f64>,
}

fn main() {
    let shots_per_state: usize = std::env::var("HERQULES_BENCH_SHOTS")
        .ok()
        .map(|v| v.parse().expect("HERQULES_BENCH_SHOTS must be an integer"))
        .unwrap_or(50);
    let seed: u64 = std::env::var("HERQULES_SEED")
        .ok()
        .map(|v| v.parse().expect("HERQULES_SEED must be an integer"))
        .unwrap_or(20_230_612);

    let config = ChipConfig::five_qubit_default();
    eprintln!("[bench_inference] generating {shots_per_state} shots/state…");
    let dataset = Dataset::generate(&config, shots_per_state, seed);
    let split = dataset.split(0.3, 0.0, seed ^ 0x5117);
    assert!(
        split.test.len() >= *BATCH_SIZES.last().expect("non-empty"),
        "need at least {} test shots, have {} (raise HERQULES_BENCH_SHOTS)",
        BATCH_SIZES.last().expect("non-empty"),
        split.test.len()
    );

    let trainer_config = TrainerConfig {
        nn_train: TrainConfig {
            epochs: 30,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 2,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    };
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, trainer_config);

    let mut rows: Vec<Row> = Vec::new();
    for kind in DesignKind::ALL {
        eprintln!("[bench_inference] training {kind}…");
        let disc: Box<dyn Discriminator> = trainer.train(kind);
        for &batch_size in &BATCH_SIZES {
            let idx = &split.test[..batch_size];
            let batch = ShotBatch::from_dataset(&dataset, idx);
            let raws: Vec<_> = idx.iter().map(|&i| &dataset.shots[i].raw).collect();

            let per_shot_secs = time_per_call(|| {
                for raw in &raws {
                    std::hint::black_box(disc.discriminate(raw));
                }
            });
            let batched_secs = time_per_call(|| {
                std::hint::black_box(disc.discriminate_shot_batch(&batch));
            });

            let row = Row {
                design: kind.label(),
                precision: "f64",
                batch: batch_size,
                per_shot: batch_size as f64 / per_shot_secs,
                batched: batch_size as f64 / batched_secs,
                f32_vs_f64: None,
            };
            eprintln!(
                "[bench_inference] {:>12}/{} batch {:>5}: per-shot {:>12.0} shots/s, batched {:>12.0} shots/s ({:.2}x)",
                row.design,
                row.precision,
                row.batch,
                row.per_shot,
                row.batched,
                row.batched / row.per_shot
            );
            rows.push(row);
        }
    }

    // The f32 instantiation of the precision-generic batch path, on the
    // fused-kernel designs where narrow precision pays: the cheapest design
    // (`mf`) and the flagship (`mf-rmf-nn`). These are fresh typed
    // instances (the sweep above only hands out `Box<dyn Discriminator>`),
    // so the f32-vs-f64 ratio is computed against an f64 batched
    // measurement of the *same instance* — same weights on both sides.
    // Per-shot reference throughput is precision-independent (the per-shot
    // path is f64 by construction).
    enum Typed {
        Mf(herqles_core::designs::MfDiscriminator),
        Nn(herqles_core::designs::NnDiscriminator),
    }
    let typed: Vec<(&'static str, Typed)> = vec![
        ("mf", Typed::Mf(trainer.train_mf())),
        ("mf-rmf-nn", Typed::Nn(trainer.train_nn(true))),
    ];
    for (label, disc) in &typed {
        for &batch_size in &BATCH_SIZES {
            let idx = &split.test[..batch_size];
            let batch64: ShotBatch = ShotBatch::from_dataset(&dataset, idx);
            let batch32: ShotBatch<f32> = ShotBatch::from_dataset(&dataset, idx);
            let raws: Vec<_> = idx.iter().map(|&i| &dataset.shots[i].raw).collect();
            let per_shot_secs = time_per_call(|| {
                for raw in &raws {
                    match disc {
                        Typed::Mf(d) => std::hint::black_box(d.discriminate(raw)),
                        Typed::Nn(d) => std::hint::black_box(d.discriminate(raw)),
                    };
                }
            });
            let batched64_secs = time_per_call(|| match disc {
                Typed::Mf(d) => {
                    std::hint::black_box(d.discriminate_shot_batch(&batch64));
                }
                Typed::Nn(d) => {
                    std::hint::black_box(d.discriminate_shot_batch(&batch64));
                }
            });
            let mut scratch: Vec<f32> = Vec::new();
            let mut out = Vec::new();
            let batched_secs = time_per_call(|| match disc {
                Typed::Mf(d) => {
                    d.discriminate_shot_batch_r_into(&batch32, &mut scratch, &mut out);
                    std::hint::black_box(out.len());
                }
                Typed::Nn(d) => {
                    d.discriminate_shot_batch_r_into(&batch32, &mut scratch, &mut out);
                    std::hint::black_box(out.len());
                }
            });
            let row = Row {
                design: label,
                precision: "f32",
                batch: batch_size,
                per_shot: batch_size as f64 / per_shot_secs,
                batched: batch_size as f64 / batched_secs,
                f32_vs_f64: Some(batched64_secs / batched_secs),
            };
            eprintln!(
                "[bench_inference] {:>12}/{} batch {:>5}: per-shot {:>12.0} shots/s, batched {:>12.0} shots/s ({:.2}x)",
                row.design,
                row.precision,
                row.batch,
                row.per_shot,
                row.batched,
                row.batched / row.per_shot
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"inference_throughput\",\n");
    let _ = writeln!(json, "  \"unit\": \"shots_per_second\",");
    let _ = writeln!(
        json,
        "  \"cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"shots_per_state\": {shots_per_state},");
    let _ = writeln!(json, "  \"results\": [");
    for (k, row) in rows.iter().enumerate() {
        let f32_vs_f64 = row
            .f32_vs_f64
            .map(|r| format!(", \"f32_vs_f64\": {r:.3}"))
            .unwrap_or_default();
        let _ = writeln!(
            json,
            "    {{\"design\": \"{}\", \"precision\": \"{}\", \"batch_size\": {}, \"per_shot\": {:.1}, \"batched\": {:.1}, \"speedup\": {:.3}{}}}{}",
            row.design,
            row.precision,
            row.batch,
            row.per_shot,
            row.batched,
            row.batched / row.per_shot,
            f32_vs_f64,
            if k + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_inference.json", &json).expect("write BENCH_inference.json");
    eprintln!("[bench_inference] wrote BENCH_inference.json");

    let mf_1024 = rows
        .iter()
        .find(|r| r.design == "mf" && r.precision == "f64" && r.batch == 1024)
        .expect("mf @ 1024 measured");
    eprintln!(
        "[bench_inference] headline: batched mf at batch 1024 = {:.2}x per-shot",
        mf_1024.batched / mf_1024.per_shot
    );
    let mf32_1024 = rows
        .iter()
        .find(|r| r.design == "mf" && r.precision == "f32" && r.batch == 1024)
        .expect("f32 mf @ 1024 measured");
    let ratio = mf32_1024.f32_vs_f64.expect("f32 rows carry the ratio");
    eprintln!(
        "[bench_inference] precision headline: f32 fused-MF batched = {:.2}x the f64 batched number at batch 1024{}",
        ratio,
        if ratio >= 1.3 { "" } else { " (below the 1.3x target!)" }
    );
}
