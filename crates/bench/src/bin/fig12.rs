//! Regenerates **Figure 12**: normalized fidelity of NISQ benchmarks when the
//! per-qubit readout error improves from the baseline discriminator's
//! cumulative accuracy to HERQULES's (gate noise held at IBM-Hanoi-like
//! levels).
//!
//! Paper reference: mean normalized fidelity 1.118, max 1.322 (bv-20); all
//! benchmarks ≥ 1.03.
//!
//! Env overrides: `HERQULES_F5Q_BASE` / `HERQULES_F5Q_HERQ` set the two
//! cumulative accuracies (defaults: the paper's 0.9122 and 0.9266, which our
//! Table 1 reproduction matches to within half a point).
//!
//! Run with `cargo run --release -p herqles-bench --bin fig12`.

use herqles_bench::render_table;
use nisq_sim::benchmarks::{alternating_secret, bernstein_vazirani, ghz, qaoa_ring, qft_roundtrip};
use nisq_sim::fidelity::{success_probability, tvd_fidelity};
use nisq_sim::sim::{counts_to_distribution, run_ideal, run_noisy};
use nisq_sim::{Circuit, NoiseModel};

/// Success metric per benchmark family.
enum Metric {
    /// Probability of the given target outcome.
    Success(u64),
    /// `1 − TVD` against the ideal distribution.
    Tvd,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().expect("env override must be a float"))
        .unwrap_or(default)
}

fn fidelity(
    circuit: &Circuit,
    metric: &Metric,
    readout_error: f64,
    shots: usize,
    seed: u64,
) -> f64 {
    let noise = NoiseModel::ibm_hanoi_like(readout_error);
    let counts = run_noisy(circuit, &noise, shots, seed);
    match metric {
        Metric::Success(target) => success_probability(&counts, *target),
        Metric::Tvd => {
            let ideal = run_ideal(circuit).probabilities();
            let measured = counts_to_distribution(&counts, circuit.n_qubits());
            tvd_fidelity(&ideal, &measured)
        }
    }
}

fn main() {
    let f5q_base = env_f64("HERQULES_F5Q_BASE", 0.9122);
    let f5q_herq = env_f64("HERQULES_F5Q_HERQ", 0.9266);
    let err_base = 1.0 - f5q_base;
    let err_herq = 1.0 - f5q_herq;

    let benchmarks: Vec<(&str, Circuit, Metric, usize)> = vec![
        ("qft-4", qft_roundtrip(4), Metric::Success(0), 4000),
        ("ghz-5", ghz(5), Metric::Tvd, 4000),
        ("ghz-10", ghz(10), Metric::Tvd, 2000),
        (
            "bv-5",
            bernstein_vazirani(5, alternating_secret(5)),
            Metric::Success(alternating_secret(5)),
            4000,
        ),
        (
            "bv-10",
            bernstein_vazirani(10, alternating_secret(10)),
            Metric::Success(alternating_secret(10)),
            2000,
        ),
        (
            "bv-15",
            bernstein_vazirani(15, alternating_secret(15)),
            Metric::Success(alternating_secret(15)),
            800,
        ),
        (
            "bv-20",
            bernstein_vazirani(20, alternating_secret(20)),
            Metric::Success(alternating_secret(20)),
            400,
        ),
        ("qaoa-8a", qaoa_ring(8, 0.7, 0.35), Metric::Tvd, 3000),
        ("qaoa-8b", qaoa_ring(8, 0.4, 0.62), Metric::Tvd, 3000),
        ("qaoa-10", qaoa_ring(10, 0.7, 0.35), Metric::Tvd, 2000),
    ];

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (name, circuit, metric, shots) in &benchmarks {
        eprintln!("[fig12] running {name} ({shots} shots per error level)…");
        let f_base = fidelity(circuit, metric, err_base, *shots, 11);
        let f_herq = fidelity(circuit, metric, err_herq, *shots, 12);
        let ratio = f_herq / f_base;
        ratios.push(ratio);
        rows.push(vec![
            (*name).to_string(),
            format!("{f_base:.3}"),
            format!("{f_herq:.3}"),
            format!("{ratio:.3}"),
        ]);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    rows.push(vec![
        "mean".to_string(),
        String::new(),
        String::new(),
        format!("{mean:.3}"),
    ]);
    println!(
        "{}",
        render_table(
            "Fig 12: benchmark fidelity, baseline readout vs HERQULES readout",
            &["Benchmark", "baseline fid.", "herqules fid.", "normalized"],
            &rows,
        )
    );
}
