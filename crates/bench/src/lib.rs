//! Shared harness utilities for the table/figure regenerator binaries.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/`
//! (`table1` … `table5`, `fig4` … `fig15`); this library holds the pieces
//! they share: dataset sizing (overridable through environment variables so
//! CI can run small and a workstation can run close to paper scale), the
//! train/val/test split, and plain-text table rendering.
//!
//! | env var | meaning | default |
//! |---|---|---|
//! | `HERQULES_SHOTS` | shots generated per basis state | 1200 |
//! | `HERQULES_SEED` | master RNG seed | 20230612 |
//!
//! The paper uses 50 000 shots per state with a 19.5 / 10.5 / 70 split;
//! the defaults keep the same split ratios at reduced volume so every
//! regenerator finishes in minutes on a laptop.

use std::fmt::Write as _;

use herqles_num::kernel::{active_kernel_name, select_kernel, KernelBackend};
use herqles_telemetry::StageTimer;
use readout_sim::dataset::DatasetSplit;
use readout_sim::{ChipConfig, Dataset};

/// Dataset sizing for a regenerator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Shots generated per basis state (paper: 50 000).
    pub shots_per_state: usize,
    /// Master seed for generation and splitting.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            shots_per_state: 1200,
            seed: 20_230_612,
        }
    }
}

impl BenchConfig {
    /// Reads overrides from `HERQULES_SHOTS` / `HERQULES_SEED`.
    ///
    /// # Panics
    ///
    /// Panics if an override is set but unparsable, or shots is zero — a
    /// silently ignored override would invalidate a recorded experiment.
    pub fn from_env() -> Self {
        let mut cfg = BenchConfig::default();
        if let Ok(v) = std::env::var("HERQULES_SHOTS") {
            cfg.shots_per_state = v
                .parse()
                .expect("HERQULES_SHOTS must be a positive integer");
            assert!(cfg.shots_per_state > 0, "HERQULES_SHOTS must be positive");
        }
        if let Ok(v) = std::env::var("HERQULES_SEED") {
            cfg.seed = v.parse().expect("HERQULES_SEED must be an integer");
        }
        cfg
    }

    /// Generates the five-qubit dataset and the paper-ratio split
    /// (19.5 % train / 10.5 % val / 70 % test).
    pub fn standard_dataset(&self) -> (Dataset, DatasetSplit) {
        let config = ChipConfig::five_qubit_default();
        let t = StageTimer::start();
        let dataset = Dataset::generate(&config, self.shots_per_state, self.seed);
        eprintln!(
            "[harness] generated {} shots ({} per state) in {:.2} s",
            dataset.shots.len(),
            self.shots_per_state,
            t.elapsed_secs()
        );
        let split = dataset.split(0.195, 0.105, self.seed ^ 0x5117);
        (dataset, split)
    }
}

/// Reads a `usize` environment override, panicking on an unparsable value —
/// a silently ignored override would invalidate a recorded experiment.
///
/// # Panics
///
/// Panics if the variable is set but does not parse as an integer.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} must be an integer"))
        })
        .unwrap_or(default)
}

/// Runs `f` with the scalar microkernel backend forced, restoring the
/// dispatched backend afterwards. Returns `None` (without running `f`) when
/// the dispatch already resolved to scalar — the caller's dispatched rows
/// are the scalar rows and a duplicate measurement would be misleading.
///
/// Both benchmark binaries use this to append scalar-reference rows next to
/// their SIMD rows; centralizing the select/restore dance keeps them from
/// drifting (e.g. one binary forgetting to restore).
pub fn with_scalar_kernel<T>(f: impl FnOnce() -> T) -> Option<T> {
    let dispatched = active_kernel_name();
    if dispatched == "scalar" {
        return None;
    }
    select_kernel(KernelBackend::Scalar).expect("scalar is always selectable");
    let out = f();
    select_kernel(KernelBackend::parse(dispatched).expect("dispatched name parses"))
        .expect("restoring the dispatched backend");
    Some(out)
}

/// Incremental builder for the `BENCH_*.json` documents.
///
/// Both benchmark binaries emit the same envelope — `benchmark` / `unit` /
/// `cores` header fields, optional run parameters, then one or more arrays
/// of pre-formatted row objects — and previously each hand-rolled the
/// comma-placement and indentation. The builder owns that envelope; callers
/// keep formatting their own row objects (the schemas genuinely differ).
///
/// Sections render in insertion order; `results` is a section like any
/// other, so optional arrays (e.g. `drift`) can precede it.
#[derive(Debug, Clone)]
pub struct JsonReport {
    head: String,
    sections: Vec<(&'static str, Vec<String>)>,
}

impl JsonReport {
    /// Starts a report with the standard header: `benchmark`, `unit`, and
    /// the machine's core count.
    pub fn new(benchmark: &str, unit: &str) -> Self {
        let mut head = String::new();
        let _ = writeln!(head, "  \"benchmark\": \"{benchmark}\",");
        let _ = writeln!(head, "  \"unit\": \"{unit}\",");
        let _ = writeln!(
            head,
            "  \"cores\": {},",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
        JsonReport {
            head,
            sections: Vec::new(),
        }
    }

    /// Appends a top-level scalar field (rendered with `Display`, so quote
    /// strings at the call site if needed).
    pub fn scalar(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        let _ = writeln!(self.head, "  \"{key}\": {value},");
        self
    }

    /// Appends one pre-formatted row object (no indentation, no trailing
    /// comma — the builder adds both) to the named array section, creating
    /// the section on first use.
    pub fn row(&mut self, section: &'static str, row: String) -> &mut Self {
        match self.sections.iter_mut().find(|(name, _)| *name == section) {
            Some((_, rows)) => rows.push(row),
            None => self.sections.push((section, vec![row])),
        }
        self
    }

    /// Renders the document.
    ///
    /// # Panics
    ///
    /// Panics if no section was added — an empty report is a harness bug.
    pub fn render(&self) -> String {
        assert!(!self.sections.is_empty(), "report has no row sections");
        let mut out = String::from("{\n");
        out.push_str(&self.head);
        for (k, (name, rows)) in self.sections.iter().enumerate() {
            let _ = writeln!(out, "  \"{name}\": [");
            for (j, row) in rows.iter().enumerate() {
                let comma = if j + 1 < rows.len() { "," } else { "" };
                let _ = writeln!(out, "    {row}{comma}");
            }
            let comma = if k + 1 < self.sections.len() { "," } else { "" };
            let _ = writeln!(out, "  ]{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Renders and writes the document to `path`, logging the write.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[bench] wrote {path}");
    }
}

/// Returns a copy of the dataset truncated to the first `bins` demodulation
/// bins (raw traces cut to `bins × samples_per_bin` samples, window length
/// adjusted). Used to *retrain* duration-dependent designs like the baseline
/// FNN at shorter readout windows (Fig. 11a), which is exactly the retraining
/// HERQULES avoids.
///
/// # Panics
///
/// Panics if `bins` is zero or exceeds the configured window.
pub fn truncated_dataset(dataset: &Dataset, bins: usize) -> Dataset {
    assert!(
        bins > 0 && bins <= dataset.config.n_bins(),
        "bins out of range"
    );
    let mut config = dataset.config.clone();
    config.readout_duration_s = bins as f64 * config.demod_bin_s;
    let samples = config.n_samples();
    let shots = dataset
        .shots
        .iter()
        .map(|s| readout_sim::Shot {
            prepared: s.prepared,
            raw: s.raw.truncated(samples),
            truth: s.truth.clone(),
        })
        .collect();
    Dataset { config, shots }
}

/// Renders a plain-text table with aligned columns.
///
/// # Panics
///
/// Panics if any row width differs from the header width.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match header");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 decimals (accuracy-table convention).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 4 decimals (cross-fidelity convention).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_documented_values() {
        let c = BenchConfig::default();
        assert_eq!(c.shots_per_state, 1200);
        assert_eq!(c.seed, 20_230_612);
    }

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table("T", &["a", "long-header"], &[vec!["xx".into(), "1".into()]]);
        assert!(out.contains("long-header"));
        assert!(out.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let _ = render_table("T", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.92659), "0.927");
        assert_eq!(f4(0.00312), "0.0031");
    }

    #[test]
    fn json_report_renders_valid_envelope() {
        let mut rep = JsonReport::new("demo", "widgets_per_second");
        rep.scalar("shots_per_state", 12);
        rep.row("drift", "{\"a\": 1}".to_string());
        rep.row("results", "{\"b\": 2}".to_string());
        rep.row("results", "{\"b\": 3}".to_string());
        let out = rep.render();
        assert!(out.starts_with("{\n  \"benchmark\": \"demo\",\n"));
        assert!(out.contains("\"unit\": \"widgets_per_second\""));
        assert!(out.contains("\"shots_per_state\": 12,"));
        // Sections render in insertion order, rows comma-joined, the last
        // section unterminated.
        let drift = out.find("\"drift\": [").expect("drift section");
        let results = out.find("\"results\": [").expect("results section");
        assert!(drift < results);
        assert!(out.contains("    {\"b\": 2},\n    {\"b\": 3}\n  ]\n}\n"));
        assert!(out.contains("  ],\n"), "non-final section keeps its comma");
        // Structural sanity: balanced braces/brackets (rows are opaque, but
        // the envelope must not unbalance them).
        let count = |c: char| out.chars().filter(|&x| x == c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }

    #[test]
    #[should_panic(expected = "no row sections")]
    fn empty_json_report_panics() {
        let _ = JsonReport::new("demo", "u").render();
    }

    #[test]
    fn env_usize_reads_default_when_unset() {
        assert_eq!(env_usize("HERQULES_BENCH_SURELY_UNSET_VAR", 7), 7);
    }

    #[test]
    fn with_scalar_kernel_restores_dispatch() {
        use herqles_num::kernel::active_kernel_name;
        let before = active_kernel_name();
        let ran = with_scalar_kernel(|| {
            assert_eq!(active_kernel_name(), "scalar");
            42
        });
        assert_eq!(active_kernel_name(), before);
        // On a scalar-only dispatch the closure must not run; on a SIMD
        // dispatch it must return the closure's value.
        match ran {
            Some(v) => {
                assert_eq!(v, 42);
                assert_ne!(before, "scalar");
            }
            None => assert_eq!(before, "scalar"),
        }
    }
}
