//! Shared harness utilities for the table/figure regenerator binaries.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/`
//! (`table1` … `table5`, `fig4` … `fig15`); this library holds the pieces
//! they share: dataset sizing (overridable through environment variables so
//! CI can run small and a workstation can run close to paper scale), the
//! train/val/test split, and plain-text table rendering.
//!
//! | env var | meaning | default |
//! |---|---|---|
//! | `HERQULES_SHOTS` | shots generated per basis state | 1200 |
//! | `HERQULES_SEED` | master RNG seed | 20230612 |
//!
//! The paper uses 50 000 shots per state with a 19.5 / 10.5 / 70 split;
//! the defaults keep the same split ratios at reduced volume so every
//! regenerator finishes in minutes on a laptop.

use herqles_telemetry::StageTimer;
use readout_sim::dataset::DatasetSplit;
use readout_sim::{ChipConfig, Dataset};

/// Dataset sizing for a regenerator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Shots generated per basis state (paper: 50 000).
    pub shots_per_state: usize,
    /// Master seed for generation and splitting.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            shots_per_state: 1200,
            seed: 20_230_612,
        }
    }
}

impl BenchConfig {
    /// Reads overrides from `HERQULES_SHOTS` / `HERQULES_SEED`.
    ///
    /// # Panics
    ///
    /// Panics if an override is set but unparsable, or shots is zero — a
    /// silently ignored override would invalidate a recorded experiment.
    pub fn from_env() -> Self {
        let mut cfg = BenchConfig::default();
        if let Ok(v) = std::env::var("HERQULES_SHOTS") {
            cfg.shots_per_state = v
                .parse()
                .expect("HERQULES_SHOTS must be a positive integer");
            assert!(cfg.shots_per_state > 0, "HERQULES_SHOTS must be positive");
        }
        if let Ok(v) = std::env::var("HERQULES_SEED") {
            cfg.seed = v.parse().expect("HERQULES_SEED must be an integer");
        }
        cfg
    }

    /// Generates the five-qubit dataset and the paper-ratio split
    /// (19.5 % train / 10.5 % val / 70 % test).
    pub fn standard_dataset(&self) -> (Dataset, DatasetSplit) {
        let config = ChipConfig::five_qubit_default();
        let t = StageTimer::start();
        let dataset = Dataset::generate(&config, self.shots_per_state, self.seed);
        eprintln!(
            "[harness] generated {} shots ({} per state) in {:.2} s",
            dataset.shots.len(),
            self.shots_per_state,
            t.elapsed_secs()
        );
        let split = dataset.split(0.195, 0.105, self.seed ^ 0x5117);
        (dataset, split)
    }
}

/// Returns a copy of the dataset truncated to the first `bins` demodulation
/// bins (raw traces cut to `bins × samples_per_bin` samples, window length
/// adjusted). Used to *retrain* duration-dependent designs like the baseline
/// FNN at shorter readout windows (Fig. 11a), which is exactly the retraining
/// HERQULES avoids.
///
/// # Panics
///
/// Panics if `bins` is zero or exceeds the configured window.
pub fn truncated_dataset(dataset: &Dataset, bins: usize) -> Dataset {
    assert!(
        bins > 0 && bins <= dataset.config.n_bins(),
        "bins out of range"
    );
    let mut config = dataset.config.clone();
    config.readout_duration_s = bins as f64 * config.demod_bin_s;
    let samples = config.n_samples();
    let shots = dataset
        .shots
        .iter()
        .map(|s| readout_sim::Shot {
            prepared: s.prepared,
            raw: s.raw.truncated(samples),
            truth: s.truth.clone(),
        })
        .collect();
    Dataset { config, shots }
}

/// Renders a plain-text table with aligned columns.
///
/// # Panics
///
/// Panics if any row width differs from the header width.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match header");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 decimals (accuracy-table convention).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 4 decimals (cross-fidelity convention).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_documented_values() {
        let c = BenchConfig::default();
        assert_eq!(c.shots_per_state, 1200);
        assert_eq!(c.seed, 20_230_612);
    }

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table("T", &["a", "long-header"], &[vec!["xx".into(), "1".into()]]);
        assert!(out.contains("long-header"));
        assert!(out.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let _ = render_table("T", &["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.92659), "0.927");
        assert_eq!(f4(0.00312), "0.0031");
    }
}
