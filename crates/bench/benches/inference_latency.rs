//! Criterion counterpart of Table 4: software inference latency of the
//! discriminator designs, per shot.
//!
//! The hardware latency gap (8–21 vs 924–4023 cycles) is modelled
//! analytically in `fpga-model`; this bench demonstrates the same structural
//! gap in software — the HERQULES path (demodulate, 10 filter dot products,
//! tiny FNN) vs the baseline's 633 k-parameter forward pass — plus the
//! fixed-point (FPGA datapath) variant.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use herqles_core::designs::DesignKind;
use herqles_core::trainer::{ReadoutTrainer, TrainerConfig};
use readout_nn::net::TrainConfig;
use readout_nn::{QuantConfig, QuantizedMlp};
use readout_sim::{ChipConfig, Dataset};

fn quick_config() -> TrainerConfig {
    TrainerConfig {
        nn_train: TrainConfig {
            epochs: 20,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 2,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    }
}

fn bench_inference(c: &mut Criterion) {
    let config = ChipConfig::five_qubit_default();
    let dataset = Dataset::generate(&config, 40, 99);
    let split = dataset.split(0.5, 0.0, 1);
    let mut trainer = ReadoutTrainer::with_config(&dataset, &split.train, quick_config());

    let shot = &dataset.shots[split.test[0]];
    let mut group = c.benchmark_group("inference_per_shot");

    let herqules = trainer.train(DesignKind::MfRmfNn);
    group.bench_function("mf-rmf-nn", |b| {
        b.iter(|| black_box(herqules.discriminate(black_box(&shot.raw))))
    });

    let mf = trainer.train(DesignKind::Mf);
    group.bench_function("mf", |b| {
        b.iter(|| black_box(mf.discriminate(black_box(&shot.raw))))
    });

    let baseline = trainer.train(DesignKind::BaselineFnn);
    group.bench_function("baseline-fnn", |b| {
        b.iter(|| black_box(baseline.discriminate(black_box(&shot.raw))))
    });
    group.finish();
}

fn bench_quantized_head(c: &mut Criterion) {
    // The NN head alone, float vs fixed point (the FPGA datapath mirror).
    let mut net = readout_nn::Mlp::new(&[10, 20, 40, 20, 32], 5);
    let inputs: Vec<Vec<f64>> = (0..64)
        .map(|k| {
            (0..10)
                .map(|j| ((k * 7 + j * 3) % 13) as f64 / 13.0 - 0.5)
                .collect()
        })
        .collect();
    let labels: Vec<usize> = (0..64).map(|k| k % 32).collect();
    net.train(
        &inputs,
        &labels,
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let qnet = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
    let x = &inputs[0];

    let mut group = c.benchmark_group("nn_head");
    group.bench_function("float64", |b| {
        b.iter(|| black_box(net.predict(black_box(x))))
    });
    group.bench_function("fixed16", |b| {
        b.iter(|| black_box(qnet.predict(black_box(x))))
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_quantized_head);
criterion_main!(benches);
