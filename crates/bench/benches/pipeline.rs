//! Throughput of the substrate stages: trace generation, demodulation,
//! surface-code decoding, and noisy circuit simulation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use nisq_sim::benchmarks::ghz;
use nisq_sim::{run_noisy, NoiseModel};
use readout_dsp::Demodulator;
use readout_sim::{ChipConfig, Dataset};
use surface_code::syndrome::NoiseParams;
use surface_code::{decode_block, RotatedSurfaceCode, SyndromeBlock};

fn bench_generation(c: &mut Criterion) {
    let config = ChipConfig::five_qubit_default();
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(32));
    group.bench_function("one_shot_per_state", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(Dataset::generate(&config, 1, seed))
        })
    });
    group.finish();
}

fn bench_demodulation(c: &mut Criterion) {
    let config = ChipConfig::five_qubit_default();
    let dataset = Dataset::generate(&config, 1, 3);
    let demod = Demodulator::new(&config);
    c.bench_function("demodulate_5q_shot", |b| {
        b.iter(|| black_box(demod.demodulate(black_box(&dataset.shots[0].raw))))
    });
}

fn bench_qec_block(c: &mut Criterion) {
    let code = RotatedSurfaceCode::new(7);
    let noise = NoiseParams {
        data_error_prob: 0.004,
        meas_error_prob: 0.01,
    };
    c.bench_function("surface_d7_block_decode", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let block = SyndromeBlock::simulate_seeded(&code, &noise, 7, seed);
            black_box(decode_block(&code, &block))
        })
    });
}

fn bench_nisq_shots(c: &mut Criterion) {
    let circuit = ghz(10);
    let noise = NoiseModel::ibm_hanoi_like(0.05);
    let mut group = c.benchmark_group("nisq");
    group.throughput(Throughput::Elements(100));
    group.bench_function("ghz10_100shots", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_noisy(&circuit, &noise, 100, seed))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_demodulation,
    bench_qec_block,
    bench_nisq_shots
);
criterion_main!(benches);
