//! Criterion counterpart of Table 5: training cost per design on a reduced
//! dataset. Demonstrates the training-time ordering (mf ≪ mf-nn <
//! mf-rmf-nn ≪ baseline) at bench-friendly scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use herqles_core::designs::DesignKind;
use herqles_core::trainer::{ReadoutTrainer, TrainerConfig};
use readout_nn::net::TrainConfig;
use readout_sim::{ChipConfig, Dataset};

fn quick_config() -> TrainerConfig {
    TrainerConfig {
        nn_train: TrainConfig {
            epochs: 10,
            ..TrainerConfig::default().nn_train
        },
        baseline_train: TrainConfig {
            epochs: 1,
            ..TrainerConfig::default().baseline_train
        },
        ..TrainerConfig::default()
    }
}

fn bench_training(c: &mut Criterion) {
    let config = ChipConfig::five_qubit_default();
    let dataset = Dataset::generate(&config, 30, 7);
    let split = dataset.split(0.5, 0.0, 1);

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    for kind in [DesignKind::Mf, DesignKind::MfNn, DesignKind::MfRmfNn] {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || ReadoutTrainer::with_config(&dataset, &split.train, quick_config()),
                |mut trainer| black_box(trainer.train(kind)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_matched_filter_training(c: &mut Criterion) {
    let config = ChipConfig::five_qubit_default();
    let dataset = Dataset::generate(&config, 30, 9);
    let split = dataset.split(0.5, 0.0, 1);

    c.bench_function("matched_filters_5q", |b| {
        b.iter_batched(
            || ReadoutTrainer::new(&dataset, &split.train),
            |mut trainer| {
                trainer.matched_filters();
                black_box(trainer)
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_training, bench_matched_filter_training);
criterion_main!(benches);
