//! Property-based tests of the DSP invariants.

use proptest::prelude::*;
use readout_dsp::filters::MatchedFilter;
use readout_dsp::{boxcar_filter, Demodulator};
use readout_sim::trace::{IqPoint, IqTrace};
use readout_sim::ChipConfig;

fn vecs(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_output_is_additive(
        env in vecs(8),
        a_i in vecs(8),
        b_i in vecs(8),
    ) {
        // MF(a + b) = MF(a) + MF(b): the filter is a linear functional.
        let mf = MatchedFilter::from_envelope(IqTrace::new(env, vec![0.0; 8]));
        let a = IqTrace::new(a_i.clone(), vec![0.0; 8]);
        let b = IqTrace::new(b_i.clone(), vec![0.0; 8]);
        let sum = IqTrace::new(
            a_i.iter().zip(&b_i).map(|(x, y)| x + y).collect(),
            vec![0.0; 8],
        );
        let lhs = mf.apply(&sum);
        let rhs = mf.apply(&a) + mf.apply(&b);
        prop_assert!((lhs - rhs).abs() < 1e-7);
    }

    #[test]
    fn trained_filter_separates_its_training_means(
        sep in 0.5..5.0f64,
        len in 2usize..16,
    ) {
        // Noise-free classes at ±sep/2: the trained envelope must give the
        // positive class the larger output.
        let a = IqTrace::new(vec![sep / 2.0; len], vec![0.0; len]);
        let b = IqTrace::new(vec![-sep / 2.0; len], vec![0.0; len]);
        let mf = MatchedFilter::train(&[&a], &[&b]).unwrap();
        prop_assert!(mf.apply(&a) > mf.apply(&b));
    }

    #[test]
    fn boxcar_preserves_the_mean(xs in vecs(20), w in 1usize..8) {
        // A trailing moving average redistributes but cannot invent signal:
        // for constant inputs it is exact; in general the output mean stays
        // within the input range (checked) and window 1 is identity.
        let tr = IqTrace::new(xs.clone(), vec![0.0; 20]);
        let out = boxcar_filter(&tr, w);
        prop_assert_eq!(out.len(), tr.len());
        if w == 1 {
            // Identity up to the rolling accumulator's rounding.
            for (o, x) in out.i().iter().zip(tr.i()) {
                prop_assert!((o - x).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn demodulation_is_linear_in_the_waveform(
        i0 in -2.0..2.0f64, q0 in -2.0..2.0f64,
        k in -3.0..3.0f64,
    ) {
        // Demod(k · raw) = k · Demod(raw).
        use rand::SeedableRng;
        use readout_sim::multiplex::{synthesize, CarrierTable};
        use readout_sim::noise::GaussianNoise;

        let cfg = ChipConfig::two_qubit_test();
        let carriers = CarrierTable::new(&cfg);
        let bb = vec![
            vec![IqPoint::new(i0, q0); cfg.n_samples()],
            vec![IqPoint::ZERO; cfg.n_samples()],
        ];
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let raw = synthesize(&carriers, &bb, &mut noise, &mut rng);
        let scaled = IqTrace::new(
            raw.i().iter().map(|x| k * x).collect(),
            raw.q().iter().map(|x| k * x).collect(),
        );
        let demod = Demodulator::new(&cfg);
        let d1 = demod.demodulate_qubit(&raw, 0);
        let d2 = demod.demodulate_qubit(&scaled, 0);
        for t in 0..d1.len() {
            prop_assert!((d2.sample(t).i - k * d1.sample(t).i).abs() < 1e-9);
            prop_assert!((d2.sample(t).q - k * d1.sample(t).q).abs() < 1e-9);
        }
    }
}
