//! Digital downconversion of the multiplexed readout signal.
//!
//! Each qubit's baseband trace is recovered by multiplying the raw complex
//! ADC signal by the conjugate of that qubit's carrier and averaging over
//! consecutive bins (paper §2.2: "multiplying the frequency-multiplexed
//! readout signal with an oscillating signal at a frequency specific to the
//! readout resonator. The result is then averaged over intervals of 50ns").
//!
//! With the default chip, intermediate frequencies are multiples of the bin
//! rate, so each bin contains an integer number of carrier cycles and the
//! other qubits' tones integrate to zero — residual crosstalk in the
//! demodulated traces is the *dispersive* crosstalk injected at the baseband
//! level, not spectral leakage.

use readout_sim::config::ChipConfig;
use readout_sim::multiplex::CarrierTable;
use readout_sim::trace::IqTrace;

/// Demodulates raw feedline waveforms into per-qubit baseband traces.
#[derive(Debug, Clone)]
pub struct Demodulator {
    carriers: CarrierTable,
    n_qubits: usize,
    n_samples: usize,
    samples_per_bin: usize,
}

impl Demodulator {
    /// Builds a demodulator for a chip configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`].
    pub fn new(config: &ChipConfig) -> Self {
        config.validate().expect("invalid chip configuration");
        Demodulator {
            carriers: CarrierTable::new(config),
            n_qubits: config.n_qubits(),
            n_samples: config.n_samples(),
            samples_per_bin: config.samples_per_bin(),
        }
    }

    /// Number of bins produced for a full-length raw trace.
    pub fn n_bins(&self) -> usize {
        self.n_samples / self.samples_per_bin
    }

    /// Demodulates the trace of a single qubit.
    ///
    /// Trailing samples that do not fill a complete bin are discarded, so a
    /// truncated raw trace yields a proportionally truncated baseband trace.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or the raw trace is longer than the
    /// configured readout window.
    pub fn demodulate_qubit(&self, raw: &IqTrace, qubit: usize) -> IqTrace {
        assert!(qubit < self.n_qubits, "qubit index out of range");
        assert!(
            raw.len() <= self.n_samples,
            "raw trace longer than the configured readout window"
        );
        let n_bins = raw.len() / self.samples_per_bin;
        let mut i_out = Vec::with_capacity(n_bins);
        let mut q_out = Vec::with_capacity(n_bins);
        let ri = raw.i();
        let rq = raw.q();
        for bin in 0..n_bins {
            let start = bin * self.samples_per_bin;
            let mut acc_i = 0.0;
            let mut acc_q = 0.0;
            for t in start..start + self.samples_per_bin {
                let (c, s) = self.carriers.phasor(qubit, t);
                // (ri + i rq) · (c − i s): conjugate carrier mixing.
                acc_i += ri[t] * c + rq[t] * s;
                acc_q += rq[t] * c - ri[t] * s;
            }
            let norm = 1.0 / self.samples_per_bin as f64;
            i_out.push(acc_i * norm);
            q_out.push(acc_q * norm);
        }
        IqTrace::new(i_out, q_out)
    }

    /// Demodulates all qubits, returning one baseband trace per qubit.
    pub fn demodulate(&self, raw: &IqTrace) -> Vec<IqTrace> {
        (0..self.n_qubits)
            .map(|q| self.demodulate_qubit(raw, q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use readout_sim::multiplex::synthesize;
    use readout_sim::noise::GaussianNoise;
    use readout_sim::trace::IqPoint;
    use readout_sim::{ChipConfig, Dataset};

    fn constant_basebands(cfg: &ChipConfig, points: &[IqPoint]) -> Vec<Vec<IqPoint>> {
        points
            .iter()
            .map(|&p| vec![p; cfg.n_samples()])
            .collect()
    }

    fn noiseless_raw(cfg: &ChipConfig, points: &[IqPoint]) -> IqTrace {
        let carriers = CarrierTable::new(cfg);
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        synthesize(&carriers, &constant_basebands(cfg, points), &mut noise, &mut rng)
    }

    #[test]
    fn recovers_constant_baseband_exactly() {
        let cfg = ChipConfig::two_qubit_test();
        let pts = [IqPoint::new(0.8, -0.3), IqPoint::new(-0.5, 0.2)];
        let raw = noiseless_raw(&cfg, &pts);
        let demod = Demodulator::new(&cfg);
        for (q, &expect) in pts.iter().enumerate() {
            let bb = demod.demodulate_qubit(&raw, q);
            assert_eq!(bb.len(), cfg.n_bins());
            for t in 0..bb.len() {
                assert!(bb.sample(t).distance(expect) < 1e-9, "qubit {q} bin {t}");
            }
        }
    }

    #[test]
    fn other_tones_are_rejected() {
        // Only qubit 1 transmits; qubit 0's demodulated trace must be ~zero.
        let cfg = ChipConfig::two_qubit_test();
        let raw = noiseless_raw(&cfg, &[IqPoint::ZERO, IqPoint::new(1.0, 1.0)]);
        let demod = Demodulator::new(&cfg);
        let bb = demod.demodulate_qubit(&raw, 0);
        for t in 0..bb.len() {
            assert!(bb.sample(t).norm() < 1e-9, "leakage at bin {t}");
        }
    }

    #[test]
    fn truncated_raw_yields_truncated_baseband() {
        let cfg = ChipConfig::two_qubit_test();
        let raw = noiseless_raw(&cfg, &[IqPoint::new(0.4, 0.0), IqPoint::ZERO]);
        let demod = Demodulator::new(&cfg);
        // 7.5 bins worth of samples → 7 full bins.
        let cut = raw.truncated((7 * cfg.samples_per_bin()) + cfg.samples_per_bin() / 2);
        let bb = demod.demodulate_qubit(&cut, 0);
        assert_eq!(bb.len(), 7);
    }

    #[test]
    fn demodulate_covers_all_qubits() {
        let cfg = ChipConfig::five_qubit_default();
        let ds = Dataset::generate(&cfg, 1, 42);
        let demod = Demodulator::new(&cfg);
        let all = demod.demodulate(&ds.shots[0].raw);
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|tr| tr.len() == cfg.n_bins()));
    }

    #[test]
    fn demodulated_noise_has_reduced_variance() {
        // Pure noise in, per-bin variance out ≈ sigma² / samples_per_bin.
        let cfg = ChipConfig::two_qubit_test();
        let mut rng = StdRng::seed_from_u64(17);
        let mut noise = GaussianNoise::new(cfg.adc_noise_sigma);
        let carriers = CarrierTable::new(&cfg);
        let zeros = constant_basebands(&cfg, &[IqPoint::ZERO, IqPoint::ZERO]);
        let demod = Demodulator::new(&cfg);
        let mut values = Vec::new();
        for _ in 0..200 {
            let raw = synthesize(&carriers, &zeros, &mut noise, &mut rng);
            let bb = demod.demodulate_qubit(&raw, 0);
            values.extend_from_slice(bb.i());
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let expected = cfg.bin_noise_sigma().powi(2);
        assert!(
            (var - expected).abs() < 0.15 * expected,
            "bin variance {var} vs expected {expected}"
        );
    }

    #[test]
    fn demodulated_states_are_separable() {
        // The demodulated MTVs of |00> and |11> shots must cluster around
        // different points for each qubit.
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 30, 7);
        let demod = Demodulator::new(&cfg);
        for q in 0..2 {
            let centroid = |state: u32| -> IqPoint {
                let mut acc = IqPoint::ZERO;
                let mut count = 0;
                for shot in ds.shots.iter().filter(|s| s.prepared.bits() == state) {
                    acc += demod.demodulate_qubit(&shot.raw, q).mtv();
                    count += 1;
                }
                acc * (1.0 / count as f64)
            };
            let c0 = centroid(0b00);
            let c1 = centroid(0b11);
            assert!(
                c0.distance(c1) > 0.1,
                "qubit {q} centroids too close: {c0} vs {c1}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "qubit index out of range")]
    fn rejects_bad_qubit_index() {
        let cfg = ChipConfig::two_qubit_test();
        let demod = Demodulator::new(&cfg);
        let raw = IqTrace::zeros(cfg.n_samples());
        let _ = demod.demodulate_qubit(&raw, 2);
    }

    #[test]
    #[should_panic(expected = "longer than")]
    fn rejects_overlong_trace() {
        let cfg = ChipConfig::two_qubit_test();
        let demod = Demodulator::new(&cfg);
        let raw = IqTrace::zeros(cfg.n_samples() + 1);
        let _ = demod.demodulate_qubit(&raw, 0);
    }
}
