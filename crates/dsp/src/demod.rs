//! Digital downconversion of the multiplexed readout signal.
//!
//! Each qubit's baseband trace is recovered by multiplying the raw complex
//! ADC signal by the conjugate of that qubit's carrier and averaging over
//! consecutive bins (paper §2.2: "multiplying the frequency-multiplexed
//! readout signal with an oscillating signal at a frequency specific to the
//! readout resonator. The result is then averaged over intervals of 50ns").
//!
//! With the default chip, intermediate frequencies are multiples of the bin
//! rate, so each bin contains an integer number of carrier cycles and the
//! other qubits' tones integrate to zero — residual crosstalk in the
//! demodulated traces is the *dispersive* crosstalk injected at the baseband
//! level, not spectral leakage.

use herqles_num::Real;
use readout_sim::batch::ShotBatch;
use readout_sim::config::ChipConfig;
use readout_sim::multiplex::CarrierTable;
use readout_sim::trace::IqTrace;

/// Caller-owned output buffer for [`Demodulator::demodulate_batch`]:
/// baseband bins of every `(shot, qubit)` pair in one contiguous plane.
///
/// Row `s` holds shot `s` as `n_qubits` consecutive `[I_0 … I_{B−1},
/// Q_0 … Q_{B−1}]` segments (qubit-major). The buffer is reused across
/// batches — repeated demodulation of same-shape batches performs zero
/// allocations after the first call. Generic over the pipeline precision `R`
/// ([`Real`], default `f64`), matching the [`ShotBatch`] it is filled from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasebandBatch<R: Real = f64> {
    n_shots: usize,
    n_qubits: usize,
    n_bins: usize,
    data: Vec<R>,
}

impl<R: Real> BasebandBatch<R> {
    /// An empty buffer; sized lazily by the first `demodulate_batch` call.
    pub fn new() -> Self {
        BasebandBatch::default()
    }

    /// Resizes for a `[n_shots × n_qubits × 2·n_bins]` result, reusing the
    /// existing allocation when possible.
    pub fn reset(&mut self, n_shots: usize, n_qubits: usize, n_bins: usize) {
        self.n_shots = n_shots;
        self.n_qubits = n_qubits;
        self.n_bins = n_bins;
        self.data.clear();
        self.data.resize(n_shots * n_qubits * 2 * n_bins, R::ZERO);
    }

    /// Number of shots held.
    pub fn n_shots(&self) -> usize {
        self.n_shots
    }

    /// Number of qubits per shot.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Demodulation bins per trace.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    fn segment(&self, shot: usize, qubit: usize) -> &[R] {
        assert!(shot < self.n_shots, "shot index out of bounds");
        assert!(qubit < self.n_qubits, "qubit index out of bounds");
        let w = 2 * self.n_bins;
        let start = (shot * self.n_qubits + qubit) * w;
        &self.data[start..start + w]
    }

    /// The I bins of `(shot, qubit)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn i_of(&self, shot: usize, qubit: usize) -> &[R] {
        &self.segment(shot, qubit)[..self.n_bins]
    }

    /// The Q bins of `(shot, qubit)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn q_of(&self, shot: usize, qubit: usize) -> &[R] {
        &self.segment(shot, qubit)[self.n_bins..]
    }

    /// Materializes `(shot, qubit)` as an owned [`IqTrace`] (allocates; used
    /// by training paths, not the inference hot loop).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn trace(&self, shot: usize, qubit: usize) -> IqTrace {
        IqTrace::new(
            self.i_of(shot, qubit).iter().map(|&v| v.to_f64()).collect(),
            self.q_of(shot, qubit).iter().map(|&v| v.to_f64()).collect(),
        )
    }
}

/// Demodulates raw feedline waveforms into per-qubit baseband traces.
#[derive(Debug, Clone)]
pub struct Demodulator {
    carriers: CarrierTable,
    n_qubits: usize,
    n_samples: usize,
    samples_per_bin: usize,
}

impl Demodulator {
    /// Builds a demodulator for a chip configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`].
    pub fn new(config: &ChipConfig) -> Self {
        config.validate().expect("invalid chip configuration");
        Demodulator {
            carriers: CarrierTable::new(config),
            n_qubits: config.n_qubits(),
            n_samples: config.n_samples(),
            samples_per_bin: config.samples_per_bin(),
        }
    }

    /// Number of bins produced for a full-length raw trace.
    pub fn n_bins(&self) -> usize {
        self.n_samples / self.samples_per_bin
    }

    /// Number of qubits demodulated per shot.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Raw samples in the configured readout window.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Raw samples averaged into one demodulation bin.
    pub fn samples_per_bin(&self) -> usize {
        self.samples_per_bin
    }

    /// The precomputed carrier phasors (shared with waveform synthesis and
    /// the fused inference kernels).
    pub fn carriers(&self) -> &CarrierTable {
        &self.carriers
    }

    /// Demodulates the trace of a single qubit.
    ///
    /// Trailing samples that do not fill a complete bin are discarded, so a
    /// truncated raw trace yields a proportionally truncated baseband trace.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range or the raw trace is longer than the
    /// configured readout window.
    pub fn demodulate_qubit(&self, raw: &IqTrace, qubit: usize) -> IqTrace {
        assert!(qubit < self.n_qubits, "qubit index out of range");
        assert!(
            raw.len() <= self.n_samples,
            "raw trace longer than the configured readout window"
        );
        let n_bins = raw.len() / self.samples_per_bin;
        let mut i_out = Vec::with_capacity(n_bins);
        let mut q_out = Vec::with_capacity(n_bins);
        let ri = raw.i();
        let rq = raw.q();
        for bin in 0..n_bins {
            let start = bin * self.samples_per_bin;
            let mut acc_i = 0.0;
            let mut acc_q = 0.0;
            for t in start..start + self.samples_per_bin {
                let (c, s) = self.carriers.phasor(qubit, t);
                // (ri + i rq) · (c − i s): conjugate carrier mixing.
                acc_i += ri[t] * c + rq[t] * s;
                acc_q += rq[t] * c - ri[t] * s;
            }
            let norm = 1.0 / self.samples_per_bin as f64;
            i_out.push(acc_i * norm);
            q_out.push(acc_q * norm);
        }
        IqTrace::new(i_out, q_out)
    }

    /// Demodulates all qubits, returning one baseband trace per qubit.
    pub fn demodulate(&self, raw: &IqTrace) -> Vec<IqTrace> {
        (0..self.n_qubits)
            .map(|q| self.demodulate_qubit(raw, q))
            .collect()
    }

    /// Demodulates a whole batch into a caller-owned [`BasebandBatch`] with
    /// zero per-shot allocation.
    ///
    /// Generic over the pipeline precision `R` ([`Real`]): the mixing and
    /// bin accumulation run in `R`, so an `f32` batch demodulates at single
    /// precision. At `R = f64` bins are computed with exactly the same
    /// accumulation order as [`Demodulator::demodulate_qubit`], so batched
    /// and per-shot basebands are bit-identical. Truncated batches (fewer
    /// samples than the readout window) yield proportionally fewer bins,
    /// like the per-shot path.
    ///
    /// # Panics
    ///
    /// Panics if the batch traces are longer than the configured readout
    /// window.
    pub fn demodulate_batch<R: Real>(&self, batch: &ShotBatch<R>, out: &mut BasebandBatch<R>) {
        assert!(
            batch.n_samples() <= self.n_samples,
            "batch traces longer than the configured readout window"
        );
        let n_bins = batch.n_samples() / self.samples_per_bin;
        out.reset(batch.n_shots(), self.n_qubits, n_bins);
        let spb = self.samples_per_bin;
        let norm = R::from_f64(1.0 / spb as f64);
        let row_width = self.n_qubits * 2 * n_bins;
        for (shot, row) in out.data.chunks_mut(row_width.max(1)).enumerate() {
            let ri = batch.i_of(shot);
            let rq = batch.q_of(shot);
            for (q, seg) in row.chunks_mut(2 * n_bins).enumerate() {
                let (i_out, q_out) = seg.split_at_mut(n_bins);
                for bin in 0..n_bins {
                    let start = bin * spb;
                    let mut acc_i = R::ZERO;
                    let mut acc_q = R::ZERO;
                    for t in start..start + spb {
                        let (c, s) = self.carriers.phasor(q, t);
                        let (c, s) = (R::from_f64(c), R::from_f64(s));
                        acc_i += ri[t] * c + rq[t] * s;
                        acc_q += rq[t] * c - ri[t] * s;
                    }
                    i_out[bin] = acc_i * norm;
                    q_out[bin] = acc_q * norm;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use readout_sim::multiplex::synthesize;
    use readout_sim::noise::GaussianNoise;
    use readout_sim::trace::IqPoint;
    use readout_sim::{ChipConfig, Dataset};

    fn constant_basebands(cfg: &ChipConfig, points: &[IqPoint]) -> Vec<Vec<IqPoint>> {
        points.iter().map(|&p| vec![p; cfg.n_samples()]).collect()
    }

    fn noiseless_raw(cfg: &ChipConfig, points: &[IqPoint]) -> IqTrace {
        let carriers = CarrierTable::new(cfg);
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        synthesize(
            &carriers,
            &constant_basebands(cfg, points),
            &mut noise,
            &mut rng,
        )
    }

    #[test]
    fn recovers_constant_baseband_exactly() {
        let cfg = ChipConfig::two_qubit_test();
        let pts = [IqPoint::new(0.8, -0.3), IqPoint::new(-0.5, 0.2)];
        let raw = noiseless_raw(&cfg, &pts);
        let demod = Demodulator::new(&cfg);
        for (q, &expect) in pts.iter().enumerate() {
            let bb = demod.demodulate_qubit(&raw, q);
            assert_eq!(bb.len(), cfg.n_bins());
            for t in 0..bb.len() {
                assert!(bb.sample(t).distance(expect) < 1e-9, "qubit {q} bin {t}");
            }
        }
    }

    #[test]
    fn other_tones_are_rejected() {
        // Only qubit 1 transmits; qubit 0's demodulated trace must be ~zero.
        let cfg = ChipConfig::two_qubit_test();
        let raw = noiseless_raw(&cfg, &[IqPoint::ZERO, IqPoint::new(1.0, 1.0)]);
        let demod = Demodulator::new(&cfg);
        let bb = demod.demodulate_qubit(&raw, 0);
        for t in 0..bb.len() {
            assert!(bb.sample(t).norm() < 1e-9, "leakage at bin {t}");
        }
    }

    #[test]
    fn truncated_raw_yields_truncated_baseband() {
        let cfg = ChipConfig::two_qubit_test();
        let raw = noiseless_raw(&cfg, &[IqPoint::new(0.4, 0.0), IqPoint::ZERO]);
        let demod = Demodulator::new(&cfg);
        // 7.5 bins worth of samples → 7 full bins.
        let cut = raw.truncated((7 * cfg.samples_per_bin()) + cfg.samples_per_bin() / 2);
        let bb = demod.demodulate_qubit(&cut, 0);
        assert_eq!(bb.len(), 7);
    }

    #[test]
    fn demodulate_covers_all_qubits() {
        let cfg = ChipConfig::five_qubit_default();
        let ds = Dataset::generate(&cfg, 1, 42);
        let demod = Demodulator::new(&cfg);
        let all = demod.demodulate(&ds.shots[0].raw);
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|tr| tr.len() == cfg.n_bins()));
    }

    #[test]
    fn demodulated_noise_has_reduced_variance() {
        // Pure noise in, per-bin variance out ≈ sigma² / samples_per_bin.
        let cfg = ChipConfig::two_qubit_test();
        let mut rng = StdRng::seed_from_u64(17);
        let mut noise = GaussianNoise::new(cfg.adc_noise_sigma);
        let carriers = CarrierTable::new(&cfg);
        let zeros = constant_basebands(&cfg, &[IqPoint::ZERO, IqPoint::ZERO]);
        let demod = Demodulator::new(&cfg);
        let mut values = Vec::new();
        for _ in 0..200 {
            let raw = synthesize(&carriers, &zeros, &mut noise, &mut rng);
            let bb = demod.demodulate_qubit(&raw, 0);
            values.extend_from_slice(bb.i());
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let expected = cfg.bin_noise_sigma().powi(2);
        assert!(
            (var - expected).abs() < 0.15 * expected,
            "bin variance {var} vs expected {expected}"
        );
    }

    #[test]
    fn demodulated_states_are_separable() {
        // The demodulated MTVs of |00> and |11> shots must cluster around
        // different points for each qubit.
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 30, 7);
        let demod = Demodulator::new(&cfg);
        for q in 0..2 {
            let centroid = |state: u32| -> IqPoint {
                let mut acc = IqPoint::ZERO;
                let mut count = 0;
                for shot in ds.shots.iter().filter(|s| s.prepared.bits() == state) {
                    acc += demod.demodulate_qubit(&shot.raw, q).mtv();
                    count += 1;
                }
                acc * (1.0 / count as f64)
            };
            let c0 = centroid(0b00);
            let c1 = centroid(0b11);
            assert!(
                c0.distance(c1) > 0.1,
                "qubit {q} centroids too close: {c0} vs {c1}"
            );
        }
    }

    #[test]
    fn batch_demodulation_is_bit_identical_to_per_shot() {
        let cfg = ChipConfig::five_qubit_default();
        let ds = Dataset::generate(&cfg, 2, 31);
        let demod = Demodulator::new(&cfg);
        let batch: readout_sim::ShotBatch = readout_sim::ShotBatch::from_shots(&ds.shots);
        let mut bb = BasebandBatch::new();
        demod.demodulate_batch(&batch, &mut bb);
        assert_eq!(bb.n_shots(), ds.shots.len());
        assert_eq!(bb.n_qubits(), 5);
        assert_eq!(bb.n_bins(), cfg.n_bins());
        for (s, shot) in ds.shots.iter().enumerate() {
            for q in 0..5 {
                let per_shot = demod.demodulate_qubit(&shot.raw, q);
                assert_eq!(bb.i_of(s, q), per_shot.i(), "shot {s} qubit {q} I");
                assert_eq!(bb.q_of(s, q), per_shot.q(), "shot {s} qubit {q} Q");
                assert_eq!(bb.trace(s, q), per_shot);
            }
        }
    }

    #[test]
    fn batch_demodulation_reuses_the_buffer() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 3, 5);
        let demod = Demodulator::new(&cfg);
        let batch: readout_sim::ShotBatch = readout_sim::ShotBatch::from_shots(&ds.shots);
        let mut bb = BasebandBatch::new();
        demod.demodulate_batch(&batch, &mut bb);
        let first = bb.clone();
        demod.demodulate_batch(&batch, &mut bb);
        assert_eq!(bb, first, "repeated demodulation must be stable");
    }

    #[test]
    fn truncated_batch_yields_fewer_bins() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 1, 8);
        let demod = Demodulator::new(&cfg);
        let cut = 7 * cfg.samples_per_bin() + 3;
        let truncated: Vec<IqTrace> = ds.shots.iter().map(|s| s.raw.truncated(cut)).collect();
        let refs: Vec<&IqTrace> = truncated.iter().collect();
        let batch: readout_sim::ShotBatch = readout_sim::ShotBatch::try_from_traces(&refs).unwrap();
        let mut bb = BasebandBatch::new();
        demod.demodulate_batch(&batch, &mut bb);
        assert_eq!(bb.n_bins(), 7);
        let per_shot = demod.demodulate_qubit(&truncated[0], 1);
        assert_eq!(bb.trace(0, 1), per_shot);
    }

    #[test]
    #[should_panic(expected = "qubit index out of range")]
    fn rejects_bad_qubit_index() {
        let cfg = ChipConfig::two_qubit_test();
        let demod = Demodulator::new(&cfg);
        let raw = IqTrace::zeros(cfg.n_samples());
        let _ = demod.demodulate_qubit(&raw, 2);
    }

    #[test]
    #[should_panic(expected = "longer than")]
    fn rejects_overlong_trace() {
        let cfg = ChipConfig::two_qubit_test();
        let demod = Demodulator::new(&cfg);
        let raw = IqTrace::zeros(cfg.n_samples() + 1);
        let _ = demod.demodulate_qubit(&raw, 0);
    }
}
