//! Digital signal processing for superconducting-qubit readout.
//!
//! This crate implements the signal-processing stages that sit between the
//! ADC and the classifier in the HERQULES pipeline:
//!
//! * [`demod`] — digital downconversion of the frequency-multiplexed ADC
//!   waveform into per-qubit baseband traces (multiply by the conjugate
//!   carrier, average over 50 ns bins; paper §2.2);
//! * [`filters`] — (mode) matched filters: supervised envelope training
//!   `env = mean(ΔTr)/var(ΔTr)` and the MAC-style dot-product inference used
//!   on FPGAs (paper §4.2 and Appendix A), including truncated application
//!   for readout-duration reduction (paper §5);
//! * [`boxcar`] — boxcar (moving-average) filtering, the classical
//!   alternative dimensionality reduction the paper discusses in §5.1.2.
//!
//! # Example
//!
//! ```
//! use readout_sim::{ChipConfig, Dataset};
//! use readout_dsp::Demodulator;
//!
//! let config = ChipConfig::five_qubit_default();
//! let dataset = Dataset::generate(&config, 1, 3);
//! let demod = Demodulator::new(&config);
//! let per_qubit = demod.demodulate(&dataset.shots[0].raw);
//! assert_eq!(per_qubit.len(), 5);
//! assert_eq!(per_qubit[0].len(), config.n_bins());
//! ```

pub mod boxcar;
pub mod demod;
pub mod filters;

pub use boxcar::{boxcar_filter, boxcar_slice};
pub use demod::{BasebandBatch, Demodulator};
pub use filters::{FilterError, MatchedFilter};
pub use herqles_num::Real;
