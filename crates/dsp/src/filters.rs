//! Matched filters for qubit-state discrimination.
//!
//! A matched filter (MF) reduces a demodulated IQ time trace to a single
//! scalar: the dot product of the trace with a trained *envelope*. Following
//! the paper (Appendix A), the envelope is
//!
//! ```text
//! env = mean(Tr_A − Tr_B) / var(Tr_A − Tr_B)
//! ```
//!
//! computed element-wise per time bin and per channel (I and Q), where `Tr_A`
//! and `Tr_B` are the two trace classes to separate. The standard MF uses
//! ground vs excited traces; the **relaxation matched filter** (RMF, paper
//! §4.3.2) uses relaxation vs ground traces and is constructed with the same
//! [`MatchedFilter::train`] on a different pair of classes.
//!
//! Matched filters maximize the output SNR for linearly added Gaussian noise
//! and are optimal for single-qubit readout in the absence of state
//! transitions — which is precisely why the paper needs the RMF to patch the
//! transition case.

use std::error::Error;
use std::fmt;

use readout_sim::trace::IqTrace;

/// Error returned when matched-filter training is impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// One of the two training classes contained no traces.
    EmptyClass,
    /// Training traces did not all share the same length.
    LengthMismatch,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::EmptyClass => write!(f, "both training classes must be non-empty"),
            FilterError::LengthMismatch => write!(f, "training traces must share one length"),
        }
    }
}

impl Error for FilterError {}

/// A trained matched filter: per-bin weights for the I and Q channels.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedFilter {
    envelope: IqTrace,
}

impl MatchedFilter {
    /// Trains an envelope separating `class_a` from `class_b` traces.
    ///
    /// The filter output is positive-leaning for `class_a` members: the
    /// envelope is `mean(a − b) / var(a − b)` per bin and channel. Bins with
    /// vanishing variance receive weight proportional to the mean difference
    /// divided by a small floor, so degenerate (noise-free) data still trains.
    ///
    /// # Errors
    ///
    /// Returns [`FilterError::EmptyClass`] if either class is empty and
    /// [`FilterError::LengthMismatch`] if trace lengths differ.
    pub fn train(class_a: &[&IqTrace], class_b: &[&IqTrace]) -> Result<Self, FilterError> {
        let first = class_a
            .first()
            .or_else(|| class_b.first())
            .ok_or(FilterError::EmptyClass)?;
        if class_a.is_empty() || class_b.is_empty() {
            return Err(FilterError::EmptyClass);
        }
        let len = first.len();
        if class_a.iter().chain(class_b).any(|tr| tr.len() != len) {
            return Err(FilterError::LengthMismatch);
        }

        let (mean_a_i, var_a_i) = channel_stats(class_a, len, IqTrace::i);
        let (mean_a_q, var_a_q) = channel_stats(class_a, len, IqTrace::q);
        let (mean_b_i, var_b_i) = channel_stats(class_b, len, IqTrace::i);
        let (mean_b_q, var_b_q) = channel_stats(class_b, len, IqTrace::q);

        // Variance of the difference of independent samples is the sum of
        // the class variances.
        let env_i: Vec<f64> = (0..len)
            .map(|t| weight(mean_a_i[t] - mean_b_i[t], var_a_i[t] + var_b_i[t]))
            .collect();
        let env_q: Vec<f64> = (0..len)
            .map(|t| weight(mean_a_q[t] - mean_b_q[t], var_a_q[t] + var_b_q[t]))
            .collect();
        Ok(MatchedFilter {
            envelope: IqTrace::new(env_i, env_q),
        })
    }

    /// Creates a filter from an explicit envelope (e.g. loaded from
    /// calibration storage).
    pub fn from_envelope(envelope: IqTrace) -> Self {
        MatchedFilter { envelope }
    }

    /// The trained envelope.
    pub fn envelope(&self) -> &IqTrace {
        &self.envelope
    }

    /// Number of time bins the filter spans.
    pub fn len(&self) -> usize {
        self.envelope.len()
    }

    /// Whether the filter has zero length.
    pub fn is_empty(&self) -> bool {
        self.envelope.is_empty()
    }

    /// Applies the filter: `Σ_t env_I(t)·tr_I(t) + env_Q(t)·tr_Q(t)`.
    ///
    /// If the trace is shorter than the envelope (truncated readout), only
    /// the overlapping prefix contributes — this is what makes the
    /// downstream network agnostic to the readout duration (paper §5.2).
    /// Extra trace bins beyond the envelope are ignored.
    pub fn apply(&self, trace: &IqTrace) -> f64 {
        let n = self.envelope.len().min(trace.len());
        let (ei, eq) = (self.envelope.i(), self.envelope.q());
        let (ti, tq) = (trace.i(), trace.q());
        let mut acc = 0.0;
        for t in 0..n {
            acc += ei[t] * ti[t] + eq[t] * tq[t];
        }
        acc
    }

    /// Applies the filter to at most the first `bins` bins of the trace.
    pub fn apply_truncated(&self, trace: &IqTrace, bins: usize) -> f64 {
        let n = bins.min(trace.len());
        self.apply(&trace.truncated(n))
    }

    /// Returns a copy of the filter truncated to its first `bins` bins.
    pub fn truncated(&self, bins: usize) -> MatchedFilter {
        MatchedFilter {
            envelope: self.envelope.truncated(bins),
        }
    }
}

fn channel_stats<'a, F>(class: &[&'a IqTrace], len: usize, chan: F) -> (Vec<f64>, Vec<f64>)
where
    F: Fn(&'a IqTrace) -> &'a [f64],
{
    let n = class.len() as f64;
    let mut mean = vec![0.0; len];
    for tr in class {
        for (m, &x) in mean.iter_mut().zip(chan(tr)) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0; len];
    for tr in class {
        for (t, &x) in chan(tr).iter().enumerate() {
            var[t] += (x - mean[t]).powi(2);
        }
    }
    for v in &mut var {
        *v /= n;
    }
    (mean, var)
}

fn weight(mean_diff: f64, var: f64) -> f64 {
    const VAR_FLOOR: f64 = 1e-12;
    mean_diff / var.max(VAR_FLOOR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use readout_sim::noise::GaussianNoise;

    fn noisy_trace(mean_i: &[f64], sigma: f64, rng: &mut StdRng) -> IqTrace {
        let mut g = GaussianNoise::new(sigma);
        let i: Vec<f64> = mean_i.iter().map(|&m| m + g.sample(rng)).collect();
        let q: Vec<f64> = mean_i.iter().map(|_| g.sample(rng)).collect();
        IqTrace::new(i, q)
    }

    fn make_classes(
        mean_a: &[f64],
        mean_b: &[f64],
        sigma: f64,
        count: usize,
    ) -> (Vec<IqTrace>, Vec<IqTrace>) {
        let mut rng = StdRng::seed_from_u64(31);
        let a: Vec<IqTrace> = (0..count)
            .map(|_| noisy_trace(mean_a, sigma, &mut rng))
            .collect();
        let b: Vec<IqTrace> = (0..count)
            .map(|_| noisy_trace(mean_b, sigma, &mut rng))
            .collect();
        (a, b)
    }

    fn refs(v: &[IqTrace]) -> Vec<&IqTrace> {
        v.iter().collect()
    }

    #[test]
    fn separates_two_gaussian_classes() {
        let (a, b) = make_classes(&[1.0; 10], &[-1.0; 10], 0.5, 200);
        let mf = MatchedFilter::train(&refs(&a), &refs(&b)).unwrap();
        let correct = a.iter().filter(|tr| mf.apply(tr) > 0.0).count()
            + b.iter().filter(|tr| mf.apply(tr) < 0.0).count();
        assert!(correct >= 398, "correct = {correct}/400");
    }

    #[test]
    fn envelope_weights_informative_bins_more() {
        // Separation only in the first half → envelope mass concentrated there.
        let mut mean_a = vec![0.0; 10];
        mean_a[..5].fill(2.0);
        let (a, b) = make_classes(&mean_a, &[0.0; 10], 1.0, 500);
        let mf = MatchedFilter::train(&refs(&a), &refs(&b)).unwrap();
        let head: f64 = mf.envelope().i()[..5].iter().map(|w| w.abs()).sum();
        let tail: f64 = mf.envelope().i()[5..].iter().map(|w| w.abs()).sum();
        assert!(head > 5.0 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn envelope_matches_paper_formula_on_deterministic_data() {
        // Two one-trace classes with known difference; variance hits the
        // floor, so weight direction must follow the mean difference sign.
        let a = IqTrace::new(vec![2.0, -1.0], vec![0.0, 0.0]);
        let b = IqTrace::new(vec![0.0, 1.0], vec![0.0, 0.0]);
        let mf = MatchedFilter::train(&[&a], &[&b]).unwrap();
        assert!(mf.envelope().i()[0] > 0.0);
        assert!(mf.envelope().i()[1] < 0.0);
        assert_eq!(mf.envelope().q(), &[0.0, 0.0]);
    }

    #[test]
    fn output_is_linear_in_the_trace() {
        let (a, b) = make_classes(&[1.0; 8], &[-1.0; 8], 0.3, 50);
        let mf = MatchedFilter::train(&refs(&a), &refs(&b)).unwrap();
        let tr = &a[0];
        let scaled = IqTrace::new(
            tr.i().iter().map(|x| 3.0 * x).collect(),
            tr.q().iter().map(|x| 3.0 * x).collect(),
        );
        assert!((mf.apply(&scaled) - 3.0 * mf.apply(tr)).abs() < 1e-9);
    }

    #[test]
    fn truncated_application_equals_truncated_filter() {
        let (a, b) = make_classes(&[1.0; 10], &[-1.0; 10], 0.5, 50);
        let mf = MatchedFilter::train(&refs(&a), &refs(&b)).unwrap();
        let tr = &a[3];
        let via_apply = mf.apply_truncated(tr, 6);
        let via_filter = mf.truncated(6).apply(tr);
        assert!((via_apply - via_filter).abs() < 1e-12);
    }

    #[test]
    fn short_trace_uses_only_overlap() {
        let (a, b) = make_classes(&[1.0; 10], &[-1.0; 10], 0.5, 50);
        let mf = MatchedFilter::train(&refs(&a), &refs(&b)).unwrap();
        let tr = a[0].truncated(4);
        assert!((mf.apply(&tr) - mf.truncated(4).apply(&a[0])).abs() < 1e-12);
    }

    #[test]
    fn empty_class_is_rejected() {
        let a = IqTrace::new(vec![1.0], vec![0.0]);
        assert_eq!(
            MatchedFilter::train(&[&a], &[]).unwrap_err(),
            FilterError::EmptyClass
        );
        assert_eq!(
            MatchedFilter::train(&[], &[]).unwrap_err(),
            FilterError::EmptyClass
        );
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let a = IqTrace::new(vec![1.0, 2.0], vec![0.0, 0.0]);
        let b = IqTrace::new(vec![1.0], vec![0.0]);
        assert_eq!(
            MatchedFilter::train(&[&a], &[&b]).unwrap_err(),
            FilterError::LengthMismatch
        );
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(FilterError::EmptyClass.to_string().contains("non-empty"));
        assert!(FilterError::LengthMismatch.to_string().contains("length"));
    }

    #[test]
    fn from_envelope_roundtrips() {
        let env = IqTrace::new(vec![0.5, -0.5], vec![1.0, 0.0]);
        let mf = MatchedFilter::from_envelope(env.clone());
        assert_eq!(mf.envelope(), &env);
        assert_eq!(mf.len(), 2);
        let tr = IqTrace::new(vec![2.0, 2.0], vec![1.0, 1.0]);
        // 0.5·2 − 0.5·2 + 1·1 + 0·1 = 1
        assert!((mf.apply(&tr) - 1.0).abs() < 1e-12);
    }
}
