//! Boxcar (moving-average) filtering.
//!
//! Boxcar filters are the classical signal-processing alternative the paper
//! discusses for shortening effective readout (§5.1.2): a per-qubit window
//! length trades noise averaging against sensitivity to late-trace
//! relaxation. Provided here both as a pre-filter ablation for the HERQULES
//! pipeline and for parity with hardware platforms (QICK ships averaging
//! filters natively).

use herqles_num::Real;
use readout_sim::trace::IqTrace;

/// Applies a trailing moving average of `window` bins to both channels.
///
/// Output sample `t` is the mean of input samples `max(0, t−window+1) ..= t`,
/// so the output has the same length as the input and no look-ahead (causal,
/// as implementable in streaming hardware).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn boxcar_filter(trace: &IqTrace, window: usize) -> IqTrace {
    assert!(window > 0, "boxcar window must be at least 1");
    IqTrace::new(
        boxcar_channel(trace.i(), window),
        boxcar_channel(trace.q(), window),
    )
}

fn boxcar_channel(x: &[f64], window: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len());
    boxcar_slice(x, window, &mut out);
    out
}

/// Precision-generic trailing moving average over one flat channel, written
/// into a caller-owned buffer (cleared first; reusable across calls).
///
/// This is the streaming-hardware form of [`boxcar_filter`]: it operates on
/// a raw `[R]` plane (e.g. one channel of a `ShotBatch<R>` row or a
/// `BasebandBatch<R>` segment) at pipeline precision, with no per-call
/// allocation once `out` is warm. At `R = f64` the output is bit-identical
/// to [`boxcar_filter`]'s per-channel result.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn boxcar_slice<R: Real>(x: &[R], window: usize, out: &mut Vec<R>) {
    assert!(window > 0, "boxcar window must be at least 1");
    out.clear();
    out.reserve(x.len());
    let mut acc = R::ZERO;
    for t in 0..x.len() {
        acc += x[t];
        if t >= window {
            acc -= x[t - window];
        }
        let n = R::from_usize((t + 1).min(window));
        out.push(acc / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_kernel_matches_trace_filter_and_runs_at_f32() {
        let tr = IqTrace::new(vec![1.0, -2.0, 3.0, 0.5], vec![0.0; 4]);
        let reference = boxcar_filter(&tr, 3);
        let mut out = Vec::new();
        boxcar_slice(tr.i(), 3, &mut out);
        assert_eq!(out, reference.i(), "f64 slice kernel must be bit-identical");
        let x32: Vec<f32> = tr.i().iter().map(|&v| v as f32).collect();
        let mut out32: Vec<f32> = Vec::new();
        boxcar_slice(&x32, 3, &mut out32);
        for (a, b) in out32.iter().zip(reference.i()) {
            assert!((f64::from(*a) - b).abs() < 1e-6);
        }
    }

    #[test]
    fn window_one_is_identity() {
        let tr = IqTrace::new(vec![1.0, -2.0, 3.0], vec![0.5, 0.5, 0.5]);
        assert_eq!(boxcar_filter(&tr, 1), tr);
    }

    #[test]
    fn constant_signal_is_unchanged() {
        let tr = IqTrace::new(vec![2.0; 8], vec![-1.0; 8]);
        let out = boxcar_filter(&tr, 4);
        for t in 0..8 {
            assert!((out.i()[t] - 2.0).abs() < 1e-12);
            assert!((out.q()[t] + 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn warmup_region_averages_prefix() {
        let tr = IqTrace::new(vec![4.0, 0.0, 2.0], vec![0.0; 3]);
        let out = boxcar_filter(&tr, 3);
        assert!((out.i()[0] - 4.0).abs() < 1e-12);
        assert!((out.i()[1] - 2.0).abs() < 1e-12);
        assert!((out.i()[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn long_window_behaves_like_running_mean() {
        let tr = IqTrace::new(vec![1.0, 2.0, 3.0, 4.0], vec![0.0; 4]);
        let out = boxcar_filter(&tr, 100);
        assert!((out.i()[3] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn smoothing_reduces_variance() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use readout_sim::noise::GaussianNoise;
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = GaussianNoise::new(1.0);
        let i: Vec<f64> = (0..1000).map(|_| g.sample(&mut rng)).collect();
        let tr = IqTrace::new(i, vec![0.0; 1000]);
        let out = boxcar_filter(&tr, 10);
        let var = |x: &[f64]| {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            x.iter().map(|v| (v - m).powi(2)).sum::<f64>() / x.len() as f64
        };
        assert!(var(out.i()) < 0.25 * var(tr.i()));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_window_panics() {
        let _ = boxcar_filter(&IqTrace::zeros(3), 0);
    }
}
