//! Steady-state allocation check: once the engine is warm, the per-round
//! path (data errors → synthesis → discrimination → syndrome commit) must
//! perform **zero** heap allocations. A counting global allocator wraps the
//! system allocator; this file holds exactly one test so no parallel test
//! pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use herqles_stream::{
    train_mf_discriminator, train_mf_discriminator_typed, CycleConfig, CycleEngine,
};
use readout_sim::ChipConfig;
use surface_code::RotatedSurfaceCode;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_engine_rounds_perform_zero_heap_allocations() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 8, 1234);
    let cfg = CycleConfig {
        rounds: 8,
        data_error_prob: 0.02,
        seed: 3,
    };
    let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());

    // Warm-up: one full cycle sizes every buffer (the event store is
    // pre-reserved to its hard upper bound, so later rounds cannot outgrow
    // it), then one round of the next block warms the cycle-start path.
    let _ = engine.run_cycle();
    engine.begin_cycle();
    engine.step_round();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..5 {
        engine.step_round();
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state rounds must not touch the heap"
    );

    // The engine still works after the probe (finish decodes the block).
    let result = engine.finish_cycle();
    assert_eq!(result.stats.rounds, 6);

    // The single-precision engine carries the same guarantee: a warm
    // `CycleEngine<f32>` round loop (f32 synthesis → f32 fused GEMM →
    // thresholds → syndrome commit) must not touch the heap either. Probed
    // in this same test because the counting allocator is process-global.
    let disc32 = train_mf_discriminator_typed(&chip, 8, 1234);
    let mut engine32 = CycleEngine::<f32, _>::new(cfg, &chip, &code, &disc32);
    let _ = engine32.run_cycle();
    engine32.begin_cycle();
    engine32.step_round();

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..5 {
        engine32.step_round();
    }
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state f32 rounds must not touch the heap"
    );
    let result = engine32.finish_cycle();
    assert_eq!(result.stats.rounds, 6);
}
