//! Steady-state allocation check: once the engine is warm, the per-round
//! path (data errors → synthesis → discrimination → syndrome commit) must
//! perform **zero** heap allocations. A counting global allocator wraps the
//! system allocator; this file holds exactly one test so no parallel test
//! pollutes the counter.
//!
//! The counter is process-global, and the libtest harness occasionally
//! performs a stray allocation of its own during a probe window (observed at
//! a few-percent rate even before the engine existed in its current form).
//! Every probe therefore takes the **minimum over a few attempts**: harness
//! noise is transient, while a genuine leak on the engine's round path
//! allocates on *every* attempt and still fails the pin deterministically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use herqles_stream::{
    train_mf_discriminator, train_mf_discriminator_typed, AdaptiveMf, CycleConfig, CycleEngine,
    DriftEvent, EngineTelemetry, FaultPlan, PoolTelemetry, RecalConfig, ShardPool,
};
use herqles_telemetry::Registry;
use readout_sim::trace::IqPoint;
use readout_sim::ChipConfig;
use surface_code::RotatedSurfaceCode;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Minimum allocation count of `f` over `attempts` runs (noise-robust probe).
fn min_allocs_over<F: FnMut()>(attempts: usize, mut f: F) -> u64 {
    (0..attempts)
        .map(|_| {
            let before = ALLOC_CALLS.load(Ordering::SeqCst);
            f();
            ALLOC_CALLS.load(Ordering::SeqCst) - before
        })
        .min()
        .expect("at least one attempt")
}

#[test]
fn warm_engine_rounds_perform_zero_heap_allocations() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 8, 1234);
    // 20 rounds per block: headroom for one warm-up round plus three
    // 5-round probe attempts inside a single (event-capacity-reserved) block.
    let cfg = CycleConfig {
        rounds: 20,
        data_error_prob: 0.02,
        seed: 3,
    };
    let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());

    // Warm-up: one full cycle sizes every buffer (the event store is
    // pre-reserved to its hard upper bound, so later rounds cannot outgrow
    // it), then one round of the next block warms the cycle-start path.
    let _ = engine.run_cycle();
    engine.begin_cycle();
    engine.step_round();

    let serial_rounds = min_allocs_over(3, || {
        for _ in 0..5 {
            engine.step_round();
        }
    });
    assert_eq!(
        serial_rounds, 0,
        "steady-state rounds must not touch the heap"
    );

    // The engine still works after the probe (finish decodes the block).
    let result = engine.finish_cycle();
    assert_eq!(result.stats.rounds, 16);

    // The single-precision engine carries the same guarantee: a warm
    // `CycleEngine<f32>` round loop (f32 synthesis → f32 fused GEMM →
    // thresholds → syndrome commit) must not touch the heap either. Probed
    // in this same test because the counting allocator is process-global.
    let disc32 = train_mf_discriminator_typed(&chip, 8, 1234);
    let mut engine32 = CycleEngine::<f32, _>::new(cfg, &chip, &code, &disc32);
    let _ = engine32.run_cycle();
    engine32.begin_cycle();
    engine32.step_round();

    let f32_rounds = min_allocs_over(3, || {
        for _ in 0..5 {
            engine32.step_round();
        }
    });
    assert_eq!(
        f32_rounds, 0,
        "steady-state f32 rounds must not touch the heap"
    );
    let result = engine32.finish_cycle();
    assert_eq!(result.stats.rounds, 16);

    // Whole warm cycles are now pinned at a hard **zero**: with the
    // decoder's matching scratch owned by the engine (`DecodeScratch`,
    // pre-sized at construction), a steady-state `run_cycle` — begin,
    // every round, block write-out, exact-matching decode — must not touch
    // the heap at all. This is strictly stronger than the previous
    // pooled-vs-serial *comparison*, which tolerated the decoder's own
    // per-cycle allocations on both sides.
    let mut serial = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    let _ = serial.run_cycle();
    let _ = serial.run_cycle();
    let serial_cycle_allocs = min_allocs_over(3, || {
        let _ = serial.run_cycle();
    });
    assert_eq!(
        serial_cycle_allocs, 0,
        "warm whole serial cycles must not touch the heap"
    );

    let pool = ShardPool::new(3);
    // Deterministic pool warm-up: with dynamic scheduling a worker may claim
    // no task during the warm-up cycles and pay its one-time lazy runtime
    // initialization inside the probed window; warm_up forces every thread
    // through one full task first.
    pool.warm_up();
    let mut pooled = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
    let _ = pooled.run_cycle();
    let _ = pooled.run_cycle();

    // The pooled engine carries the invariant across the fan-out: job
    // dispatch publishes one borrowed fat pointer, workers park on a
    // condvar, and every shard writes pre-sized buffers; the counting
    // allocator is process-global, so worker-side allocations would be
    // caught here too.
    let pooled_cycle_allocs = min_allocs_over(3, || {
        let _ = pooled.run_cycle();
    });
    assert_eq!(
        pooled_cycle_allocs, 0,
        "warm whole pooled cycles must not touch the heap"
    );

    // Active fault injection keeps the invariant: fault resolution writes a
    // pre-sized `RoundFaults` snapshot, the faulted synthesis branches work
    // in the same per-channel scratch, and the health monitor's round
    // observation runs through fixed buffers. The plan below holds every
    // fault kind at full strength for the entire probed window.
    let mut faulted = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    faulted.set_fault_plan(FaultPlan::new(vec![
        DriftEvent::CentroidDrift {
            qubit: 0,
            start_round: 0,
            end_round: 0,
            delta: IqPoint::new(2.0, -1.5),
        },
        DriftEvent::SigmaScale {
            start_round: 0,
            end_round: 0,
            factor: 1.4,
        },
        DriftEvent::Leakage {
            qubit: 1,
            start_round: 0,
            end_round: 0,
            prob: 0.3,
            leak_ss: IqPoint::new(20.0, 20.0),
        },
    ]));
    let _ = faulted.run_cycle();
    let _ = faulted.run_cycle();
    let faulted_cycle_allocs = min_allocs_over(3, || {
        let _ = faulted.run_cycle();
    });
    assert_eq!(
        faulted_cycle_allocs, 0,
        "warm cycles under active fault injection must not touch the heap"
    );

    // The adaptive discriminator's hot path — generation-counted calibration
    // load, fused GEMM, margin computation, confident-window harvest into
    // the fixed ring — is allocation-free too (the *retrain* is the
    // control-plane exception and runs outside this probe).
    let mf = train_mf_discriminator_typed(&chip, 8, 1234);
    let adaptive = AdaptiveMf::from_mf(&mf, RecalConfig::default());
    let mut adaptive_engine = CycleEngine::<f64, _>::new(cfg, &chip, &code, &adaptive);
    let _ = adaptive_engine.run_cycle();
    let _ = adaptive_engine.run_cycle();
    let adaptive_cycle_allocs = min_allocs_over(3, || {
        let _ = adaptive_engine.run_cycle();
    });
    assert_eq!(
        adaptive_cycle_allocs, 0,
        "warm cycles through the adaptive discriminator must not touch the heap"
    );

    // Telemetry is enabled by default, so every probe above already ran with
    // histogram recording, counter bumps, trace stamping, flight-recorder
    // span recording and the per-cycle percentile refresh inside the
    // zero-allocation window. Make that explicit: the engines really were
    // recording.
    assert!(
        serial.telemetry().trace().recorded() > 0,
        "default-on telemetry must have traced the probed cycles"
    );
    assert!(
        serial.telemetry().spans().recorded() > 0,
        "default-on span tracing must have recorded stage spans"
    );
    assert!(serial.stats().latency.cycle.max > 0);

    // Per-worker pool instrumentation rides inside the same invariant: with
    // a `PoolTelemetry` attached, every fan-out task records a worker-track
    // span plus two relaxed counter bumps, and warm pooled cycles must still
    // be allocation-free.
    let pool_telem = Arc::new(PoolTelemetry::new(pool.threads()));
    pool.set_telemetry(Some(Arc::clone(&pool_telem)));
    let mut instrumented = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
    let _ = instrumented.run_cycle();
    let _ = instrumented.run_cycle();
    let instrumented_cycle_allocs = min_allocs_over(3, || {
        let _ = instrumented.run_cycle();
    });
    assert_eq!(
        instrumented_cycle_allocs, 0,
        "warm pooled cycles with pool instrumentation attached must not touch the heap"
    );
    assert!(
        pool_telem.total_tasks() > 0,
        "attached pool telemetry must have recorded fan-out tasks"
    );
    pool.set_telemetry(None);

    // The vectorized-synthesis contract must hold on **every** noise/GEMM
    // backend, not just whatever HERQLES_KERNEL resolved to above: the AVX2
    // bulk Gaussian path generates deviates in registers and must spill to
    // stack tails only, and the scalar path replays the historical
    // per-sample loop through the same pre-sized scratch. Force each
    // selectable backend in turn and re-probe whole warm cycles, serial and
    // pooled.
    {
        use herqles_num::kernel::{active_kernel_name, select_kernel, KernelBackend};
        let restore = KernelBackend::parse(active_kernel_name()).expect("active name parses");
        let mut backends = vec![KernelBackend::Scalar];
        if herqles_num::avx2_available() {
            backends.push(KernelBackend::Avx2);
        } else {
            eprintln!("alloc: AVX2 unavailable, pinning scalar backend only");
        }
        for backend in backends {
            select_kernel(backend).expect("backend known selectable");
            let mut serial_b = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
            let _ = serial_b.run_cycle();
            let _ = serial_b.run_cycle();
            let allocs = min_allocs_over(3, || {
                let _ = serial_b.run_cycle();
            });
            assert_eq!(
                allocs, 0,
                "warm serial cycles on the {backend:?} backend must not touch the heap"
            );
            let mut pooled_b = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
            let _ = pooled_b.run_cycle();
            let _ = pooled_b.run_cycle();
            let allocs = min_allocs_over(3, || {
                let _ = pooled_b.run_cycle();
            });
            assert_eq!(
                allocs, 0,
                "warm pooled cycles on the {backend:?} backend must not touch the heap"
            );
        }
        select_kernel(restore).expect("restoring the dispatched backend");
    }

    // Registry-backed telemetry carries the same guarantee: registration is
    // control-plane (outside the probe), but warm cycles recording into
    // registered histograms/counters must stay heap-free, and so must a
    // stage-latency read.
    let registry = Registry::new();
    let mut registered = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    registered.set_telemetry(EngineTelemetry::registered(
        &registry.scope(&[("engine", "alloc-pin")]),
    ));
    let _ = registered.run_cycle();
    let _ = registered.run_cycle();
    let registered_cycle_allocs = min_allocs_over(3, || {
        let _ = registered.run_cycle();
        let _ = registered.stage_latency();
    });
    assert_eq!(
        registered_cycle_allocs, 0,
        "warm cycles with registry-backed telemetry must not touch the heap"
    );
    assert!(
        registry.snapshot().metrics.iter().any(|m| {
            m.name == "herqles_cycles_total"
                && matches!(m.value, herqles_telemetry::MetricValue::Counter(c) if c >= 3)
        }),
        "registered counters must have seen the probed cycles"
    );

    // Dense blocks under active faults route through the union-find decoder
    // (past `EXACT_DISPATCH_LIMIT`), whose scratch — parents, sizes,
    // half-edge support, frontier queues, peeling stacks, interaction-group
    // buffers and the local-DP memo — is pre-sized by
    // `DecodeScratch::prewarmed` at engine construction. Warm cycles that
    // grow, peel, and refine real clusters must stay heap-free.
    let dense_cfg = CycleConfig {
        rounds: 20,
        data_error_prob: 0.06,
        seed: 17,
    };
    let mut dense = CycleEngine::new(dense_cfg, &chip, &code, disc.as_ref());
    dense.set_fault_plan(FaultPlan::new(vec![DriftEvent::SigmaScale {
        start_round: 0,
        end_round: 0,
        factor: 1.5,
    }]));
    let _ = dense.run_cycle();
    let _ = dense.run_cycle();
    let mut dense_events = 0usize;
    let dense_cycle_allocs = min_allocs_over(3, || {
        dense_events = dense_events.max(dense.run_cycle().outcome.n_events);
    });
    assert!(
        dense_events > surface_code::EXACT_DISPATCH_LIMIT,
        "probe produced only {dense_events} events — union-find path not exercised"
    );
    assert_eq!(
        dense_cycle_allocs, 0,
        "warm union-find decodes of dense faulted blocks must not touch the heap"
    );

    // Sliding-window streaming decode rides inside the same invariant: every
    // warm round pushes events into the window, advances cluster growth, and
    // commits confined clusters behind the lag — all against the pre-sized
    // window scratch. Serial and pooled (where the window advance overlaps
    // the next round's synthesis fan-out).
    let mut windowed = CycleEngine::new(dense_cfg, &chip, &code, disc.as_ref());
    windowed.set_sliding_window(3);
    let _ = windowed.run_cycle();
    let _ = windowed.run_cycle();
    let windowed_cycle_allocs = min_allocs_over(3, || {
        let _ = windowed.run_cycle();
    });
    assert_eq!(
        windowed_cycle_allocs, 0,
        "warm sliding-window cycles must not touch the heap"
    );

    let mut windowed_pooled = CycleEngine::with_pool(dense_cfg, &chip, &code, disc.as_ref(), &pool);
    windowed_pooled.set_sliding_window(3);
    let _ = windowed_pooled.run_cycle();
    let _ = windowed_pooled.run_cycle();
    let windowed_pooled_allocs = min_allocs_over(3, || {
        let _ = windowed_pooled.run_cycle();
    });
    assert_eq!(
        windowed_pooled_allocs, 0,
        "warm pooled sliding-window cycles must not touch the heap"
    );

    // Async decode offload: a warm pooled cycle that decodes the previous
    // block inside its round-0 pipeline slot (alongside the synthesis
    // fan-out) must be allocation-free too.
    let mut offloaded = CycleEngine::with_pool(dense_cfg, &chip, &code, disc.as_ref(), &pool);
    offloaded.set_async_decode(true);
    let _ = offloaded.run_cycle();
    let _ = offloaded.run_cycle();
    let offloaded_cycle_allocs = min_allocs_over(3, || {
        let _ = offloaded.run_cycle();
    });
    assert_eq!(
        offloaded_cycle_allocs, 0,
        "warm async-offload cycles must not touch the heap"
    );
    let drained = offloaded.drain_async_decode().expect("final block pending");
    assert!(drained.n_events > 0);
}
