//! The fault-injection → detection → recovery integration pin: under an
//! injected IQ centroid drift the engine's error rate rises and the health
//! monitor leaves Nominal; the adaptive discriminator then retrains from its
//! harvested high-confidence windows, hot-swaps its calibration, and the
//! error rate recovers toward the pre-drift baseline.
//!
//! Everything here is seeded and the engine is bit-deterministic (pinned by
//! `tests/determinism.rs`), so the thresholds below are stable pins, not
//! statistical hopes.

use herqles_stream::{
    train_mf_discriminator_typed, AdaptiveMf, CycleConfig, CycleEngine, CycleResult, DriftEvent,
    FaultPlan, HealthConfig, HealthStatus, RecalConfig, Recalibrate, ShardPool,
};
use readout_sim::ChipConfig;
use surface_code::RotatedSurfaceCode;

fn mean_events(results: &[CycleResult]) -> f64 {
    results
        .iter()
        .map(|r| r.outcome.n_events as f64)
        .sum::<f64>()
        / results.len().max(1) as f64
}

#[test]
fn drift_is_detected_and_recovered_by_hot_swap() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let mf = train_mf_discriminator_typed(&chip, 16, 99);
    // The ring must hold genuinely excited ancilla windows for the retrain
    // to see both classes — QEC traffic at a realistic data error rate
    // provides them (at very low error rates the excited class starves and
    // `recalibrate` correctly declines to train on one class).
    let adaptive = AdaptiveMf::from_mf(
        &mf,
        RecalConfig {
            capacity: 128,
            min_windows: 8,
            ..RecalConfig::default()
        },
    );
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.03,
        seed: 7,
    };
    // Pooled engine: the retrain must be able to hide behind the round-0
    // synthesis fan-out (run_cycle_adaptive's overlapped path).
    let pool = ShardPool::new(2);
    let mut engine = CycleEngine::<f64, _>::with_pool(cfg, &chip, &code, &adaptive, &pool);
    // Slow EWMA + long baseline: on a 4-ancilla code one flipped ancilla is
    // a 0.25 defect-rate quantum, so the monitor needs enough smoothing that
    // benign Poisson bursts don't trip the defect-factor cut.
    engine.set_health_config(HealthConfig {
        alpha: 0.04,
        baseline_rounds: 60,
        hold_rounds: 4,
        degraded_defect_factor: 3.0,
        critical_defect_factor: 8.0,
        ..HealthConfig::default()
    });
    engine.set_recal_cooldown(12);

    // ---- Clean phase: calibrate the monitor, establish the baseline. ----
    let clean = engine.run_cycles_adaptive(40);
    let clean_mean = mean_events(&clean);
    assert_eq!(
        engine.health().status(),
        HealthStatus::Nominal,
        "clean channel must calibrate to Nominal"
    );
    assert!(engine.health().is_calibrated());
    assert_eq!(engine.stats().hot_swaps, 0, "no swap without drift");

    // ---- Inject: step both channels' readout clouds by a third of their
    // ground/excited separation, from the current round on. Both basis
    // states shift together, so the trained thresholds are suddenly badly
    // off-center — the classic slow-drift failure, compressed to a step.
    // (A much larger shift would park the ground cloud on the threshold and
    // poison the self-labels the retrain feeds on; a real deployment would
    // have hit Critical and recalibrated long before drifting that far.) ----
    let onset = engine.stats().rounds;
    let mut plan = FaultPlan::none();
    for (k, q) in chip.qubits.iter().enumerate() {
        plan.push(DriftEvent::CentroidDrift {
            qubit: k,
            start_round: onset,
            end_round: onset,
            delta: q.separation_dir() * (0.30 * q.separation()),
        });
    }
    engine.set_fault_plan(plan);

    // ---- Detect + recover: stream adaptively until the hot-swap fires. ----
    let mut pre_swap = Vec::new();
    let mut saw_unhealthy = false;
    for _ in 0..120 {
        let r = engine.run_cycle_adaptive();
        saw_unhealthy |= r.stats.health != HealthStatus::Nominal;
        if engine.stats().hot_swaps >= 1 {
            break;
        }
        pre_swap.push(r);
    }
    assert!(
        engine.stats().hot_swaps >= 1,
        "drift must trigger a recalibration hot-swap (status {:?}, {} windows)",
        engine.health().status(),
        adaptive.buffered_windows()
    );
    assert!(saw_unhealthy, "health must leave Nominal under drift");
    assert!(engine.stats().health_transitions >= 1);
    assert!(adaptive.generation() >= 1, "swap must bump the generation");

    // The drifted channel must have hurt before the swap: mean detection
    // events well above the clean baseline (misdiscriminated ancillas show
    // up as defect storms).
    let drift_mean = mean_events(&pre_swap);
    assert!(
        drift_mean > clean_mean * 1.5,
        "drift must raise the event rate: clean {clean_mean:.2}, drifted {drift_mean:.2}"
    );

    // ---- Recovered: post-swap cycles settle back toward baseline. ----
    let post = engine.run_cycles_adaptive(40);
    let recovered_mean = mean_events(&post[post.len() - 20..]);
    assert!(
        recovered_mean < clean_mean + 0.5 * (drift_mean - clean_mean),
        "hot-swap must recover at least half the drift-induced event-rate \
         rise: clean {clean_mean:.2}, drifted {drift_mean:.2}, recovered {recovered_mean:.2}"
    );
    assert_eq!(
        engine.health().status(),
        HealthStatus::Nominal,
        "recovered channel must re-baseline to Nominal"
    );
}

#[test]
fn fault_plan_validation_rejects_out_of_range_channels() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let mf = train_mf_discriminator_typed(&chip, 8, 1);
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.004,
        seed: 1,
    };
    let mut engine = CycleEngine::<f64, _>::new(cfg, &chip, &code, &mf);
    let plan = FaultPlan::new(vec![DriftEvent::Leakage {
        qubit: 7,
        start_round: 0,
        end_round: 0,
        prob: 0.1,
        leak_ss: readout_sim::trace::IqPoint::new(10.0, 10.0),
    }]);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.set_fault_plan(plan);
    }))
    .expect_err("channel 7 on a 2-channel chip must be rejected");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("channel 7"), "unexpected panic message: {msg}");
}
