//! Streaming ↔ offline parity: for a fixed seed the [`CycleEngine`] must
//! produce bit-identical [`SyndromeBlock`]s and [`DecodeOutcome`]s to the
//! materializing reference path — the acceptance pin of the streaming
//! subsystem. Any divergence in RNG draw order, batch row layout, fused
//! kernel weights, or syndrome bookkeeping fails these tests.

use herqles_stream::{run_cycles_offline, train_mf_discriminator, CycleConfig, CycleEngine};
use readout_sim::ChipConfig;
use surface_code::{RotatedSurfaceCode, SyndromeBlock};

fn assert_parity(chip: &ChipConfig, distance: usize, cfg: CycleConfig, cycles: usize) {
    let code = RotatedSurfaceCode::new(distance);
    let disc = train_mf_discriminator(chip, 10, 404);

    let offline = run_cycles_offline(&cfg, chip, &code, disc.as_ref(), cycles);
    let mut engine = CycleEngine::new(cfg, chip, &code, disc.as_ref());
    let mut streamed: Vec<(SyndromeBlock, surface_code::decoder::DecodeOutcome)> = Vec::new();
    for _ in 0..cycles {
        let result = engine.run_cycle();
        streamed.push((engine.last_block().clone(), result.outcome));
    }

    assert_eq!(offline.len(), streamed.len());
    for (i, (off, (block, outcome))) in offline.iter().zip(&streamed).enumerate() {
        assert_eq!(
            &off.block, block,
            "cycle {i}: streaming block diverges from offline"
        );
        assert_eq!(
            off.outcome, *outcome,
            "cycle {i}: streaming decode diverges from offline"
        );
    }
}

#[test]
fn streaming_matches_offline_bit_for_bit_d3_two_channel() {
    // d = 3 → 4 ancillas on a 2-channel feedline → 2 exact groups.
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.01,
        seed: 2026,
    };
    assert_parity(&ChipConfig::two_qubit_test(), 3, cfg, 5);
}

#[test]
fn streaming_matches_offline_bit_for_bit_d5_two_channel() {
    // d = 5 → 12 ancillas → 6 groups, more rounds, different seed.
    let cfg = CycleConfig {
        rounds: 5,
        data_error_prob: 0.008,
        seed: 31,
    };
    assert_parity(&ChipConfig::two_qubit_test(), 5, cfg, 2);
}

#[test]
fn streaming_matches_offline_with_idle_padding_slots() {
    // d = 3 → 4 ancillas on the five-channel default chip → one group with
    // one idle padding channel: exercises the ragged tail of the tiling.
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.012,
        seed: 9000,
    };
    assert_parity(&ChipConfig::five_qubit_default(), 3, cfg, 2);
}

#[test]
fn engine_rng_stream_is_one_continuous_sequence() {
    // Running 4 cycles on one engine must equal 4 cycles of the offline path
    // (which shares a single RNG across cycles) — i.e. the engine does not
    // reseed between blocks.
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 2,
        data_error_prob: 0.02,
        seed: 55,
    };
    let offline = run_cycles_offline(&cfg, &chip, &code, disc.as_ref(), 4);
    let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    let outcomes: Vec<_> = engine.cycles().take(4).map(|r| r.outcome).collect();
    let expected: Vec<_> = offline.iter().map(|c| c.outcome).collect();
    assert_eq!(outcomes, expected);
}
