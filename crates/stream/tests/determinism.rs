//! Thread-count independence of the [`ParallelCycleEngine`]: for any pool
//! size the pooled engine must produce **bit-identical** blocks, decode
//! outcomes and aggregate statistics to the serial [`CycleEngine`] — the
//! acceptance pin of the `herqles-exec` integration. Any divergence in the
//! per-group RNG stream derivation, shard scheduling leaking into results,
//! or pipeline reordering of the syndrome commits fails these tests.

use herqles_core::PrecisionDiscriminator;
use herqles_stream::{
    train_mf_discriminator, train_mf_discriminator_typed, CycleConfig, CycleEngine, DriftEvent,
    FaultPlan, ParallelCycleEngine, Real, ShardPool,
};
use readout_sim::trace::IqPoint;
use readout_sim::ChipConfig;
use surface_code::{RotatedSurfaceCode, SyndromeBlock};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn assert_pooled_matches_serial<R, D>(
    cfg: CycleConfig,
    chip: &ChipConfig,
    code: &RotatedSurfaceCode,
    disc: &D,
    cycles: usize,
) where
    R: Real,
    D: ?Sized + PrecisionDiscriminator<R>,
{
    assert_pooled_matches_serial_under_plan(cfg, chip, code, disc, cycles, &FaultPlan::none());
}

fn assert_pooled_matches_serial_under_plan<R, D>(
    cfg: CycleConfig,
    chip: &ChipConfig,
    code: &RotatedSurfaceCode,
    disc: &D,
    cycles: usize,
    plan: &FaultPlan,
) where
    R: Real,
    D: ?Sized + PrecisionDiscriminator<R>,
{
    let mut serial = CycleEngine::<R, _>::new(cfg, chip, code, disc);
    serial.set_fault_plan(plan.clone());
    let mut reference: Vec<(SyndromeBlock, surface_code::decoder::DecodeOutcome)> = Vec::new();
    for _ in 0..cycles {
        let r = serial.run_cycle();
        reference.push((serial.last_block().clone(), r.outcome));
    }

    for threads in THREAD_COUNTS {
        let pool = ShardPool::new(threads);
        let mut pooled = ParallelCycleEngine::<R, _>::with_pool(cfg, chip, code, disc, &pool);
        pooled.set_fault_plan(plan.clone());
        for (i, (ref_block, ref_outcome)) in reference.iter().enumerate() {
            let r = pooled.run_cycle();
            assert_eq!(
                &r.outcome,
                ref_outcome,
                "{}/threads={threads}: cycle {i} outcome diverges from serial",
                R::NAME
            );
            assert_eq!(
                pooled.last_block(),
                ref_block,
                "{}/threads={threads}: cycle {i} block diverges from serial",
                R::NAME
            );
        }
        assert_eq!(pooled.stats().cycles, serial.stats().cycles);
        assert_eq!(pooled.stats().rounds, serial.stats().rounds);
        assert_eq!(pooled.stats().logical_errors, serial.stats().logical_errors);
    }
}

#[test]
fn pooled_engine_is_bit_identical_to_serial_f64() {
    // d = 5 → 12 ancillas on the 2-channel test chip → 6 shards: enough
    // groups that 2- and 4-thread pools genuinely interleave shard execution.
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(5);
    let disc = train_mf_discriminator(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 5,
        data_error_prob: 0.01,
        seed: 777,
    };
    assert_pooled_matches_serial::<f64, _>(cfg, &chip, &code, disc.as_ref(), 4);
}

#[test]
fn pooled_engine_is_bit_identical_to_serial_f32() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(5);
    let disc = train_mf_discriminator_typed(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 5,
        data_error_prob: 0.01,
        seed: 777,
    };
    assert_pooled_matches_serial::<f32, _>(cfg, &chip, &code, &disc, 4);
}

#[test]
fn pooled_engine_with_idle_padding_slots_matches_serial() {
    // d = 3 on the five-channel chip → a single ragged group: the pooled
    // path must behave with one shard and idle channels.
    let chip = ChipConfig::five_qubit_default();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 8, 2026);
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.012,
        seed: 13,
    };
    assert_pooled_matches_serial::<f64, _>(cfg, &chip, &code, disc.as_ref(), 3);
}

#[test]
fn pooled_engine_is_bit_identical_to_serial_under_active_faults() {
    // Every fault kind at once, ramping across the run: leakage draws an
    // extra random number per leaked channel, so this pins that the injected
    // randomness rides the per-group streams (not the master RNG) and stays
    // thread-count-independent.
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(5);
    let disc = train_mf_discriminator(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 5,
        data_error_prob: 0.01,
        seed: 777,
    };
    let plan = FaultPlan::new(vec![
        DriftEvent::CentroidDrift {
            qubit: 0,
            start_round: 2,
            end_round: 10,
            delta: IqPoint::new(3.0, -2.0),
        },
        DriftEvent::SigmaScale {
            start_round: 0,
            end_round: 8,
            factor: 1.6,
        },
        DriftEvent::Leakage {
            qubit: 1,
            start_round: 4,
            end_round: 12,
            prob: 0.35,
            leak_ss: IqPoint::new(25.0, 25.0),
        },
        DriftEvent::CrosstalkBurst {
            start_round: 6,
            end_round: 14,
            gain: 3.0,
        },
    ]);
    assert_pooled_matches_serial_under_plan::<f64, _>(cfg, &chip, &code, disc.as_ref(), 4, &plan);
}

#[test]
fn pooled_engine_is_bit_identical_to_serial_under_active_faults_f32() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(5);
    let disc = train_mf_discriminator_typed(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 5,
        data_error_prob: 0.01,
        seed: 777,
    };
    let plan = FaultPlan::new(vec![
        DriftEvent::CentroidDrift {
            qubit: 1,
            start_round: 0,
            end_round: 6,
            delta: IqPoint::new(-2.0, 4.0),
        },
        DriftEvent::Leakage {
            qubit: 0,
            start_round: 3,
            end_round: 3,
            prob: 0.5,
            leak_ss: IqPoint::new(30.0, 30.0),
        },
    ]);
    assert_pooled_matches_serial_under_plan::<f32, _>(cfg, &chip, &code, &disc, 4, &plan);
}

#[test]
fn manual_stepping_matches_pooled_cycles() {
    // step_round stays a serial API, but its per-group RNG streams are the
    // same ones the pooled path shards out — so hand-stepped cycles must
    // equal pooled run_cycle output exactly.
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 10, 7);
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.02,
        seed: 5,
    };
    let pool = ShardPool::new(4);
    let mut pooled = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
    let mut stepped = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    for _ in 0..3 {
        let pooled_result = pooled.run_cycle();
        stepped.begin_cycle();
        for _ in 0..cfg.rounds {
            stepped.step_round();
        }
        let stepped_result = stepped.finish_cycle();
        assert_eq!(pooled_result.outcome, stepped_result.outcome);
        assert_eq!(pooled.last_block(), stepped.last_block());
    }
}

#[test]
fn one_pool_serves_several_engines() {
    // The pool is a shared runtime, not engine-owned: two engines on the
    // same pool must not perturb each other's streams.
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 10, 7);
    let cfg_a = CycleConfig {
        rounds: 3,
        data_error_prob: 0.02,
        seed: 1,
    };
    let cfg_b = CycleConfig {
        rounds: 3,
        data_error_prob: 0.02,
        seed: 2,
    };
    let reference_a = CycleEngine::new(cfg_a, &chip, &code, disc.as_ref()).run_cycles(3);
    let reference_b = CycleEngine::new(cfg_b, &chip, &code, disc.as_ref()).run_cycles(3);

    let pool = ShardPool::new(3);
    let mut a = CycleEngine::with_pool(cfg_a, &chip, &code, disc.as_ref(), &pool);
    let mut b = CycleEngine::with_pool(cfg_b, &chip, &code, disc.as_ref(), &pool);
    for i in 0..3 {
        assert_eq!(a.run_cycle().outcome, reference_a[i].outcome);
        assert_eq!(b.run_cycle().outcome, reference_b[i].outcome);
    }
}
