//! The end-to-end single-precision streaming pipeline.
//!
//! `CycleEngine::<f32, _>` runs the full readout → syndrome → decode cycle —
//! ancilla waveform synthesis included — in `f32`. Its noise realizations
//! are *not* those of the `f64` engine (the Marsaglia rejection loop rounds
//! differently, so the RNG streams diverge), so parity is statistical, not
//! bitwise: for a fixed seed the two precisions must land in the same
//! logical-error regime. Determinism per seed, however, is exact.

use herqles_stream::{train_mf_discriminator_typed, CycleConfig, CycleEngine};
use readout_sim::ChipConfig;
use surface_code::RotatedSurfaceCode;

const CYCLES: usize = 50;

#[test]
fn f32_engine_is_deterministic_per_seed() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator_typed(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.01,
        seed: 11,
    };
    let run = || {
        let mut engine = CycleEngine::<f32, _>::new(cfg, &chip, &code, &disc);
        let outcomes: Vec<_> = engine.cycles().take(6).map(|r| r.outcome).collect();
        (outcomes, engine.last_block().clone())
    };
    let (oa, ba) = run();
    let (ob, bb) = run();
    assert_eq!(oa, ob, "same seed, same f32 outcomes");
    assert_eq!(ba, bb, "same seed, same f32 final block");
}

#[test]
fn f32_and_f64_logical_error_counts_agree_within_tolerance_band() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator_typed(&chip, 12, 2077);
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.05,
        seed: 40,
    };

    let mut e64 = CycleEngine::<f64, _>::new(cfg, &chip, &code, &disc);
    let _ = e64.run_cycles(CYCLES);
    let errors64 = e64.stats().logical_errors;

    let mut e32 = CycleEngine::<f32, _>::new(cfg, &chip, &code, &disc);
    let _ = e32.run_cycles(CYCLES);
    let errors32 = e32.stats().logical_errors;

    // Seeded tolerance band: both engines sample the same physics at the
    // same operating point, so their per-cycle logical-error rates are
    // draws from one distribution. With 50 cycles at this operating point
    // the count stays in single digits for a working discriminator; a
    // miscompiled f32 kernel (wrong weights, truncated accumulation) blows
    // the count to tens immediately.
    let diff = errors64.abs_diff(errors32);
    assert!(
        errors64 > 0,
        "operating point must produce logical errors for the band to mean anything"
    );
    assert!(
        diff <= 8,
        "logical-error counts diverged: f64 {errors64} vs f32 {errors32}"
    );
    assert!(
        errors32 <= CYCLES as u64 / 2,
        "f32 engine error rate implausibly high: {errors32}/{CYCLES}"
    );
    assert_eq!(e32.stats().cycles, CYCLES as u64);
    assert_eq!(e32.stats().rounds, (CYCLES * cfg.rounds) as u64);
}

#[test]
fn f32_round_buffers_and_stats_are_populated() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator_typed(&chip, 8, 3);
    let cfg = CycleConfig {
        rounds: 2,
        data_error_prob: 0.01,
        seed: 5,
    };
    let mut engine = CycleEngine::<f32, _>::new(cfg, &chip, &code, &disc);
    let r = engine.run_cycle();
    assert_eq!(r.stats.rounds, 2);
    assert!(r.stats.stage.synth > 0);
    assert!(r.stats.stage.discriminate > 0);
    assert_eq!(engine.stats().cycles, 1);
}
