//! Telemetry overhead guard: warm cycles with telemetry enabled must cost
//! within 5 % of the same cycles with telemetry disabled.
//!
//! Both arms take the **minimum over several attempts** of a multi-cycle
//! batch, the standard trick this repo uses against scheduler noise (see
//! `tests/alloc.rs`): minima converge on the true cost because noise only
//! ever adds time. The bound is asserted on the minima, with the batch sized
//! large enough (d=5, full cycles) that the per-cycle telemetry work —
//! five histogram records, a handful of counter bumps, ~7 trace stamps and
//! one percentile scan — is measured against real engine work, not against
//! an empty loop.

use std::time::Instant;

use herqles_stream::{train_mf_discriminator, CycleConfig, CycleEngine};
use readout_sim::ChipConfig;
use surface_code::RotatedSurfaceCode;

const ATTEMPTS: usize = 9;
const CYCLES_PER_ATTEMPT: usize = 8;

/// Wall time of one run of `f`, in nanoseconds.
fn wall_ns<F: FnMut()>(f: &mut F) -> u64 {
    let t0 = Instant::now();
    f();
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[test]
fn telemetry_overhead_stays_under_five_percent() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(5);
    let disc = train_mf_discriminator(&chip, 8, 99);
    let cfg = CycleConfig {
        rounds: 5,
        data_error_prob: 4e-3,
        seed: 17,
    };

    let mut on = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    let mut off = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    off.set_telemetry_enabled(false);

    // Warm both engines (buffer sizing, decoder scratch, branch predictors).
    let _ = on.run_cycles(2);
    let _ = off.run_cycles(2);

    // Interleave the arms attempt by attempt so both minima sample the same
    // machine conditions (frequency scaling, cache residency, neighbors),
    // and time *individual cycles*: the minimum over ~70 single-cycle
    // samples converges on the true cost far faster than a minimum over a
    // handful of long batches, because noise only ever adds time.
    let mut on_ns = u64::MAX;
    let mut off_ns = u64::MAX;
    for _ in 0..ATTEMPTS {
        for _ in 0..CYCLES_PER_ATTEMPT {
            off_ns = off_ns.min(wall_ns(&mut || {
                let _ = off.run_cycle();
            }));
            on_ns = on_ns.min(wall_ns(&mut || {
                let _ = on.run_cycle();
            }));
        }
    }

    // Sanity: the disabled arm really recorded nothing, the enabled arm did.
    assert_eq!(off.telemetry().trace().recorded(), 0);
    assert!(on.telemetry().trace().recorded() > 0);
    assert!(on.stats().latency.cycle.max > 0);
    assert_eq!(off.stats().latency, Default::default());

    eprintln!("telemetry overhead: min cycle on {on_ns} ns, off {off_ns} ns");
    let bound = off_ns as f64 * 1.05;
    assert!(
        (on_ns as f64) <= bound,
        "telemetry-on warm cycles took {on_ns} ns vs {off_ns} ns off \
         (bound {bound:.0} ns): overhead above 5 %"
    );
}
