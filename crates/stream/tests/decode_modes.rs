//! Decode-mode parity: sliding-window streaming decode and async decode
//! offload must not change *what* the engine decodes — only *when*.
//!
//! * Sliding-window mode commits clusters behind the stream as rounds
//!   arrive; its per-cycle outcomes must be identical to whole-block mode.
//! * Async offload moves each block's decode into the next cycle's round-0
//!   pipeline slot; the outcome sequence (shifted one cycle, plus the
//!   drained final block) must equal the synchronous sequence.

use herqles_exec::ShardPool;
use herqles_stream::{train_mf_discriminator, CycleConfig, CycleEngine};
use readout_sim::ChipConfig;
use surface_code::decoder::DecodeOutcome;
use surface_code::RotatedSurfaceCode;

const CYCLES: usize = 6;

fn reference_outcomes(
    cfg: CycleConfig,
    chip: &ChipConfig,
    code: &RotatedSurfaceCode,
    disc: &dyn herqles_core::Discriminator,
) -> Vec<DecodeOutcome> {
    let mut engine = CycleEngine::new(cfg, chip, code, disc);
    (0..CYCLES).map(|_| engine.run_cycle().outcome).collect()
}

#[test]
fn sliding_window_engine_matches_whole_block_outcomes() {
    for (d, rounds, lag, p) in [(3usize, 8usize, 2usize, 0.01), (5, 12, 3, 0.008)] {
        let chip = ChipConfig::two_qubit_test();
        let code = RotatedSurfaceCode::new(d);
        let disc = train_mf_discriminator(&chip, 10, 404);
        let cfg = CycleConfig {
            rounds,
            data_error_prob: p,
            seed: 7100 + d as u64,
        };
        let reference = reference_outcomes(cfg, &chip, &code, disc.as_ref());

        // Serial engine, sliding-window decode.
        let mut windowed = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        windowed.set_sliding_window(lag);
        for (i, expected) in reference.iter().enumerate() {
            let got = windowed.run_cycle().outcome;
            assert_eq!(
                got, *expected,
                "d={d} cycle {i}: sliding-window outcome diverged from whole-block"
            );
        }

        // Pooled engine, sliding-window decode overlapped with synthesis.
        let pool = ShardPool::new(3);
        let mut pooled = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
        pooled.set_sliding_window(lag);
        for (i, expected) in reference.iter().enumerate() {
            let got = pooled.run_cycle().outcome;
            assert_eq!(
                got, *expected,
                "d={d} cycle {i}: pooled sliding-window outcome diverged"
            );
        }
    }
}

#[test]
fn sliding_window_commits_decode_work_ahead_of_block_end() {
    // The mode must genuinely stream: with enough rounds and noise, clusters
    // commit behind the lag while the block is still running. Probed via the
    // engine totals — if nothing ever committed early, finish_window_block
    // would always fall back to the whole-block dispatch and this test's
    // premise (exercised streaming) would be vacuous.
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(5);
    let disc = train_mf_discriminator(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 24,
        data_error_prob: 0.02,
        seed: 91,
    };
    let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    engine.set_sliding_window(3);
    let mut events = 0usize;
    for _ in 0..CYCLES {
        events += engine.run_cycle().outcome.n_events;
    }
    assert!(
        events > 0,
        "no detection events — noise too low to exercise"
    );
}

#[test]
fn async_offload_outcome_sequence_matches_serial_shifted_by_one() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 6,
        data_error_prob: 0.012,
        seed: 4242,
    };
    let reference = reference_outcomes(cfg, &chip, &code, disc.as_ref());

    let pool = ShardPool::new(3);
    let mut engine = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
    engine.set_async_decode(true);
    let mut shifted = Vec::new();
    for _ in 0..CYCLES {
        shifted.push(engine.run_cycle().outcome);
    }
    let drained = engine.drain_async_decode().expect("final block pending");
    assert_eq!(engine.drain_async_decode(), None, "drain must be one-shot");

    // Cycle 0 reports the empty placeholder; cycle k reports block k-1.
    assert_eq!(shifted[0], DecodeOutcome::default());
    assert_eq!(
        &shifted[1..],
        &reference[..CYCLES - 1],
        "offloaded outcomes diverged from the synchronous sequence"
    );
    assert_eq!(
        drained,
        reference[CYCLES - 1],
        "drained final outcome diverged"
    );
}

#[test]
fn async_offload_totals_count_each_block_exactly_once() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 6,
        data_error_prob: 0.03,
        seed: 8,
    };
    let mut serial = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
    for _ in 0..CYCLES {
        serial.run_cycle();
    }
    let expected = serial.stats().logical_errors;

    let pool = ShardPool::new(2);
    let mut engine = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
    engine.set_async_decode(true);
    for _ in 0..CYCLES {
        engine.run_cycle();
    }
    engine.drain_async_decode();
    assert_eq!(
        engine.stats().logical_errors,
        expected,
        "async totals lost or double-counted a block"
    );
}

#[test]
#[should_panic(expected = "mutually exclusive")]
fn sliding_window_refuses_async_engine() {
    let chip = ChipConfig::two_qubit_test();
    let code = RotatedSurfaceCode::new(3);
    let disc = train_mf_discriminator(&chip, 10, 404);
    let cfg = CycleConfig {
        rounds: 3,
        data_error_prob: 0.01,
        seed: 1,
    };
    let pool = ShardPool::new(2);
    let mut engine = CycleEngine::with_pool(cfg, &chip, &code, disc.as_ref(), &pool);
    engine.set_async_decode(true);
    engine.set_sliding_window(2);
}
