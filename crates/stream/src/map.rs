//! Mapping between surface-code ancillas and frequency-multiplexed readout
//! channels.
//!
//! A distance-`d` code has `(d²−1)/2` Z-stabilizer ancillas, but one feedline
//! carries only `n_channels` frequency-multiplexed tones (five on the default
//! chip). The ancillas are therefore tiled over `⌈n_ancillas / n_channels⌉`
//! feedline *groups*; each group is synthesized, digitized, and discriminated
//! as one multiplexed shot — one row of the round's
//! [`readout_sim::ShotBatch`]. Trailing slots of the last group are idle and
//! read out in the ground state.

use readout_sim::BasisState;

/// Static ancilla → (feedline group, channel) assignment for one code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AncillaMap {
    n_ancillas: usize,
    n_channels: usize,
}

impl AncillaMap {
    /// Builds the tiling of `n_ancillas` onto groups of `n_channels`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_ancillas: usize, n_channels: usize) -> Self {
        assert!(n_ancillas > 0, "need at least one ancilla");
        assert!(n_channels > 0, "need at least one channel per feedline");
        AncillaMap {
            n_ancillas,
            n_channels,
        }
    }

    /// Total number of ancillas mapped.
    pub fn n_ancillas(&self) -> usize {
        self.n_ancillas
    }

    /// Multiplexed channels per feedline group.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Number of feedline groups (= rows of the per-round shot batch).
    pub fn n_groups(&self) -> usize {
        self.n_ancillas.div_ceil(self.n_channels)
    }

    /// The `(group, channel)` slot of ancilla `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn slot(&self, a: usize) -> (usize, usize) {
        assert!(a < self.n_ancillas, "ancilla index out of range");
        (a / self.n_channels, a % self.n_channels)
    }

    /// The ancilla assigned to `(group, channel)`, or `None` for idle padding
    /// slots of the last group.
    pub fn ancilla(&self, group: usize, channel: usize) -> Option<usize> {
        assert!(group < self.n_groups(), "group index out of range");
        assert!(channel < self.n_channels, "channel index out of range");
        let a = group * self.n_channels + channel;
        (a < self.n_ancillas).then_some(a)
    }

    /// Packs the parities of one group's ancillas into the multi-qubit
    /// prepared state of its feedline shot (idle slots read ground).
    ///
    /// # Panics
    ///
    /// Panics if `parities` is shorter than the ancilla count or `group` is
    /// out of range.
    pub fn prepared_state(&self, group: usize, parities: &[bool]) -> BasisState {
        assert!(
            parities.len() >= self.n_ancillas,
            "one parity per ancilla required"
        );
        let mut state = BasisState::new(0);
        for c in 0..self.n_channels {
            if let Some(a) = self.ancilla(group, c) {
                state = state.with_qubit(c, parities[a]);
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_covers_every_ancilla_exactly_once() {
        // d = 7 → 24 ancillas on a 5-channel feedline → 5 groups.
        let map = AncillaMap::new(24, 5);
        assert_eq!(map.n_groups(), 5);
        let mut seen = [false; 24];
        for g in 0..map.n_groups() {
            for c in 0..map.n_channels() {
                if let Some(a) = map.ancilla(g, c) {
                    assert!(!seen[a], "ancilla {a} mapped twice");
                    seen[a] = true;
                    assert_eq!(map.slot(a), (g, c));
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "unmapped ancilla");
    }

    #[test]
    fn last_group_pads_with_idle_slots() {
        let map = AncillaMap::new(4, 5);
        assert_eq!(map.n_groups(), 1);
        assert_eq!(map.ancilla(0, 3), Some(3));
        assert_eq!(map.ancilla(0, 4), None);
    }

    #[test]
    fn prepared_state_packs_group_parities() {
        let map = AncillaMap::new(5, 2);
        let parities = [true, false, false, true, true];
        assert_eq!(map.prepared_state(0, &parities).bits(), 0b01);
        assert_eq!(map.prepared_state(1, &parities).bits(), 0b10);
        // Last group: ancilla 4 on channel 0, channel 1 idle (ground).
        assert_eq!(map.prepared_state(2, &parities).bits(), 0b01);
    }

    #[test]
    fn exact_tiling_has_no_padding() {
        let map = AncillaMap::new(10, 5);
        assert_eq!(map.n_groups(), 2);
        assert_eq!(map.ancilla(1, 4), Some(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_rejects_out_of_range_ancilla() {
        let _ = AncillaMap::new(4, 2).slot(4);
    }
}
