//! The engine's observability surface: latency histograms, counters and the
//! event trace, bundled as [`EngineTelemetry`].
//!
//! Every [`crate::CycleEngine`] owns one `EngineTelemetry`. By default it is
//! *unregistered* — private histograms and counters the engine records into
//! so [`crate::EngineStats`] can answer per-stage p50/p90/p99/max — but
//! [`EngineTelemetry::registered`] builds the same bundle on a
//! [`herqles_telemetry::Registry`] scope, which is how `bench_stream` exposes
//! per-engine metrics to the Prometheus-text and JSON exporters. Either way
//! the hot path is identical: recording is lock- and allocation-free, so the
//! engine's warm-cycle zero-allocation invariant (`tests/alloc.rs`) holds
//! with telemetry enabled.
//!
//! Exported metric families (all prefixed `herqles_`):
//!
//! | name | type | labels |
//! |------|------|--------|
//! | `herqles_stage_latency_ns` | histogram | `stage` = `synth` \| `discriminate` \| `syndrome` \| `decode` |
//! | `herqles_cycle_latency_ns` | histogram | — |
//! | `herqles_cycles_total` | counter | — |
//! | `herqles_rounds_total` | counter | — |
//! | `herqles_logical_errors_total` | counter | — |
//! | `herqles_degraded_decodes_total` | counter | — |
//! | `herqles_health_transitions_total` | counter | — |
//! | `herqles_hot_swaps_total` | counter | — |
//! | `herqles_trace_dropped_events` | gauge | — |
//!
//! Beyond the aggregate view, every engine carries a flight recorder: a
//! [`SpanRing`] of causal stage spans (begin timestamp + duration + track)
//! recorded from the same zero-alloc hot path, drainable into the
//! [`herqles_telemetry::ChromeTrace`] exporter. [`demo_alert_rules`]
//! provides the reference SLO alert set evaluated by `bench_stream` and
//! the `qec_stream` example.

use std::sync::Arc;

use herqles_telemetry::registry::Scope;
use herqles_telemetry::{
    AlertCondition, AlertRule, Counter, EventKind, Gauge, Histogram, Quantile, SpanKind, SpanRing,
    TraceRing,
};
use surface_code::decoder::DecodeOutcome;

use crate::engine::CycleStats;
use crate::health::HealthStatus;

/// Trace-ring capacity of an engine: roughly seven events per cycle, so 4096
/// slots retain the last ~580 cycles.
const TRACE_CAPACITY: usize = 4096;

/// Span-ring capacity of an engine: four stage spans per round plus three
/// per cycle, so 8192 slots retain the last ~60–250 cycles at d ∈ {3..9}.
const SPAN_CAPACITY: usize = 8192;

/// Scalar latency summary of one histogram: the percentile block
/// [`crate::EngineStats`] carries per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median estimate (≤ one bucket width, <1 % relative error).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest observation (exact).
    pub max: u64,
}

impl LatencySummary {
    fn of(hist: &Histogram) -> Self {
        let mut q = [0u64; 3];
        hist.quantiles(&[0.5, 0.9, 0.99], &mut q);
        LatencySummary {
            p50: q[0],
            p90: q[1],
            p99: q[2],
            max: hist.max(),
        }
    }
}

/// Per-stage latency percentiles over an engine's lifetime (or since the
/// last [`EngineTelemetry::clear`]). All values in nanoseconds per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatency {
    /// Waveform synthesis.
    pub synth: LatencySummary,
    /// Batched discrimination.
    pub discriminate: LatencySummary,
    /// Syndrome bookkeeping.
    pub syndrome: LatencySummary,
    /// Block decode.
    pub decode: LatencySummary,
    /// Whole cycle (sum of the stages, distributed per cycle).
    pub cycle: LatencySummary,
}

/// Maps a [`HealthStatus`] onto the stable `u64` payload trace events carry.
fn health_arg(status: HealthStatus) -> u64 {
    match status {
        HealthStatus::Nominal => 0,
        HealthStatus::Degraded => 1,
        HealthStatus::Critical => 2,
    }
}

/// The telemetry bundle one engine records into: five latency histograms
/// (per stage + whole cycle), six lifetime counters mirroring
/// [`crate::EngineStats`], and the event [`TraceRing`].
///
/// Recording is allocation-free; building ([`EngineTelemetry::new`] /
/// [`EngineTelemetry::registered`]) and draining
/// ([`EngineTelemetry::trace`]'s snapshot) are control-plane.
#[derive(Debug)]
pub struct EngineTelemetry {
    enabled: bool,
    synth: Arc<Histogram>,
    discriminate: Arc<Histogram>,
    syndrome: Arc<Histogram>,
    decode: Arc<Histogram>,
    cycle: Arc<Histogram>,
    cycles: Arc<Counter>,
    rounds: Arc<Counter>,
    logical_errors: Arc<Counter>,
    degraded_decodes: Arc<Counter>,
    health_transitions: Arc<Counter>,
    hot_swaps: Arc<Counter>,
    /// Ring-overwrite loss across `trace` + `spans`, refreshed per cycle so
    /// a scrape sees overflow instead of silence.
    dropped_events: Arc<Gauge>,
    trace: TraceRing,
    spans: SpanRing,
}

impl Default for EngineTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineTelemetry {
    /// A private (unregistered) bundle: the engine's default, feeding
    /// [`crate::EngineStats::latency`] without any registry.
    #[must_use]
    pub fn new() -> Self {
        EngineTelemetry {
            enabled: true,
            synth: Arc::new(Histogram::new()),
            discriminate: Arc::new(Histogram::new()),
            syndrome: Arc::new(Histogram::new()),
            decode: Arc::new(Histogram::new()),
            cycle: Arc::new(Histogram::new()),
            cycles: Arc::new(Counter::new()),
            rounds: Arc::new(Counter::new()),
            logical_errors: Arc::new(Counter::new()),
            degraded_decodes: Arc::new(Counter::new()),
            health_transitions: Arc::new(Counter::new()),
            hot_swaps: Arc::new(Counter::new()),
            dropped_events: Arc::new(Gauge::new()),
            trace: TraceRing::new(TRACE_CAPACITY),
            spans: SpanRing::new(SPAN_CAPACITY),
        }
    }

    /// The same bundle registered on `scope`, so the metrics show up in the
    /// scope's registry snapshots (and therefore in both exporters). The
    /// scope's labels — typically `engine="…"` — keep engines apart in a
    /// shared registry.
    #[must_use]
    pub fn registered(scope: &Scope<'_>) -> Self {
        let stage_help = "Per-cycle stage wall time in nanoseconds";
        let stage = |name: &str| {
            scope.histogram("herqles_stage_latency_ns", stage_help, &[("stage", name)])
        };
        EngineTelemetry {
            enabled: true,
            synth: stage("synth"),
            discriminate: stage("discriminate"),
            syndrome: stage("syndrome"),
            decode: stage("decode"),
            cycle: scope.histogram(
                "herqles_cycle_latency_ns",
                "Whole-cycle wall time in nanoseconds",
                &[],
            ),
            cycles: scope.counter("herqles_cycles_total", "Completed QEC cycles", &[]),
            rounds: scope.counter("herqles_rounds_total", "Noisy rounds processed", &[]),
            logical_errors: scope.counter(
                "herqles_logical_errors_total",
                "Logical errors observed",
                &[],
            ),
            degraded_decodes: scope.counter(
                "herqles_degraded_decodes_total",
                "Blocks whose decode overran the real-time budget",
                &[],
            ),
            health_transitions: scope.counter(
                "herqles_health_transitions_total",
                "Health-status transitions",
                &[],
            ),
            hot_swaps: scope.counter(
                "herqles_hot_swaps_total",
                "Discriminator hot-swaps performed",
                &[],
            ),
            dropped_events: scope.gauge(
                "herqles_trace_dropped_events",
                "Trace/span ring events lost to overwrite",
                &[],
            ),
            trace: TraceRing::new(TRACE_CAPACITY),
            spans: SpanRing::new(SPAN_CAPACITY),
        }
    }

    /// Whether the engine records into this bundle.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording. Disabled telemetry skips every
    /// histogram/counter/trace touch on the hot path (the A/B arm of
    /// `tests/overhead.rs`).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The event trace.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The flight recorder's stage-span ring (track 0 = the engine's stage
    /// lane; see [`herqles_telemetry::SpanEvent`]).
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Events lost to ring overwrite, trace + spans combined. Grows once
    /// either ring wraps — surfaced as the `herqles_trace_dropped_events`
    /// gauge and in [`crate::EngineStats::summary`].
    pub fn dropped_events(&self) -> u64 {
        self.trace.dropped() + self.spans.dropped()
    }

    /// Resets the five latency histograms (e.g. after warm-up, so reported
    /// percentiles cover only measured cycles). Counters and the trace keep
    /// their lifetime totals.
    pub fn clear_latency(&self) {
        self.synth.clear();
        self.discriminate.clear();
        self.syndrome.clear();
        self.decode.clear();
        self.cycle.clear();
    }

    /// Current per-stage latency percentiles. Allocation-free.
    #[must_use]
    pub fn stage_latency(&self) -> StageLatency {
        StageLatency {
            synth: LatencySummary::of(&self.synth),
            discriminate: LatencySummary::of(&self.discriminate),
            syndrome: LatencySummary::of(&self.syndrome),
            decode: LatencySummary::of(&self.decode),
            cycle: LatencySummary::of(&self.cycle),
        }
    }

    /// Stamps a cycle's start into the trace. Allocation-free.
    pub(crate) fn note_cycle_begin(&self, cycle_index: u64) {
        if self.enabled {
            self.trace.record(EventKind::CycleBegin, cycle_index);
        }
    }

    /// Folds one finished cycle into the histograms, counters and trace:
    /// stage spans, the cycle span, outcome counters, and any health
    /// transition observed during the cycle. Allocation-free.
    pub(crate) fn observe_cycle(
        &self,
        cycle_index: u64,
        stats: &CycleStats,
        outcome: &DecodeOutcome,
        transitions_delta: u64,
    ) {
        if !self.enabled {
            return;
        }
        let stage = &stats.stage;
        self.synth.record(stage.synth);
        self.discriminate.record(stage.discriminate);
        self.syndrome.record(stage.syndrome);
        self.decode.record(stage.decode);
        self.cycle.record(stage.total());

        self.cycles.inc();
        self.rounds.add(stats.rounds as u64);
        self.logical_errors.add(u64::from(outcome.logical_error));
        self.degraded_decodes.add(u64::from(outcome.degraded));
        self.health_transitions.add(transitions_delta);

        self.trace.record(EventKind::StageSynth, stage.synth);
        self.trace
            .record(EventKind::StageDiscriminate, stage.discriminate);
        self.trace.record(EventKind::StageSyndrome, stage.syndrome);
        self.trace.record(EventKind::StageDecode, stage.decode);
        if transitions_delta > 0 {
            self.trace
                .record(EventKind::HealthTransition, health_arg(stats.health));
        }
        if outcome.degraded {
            self.trace.record(EventKind::DegradedDecode, cycle_index);
        }
        self.trace.record(EventKind::CycleEnd, cycle_index);
        self.dropped_events.set(self.dropped_events() as f64);
    }

    /// Records one causal stage span on the engine's stage track (track 0).
    /// Allocation-free; no-op while disabled.
    #[inline]
    pub(crate) fn note_span(&self, kind: SpanKind, begin_ns: u64, dur_ns: u64, arg: u64) {
        if self.enabled {
            self.spans.record(kind, 0, begin_ns, dur_ns, arg);
        }
    }

    /// Stamps a discriminator hot-swap (`arg` = lifetime swap count after
    /// the swap) and bumps the swap counter. Allocation-free.
    pub(crate) fn note_hot_swap(&self, swap_count: u64) {
        if self.enabled {
            self.hot_swaps.inc();
            self.trace.record(EventKind::HotSwap, swap_count);
        }
    }

    /// Stamps an adaptive retrain that produced a new calibration.
    pub(crate) fn note_recal_trained(&self, cycle_index: u64) {
        if self.enabled {
            self.trace.record(EventKind::RecalTrained, cycle_index);
        }
    }

    /// Stamps an adaptive retrain attempt that declined (e.g. single-class
    /// harvest).
    pub(crate) fn note_recal_declined(&self, cycle_index: u64) {
        if self.enabled {
            self.trace.record(EventKind::RecalDeclined, cycle_index);
        }
    }
}

/// The reference SLO alert set for one (or a registry of) streaming
/// engine(s), matched against the `herqles_*` families
/// [`EngineTelemetry::registered`] exports:
///
/// * `decode_p99_high` — block-decode p99 above 5 ms (well clear of the
///   µs-scale nominal decode; fires only on genuine stalls);
/// * `degraded_decode_rate` — any decode-budget overrun between two
///   evaluations;
/// * `health_transitions` — any health-status transition between two
///   evaluations; clears only after six consecutive quiet evaluations, so
///   a drift-detect → hot-swap → recover episode renders as one
///   fire → hold → clear arc.
///
/// Evaluate with [`herqles_telemetry::AlertEngine`] at cycle or scrape
/// cadence.
#[must_use]
pub fn demo_alert_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::new(
            "decode_p99_high",
            "herqles_stage_latency_ns",
            AlertCondition::QuantileAbove {
                quantile: Quantile::P99,
                threshold: 5e6,
            },
        )
        .with_labels(&[("stage", "decode")])
        .with_hold_evals(2)
        .with_clear_evals(2),
        AlertRule::new(
            "degraded_decode_rate",
            "herqles_degraded_decodes_total",
            AlertCondition::RateAbove { per_eval: 0.0 },
        )
        .with_clear_evals(2),
        AlertRule::new(
            "health_transitions",
            "herqles_health_transitions_total",
            AlertCondition::RateAbove { per_eval: 0.0 },
        )
        .with_clear_evals(6),
    ]
}

/// Renders nanoseconds with a human unit (`ns`, `µs`, `ms`, `s`), three
/// significant-ish digits.
pub(crate) fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StageNanos;
    use herqles_telemetry::Registry;

    fn stats(synth: u64) -> CycleStats {
        CycleStats {
            rounds: 3,
            n_events: 2,
            stage: StageNanos {
                synth,
                discriminate: 200,
                syndrome: 300,
                decode: 400,
            },
            health: HealthStatus::Degraded,
        }
    }

    fn outcome() -> DecodeOutcome {
        DecodeOutcome {
            n_events: 2,
            west_matches: 0,
            logical_error: true,
            degraded: true,
        }
    }

    fn clean_outcome() -> DecodeOutcome {
        DecodeOutcome {
            n_events: 0,
            west_matches: 0,
            logical_error: false,
            degraded: false,
        }
    }

    #[test]
    fn observe_cycle_populates_everything() {
        let t = EngineTelemetry::new();
        t.note_cycle_begin(0);
        t.observe_cycle(0, &stats(100), &outcome(), 1);
        let lat = t.stage_latency();
        assert_eq!(lat.synth.p50, 100);
        assert_eq!(lat.decode.max, 400);
        assert_eq!(lat.cycle.p50, 1000);
        let events = t.trace().snapshot();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::CycleBegin,
                EventKind::StageSynth,
                EventKind::StageDiscriminate,
                EventKind::StageSyndrome,
                EventKind::StageDecode,
                EventKind::HealthTransition,
                EventKind::DegradedDecode,
                EventKind::CycleEnd,
            ]
        );
        assert_eq!(events[5].arg, health_arg(HealthStatus::Degraded));
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut t = EngineTelemetry::new();
        t.set_enabled(false);
        t.note_cycle_begin(0);
        t.observe_cycle(0, &stats(100), &outcome(), 1);
        t.note_hot_swap(1);
        assert_eq!(t.trace().recorded(), 0);
        assert_eq!(t.stage_latency(), StageLatency::default());
    }

    #[test]
    fn clear_latency_keeps_counters() {
        let t = EngineTelemetry::new();
        t.observe_cycle(0, &stats(100), &outcome(), 0);
        t.clear_latency();
        assert_eq!(t.stage_latency(), StageLatency::default());
        // Lifetime counters survive the clear.
        assert_eq!(t.cycles.get(), 1);
        assert_eq!(t.logical_errors.get(), 1);
    }

    #[test]
    fn registered_bundle_reaches_the_exporters() {
        let registry = Registry::new();
        let scope = registry.scope(&[("engine", "d3")]);
        let t = EngineTelemetry::registered(&scope);
        t.observe_cycle(0, &stats(100), &outcome(), 0);
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("herqles_cycles_total{engine=\"d3\"} 1"));
        assert!(text.contains(
            "herqles_stage_latency_ns{engine=\"d3\",stage=\"decode\",quantile=\"0.5\"} 400"
        ));
        assert!(text.contains("herqles_cycle_latency_ns_count{engine=\"d3\"} 1"));
    }

    #[test]
    fn note_span_lands_on_the_stage_track() {
        let t = EngineTelemetry::new();
        t.note_span(SpanKind::Synth, 1_000, 250, 0);
        t.note_span(SpanKind::Decode, 1_250, 80, 3);
        let spans = t.spans().snapshot();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.track == 0));
        assert_eq!(spans[0].kind, SpanKind::Synth);
        assert_eq!(spans[1].arg, 3);
        assert_eq!(t.dropped_events(), 0);

        let mut off = EngineTelemetry::new();
        off.set_enabled(false);
        off.note_span(SpanKind::Synth, 0, 1, 0);
        assert_eq!(off.spans().recorded(), 0);
    }

    #[test]
    fn demo_alert_rules_fire_on_drift_symptoms_and_clear() {
        use herqles_telemetry::{AlertEngine, AlertState, Registry};
        let registry = Registry::new();
        let scope = registry.scope(&[("engine", "demo")]);
        let t = EngineTelemetry::registered(&scope);
        let mut alerts = AlertEngine::registered(demo_alert_rules(), &registry.scope(&[]));

        // Quiet baseline: two evaluations, nothing fires.
        t.observe_cycle(0, &stats(100), &clean_outcome(), 0);
        alerts.evaluate(&registry.snapshot());
        t.observe_cycle(1, &stats(100), &clean_outcome(), 0);
        assert_eq!(alerts.evaluate(&registry.snapshot()), 0);
        assert_eq!(alerts.firing(), 0);

        // A drifted cycle: degraded decode + a health transition.
        t.observe_cycle(2, &stats(100), &outcome(), 1);
        assert_eq!(alerts.evaluate(&registry.snapshot()), 2);
        assert_eq!(alerts.firing(), 2);

        // Recovery: degraded clears after 2 quiet evals, transitions after 6.
        for i in 0..6 {
            t.observe_cycle(3 + i, &stats(100), &clean_outcome(), 0);
            alerts.evaluate(&registry.snapshot());
        }
        assert_eq!(alerts.firing(), 0);
        let statuses = alerts.statuses();
        for s in &statuses {
            if s.name == "decode_p99_high" {
                assert_eq!(s.fired, 0, "µs-scale decode must not trip the 5 ms SLO");
            } else {
                assert_eq!(s.fired, 1, "{} must have fired once", s.name);
                assert_eq!(s.cleared, 1, "{} must have cleared", s.name);
                assert_eq!(s.state, AlertState::Ok);
            }
        }
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(12_500), "12.5 µs");
        assert_eq!(fmt_ns(12_500_000), "12.5 ms");
        assert_eq!(fmt_ns(12_500_000_000), "12.50 s");
    }
}
