//! Allocation-free per-round ancilla readout synthesis.
//!
//! [`RoundSynth`] produces one feedline group's multiplexed ADC waveform per
//! call, written directly into a [`ShotBatch`] row. It performs exactly the
//! physics of `readout_sim`'s dataset generator — state-path sampling,
//! ring-up basebands, dispersive crosstalk, multiplexed synthesis with
//! amplifier noise — but through the `*_into` primitives
//! ([`readout_sim::trajectory::baseband_into`],
//! [`readout_sim::multiplex::synthesize_into`]) over buffers reused across
//! rounds, so the warm steady-state path touches the heap not at all.
//!
//! RNG draw order matches the materializing path (per-channel state paths in
//! channel order, then per-sample noise), so a streaming row and an offline
//! [`readout_sim::trace::IqTrace`] synthesized from the same RNG state are
//! bit-identical.

use herqles_num::Real;
use rand::{Rng, RngExt};
use readout_sim::crosstalk::CrosstalkScratch;
use readout_sim::drift::RoundFaults;
use readout_sim::events::{sample_path, StatePath};
use readout_sim::multiplex::{synthesize_into_scratch, CarrierTable, SynthScratch};
use readout_sim::trace::IqPoint;
use readout_sim::trajectory::{baseband_into_cached, ExcitationProbe, RingupTable};
use readout_sim::{BasisState, ChipConfig, GaussianNoise, ShotBatch};

/// Reusable synthesizer of one feedline group's readout shot.
///
/// Generic over the pipeline precision `R` ([`Real`], default `f64`): the
/// analog physics (state paths, ring-up basebands, crosstalk shifts) always
/// evolves in `f64` — it stands in for continuous voltages — while the
/// ADC-facing mixing, accumulation and amplifier-noise draws of
/// [`readout_sim::multiplex::synthesize_into`] run at `R`, writing directly
/// into a `ShotBatch<R>` row.
#[derive(Debug, Clone)]
pub struct RoundSynth<R: Real = f64> {
    chip: ChipConfig,
    carriers: CarrierTable,
    times: Vec<f64>,
    paths: Vec<StatePath>,
    basebands: Vec<Vec<IqPoint>>,
    measures: Vec<Vec<f64>>,
    /// Per-sample crosstalk transient factors, precomputed once (the sample
    /// clock never changes) so the hot loop evaluates no exponentials.
    transient: Vec<f64>,
    /// Per-qubit excitation geometry, precomputed so the per-sample measure
    /// needs no square roots.
    probes: Vec<ExcitationProbe>,
    /// Per-qubit closed-form ring-up tables (`dᵏ` decay powers on the fixed
    /// sample clock) driving the vectorizable baseband fill on SIMD arms.
    ringups: Vec<RingupTable>,
    xtalk: CrosstalkScratch,
    synth: SynthScratch<R>,
    /// ADC noise deviation at pipeline precision.
    sigma: R,
}

impl<R: Real> RoundSynth<R> {
    /// Builds a synthesizer for one feedline configuration, pre-sizing every
    /// scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`].
    pub fn new(chip: &ChipConfig) -> Self {
        chip.validate().expect("invalid chip configuration");
        let n = chip.n_qubits();
        let n_samples = chip.n_samples();
        // Half-sample offset: identical to the dataset generator's clock.
        let times: Vec<f64> = (0..n_samples)
            .map(|t| chip.sample_time(t) + 0.5 / chip.sample_rate_hz)
            .collect();
        RoundSynth {
            chip: chip.clone(),
            carriers: CarrierTable::new(chip),
            transient: chip.crosstalk.transient_table(&times),
            probes: chip.qubits.iter().map(ExcitationProbe::new).collect(),
            ringups: chip
                .qubits
                .iter()
                .map(|q| RingupTable::new(q, &times))
                .collect(),
            times,
            paths: Vec::with_capacity(n),
            basebands: vec![Vec::with_capacity(n_samples); n],
            measures: vec![Vec::with_capacity(n_samples); n],
            xtalk: CrosstalkScratch::new(),
            synth: SynthScratch::new(n_samples),
            sigma: R::from_f64(chip.adc_noise_sigma),
        }
    }

    /// Multiplexed channels per synthesized shot.
    pub fn n_channels(&self) -> usize {
        self.chip.n_qubits()
    }

    /// Raw ADC samples per synthesized shot.
    pub fn n_samples(&self) -> usize {
        self.times.len()
    }

    /// The chip configuration this synthesizer was built for.
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Synthesizes one feedline shot for `prepared` (bit `k` = channel `k`'s
    /// ancilla parity) and appends it to `batch` as a new row.
    ///
    /// Allocation-free once warm; RNG draws match the materializing
    /// generator: one state path per channel in channel order, then the
    /// per-sample amplifier noise.
    ///
    /// # Panics
    ///
    /// Panics if `batch` was sized for a different sample count.
    pub fn synth_into_row<G: Rng + ?Sized>(
        &mut self,
        prepared: BasisState,
        batch: &mut ShotBatch<R>,
        rng: &mut G,
    ) {
        self.synth_into_row_faulted(prepared, None, batch, rng);
    }

    /// Like [`RoundSynth::synth_into_row`] with an optional resolved fault
    /// snapshot; `None` is the nominal path, bit-identical to
    /// [`RoundSynth::synth_into_row`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` was sized for a different sample count.
    pub fn synth_into_row_faulted<G: Rng + ?Sized>(
        &mut self,
        prepared: BasisState,
        faults: Option<&RoundFaults>,
        batch: &mut ShotBatch<R>,
        rng: &mut G,
    ) {
        assert_eq!(
            batch.n_samples(),
            self.n_samples(),
            "batch sized for a different readout window"
        );
        let (i_row, q_row) = batch.push_empty_row();
        self.synth_into_slot_faulted(prepared, faults, i_row, q_row, rng);
    }

    /// Synthesizes one feedline shot straight into caller-owned channel
    /// slices — the shard-parallel entry point: each feedline-group shard of
    /// a pooled engine owns its own `RoundSynth` and writes its own
    /// pre-sized [`ShotBatch`] row, so groups synthesize concurrently with
    /// no shared mutable state.
    ///
    /// RNG draws and output are identical to [`RoundSynth::synth_into_row`].
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the synthesizer's sample count.
    pub fn synth_into_slot<G: Rng + ?Sized>(
        &mut self,
        prepared: BasisState,
        i_row: &mut [R],
        q_row: &mut [R],
        rng: &mut G,
    ) {
        self.synth_into_slot_faulted(prepared, None, i_row, q_row, rng);
    }

    /// [`RoundSynth::synth_into_slot`] with an optional resolved
    /// [`RoundFaults`] snapshot injected into the physics: per-channel IQ
    /// centroid shifts, |2⟩ leakage clouds, a feedline-wide crosstalk gain
    /// and an ADC-noise sigma multiplier.
    ///
    /// `faults: None` is the nominal path and is **bit-identical** to
    /// [`RoundSynth::synth_into_slot`] — every fault branch (including the
    /// per-shot leakage draw) is gated on the corresponding fault actually
    /// deviating from nominal, so the RNG draw sequence and all floating
    /// point values are untouched when no fault is active. A leaked channel
    /// replaces its state-path draws with a single leakage uniform, which
    /// stays inside the caller's per-group RNG stream: pooled and serial
    /// engines remain bit-identical under active fault injection.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the synthesizer's sample count, or
    /// the snapshot was sized for a different channel count.
    pub fn synth_into_slot_faulted<G: Rng + ?Sized>(
        &mut self,
        prepared: BasisState,
        faults: Option<&RoundFaults>,
        i_row: &mut [R],
        q_row: &mut [R],
        rng: &mut G,
    ) {
        assert_eq!(
            i_row.len(),
            self.n_samples(),
            "row sized for a different readout window"
        );
        assert_eq!(
            q_row.len(),
            self.n_samples(),
            "row sized for a different readout window"
        );
        if let Some(f) = faults {
            assert_eq!(
                f.n_qubits(),
                self.chip.n_qubits(),
                "fault snapshot sized for a different channel count"
            );
        }
        // 1. Per-channel state paths (relaxation / excitation / init errors).
        //    A channel with an active leakage fault first draws its per-shot
        //    leakage decision; a leaked shot consumes exactly that one
        //    uniform and skips the computational-state path entirely.
        let mut leaked: u32 = 0;
        self.paths.clear();
        for (k, params) in self.chip.qubits.iter().enumerate() {
            if let Some(f) = faults {
                let p = f.leak_prob(k);
                if p > 0.0 && rng.random::<f64>() < p {
                    leaked |= 1 << k;
                    self.paths.push(StatePath::Ground);
                    continue;
                }
            }
            let sampled = sample_path(params, prepared.qubit(k), self.chip.readout_duration_s, rng);
            self.paths.push(sampled.path);
        }
        // 2. Noiseless ring-up basebands. A leaked channel rings up from the
        //    origin toward its |2⟩ steady state instead; centroid drift then
        //    displaces the whole baseband (both clouds shift together).
        for (k, ((params, path), bb)) in self
            .chip
            .qubits
            .iter()
            .zip(&self.paths)
            .zip(&mut self.basebands)
            .enumerate()
        {
            if leaked & (1 << k) != 0 {
                let leak_ss = faults.expect("leak without faults").leak_ss(k);
                bb.clear();
                bb.extend(self.times.iter().map(|&t| {
                    let ringup = 1.0 - (-t / params.ringup_tau_s).exp();
                    leak_ss * ringup
                }));
            } else {
                baseband_into_cached(params, path, &self.times, &self.ringups[k], bb);
            }
            if let Some(f) = faults {
                let shift = f.centroid_shift(k);
                if shift != IqPoint::ZERO {
                    for s in bb.iter_mut() {
                        *s += shift;
                    }
                }
            }
        }
        // 3. Excitation measures driving the crosstalk model (computed on the
        //    faulted basebands: a drifted or leaked channel pulls neighbours
        //    according to where its resonator actually sits). Cached probes
        //    produce the same values as `excitation_measure` without the
        //    per-sample square roots.
        for ((probe, bb), meas) in self
            .probes
            .iter()
            .zip(&self.basebands)
            .zip(&mut self.measures)
        {
            meas.clear();
            meas.extend(bb.iter().map(|&s| probe.measure(s)));
        }
        // 4. Dispersive crosstalk shifts, applied as contiguous row passes
        //    (precomputed transient table, hoisted pair weights) — the same
        //    values the per-sample `shift_at` loop produced.
        let gain = faults.map_or(1.0, RoundFaults::crosstalk_gain);
        self.chip.crosstalk.apply_batch(
            &self.measures,
            &self.transient,
            gain,
            &mut self.basebands,
            &mut self.xtalk,
        );
        // 5. Multiplexed synthesis with amplifier noise, straight into the
        //    row (fresh noise state per shot, like the dataset path). Sigma
        //    scaling rebuilds the sampler only when the fault deviates, so
        //    the nominal noise stream is untouched bit for bit.
        let sigma_scale = faults.map_or(1.0, RoundFaults::sigma_scale);
        let sigma = if sigma_scale != 1.0 {
            self.sigma * R::from_f64(sigma_scale)
        } else {
            self.sigma
        };
        let mut noise = GaussianNoise::new(sigma);
        synthesize_into_scratch(
            &self.carriers,
            &self.basebands,
            &mut noise,
            rng,
            &mut self.synth,
            i_row,
            q_row,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_seed_same_row() {
        let chip = ChipConfig::two_qubit_test();
        let mut synth = RoundSynth::new(&chip);
        let run = |synth: &mut RoundSynth| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut batch: ShotBatch = ShotBatch::with_capacity(1, chip.n_samples());
            synth.synth_into_row(BasisState::new(0b10), &mut batch, &mut rng);
            batch
        };
        let a = run(&mut synth);
        let b = run(&mut synth);
        assert_eq!(a, b, "warm buffers must not leak state between rows");
        assert_eq!(a.n_shots(), 1);
        assert_eq!(a.n_samples(), chip.n_samples());
    }

    #[test]
    fn prepared_state_shapes_the_waveform() {
        let chip = ChipConfig::two_qubit_test();
        let mut synth = RoundSynth::new(&chip);
        let mut energy = |state: u32| -> f64 {
            let mut rng = StdRng::seed_from_u64(9);
            let mut batch: ShotBatch = ShotBatch::with_capacity(1, chip.n_samples());
            synth.synth_into_row(BasisState::new(state), &mut batch, &mut rng);
            batch.i_of(0).iter().map(|x| x * x).sum()
        };
        assert!((energy(0b00) - energy(0b11)).abs() > 1e-6);
    }

    #[test]
    fn inactive_fault_snapshot_is_bit_identical_to_nominal() {
        use readout_sim::drift::RoundFaults;
        let chip = ChipConfig::two_qubit_test();
        let mut synth = RoundSynth::new(&chip);
        let nominal = {
            let mut rng = StdRng::seed_from_u64(11);
            let mut batch: ShotBatch = ShotBatch::with_capacity(1, chip.n_samples());
            synth.synth_into_row(BasisState::new(0b01), &mut batch, &mut rng);
            batch
        };
        let faulted = {
            let rf = RoundFaults::nominal(chip.n_qubits());
            let mut rng = StdRng::seed_from_u64(11);
            let mut batch: ShotBatch = ShotBatch::with_capacity(1, chip.n_samples());
            synth.synth_into_row_faulted(BasisState::new(0b01), Some(&rf), &mut batch, &mut rng);
            batch
        };
        assert_eq!(nominal, faulted, "nominal snapshot must not perturb draws");
    }

    #[test]
    fn centroid_shift_displaces_the_row() {
        use readout_sim::drift::{DriftEvent, FaultPlan, RoundFaults};
        use readout_sim::IqPoint;
        let chip = ChipConfig::two_qubit_test();
        let mut synth = RoundSynth::new(&chip);
        let mut run = |faults: Option<&RoundFaults>| -> ShotBatch {
            let mut rng = StdRng::seed_from_u64(4);
            let mut batch: ShotBatch = ShotBatch::with_capacity(1, chip.n_samples());
            synth.synth_into_row_faulted(BasisState::new(0b00), faults, &mut batch, &mut rng);
            batch
        };
        let clean = run(None);
        let plan = FaultPlan::new(vec![DriftEvent::CentroidDrift {
            qubit: 0,
            start_round: 0,
            end_round: 0,
            delta: IqPoint::new(3.0, -1.0),
        }]);
        let mut rf = RoundFaults::nominal(chip.n_qubits());
        plan.resolve_into(0, &mut rf);
        let shifted = run(Some(&rf));
        assert_ne!(clean, shifted, "an active drift must change the waveform");
    }

    #[test]
    fn certain_leakage_rings_to_the_leak_cloud() {
        use readout_sim::drift::{DriftEvent, FaultPlan, RoundFaults};
        use readout_sim::IqPoint;
        let chip = ChipConfig::two_qubit_test();
        let mut synth = RoundSynth::new(&chip);
        let plan = FaultPlan::new(vec![DriftEvent::Leakage {
            qubit: 0,
            start_round: 0,
            end_round: 0,
            prob: 1.0,
            leak_ss: IqPoint::new(40.0, 40.0),
        }]);
        let mut rf = RoundFaults::nominal(chip.n_qubits());
        plan.resolve_into(0, &mut rf);
        let energy = |synth: &mut RoundSynth, faults: Option<&RoundFaults>| -> f64 {
            let mut rng = StdRng::seed_from_u64(8);
            let mut batch: ShotBatch = ShotBatch::with_capacity(1, chip.n_samples());
            synth.synth_into_row_faulted(BasisState::new(0b00), faults, &mut batch, &mut rng);
            batch.i_of(0).iter().map(|x| x * x).sum()
        };
        let clean = energy(&mut synth, None);
        let leaked = energy(&mut synth, Some(&rf));
        // A |2⟩ cloud parked at (40, 40) carries far more carrier energy
        // than either computational cloud.
        assert!(leaked > 2.0 * clean, "leaked {leaked} vs clean {clean}");
    }

    #[test]
    #[should_panic(expected = "different readout window")]
    fn rejects_mis_sized_batch() {
        let chip = ChipConfig::two_qubit_test();
        let mut synth: RoundSynth = RoundSynth::new(&chip);
        let mut batch = ShotBatch::with_capacity(1, 7);
        let mut rng = StdRng::seed_from_u64(0);
        synth.synth_into_row(BasisState::new(0), &mut batch, &mut rng);
    }
}
