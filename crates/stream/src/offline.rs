//! The offline (materializing) reference path.
//!
//! Runs exactly the same physics and discrimination as [`crate::CycleEngine`]
//! but the way the pre-streaming pipeline did it: every round materializes
//! one owned [`IqTrace`] per ancilla group and a fresh `Vec<BasisState>` of
//! decisions — the per-round allocation and re-layout cost the streaming
//! engine exists to eliminate. RNG draw order is identical to the engine's,
//! so for the same [`crate::CycleConfig`] the two paths produce bit-identical
//! [`SyndromeBlock`]s and [`DecodeOutcome`]s; the parity test in
//! `tests/parity.rs` pins that equivalence.

use herqles_core::Discriminator;
use herqles_exec::stream_seed;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use readout_sim::crosstalk::CrosstalkScratch;
use readout_sim::events::sample_path;
use readout_sim::multiplex::{synthesize, CarrierTable};
use readout_sim::trace::{IqPoint, IqTrace};
use readout_sim::trajectory::{baseband_into_cached, excitation_measure, RingupTable};
use readout_sim::{BasisState, ChipConfig, GaussianNoise};
use surface_code::decoder::DecodeOutcome;
use surface_code::{decode_block, NoiseParams, RotatedSurfaceCode, SyndromeBlock, SyndromeSim};

use crate::engine::CycleConfig;
use crate::map::AncillaMap;

/// One offline cycle: the materialized block plus its decode verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineCycle {
    /// The assembled syndrome block.
    pub block: SyndromeBlock,
    /// The decoder's verdict on it.
    pub outcome: DecodeOutcome,
}

/// Materializes one feedline shot with freshly allocated buffers
/// ([`baseband_into_cached`] into new `Vec`s, [`synthesize`]); RNG draws
/// match [`crate::RoundSynth::synth_into_row`] exactly.
fn synth_trace<R: Rng + ?Sized>(
    chip: &ChipConfig,
    carriers: &CarrierTable,
    times: &[f64],
    ringups: &[RingupTable],
    prepared: BasisState,
    rng: &mut R,
) -> IqTrace {
    let n = chip.n_qubits();
    let mut paths = Vec::with_capacity(n);
    for (k, params) in chip.qubits.iter().enumerate() {
        paths.push(sample_path(params, prepared.qubit(k), chip.readout_duration_s, rng).path);
    }
    // Basebands ride the same closed-form ring-up tables as the streaming
    // engine (falling back to the sequential reference on the scalar arm),
    // so engine/offline parity stays bit-exact on every backend.
    let mut basebands: Vec<Vec<IqPoint>> = chip
        .qubits
        .iter()
        .zip(&paths)
        .zip(ringups)
        .map(|((params, path), table)| {
            let mut bb = Vec::new();
            baseband_into_cached(params, path, times, table, &mut bb);
            bb
        })
        .collect();
    let measures: Vec<Vec<f64>> = chip
        .qubits
        .iter()
        .zip(&basebands)
        .map(|(params, bb)| bb.iter().map(|&s| excitation_measure(params, s)).collect())
        .collect();
    // Crosstalk rides the same batched pass as the streaming engine — the
    // AVX2 kernels use FMA, so routing both paths through one implementation
    // is what keeps engine/offline parity bit-exact on every backend.
    let transient = chip.crosstalk.transient_table(times);
    let mut scratch = CrosstalkScratch::new();
    chip.crosstalk
        .apply_batch(&measures, &transient, 1.0, &mut basebands, &mut scratch);
    let mut noise = GaussianNoise::new(chip.adc_noise_sigma);
    synthesize(carriers, &basebands, &mut noise, rng)
}

/// Runs `n_cycles` full readout → syndrome → decode cycles on the
/// materializing path.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::CycleEngine::new`].
pub fn run_cycles_offline(
    cfg: &CycleConfig,
    chip: &ChipConfig,
    code: &RotatedSurfaceCode,
    disc: &dyn Discriminator,
    n_cycles: usize,
) -> Vec<OfflineCycle> {
    cfg.validate();
    assert_eq!(
        disc.n_qubits(),
        chip.n_qubits(),
        "discriminator and chip must cover the same channels"
    );
    chip.validate().expect("invalid chip configuration");
    let carriers = CarrierTable::new(chip);
    let times: Vec<f64> = (0..chip.n_samples())
        .map(|t| chip.sample_time(t) + 0.5 / chip.sample_rate_hz)
        .collect();
    let ringups: Vec<RingupTable> = chip
        .qubits
        .iter()
        .map(|q| RingupTable::new(q, &times))
        .collect();
    let map = AncillaMap::new(code.n_stabilizers(), chip.n_qubits());
    let noise = NoiseParams {
        data_error_prob: cfg.data_error_prob,
        meas_error_prob: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut out = Vec::with_capacity(n_cycles);
    for _ in 0..n_cycles {
        let mut sim = SyndromeSim::new(code, &noise);
        let mut parities = vec![false; code.n_stabilizers()];
        for _ in 0..cfg.rounds {
            sim.apply_data_errors(&mut rng);
            sim.true_parities_into(&mut parities);
            // One entropy word per round; every group synthesizes from its
            // own stream_seed-derived RNG — the same scheme as the engine
            // (serial and pooled), so all three paths stay bit-identical.
            let entropy: u64 = rng.random();
            // Materialize every group's trace — the per-round allocations
            // the streaming engine removes.
            let traces: Vec<IqTrace> = (0..map.n_groups())
                .map(|g| {
                    let prepared = map.prepared_state(g, &parities);
                    let mut group_rng = StdRng::seed_from_u64(stream_seed(entropy, g as u64));
                    synth_trace(chip, &carriers, &times, &ringups, prepared, &mut group_rng)
                })
                .collect();
            let refs: Vec<&IqTrace> = traces.iter().collect();
            let states: Vec<BasisState> = disc.discriminate_batch(&refs);
            let measured: Vec<bool> = (0..map.n_ancillas())
                .map(|a| {
                    let (g, c) = map.slot(a);
                    states[g].qubit(c)
                })
                .collect();
            sim.record_measured_syndrome(&measured);
        }
        sim.finish_perfect_round();
        let block = sim.into_block();
        let outcome = decode_block(code, &block);
        out.push(OfflineCycle { block, outcome });
    }
    out
}
