//! # herqles-stream — streaming QEC-cycle engine
//!
//! The paper's end goal is not offline figure reproduction but low-latency
//! qubit-state discrimination feeding *real-time error correction*. This
//! crate closes that loop: it runs full distance-`d` surface-code cycles as
//! one batch pipeline,
//!
//! ```text
//! data errors ─▶ true parities ─▶ ancilla readout synthesis (sim)
//!        ─▶ fused demod + matched-filter discrimination (dsp/core)
//!        ─▶ measured syndrome → detection events (qec)
//!        ─▶ decode → logical verdict
//! ```
//!
//! with **no intermediate `Vec<BasisState>` and no per-round allocation
//! after warm-up**. The measurement error εR of the phenomenological model
//! is replaced by the physical thing it abstracts: misdiscrimination of
//! synthesized multiplexed readout waveforms.
//!
//! * [`CycleEngine`] — the engine: double-buffered blocks, reusable
//!   [`engine::RoundBuffers`], a blocking [`CycleEngine::run_cycles`] API and a
//!   pull-based [`CycleEngine::cycles`] iterator with per-stage timings;
//! * [`ParallelCycleEngine`] — the same engine on a
//!   [`herqles_exec::ShardPool`] ([`CycleEngine::with_pool`]): feedline
//!   groups become shards, each owning its [`RoundSynth`], and round `t+1`'s
//!   synthesis overlaps round `t`'s discriminate → syndrome → decode.
//!   Bit-identical to the serial engine at every pool size, zero-allocation
//!   once warm;
//! * [`RoundSynth`] — allocation-free per-round multiplexed readout
//!   synthesis straight into [`readout_sim::ShotBatch`] rows;
//! * [`AncillaMap`] — tiling of the code's ancillas onto
//!   frequency-multiplexed feedline groups (batch rows);
//! * [`run_cycles_offline`] — the materializing reference path, bit-identical
//!   to the engine for the same [`CycleConfig`] (pinned by
//!   `tests/parity.rs`).
//!
//! # Example
//!
//! ```
//! use herqles_stream::{train_mf_discriminator, CycleConfig, CycleEngine};
//! use readout_sim::ChipConfig;
//! use surface_code::RotatedSurfaceCode;
//!
//! let chip = ChipConfig::two_qubit_test();
//! let code = RotatedSurfaceCode::new(3);
//! let disc = train_mf_discriminator(&chip, 8, 42);
//! let cfg = CycleConfig {
//!     rounds: 3,
//!     data_error_prob: 0.01,
//!     seed: 7,
//! };
//! let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
//! for result in engine.cycles().take(3) {
//!     assert_eq!(result.stats.rounds, 3);
//! }
//! ```

pub mod engine;
pub mod health;
pub mod map;
pub mod offline;
pub mod recal;
pub mod synth;
pub mod telemetry;

pub use engine::{
    CycleConfig, CycleEngine, CycleResult, CycleStats, Cycles, EngineStats, ParallelCycleEngine,
    StageNanos,
};
pub use health::{HealthConfig, HealthMonitor, HealthStatus};
pub use herqles_exec::{stream_seed, PoolTelemetry, ShardPool};
pub use map::AncillaMap;
pub use offline::{run_cycles_offline, OfflineCycle};
pub use readout_sim::{DriftEvent, FaultPlan, RoundFaults};
pub use recal::{AdaptiveMf, RecalConfig, Recalibrate};
pub use synth::RoundSynth;
pub use telemetry::{demo_alert_rules, EngineTelemetry, LatencySummary, StageLatency};

use herqles_core::designs::DesignKind;
use herqles_core::designs::MfDiscriminator;
use herqles_core::{Discriminator, ReadoutTrainer};
use readout_sim::{ChipConfig, Dataset};

pub use herqles_core::{PrecisionDiscriminator, Real};

/// Trains the `mf` discriminator (the engine's default workhorse: fused
/// demod + matched-filter GEMM, zero-allocation batch override) on a
/// synthetic calibration dataset of `shots_per_state` shots per basis state.
///
/// Convenience for examples, benches and tests; production callers train via
/// [`herqles_core::ReadoutTrainer`] directly and can pass any design to
/// [`CycleEngine::new`].
pub fn train_mf_discriminator(
    chip: &ChipConfig,
    shots_per_state: usize,
    seed: u64,
) -> Box<dyn Discriminator> {
    let dataset = Dataset::generate(chip, shots_per_state, seed);
    let split = dataset.split(0.5, 0.0, seed ^ 0xA5A5);
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    trainer.train(DesignKind::Mf)
}

/// Like [`train_mf_discriminator`] but with the concrete
/// [`MfDiscriminator`] type, for callers that want a non-default pipeline
/// precision: a `&dyn Discriminator` only drives `CycleEngine<f64>`, while a
/// concrete design implements `PrecisionDiscriminator<f32>` and can power
/// `CycleEngine::<f32, _>::new(cfg, &chip, &code, &disc)`. Trained on the
/// same calibration dataset and split as the type-erased variant, so the two
/// produce identical discriminators.
pub fn train_mf_discriminator_typed(
    chip: &ChipConfig,
    shots_per_state: usize,
    seed: u64,
) -> MfDiscriminator {
    let dataset = Dataset::generate(chip, shots_per_state, seed);
    let split = dataset.split(0.5, 0.0, seed ^ 0xA5A5);
    let mut trainer = ReadoutTrainer::new(&dataset, &split.train);
    trainer.train_mf()
}
