//! Online channel-health monitoring for the streaming engine.
//!
//! [`HealthMonitor`] watches two per-round signals the engine already
//! produces — the mean discriminator *soft margin* (distance of the decision
//! statistic from its boundary, via
//! [`herqles_core::Discriminator::soft_margins`]) and the per-ancilla
//! *defect rate* (syndrome flips between consecutive rounds) — and folds
//! each into an EWMA. The first `baseline_rounds` rounds freeze a baseline;
//! afterwards the monitor classifies every round into a
//! [`HealthStatus`]:
//!
//! * **Nominal** — margins near baseline, defects near baseline;
//! * **Degraded** — margin EWMA fell below `degraded_margin_ratio` of its
//!   baseline, or the defect EWMA rose above `degraded_defect_factor`
//!   times its baseline;
//! * **Critical** — the same signals past the `critical_*` thresholds.
//!
//! Transitions are debounced twice: a candidate status must persist for
//! `hold_rounds` consecutive rounds before it is adopted, and recovering
//! toward Nominal must clear the thresholds by an extra `hysteresis` band so
//! the status does not flap on a signal hovering at a boundary. The monitor
//! is fixed-size after construction: observing a round allocates nothing.
//!
//! Margins are a *leading* indicator — under IQ centroid drift the margin
//! EWMA collapses before the logical error rate visibly moves — while the
//! defect rate is the *confirming* one and also covers discriminators that
//! report no margins (`soft_margins` returning `false` simply drops the
//! margin signal).

/// Channel health verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthStatus {
    /// Signals within the calibrated baseline band.
    #[default]
    Nominal,
    /// Sustained margin collapse or defect-rate inflation: recalibration
    /// recommended.
    Degraded,
    /// Severe deviation: the discriminator is likely mislabeling shots
    /// wholesale.
    Critical,
}

impl HealthStatus {
    fn severity(self) -> u8 {
        match self {
            HealthStatus::Nominal => 0,
            HealthStatus::Degraded => 1,
            HealthStatus::Critical => 2,
        }
    }
}

/// Tuning of a [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// EWMA weight of each new round (for both margin and defect rate).
    pub alpha: f64,
    /// Rounds used to freeze the baseline; the status is Nominal throughout.
    pub baseline_rounds: u64,
    /// Margin EWMA below this fraction of baseline ⇒ Degraded.
    pub degraded_margin_ratio: f64,
    /// Margin EWMA below this fraction of baseline ⇒ Critical.
    pub critical_margin_ratio: f64,
    /// Defect EWMA above this multiple of baseline ⇒ Degraded.
    pub degraded_defect_factor: f64,
    /// Defect EWMA above this multiple of baseline ⇒ Critical.
    pub critical_defect_factor: f64,
    /// Extra ratio band a signal must clear to *recover* toward a less
    /// severe status (anti-flap).
    pub hysteresis: f64,
    /// Consecutive rounds a candidate status must persist before adoption.
    pub hold_rounds: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha: 0.08,
            baseline_rounds: 32,
            degraded_margin_ratio: 0.75,
            critical_margin_ratio: 0.45,
            degraded_defect_factor: 2.5,
            critical_defect_factor: 6.0,
            hysteresis: 0.05,
            hold_rounds: 4,
        }
    }
}

/// EWMA-based drift detector over soft margins and defect rates.
///
/// Fixed-size after construction; [`HealthMonitor::observe_round`] performs
/// no heap allocation.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    status: HealthStatus,
    rounds: u64,
    margin_ewma: f64,
    defect_ewma: f64,
    margin_acc: f64,
    margin_obs: u64,
    defect_acc: f64,
    baseline_margin: f64,
    baseline_defect: f64,
    pending: HealthStatus,
    pending_rounds: u32,
    transitions: u64,
    prev_measured: Vec<bool>,
}

/// Floor for the defect-rate baseline: keeps the inflation factor finite on
/// channels whose calibration window happened to see almost no defects.
const DEFECT_FLOOR: f64 = 0.01;

impl HealthMonitor {
    /// A monitor for `n_ancillas` syndrome bits.
    pub fn new(cfg: HealthConfig, n_ancillas: usize) -> Self {
        HealthMonitor {
            cfg,
            status: HealthStatus::Nominal,
            rounds: 0,
            margin_ewma: 0.0,
            defect_ewma: 0.0,
            margin_acc: 0.0,
            margin_obs: 0,
            defect_acc: 0.0,
            baseline_margin: 0.0,
            baseline_defect: 0.0,
            pending: HealthStatus::Nominal,
            pending_rounds: 0,
            transitions: 0,
            prev_measured: vec![false; n_ancillas],
        }
    }

    /// Current status.
    pub fn status(&self) -> HealthStatus {
        self.status
    }

    /// Completed status transitions since construction (or the last
    /// [`HealthMonitor::recalibrated`]).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Rounds observed since the last (re)baseline.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether the baseline window has completed.
    pub fn is_calibrated(&self) -> bool {
        self.rounds >= self.cfg.baseline_rounds
    }

    /// Current margin EWMA (0 until a margin has been observed).
    pub fn margin_ewma(&self) -> f64 {
        self.margin_ewma
    }

    /// Current defect-rate EWMA.
    pub fn defect_ewma(&self) -> f64 {
        self.defect_ewma
    }

    /// Marks a block boundary: defect comparison restarts from the all-clear
    /// reference, mirroring the syndrome convention that round 0 of a block
    /// compares against perfectly prepared ancillas.
    pub fn begin_block(&mut self) {
        self.prev_measured.fill(false);
    }

    /// Resets baseline and status for a fresh calibration epoch — called
    /// after a discriminator hot-swap, whose new feature scale invalidates
    /// the old margin baseline. The transition counter is cumulative and
    /// survives.
    pub fn recalibrated(&mut self) {
        self.status = HealthStatus::Nominal;
        self.rounds = 0;
        self.margin_ewma = 0.0;
        self.defect_ewma = 0.0;
        self.margin_acc = 0.0;
        self.margin_obs = 0;
        self.defect_acc = 0.0;
        self.baseline_margin = 0.0;
        self.baseline_defect = 0.0;
        self.pending = HealthStatus::Nominal;
        self.pending_rounds = 0;
    }

    /// Feeds one round: the mean soft margin over live ancilla channels
    /// (`None` when the discriminator reports no margins) and the measured
    /// syndrome bits. Returns the (possibly updated) status.
    ///
    /// # Panics
    ///
    /// Panics if `measured` has a different length than at construction.
    pub fn observe_round(&mut self, mean_margin: Option<f64>, measured: &[bool]) -> HealthStatus {
        assert_eq!(
            measured.len(),
            self.prev_measured.len(),
            "monitor sized for a different ancilla count"
        );
        let mut defects = 0usize;
        for (prev, &m) in self.prev_measured.iter_mut().zip(measured) {
            defects += usize::from(*prev != m);
            *prev = m;
        }
        let defect_rate = defects as f64 / measured.len().max(1) as f64;
        self.rounds += 1;

        if let Some(m) = mean_margin {
            self.margin_acc += m;
            self.margin_obs += 1;
        }
        self.defect_acc += defect_rate;

        if self.rounds <= self.cfg.baseline_rounds {
            // Baseline window: track running means, stay Nominal.
            if self.margin_obs > 0 {
                self.margin_ewma = self.margin_acc / self.margin_obs as f64;
            }
            self.defect_ewma = self.defect_acc / self.rounds as f64;
            if self.rounds == self.cfg.baseline_rounds {
                self.baseline_margin = self.margin_ewma;
                self.baseline_defect = self.defect_ewma.max(DEFECT_FLOOR);
            }
            return self.status;
        }

        if let Some(m) = mean_margin {
            self.margin_ewma += self.cfg.alpha * (m - self.margin_ewma);
        }
        self.defect_ewma += self.cfg.alpha * (defect_rate - self.defect_ewma);

        let raw = self.classify();
        if raw == self.status {
            self.pending = raw;
            self.pending_rounds = 0;
        } else {
            if raw == self.pending {
                self.pending_rounds += 1;
            } else {
                self.pending = raw;
                self.pending_rounds = 1;
            }
            if self.pending_rounds >= self.cfg.hold_rounds {
                self.status = raw;
                self.pending_rounds = 0;
                self.transitions += 1;
            }
        }
        self.status
    }

    /// Classifies the current EWMAs, applying the hysteresis band in the
    /// recovery direction only.
    fn classify(&self) -> HealthStatus {
        let recovering_from = self.status.severity();
        let margin_ratio = if self.baseline_margin > 0.0 && self.margin_obs > 0 {
            Some(self.margin_ewma / self.baseline_margin)
        } else {
            None
        };
        let defect_factor = self.defect_ewma / self.baseline_defect;

        let level = |severity: u8, margin_cut: f64, defect_cut: f64| -> bool {
            // Recovering below `severity` must clear the cuts by the
            // hysteresis band; escalation uses them as-is.
            let h = if recovering_from >= severity {
                self.cfg.hysteresis
            } else {
                0.0
            };
            margin_ratio.is_some_and(|r| r < margin_cut + h)
                || defect_factor > defect_cut * (1.0 - h)
        };

        if level(
            2,
            self.cfg.critical_margin_ratio,
            self.cfg.critical_defect_factor,
        ) {
            HealthStatus::Critical
        } else if level(
            1,
            self.cfg.degraded_margin_ratio,
            self.cfg.degraded_defect_factor,
        ) {
            HealthStatus::Degraded
        } else {
            HealthStatus::Nominal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            baseline_rounds: 8,
            hold_rounds: 3,
            ..HealthConfig::default()
        }
    }

    fn feed(mon: &mut HealthMonitor, margin: f64, rounds: usize) -> HealthStatus {
        let quiet = vec![false; mon.prev_measured.len()];
        let mut s = mon.status();
        for _ in 0..rounds {
            s = mon.observe_round(Some(margin), &quiet);
        }
        s
    }

    #[test]
    fn stays_nominal_on_steady_signals() {
        let mut mon = HealthMonitor::new(cfg(), 4);
        assert_eq!(feed(&mut mon, 2.0, 50), HealthStatus::Nominal);
        assert!(mon.is_calibrated());
        assert_eq!(mon.transitions(), 0);
    }

    #[test]
    fn margin_collapse_degrades_then_recovers_with_hysteresis() {
        let mut mon = HealthMonitor::new(cfg(), 4);
        feed(&mut mon, 2.0, 20);
        // Collapse the margin: EWMA decays toward 0.5 → ratio 0.25.
        let s = feed(&mut mon, 0.5, 40);
        assert_ne!(s, HealthStatus::Nominal, "collapsed margins must trip");
        assert!(mon.transitions() >= 1);
        // Full recovery back above the band.
        let s = feed(&mut mon, 2.0, 80);
        assert_eq!(s, HealthStatus::Nominal);
    }

    #[test]
    fn defect_storm_escalates_to_critical() {
        let mut mon = HealthMonitor::new(cfg(), 4);
        let quiet = vec![false; 4];
        for _ in 0..12 {
            mon.observe_round(Some(2.0), &quiet);
        }
        // Every ancilla flips every round: defect rate 1.0 ≫ baseline floor.
        let mut buf = [false; 4];
        let mut s = mon.status();
        for r in 0..20 {
            buf.fill(r % 2 == 0);
            s = mon.observe_round(Some(2.0), &buf);
        }
        assert_eq!(s, HealthStatus::Critical);
    }

    #[test]
    fn hold_rounds_debounce_single_round_glitches() {
        let mut mon = HealthMonitor::new(cfg(), 4);
        feed(&mut mon, 2.0, 20);
        // One bad round is not enough to transition.
        feed(&mut mon, 0.0, 1);
        assert_eq!(mon.status(), HealthStatus::Nominal);
        feed(&mut mon, 2.0, 5);
        assert_eq!(mon.status(), HealthStatus::Nominal);
        assert_eq!(mon.transitions(), 0);
    }

    #[test]
    fn margin_free_discriminators_still_get_defect_monitoring() {
        let mut mon = HealthMonitor::new(cfg(), 4);
        let quiet = vec![false; 4];
        for _ in 0..12 {
            mon.observe_round(None, &quiet);
        }
        assert_eq!(mon.status(), HealthStatus::Nominal);
        let mut buf = [false; 4];
        let mut s = mon.status();
        for r in 0..20 {
            buf.fill(r % 2 == 0);
            s = mon.observe_round(None, &buf);
        }
        assert_ne!(s, HealthStatus::Nominal);
    }

    #[test]
    fn recalibrated_resets_baseline_but_keeps_transition_count() {
        let mut mon = HealthMonitor::new(cfg(), 4);
        feed(&mut mon, 2.0, 20);
        feed(&mut mon, 0.2, 40);
        let trips = mon.transitions();
        assert!(trips >= 1);
        mon.recalibrated();
        assert_eq!(mon.status(), HealthStatus::Nominal);
        assert!(!mon.is_calibrated());
        assert_eq!(mon.transitions(), trips);
        // A fresh epoch at a new margin scale calibrates cleanly.
        assert_eq!(feed(&mut mon, 10.0, 30), HealthStatus::Nominal);
    }

    #[test]
    fn block_boundary_resets_defect_reference() {
        let mut mon = HealthMonitor::new(cfg(), 2);
        mon.observe_round(None, &[true, true]);
        mon.begin_block();
        // Same pattern again: relative to the cleared reference these are
        // defects again, not a steady state — exactly the syndrome
        // convention.
        mon.observe_round(None, &[true, true]);
        assert!(mon.defect_ewma() > 0.0);
    }
}
