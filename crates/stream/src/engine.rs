//! The streaming QEC-cycle engine.
//!
//! [`CycleEngine`] runs full distance-`d` surface-code cycles as one batch
//! pipeline: each noisy round it applies data errors, reads the true
//! stabilizer parities, synthesizes every ancilla group's multiplexed
//! readout waveform directly into a reusable [`ShotBatch`], discriminates
//! the batch through the fused demod + matched-filter kernel, and commits
//! the *measured* syndrome to a [`SyndromeSim`] — the measurement error εR
//! emerges from physical misdiscrimination instead of a phenomenological
//! coin flip. Blocks terminate with a perfect round, are copied into one of
//! two double-buffered [`SyndromeBlock`] homes, and decoded.
//!
//! After a warm-up cycle the per-round path performs **zero heap
//! allocation**: every buffer ([`RoundBuffers`], the synth scratch, the
//! syndrome stepper's event store) is pre-sized and reused. The engine
//! exposes a blocking [`CycleEngine::run_cycles`] API and a pull-based
//! [`CycleEngine::cycles`] iterator of [`CycleResult`]s carrying per-stage
//! nanosecond timings.

use std::time::Instant;

use herqles_core::{Discriminator, PrecisionDiscriminator, Real};
use rand::rngs::StdRng;
use rand::SeedableRng;
use readout_sim::{BasisState, ChipConfig, ShotBatch};
use surface_code::decoder::DecodeOutcome;
use surface_code::{decode_block, NoiseParams, RotatedSurfaceCode, SyndromeBlock, SyndromeSim};

use crate::map::AncillaMap;
use crate::synth::RoundSynth;

/// Configuration of a streaming cycle run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleConfig {
    /// Noisy stabilizer-measurement rounds per block (commonly `d`).
    pub rounds: usize,
    /// Per-round, per-data-qubit `X` error probability.
    pub data_error_prob: f64,
    /// RNG seed of the whole stream (data errors + readout physics).
    pub seed: u64,
}

impl CycleConfig {
    /// Defaults for a distance-`d` run: `d` rounds, `p = 4·10⁻³` (the
    /// operating point of the paper's Fig. 13 study), seed 0.
    pub fn for_distance(distance: usize) -> Self {
        CycleConfig {
            rounds: distance,
            data_error_prob: 4e-3,
            seed: 0,
        }
    }
}

/// Cumulative per-stage wall time, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Waveform synthesis (state paths, basebands, crosstalk, multiplexing).
    pub synth: u64,
    /// Batched discrimination (fused demod + matched filter + thresholds).
    pub discriminate: u64,
    /// Syndrome bookkeeping (data errors, parities, detection events).
    pub syndrome: u64,
    /// Block decode (matching + logical-class decision).
    pub decode: u64,
}

impl StageNanos {
    /// Sum over all stages.
    pub fn total(&self) -> u64 {
        self.synth + self.discriminate + self.syndrome + self.decode
    }

    /// Accumulates another stage breakdown into this one.
    pub fn add(&mut self, other: &StageNanos) {
        self.synth += other.synth;
        self.discriminate += other.discriminate;
        self.syndrome += other.syndrome;
        self.decode += other.decode;
    }
}

/// Timing and size statistics of one completed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleStats {
    /// Noisy rounds in the block.
    pub rounds: usize,
    /// Detection events decoded.
    pub n_events: usize,
    /// Per-stage wall time of this cycle.
    pub stage: StageNanos,
}

/// One completed streaming cycle: the decode verdict plus its timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleResult {
    /// Decoder outcome of the block.
    pub outcome: DecodeOutcome,
    /// Stage timings and block size.
    pub stats: CycleStats,
}

/// Aggregate statistics over an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Completed cycles.
    pub cycles: u64,
    /// Noisy rounds processed.
    pub rounds: u64,
    /// Logical errors observed.
    pub logical_errors: u64,
    /// Cumulative per-stage wall time.
    pub stage: StageNanos,
}

/// The reusable per-round working set: one shot batch, the parity planes and
/// the discriminator's scratch + output buffers, all at the engine's
/// pipeline precision `R`. Everything is pre-sized at engine construction
/// and recycled every round.
#[derive(Debug, Clone)]
pub struct RoundBuffers<R: Real = f64> {
    batch: ShotBatch<R>,
    true_parities: Vec<bool>,
    measured: Vec<bool>,
    states: Vec<BasisState>,
    features: Vec<R>,
}

impl<R: Real> RoundBuffers<R> {
    fn new(map: &AncillaMap, n_samples: usize) -> Self {
        RoundBuffers {
            batch: ShotBatch::with_capacity(map.n_groups(), n_samples),
            true_parities: vec![false; map.n_ancillas()],
            measured: vec![false; map.n_ancillas()],
            states: Vec::with_capacity(map.n_groups()),
            features: Vec::new(),
        }
    }
}

/// Streaming readout → syndrome → decode engine for one surface code, one
/// feedline chip, and one trained discriminator.
///
/// Generic over the pipeline precision `R` ([`Real`], default `f64`) and the
/// discriminator type `D`. The defaults make `CycleEngine::new(cfg, &chip,
/// &code, &dyn_disc)` mean exactly what it always did — a double-precision
/// engine behind a `&dyn Discriminator`, bit-identical to the offline
/// reference. Instantiating with `R = f32` and a concrete fused design (e.g.
/// `CycleEngine::<f32, _>::new(cfg, &chip, &code, &mf)`) runs the whole
/// readout → syndrome → decode round — waveform synthesis included — in
/// single precision, with the same zero-allocation steady state.
pub struct CycleEngine<'a, R: Real = f64, D: ?Sized = dyn Discriminator + 'a> {
    cfg: CycleConfig,
    code: &'a RotatedSurfaceCode,
    disc: &'a D,
    map: AncillaMap,
    rng: StdRng,
    synth: RoundSynth<R>,
    sim: SyndromeSim<'a>,
    round: RoundBuffers<R>,
    /// Double-buffered block homes: the block finished last cycle stays
    /// readable (via [`CycleEngine::last_block`]) while the next cycle's
    /// rounds accumulate, and block storage is never reallocated.
    blocks: [SyndromeBlock; 2],
    active: usize,
    in_flight: StageNanos,
    totals: EngineStats,
}

impl<'a, R: Real, D: ?Sized + PrecisionDiscriminator<R>> CycleEngine<'a, R, D> {
    /// Builds an engine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.rounds == 0`, the error probability is outside
    /// `[0, 1]`, the chip is invalid, or the discriminator was trained for a
    /// different channel count than the chip.
    pub fn new(
        cfg: CycleConfig,
        chip: &ChipConfig,
        code: &'a RotatedSurfaceCode,
        disc: &'a D,
    ) -> Self {
        assert!(cfg.rounds > 0, "need at least one round per cycle");
        assert_eq!(
            disc.n_qubits(),
            chip.n_qubits(),
            "discriminator and chip must cover the same channels"
        );
        let synth = RoundSynth::new(chip);
        let map = AncillaMap::new(code.n_stabilizers(), chip.n_qubits());
        // meas_error_prob = 0: measurement noise comes from the physical
        // readout + discrimination loop, not the phenomenological coin.
        let noise = NoiseParams {
            data_error_prob: cfg.data_error_prob,
            meas_error_prob: 0.0,
        };
        let mut sim = SyndromeSim::new(code, &noise);
        sim.reserve_rounds(cfg.rounds);
        let empty = SyndromeBlock {
            events: Vec::new(),
            final_errors: vec![false; code.n_data()],
            rounds: 0,
        };
        let round = RoundBuffers::new(&map, synth.n_samples());
        CycleEngine {
            cfg,
            code,
            disc,
            map,
            rng: StdRng::seed_from_u64(cfg.seed),
            synth,
            sim,
            round,
            blocks: [empty.clone(), empty],
            active: 0,
            in_flight: StageNanos::default(),
            totals: EngineStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CycleConfig {
        &self.cfg
    }

    /// The ancilla → feedline-group mapping in use.
    pub fn ancilla_map(&self) -> &AncillaMap {
        &self.map
    }

    /// Aggregate statistics since construction.
    pub fn stats(&self) -> &EngineStats {
        &self.totals
    }

    /// The most recently completed block (empty before the first cycle).
    pub fn last_block(&self) -> &SyndromeBlock {
        &self.blocks[self.active]
    }

    /// Starts a new block: clears per-block state, keeping all capacity.
    pub fn begin_cycle(&mut self) {
        self.sim.reset();
        self.sim.reserve_rounds(self.cfg.rounds);
        self.in_flight = StageNanos::default();
    }

    /// Processes one noisy round: data errors → true parities → multiplexed
    /// readout synthesis → batched discrimination → measured-syndrome
    /// commit. Allocation-free once the engine is warm.
    pub fn step_round(&mut self) {
        let t0 = Instant::now();
        self.sim.apply_data_errors(&mut self.rng);
        self.sim.true_parities_into(&mut self.round.true_parities);
        let t1 = Instant::now();

        self.round.batch.clear();
        for g in 0..self.map.n_groups() {
            let prepared = self.map.prepared_state(g, &self.round.true_parities);
            self.synth
                .synth_into_row(prepared, &mut self.round.batch, &mut self.rng);
        }
        let t2 = Instant::now();

        self.disc.discriminate_shot_batch_r_into(
            &self.round.batch,
            &mut self.round.features,
            &mut self.round.states,
        );
        let t3 = Instant::now();

        for (a, m) in self.round.measured.iter_mut().enumerate() {
            let (g, c) = self.map.slot(a);
            *m = self.round.states[g].qubit(c);
        }
        self.sim.record_measured_syndrome(&self.round.measured);
        let t4 = Instant::now();

        self.in_flight.syndrome += duration_ns(t0, t1) + duration_ns(t3, t4);
        self.in_flight.synth += duration_ns(t1, t2);
        self.in_flight.discriminate += duration_ns(t2, t3);
        self.totals.rounds += 1;
    }

    /// Terminates the block with a perfect round, swaps it into the inactive
    /// block home, and decodes it.
    pub fn finish_cycle(&mut self) -> CycleResult {
        let t0 = Instant::now();
        self.sim.finish_perfect_round();
        self.active ^= 1;
        // write_block reuses the target's buffers — no block reallocation.
        self.sim.write_block(&mut self.blocks[self.active]);
        let t1 = Instant::now();
        let outcome = decode_block(self.code, &self.blocks[self.active]);
        let t2 = Instant::now();

        self.in_flight.syndrome += duration_ns(t0, t1);
        self.in_flight.decode += duration_ns(t1, t2);
        let stats = CycleStats {
            rounds: self.sim.round(),
            n_events: outcome.n_events,
            stage: self.in_flight,
        };
        self.totals.cycles += 1;
        self.totals.logical_errors += u64::from(outcome.logical_error);
        self.totals.stage.add(&self.in_flight);
        CycleResult { outcome, stats }
    }

    /// Runs one full cycle (block) and returns its outcome.
    pub fn run_cycle(&mut self) -> CycleResult {
        self.begin_cycle();
        for _ in 0..self.cfg.rounds {
            self.step_round();
        }
        self.finish_cycle()
    }

    /// Blocking API: runs `n` cycles back to back.
    pub fn run_cycles(&mut self, n: usize) -> Vec<CycleResult> {
        (0..n).map(|_| self.run_cycle()).collect()
    }

    /// Pull-based streaming API: an endless iterator of cycle results —
    /// bound it with `.take(n)`.
    pub fn cycles(&mut self) -> Cycles<'_, 'a, R, D> {
        Cycles { engine: self }
    }
}

impl<R: Real, D: ?Sized> std::fmt::Debug for CycleEngine<'_, R, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleEngine")
            .field("cfg", &self.cfg)
            .field("distance", &self.code.distance())
            .field("groups", &self.map.n_groups())
            .field("totals", &self.totals)
            .finish_non_exhaustive()
    }
}

/// Endless pull-based iterator over an engine's cycles.
#[derive(Debug)]
pub struct Cycles<'e, 'a, R: Real = f64, D: ?Sized = dyn Discriminator + 'a> {
    engine: &'e mut CycleEngine<'a, R, D>,
}

impl<R: Real, D: ?Sized + PrecisionDiscriminator<R>> Iterator for Cycles<'_, '_, R, D> {
    type Item = CycleResult;

    fn next(&mut self) -> Option<CycleResult> {
        Some(self.engine.run_cycle())
    }
}

fn duration_ns(from: Instant, to: Instant) -> u64 {
    u64::try_from((to - from).as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_mf_discriminator;

    fn setup() -> (ChipConfig, RotatedSurfaceCode, Box<dyn Discriminator>) {
        let chip = ChipConfig::two_qubit_test();
        let code = RotatedSurfaceCode::new(3);
        let disc = train_mf_discriminator(&chip, 12, 77);
        (chip, code, disc)
    }

    #[test]
    fn engine_streams_deterministic_cycles() {
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 3,
            data_error_prob: 0.01,
            seed: 5,
        };
        let run = || {
            let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
            let results = engine.run_cycles(4);
            let block = engine.last_block().clone();
            (results, block)
        };
        let (ra, ba) = run();
        let (rb, bb) = run();
        assert_eq!(ra.len(), 4);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.outcome, y.outcome, "same seed, same outcomes");
            assert_eq!(x.stats.rounds, 3);
        }
        assert_eq!(ba, bb, "same seed, same final block");
    }

    #[test]
    fn iterator_and_blocking_api_agree() {
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 2,
            data_error_prob: 0.02,
            seed: 9,
        };
        let mut a = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let mut b = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let blocking: Vec<DecodeOutcome> = a.run_cycles(5).iter().map(|r| r.outcome).collect();
        let pulled: Vec<DecodeOutcome> = b.cycles().take(5).map(|r| r.outcome).collect();
        assert_eq!(blocking, pulled);
        assert_eq!(a.stats().cycles, 5);
        assert_eq!(a.stats().rounds, 10);
    }

    #[test]
    fn perfect_readout_yields_low_logical_rate() {
        // With a tiny data error rate and a working discriminator, most
        // cycles must decode without a logical error.
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 3,
            data_error_prob: 0.002,
            seed: 21,
        };
        let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let failures = engine
            .run_cycles(30)
            .iter()
            .filter(|r| r.outcome.logical_error)
            .count();
        assert!(failures <= 6, "{failures}/30 logical errors");
    }

    #[test]
    fn stage_timings_are_populated() {
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 2,
            data_error_prob: 0.01,
            seed: 1,
        };
        let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let r = engine.run_cycle();
        assert!(r.stats.stage.synth > 0);
        assert!(r.stats.stage.discriminate > 0);
        assert!(r.stats.stage.total() >= r.stats.stage.synth);
        assert_eq!(engine.stats().stage, r.stats.stage);
    }

    #[test]
    #[should_panic(expected = "same channels")]
    fn rejects_chip_discriminator_mismatch() {
        let (_, code, disc) = setup();
        let five = ChipConfig::five_qubit_default();
        let cfg = CycleConfig::for_distance(3);
        let _ = CycleEngine::new(cfg, &five, &code, disc.as_ref());
    }
}
