//! The streaming QEC-cycle engine.
//!
//! [`CycleEngine`] runs full distance-`d` surface-code cycles as one batch
//! pipeline: each noisy round it applies data errors, reads the true
//! stabilizer parities, synthesizes every ancilla group's multiplexed
//! readout waveform directly into a reusable [`ShotBatch`], discriminates
//! the batch through the fused demod + matched-filter kernel, and commits
//! the *measured* syndrome to a [`SyndromeSim`] — the measurement error εR
//! emerges from physical misdiscrimination instead of a phenomenological
//! coin flip. Blocks terminate with a perfect round, are copied into one of
//! two double-buffered [`SyndromeBlock`] homes, and decoded.
//!
//! After a warm-up cycle the per-round path performs **zero heap
//! allocation**: every buffer ([`RoundBuffers`], the synth scratch, the
//! syndrome stepper's event store) is pre-sized and reused. The engine
//! exposes a blocking [`CycleEngine::run_cycles`] API and a pull-based
//! [`CycleEngine::cycles`] iterator of [`CycleResult`]s carrying per-stage
//! nanosecond timings.
//!
//! # Parallel execution
//!
//! [`CycleEngine::with_pool`] attaches a [`herqles_exec::ShardPool`] and
//! turns the engine into a [`ParallelCycleEngine`]: each feedline group
//! becomes a shard owning its own [`RoundSynth`] (synthesis is `&mut self`,
//! so one synthesizer per shard), and whole cycles run on a two-stage
//! pipeline that overlaps round `t+1`'s waveform synthesis with round `t`'s
//! discriminate → syndrome → decode using a second, ping-ponged
//! [`RoundBuffers`]. Because every round draws its per-group randomness from
//! SplitMix64-derived streams ([`herqles_exec::stream_seed`] over a single
//! per-round entropy word from the master RNG), the pooled engine is
//! **bit-identical to the serial engine at every pool size** — and the
//! serial engine in turn stays bit-identical to the offline materializing
//! reference. Warm pooled rounds keep the zero-allocation invariant: job
//! dispatch on the pool allocates nothing.

use herqles_core::{Discriminator, PrecisionDiscriminator, Real};
use herqles_exec::{stream_seed, ShardPool, Tiles};
use herqles_telemetry::{now_ns, SpanKind, StageTimer};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use readout_sim::drift::{FaultPlan, RoundFaults};
use readout_sim::{BasisState, ChipConfig, ShotBatch};
use surface_code::decoder::DecodeOutcome;
use surface_code::{
    decode_block_with, DecodeScratch, NoiseParams, RotatedSurfaceCode, SlidingWindowDecoder,
    SyndromeBlock, SyndromeSim,
};

use crate::health::{HealthConfig, HealthMonitor, HealthStatus};
use crate::map::AncillaMap;
use crate::recal::Recalibrate;
use crate::synth::RoundSynth;
use crate::telemetry::{fmt_ns, EngineTelemetry, StageLatency};

/// Configuration of a streaming cycle run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleConfig {
    /// Noisy stabilizer-measurement rounds per block (commonly `d`).
    pub rounds: usize,
    /// Per-round, per-data-qubit `X` error probability.
    pub data_error_prob: f64,
    /// RNG seed of the whole stream (data errors + readout physics).
    pub seed: u64,
}

impl CycleConfig {
    /// Defaults for a distance-`d` run: `d` rounds, `p = 4·10⁻³` (the
    /// operating point of the paper's Fig. 13 study), seed 0.
    pub fn for_distance(distance: usize) -> Self {
        CycleConfig {
            rounds: distance,
            data_error_prob: 4e-3,
            seed: 0,
        }
    }

    /// Rejects nonsensical configurations loudly at construction time
    /// instead of letting them surface as NaN syndromes or empty blocks
    /// deep inside a run.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0` or `data_error_prob` is not a finite
    /// probability in `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.rounds > 0, "need at least one round per cycle");
        assert!(
            self.data_error_prob.is_finite() && (0.0..=1.0).contains(&self.data_error_prob),
            "data_error_prob must be a finite probability in [0, 1], got {}",
            self.data_error_prob
        );
    }
}

/// Cumulative per-stage wall time, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Waveform synthesis (state paths, basebands, crosstalk, multiplexing).
    pub synth: u64,
    /// Batched discrimination (fused demod + matched filter + thresholds).
    pub discriminate: u64,
    /// Syndrome bookkeeping (data errors, parities, detection events).
    pub syndrome: u64,
    /// Block decode (matching + logical-class decision).
    pub decode: u64,
}

impl StageNanos {
    /// Sum over all stages.
    pub fn total(&self) -> u64 {
        self.synth + self.discriminate + self.syndrome + self.decode
    }

    /// Accumulates another stage breakdown into this one.
    pub fn add(&mut self, other: &StageNanos) {
        self.synth += other.synth;
        self.discriminate += other.discriminate;
        self.syndrome += other.syndrome;
        self.decode += other.decode;
    }
}

/// Timing and size statistics of one completed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleStats {
    /// Noisy rounds in the block.
    pub rounds: usize,
    /// Detection events decoded.
    pub n_events: usize,
    /// Per-stage wall time of this cycle.
    pub stage: StageNanos,
    /// Channel health verdict at the end of the cycle.
    pub health: HealthStatus,
}

/// One completed streaming cycle: the decode verdict plus its timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleResult {
    /// Decoder outcome of the block.
    pub outcome: DecodeOutcome,
    /// Stage timings and block size.
    pub stats: CycleStats,
}

/// Aggregate statistics over an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Completed cycles.
    pub cycles: u64,
    /// Noisy rounds processed.
    pub rounds: u64,
    /// Logical errors observed.
    pub logical_errors: u64,
    /// Blocks whose decode overran the configured real-time budget
    /// ([`CycleEngine::set_decode_budget_ns`]) and were stamped
    /// [`DecodeOutcome::degraded`]. Always zero with no budget set — every
    /// block decodes exactly (union-find past the small-block dispatch).
    pub degraded_decodes: u64,
    /// Health-status transitions reported by the engine's
    /// [`HealthMonitor`].
    pub health_transitions: u64,
    /// Discriminator hot-swaps performed by
    /// [`CycleEngine::run_cycle_adaptive`].
    pub hot_swaps: u64,
    /// Cumulative per-stage wall time.
    pub stage: StageNanos,
    /// Per-stage latency percentiles (p50/p90/p99/max, ns per cycle) from
    /// the engine's [`EngineTelemetry`] histograms. All-zero while telemetry
    /// is disabled or before the first cycle.
    pub latency: StageLatency,
    /// Trace/span-ring events lost to overwrite
    /// ([`EngineTelemetry::dropped_events`]): nonzero means the flight
    /// recorder's history no longer reaches back to the first event.
    pub trace_dropped: u64,
}

impl EngineStats {
    /// The multi-line human-readable report [`EngineStats`]'s `Display`
    /// renders.
    #[must_use]
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cycles {} | rounds {} | logical errors {} | degraded decodes {}",
            self.cycles, self.rounds, self.logical_errors, self.degraded_decodes
        )?;
        writeln!(
            f,
            "health transitions {} | hot-swaps {} | trace events dropped {}",
            self.health_transitions, self.hot_swaps, self.trace_dropped
        )?;
        writeln!(f, "stage           p50        p99        max")?;
        for (name, s) in [
            ("synth", self.latency.synth),
            ("discriminate", self.latency.discriminate),
            ("syndrome", self.latency.syndrome),
            ("decode", self.latency.decode),
            ("cycle", self.latency.cycle),
        ] {
            writeln!(
                f,
                "{name:<13} {:>10} {:>10} {:>10}",
                fmt_ns(s.p50),
                fmt_ns(s.p99),
                fmt_ns(s.max)
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for CycleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} events, health {:?}: synth {} | discriminate {} | \
             syndrome {} | decode {} | total {}",
            self.rounds,
            self.n_events,
            self.health,
            fmt_ns(self.stage.synth),
            fmt_ns(self.stage.discriminate),
            fmt_ns(self.stage.syndrome),
            fmt_ns(self.stage.decode),
            fmt_ns(self.stage.total())
        )
    }
}

/// The reusable per-round working set: one shot batch, the parity planes and
/// the discriminator's scratch + output buffers, all at the engine's
/// pipeline precision `R`. Everything is pre-sized at engine construction
/// and recycled every round.
#[derive(Debug, Clone)]
pub struct RoundBuffers<R: Real = f64> {
    batch: ShotBatch<R>,
    true_parities: Vec<bool>,
    measured: Vec<bool>,
    states: Vec<BasisState>,
    features: Vec<R>,
}

impl<R: Real> RoundBuffers<R> {
    fn new(map: &AncillaMap, n_samples: usize) -> Self {
        RoundBuffers {
            batch: ShotBatch::with_capacity(map.n_groups(), n_samples),
            true_parities: vec![false; map.n_ancillas()],
            measured: vec![false; map.n_ancillas()],
            states: Vec::with_capacity(map.n_groups()),
            features: Vec::new(),
        }
    }
}

/// The engine's health-monitoring working set: the [`HealthMonitor`] plus
/// the fixed buffers the per-round observation writes through (a widened
/// `f64` feature row for [`Discriminator::soft_margins`] and the per-channel
/// margin output). Sized during the first cycle, allocation-free thereafter.
struct HealthState {
    monitor: HealthMonitor,
    /// Per-channel soft margins of one feature row.
    margins: Vec<f64>,
    /// One group's feature row widened to `f64` for the margin query.
    feat_row: Vec<f64>,
    /// Latched off permanently the first time the discriminator declines a
    /// margin query, so unsupported designs pay one call, not one per round.
    margin_supported: bool,
}

/// The execution state a pooled engine carries on top of the serial one:
/// the pool handle, one [`RoundSynth`] per feedline-group shard, the round's
/// per-group RNG stream seeds, and the second [`RoundBuffers`] that the
/// two-stage pipeline ping-pongs against the engine's front buffer.
struct PoolState<'a, R: Real> {
    pool: &'a ShardPool,
    synths: Vec<RoundSynth<R>>,
    seeds: Vec<u64>,
    back: RoundBuffers<R>,
}

/// Sliding-window streaming decode state: the window decoder plus per-block
/// feed progress and budget bookkeeping.
struct WindowState {
    wd: SlidingWindowDecoder,
    /// Detection events already fed to the window this block.
    events_fed: usize,
    /// Whether any decode step of the current block overran the engine's
    /// real-time budget.
    over_budget: bool,
}

/// Streaming readout → syndrome → decode engine for one surface code, one
/// feedline chip, and one trained discriminator.
///
/// Generic over the pipeline precision `R` ([`Real`], default `f64`) and the
/// discriminator type `D`. The defaults make `CycleEngine::new(cfg, &chip,
/// &code, &dyn_disc)` mean exactly what it always did — a double-precision
/// engine behind a `&dyn Discriminator`, bit-identical to the offline
/// reference. Instantiating with `R = f32` and a concrete fused design (e.g.
/// `CycleEngine::<f32, _>::new(cfg, &chip, &code, &mf)`) runs the whole
/// readout → syndrome → decode round — waveform synthesis included — in
/// single precision, with the same zero-allocation steady state.
pub struct CycleEngine<'a, R: Real = f64, D: ?Sized = dyn Discriminator + 'a> {
    cfg: CycleConfig,
    code: &'a RotatedSurfaceCode,
    disc: &'a D,
    map: AncillaMap,
    rng: StdRng,
    synth: RoundSynth<R>,
    sim: SyndromeSim<'a>,
    round: RoundBuffers<R>,
    /// Double-buffered block homes: the block finished last cycle stays
    /// readable (via [`CycleEngine::last_block`]) while the next cycle's
    /// rounds accumulate, and block storage is never reallocated.
    blocks: [SyndromeBlock; 2],
    active: usize,
    /// Reusable decoder workspace: pre-sized at construction so the block
    /// decode in [`CycleEngine::finish_cycle`] never allocates, completing
    /// the warm whole-cycle zero-allocation invariant (`tests/alloc.rs`).
    decode: DecodeScratch,
    /// Sliding-window streaming decode state
    /// ([`CycleEngine::set_sliding_window`]); `None` = whole-block mode.
    window: Option<WindowState>,
    /// Real-time budget per decode step; overruns stamp
    /// [`DecodeOutcome::degraded`].
    decode_budget_ns: Option<u64>,
    /// Whether block decodes are offloaded into the next cycle's round-0
    /// pipeline slot ([`CycleEngine::set_async_decode`]).
    async_decode: bool,
    /// A finished block is awaiting its offloaded decode.
    async_pending: bool,
    /// Outcome of the most recent offloaded decode.
    async_outcome: DecodeOutcome,
    in_flight: StageNanos,
    totals: EngineStats,
    /// Present iff the engine was built with [`CycleEngine::with_pool`].
    exec: Option<PoolState<'a, R>>,
    /// Deterministic fault schedule (empty by default: the zero-cost no-fault
    /// path) and the per-round snapshot it resolves into.
    plan: FaultPlan,
    faults: RoundFaults,
    /// Rounds synthesized since construction — the fault schedule's clock.
    /// Distinct from `totals.rounds`, which counts *consumed* rounds and
    /// therefore lags synthesis inside the pooled pipeline.
    synth_round: u64,
    health: HealthState,
    /// Consumed-round stamp of the last discriminator hot-swap.
    last_swap_round: u64,
    /// [`now_ns`] stamp of the current cycle's [`CycleEngine::begin_cycle`],
    /// the begin timestamp of the cycle's flight-recorder span.
    cycle_begin_ns: u64,
    /// Minimum consumed rounds between hot-swaps.
    recal_cooldown: u64,
    /// Latency histograms, counters and the event trace. Enabled by
    /// default; recording is allocation-free.
    telem: EngineTelemetry,
}

/// A [`CycleEngine`] whose cycles execute on a [`ShardPool`]
/// (constructed via [`CycleEngine::with_pool`]): sharded round synthesis
/// plus the two-stage synthesis/consumption pipeline, bit-identical to the
/// serial engine at every pool size.
pub type ParallelCycleEngine<'a, R = f64, D = dyn Discriminator + 'a> = CycleEngine<'a, R, D>;

impl<'a, R: Real, D: ?Sized + PrecisionDiscriminator<R>> CycleEngine<'a, R, D> {
    /// Builds an engine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.rounds == 0`, the error probability is outside
    /// `[0, 1]`, the chip is invalid, or the discriminator was trained for a
    /// different channel count than the chip.
    pub fn new(
        cfg: CycleConfig,
        chip: &ChipConfig,
        code: &'a RotatedSurfaceCode,
        disc: &'a D,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            disc.n_qubits(),
            chip.n_qubits(),
            "discriminator and chip must cover the same channels"
        );
        let synth = RoundSynth::new(chip);
        let map = AncillaMap::new(code.n_stabilizers(), chip.n_qubits());
        // meas_error_prob = 0: measurement noise comes from the physical
        // readout + discrimination loop, not the phenomenological coin.
        let noise = NoiseParams {
            data_error_prob: cfg.data_error_prob,
            meas_error_prob: 0.0,
        };
        let mut sim = SyndromeSim::new(code, &noise);
        sim.reserve_rounds(cfg.rounds);
        let empty = SyndromeBlock {
            events: Vec::new(),
            final_errors: vec![false; code.n_data()],
            rounds: 0,
        };
        let round = RoundBuffers::new(&map, synth.n_samples());
        let health = HealthState {
            monitor: HealthMonitor::new(HealthConfig::default(), map.n_ancillas()),
            margins: vec![0.0; chip.n_qubits()],
            feat_row: Vec::new(),
            margin_supported: true,
        };
        CycleEngine {
            cfg,
            code,
            disc,
            map,
            rng: StdRng::seed_from_u64(cfg.seed),
            synth,
            sim,
            round,
            blocks: [empty.clone(), empty],
            active: 0,
            // Sized for this engine's worst case up front: the decoding
            // graph, union-find buffers, and DP table for (code, rounds)
            // blocks, so the first cycle decodes without allocating.
            decode: DecodeScratch::prewarmed(code, cfg.rounds),
            window: None,
            decode_budget_ns: None,
            async_decode: false,
            async_pending: false,
            async_outcome: DecodeOutcome::default(),
            in_flight: StageNanos::default(),
            totals: EngineStats::default(),
            exec: None,
            plan: FaultPlan::none(),
            faults: RoundFaults::nominal(chip.n_qubits()),
            synth_round: 0,
            health,
            last_swap_round: 0,
            cycle_begin_ns: 0,
            recal_cooldown: 64,
            telem: EngineTelemetry::new(),
        }
    }

    /// Builds a [`ParallelCycleEngine`]: identical configuration and
    /// **bit-identical output** to [`CycleEngine::new`], but whole cycles
    /// ([`CycleEngine::run_cycle`] and everything built on it) execute on
    /// `pool` — each feedline group's synthesis is one shard, and round
    /// `t+1`'s synthesis overlaps round `t`'s discriminate → syndrome
    /// pipeline stage. Warm rounds stay free of heap allocation.
    ///
    /// The manual [`CycleEngine::step_round`] API remains available and
    /// serial (one caller thread), producing the same results; only the
    /// cycle-granular entry points fan out.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CycleEngine::new`].
    pub fn with_pool(
        cfg: CycleConfig,
        chip: &ChipConfig,
        code: &'a RotatedSurfaceCode,
        disc: &'a D,
        pool: &'a ShardPool,
    ) -> Self {
        let mut engine = Self::new(cfg, chip, code, disc);
        let n_groups = engine.map.n_groups();
        engine.exec = Some(PoolState {
            pool,
            synths: (0..n_groups).map(|_| RoundSynth::new(chip)).collect(),
            seeds: vec![0; n_groups],
            back: RoundBuffers::new(&engine.map, engine.synth.n_samples()),
        });
        engine
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CycleConfig {
        &self.cfg
    }

    /// The ancilla → feedline-group mapping in use.
    pub fn ancilla_map(&self) -> &AncillaMap {
        &self.map
    }

    /// Aggregate statistics since construction.
    pub fn stats(&self) -> &EngineStats {
        &self.totals
    }

    /// The most recently completed block (empty before the first cycle).
    pub fn last_block(&self) -> &SyndromeBlock {
        &self.blocks[self.active]
    }

    /// Installs a deterministic fault schedule. Rounds already synthesized
    /// keep their clock: the plan's round indices are absolute over the
    /// engine's lifetime, so installing at round `r` leaves events scheduled
    /// before `r` in the past.
    ///
    /// Fault resolution is part of the serial round prologue and the
    /// injected randomness rides the existing per-group synthesis streams,
    /// so pooled and serial engines under the same plan remain
    /// **bit-identical at every pool size**.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a qubit outside the chip or carries a
    /// non-finite parameter.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Err(e) = plan.validate(self.faults.n_qubits()) {
            panic!("invalid fault plan: {e}");
        }
        self.plan = plan;
    }

    /// The installed fault schedule (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The engine's health monitor.
    pub fn health(&self) -> &HealthMonitor {
        &self.health.monitor
    }

    /// Replaces the health monitor's tuning (resets its baseline).
    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        self.health.monitor = HealthMonitor::new(cfg, self.map.n_ancillas());
    }

    /// Sets the minimum consumed rounds between discriminator hot-swaps in
    /// [`CycleEngine::run_cycle_adaptive`] (default 64).
    pub fn set_recal_cooldown(&mut self, rounds: u64) {
        self.recal_cooldown = rounds;
    }

    /// Switches the engine to sliding-window streaming decode: every
    /// committed round feeds the union-find window, clusters confined `lag`
    /// rounds behind the stream commit while later rounds are still being
    /// synthesized, and [`CycleEngine::finish_cycle`] only resolves the
    /// remainder. Cycle outcomes stay identical to whole-block mode (pinned
    /// by `tests/decode_modes.rs`); the difference is *when* the decode work
    /// happens. Call between cycles, not mid-block.
    ///
    /// # Panics
    ///
    /// Panics if async decode offload is enabled (the two schedules are
    /// mutually exclusive) or if `lag == 0`.
    pub fn set_sliding_window(&mut self, lag: usize) {
        assert!(
            !self.async_decode,
            "sliding-window and async decode offload are mutually exclusive"
        );
        let (graph, _) = self.decode.window_parts(self.code, self.cfg.rounds);
        let mut wd = SlidingWindowDecoder::new(lag);
        wd.reserve_for(graph);
        self.window = Some(WindowState {
            wd,
            events_fed: 0,
            over_budget: false,
        });
    }

    /// Sets (or clears) the real-time decode budget: any decode step — a
    /// sliding-window advance, a block decode, an offloaded decode — that
    /// takes longer stamps its cycle's [`DecodeOutcome::degraded`], counted
    /// by [`EngineStats::degraded_decodes`].
    pub fn set_decode_budget_ns(&mut self, budget: Option<u64>) {
        self.decode_budget_ns = budget;
    }

    /// Enables decode offload on a pooled engine: a finished block's decode
    /// runs inside the *next* cycle's round-0 pipeline slot, hidden behind
    /// that round's synthesis fan-out, so decode latency leaves the cycle's
    /// critical path. Each [`CycleEngine::run_cycle`] then reports the
    /// *previous* block's outcome (the first reports an empty
    /// [`DecodeOutcome::default`]); call
    /// [`CycleEngine::drain_async_decode`] after the last cycle for the
    /// final block. The outcome *sequence* is identical to synchronous
    /// decoding, one cycle later.
    ///
    /// # Panics
    ///
    /// Panics when enabling on a non-pooled engine or while sliding-window
    /// mode is active.
    pub fn set_async_decode(&mut self, enabled: bool) {
        if enabled {
            assert!(
                self.exec.is_some(),
                "async decode offload requires a pooled engine (with_pool)"
            );
            assert!(
                self.window.is_none(),
                "sliding-window and async decode offload are mutually exclusive"
            );
        }
        self.async_decode = enabled;
    }

    /// Decodes the block still awaiting its offloaded decode (the last
    /// block of an async run), accounts it into the engine totals, and
    /// returns its outcome. `None` when nothing is pending.
    pub fn drain_async_decode(&mut self) -> Option<DecodeOutcome> {
        if !self.async_pending {
            return None;
        }
        self.async_pending = false;
        let mut timer = StageTimer::start();
        let mut outcome = decode_block_with(self.code, &self.blocks[self.active], &mut self.decode);
        let (begin, ns) = timer.lap_span_ns();
        if self.decode_budget_ns.is_some_and(|b| ns > b) {
            outcome.degraded = true;
        }
        self.totals.stage.decode += ns;
        self.totals.logical_errors += u64::from(outcome.logical_error);
        self.totals.degraded_decodes += u64::from(outcome.degraded);
        self.telem
            .note_span(SpanKind::Decode, begin, ns, self.totals.cycles);
        Some(outcome)
    }

    /// The engine's telemetry bundle (histograms, counters, event trace).
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telem
    }

    /// Replaces the telemetry bundle — the way to give the engine
    /// registry-backed metrics ([`EngineTelemetry::registered`]) so a scrape
    /// endpoint sees them. Histories recorded into the old bundle stay with
    /// the old bundle.
    pub fn set_telemetry(&mut self, telem: EngineTelemetry) {
        self.telem = telem;
    }

    /// Enables or disables telemetry recording (enabled by default). While
    /// disabled the engine skips every histogram/counter/trace touch;
    /// [`EngineStats::latency`] stops refreshing.
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.telem.set_enabled(enabled);
    }

    /// Current per-stage latency percentiles (ns per cycle). Allocation-free.
    pub fn stage_latency(&self) -> StageLatency {
        self.telem.stage_latency()
    }

    /// Advances the fault clock one synthesized round and resolves the
    /// schedule into the engine's [`RoundFaults`] snapshot. Returns whether
    /// any fault is active this round. Early-outs with no work when the plan
    /// is empty — the zero-cost no-fault default.
    fn resolve_round_faults(&mut self) -> bool {
        let r = self.synth_round;
        self.synth_round += 1;
        if self.plan.is_empty() {
            return false;
        }
        self.plan.resolve_into(r, &mut self.faults);
        self.faults.is_active()
    }

    /// Starts a new block: clears per-block state, keeping all capacity.
    pub fn begin_cycle(&mut self) {
        self.sim.reset();
        self.sim.reserve_rounds(self.cfg.rounds);
        self.health.monitor.begin_block();
        if let Some(ws) = self.window.as_mut() {
            ws.wd.reset();
            ws.events_fed = 0;
            ws.over_budget = false;
        }
        self.in_flight = StageNanos::default();
        self.cycle_begin_ns = now_ns();
        self.telem.note_cycle_begin(self.totals.cycles);
    }

    /// Feeds the rounds committed so far into the sliding window and
    /// commits every cluster confined behind the lag. No-op in whole-block
    /// mode. Runs on the calling thread right after a round's
    /// measured-syndrome commit, so in the pooled pipeline the committed
    /// decode work overlaps the next round's synthesis fan-out.
    fn advance_window(&mut self) {
        if self.window.is_none() {
            return;
        }
        let mut timer = StageTimer::start();
        let CycleEngine {
            window,
            decode,
            sim,
            code,
            cfg,
            ..
        } = self;
        let ws = window.as_mut().expect("window mode");
        // The round just committed (sim.round() counts committed rounds).
        let t = sim.round().saturating_sub(1);
        let events = sim.events();
        ws.wd.push_events(&events[ws.events_fed..]);
        ws.events_fed = events.len();
        let (graph, uf) = decode.window_parts(code, cfg.rounds);
        ws.wd.advance(t, graph, uf);
        let (begin, ns) = timer.lap_span_ns();
        self.in_flight.decode += ns;
        self.telem.note_span(SpanKind::Decode, begin, ns, t as u64);
        if self.decode_budget_ns.is_some_and(|b| ns > b) {
            self.window.as_mut().expect("window mode").over_budget = true;
        }
    }

    /// Processes one noisy round: data errors → true parities → multiplexed
    /// readout synthesis → batched discrimination → measured-syndrome
    /// commit. Allocation-free once the engine is warm.
    ///
    /// Runs serially on the calling thread regardless of how the engine was
    /// built; per-group synthesis randomness comes from the same
    /// [`stream_seed`]-derived streams the pooled path shards out, so manual
    /// stepping and pooled cycles produce identical results.
    pub fn step_round(&mut self) {
        let round_arg = self.sim.round() as u64;
        let mut timer = StageTimer::start();
        self.sim.apply_data_errors(&mut self.rng);
        self.sim.true_parities_into(&mut self.round.true_parities);
        let entropy = self.round_entropy();
        let fault_active = self.resolve_round_faults();
        let (prologue_begin, prologue_ns) = timer.lap_span_ns();

        self.round.batch.clear();
        for g in 0..self.map.n_groups() {
            let prepared = self.map.prepared_state(g, &self.round.true_parities);
            let mut rng = StdRng::seed_from_u64(stream_seed(entropy, g as u64));
            self.synth.synth_into_row_faulted(
                prepared,
                fault_active.then_some(&self.faults),
                &mut self.round.batch,
                &mut rng,
            );
        }
        let (synth_begin, synth_ns) = timer.lap_span_ns();

        self.disc.discriminate_shot_batch_r_into(
            &self.round.batch,
            &mut self.round.features,
            &mut self.round.states,
        );
        let (disc_begin, disc_ns) = timer.lap_span_ns();

        for (a, m) in self.round.measured.iter_mut().enumerate() {
            let (g, c) = self.map.slot(a);
            *m = self.round.states[g].qubit(c);
        }
        self.sim.record_measured_syndrome(&self.round.measured);
        observe_round_health(
            self.disc,
            &self.map,
            &mut self.health,
            &self.round.features,
            &self.round.measured,
        );
        let (commit_begin, commit_ns) = timer.lap_span_ns();

        self.in_flight.syndrome += prologue_ns + commit_ns;
        self.in_flight.synth += synth_ns;
        self.in_flight.discriminate += disc_ns;
        self.totals.rounds += 1;
        self.telem
            .note_span(SpanKind::Syndrome, prologue_begin, prologue_ns, round_arg);
        self.telem
            .note_span(SpanKind::Synth, synth_begin, synth_ns, round_arg);
        self.telem
            .note_span(SpanKind::Discriminate, disc_begin, disc_ns, round_arg);
        self.telem
            .note_span(SpanKind::Syndrome, commit_begin, commit_ns, round_arg);
        self.advance_window();
    }

    /// Draws the round's entropy word from the master RNG. Every group's
    /// synthesis stream is derived from this one draw via [`stream_seed`],
    /// which is what makes round synthesis shard-order- and
    /// thread-count-independent by construction.
    fn round_entropy(&mut self) -> u64 {
        self.rng.random()
    }

    /// Terminates the block with a perfect round, swaps it into the inactive
    /// block home, and decodes it.
    pub fn finish_cycle(&mut self) -> CycleResult {
        let cycle_index = self.totals.cycles;
        let mut timer = StageTimer::start();
        self.sim.finish_perfect_round();
        self.active ^= 1;
        // write_block reuses the target's buffers — no block reallocation.
        self.sim.write_block(&mut self.blocks[self.active]);
        let (write_begin, write_ns) = timer.lap_span_ns();
        self.in_flight.syndrome += write_ns;
        self.telem
            .note_span(SpanKind::Syndrome, write_begin, write_ns, cycle_index);
        let outcome = self.decode_finished_block(cycle_index);
        self.telem.note_span(
            SpanKind::Cycle,
            self.cycle_begin_ns,
            now_ns().saturating_sub(self.cycle_begin_ns),
            cycle_index,
        );

        let stats = CycleStats {
            rounds: self.sim.round(),
            n_events: outcome.n_events,
            stage: self.in_flight,
            health: self.health.monitor.status(),
        };
        let transitions = self.health.monitor.transitions();
        let transitions_delta = transitions.saturating_sub(self.totals.health_transitions);
        self.totals.cycles += 1;
        self.totals.logical_errors += u64::from(outcome.logical_error);
        self.totals.degraded_decodes += u64::from(outcome.degraded);
        self.totals.health_transitions = transitions;
        self.totals.stage.add(&self.in_flight);
        self.telem
            .observe_cycle(cycle_index, &stats, &outcome, transitions_delta);
        if self.telem.enabled() {
            self.totals.latency = self.telem.stage_latency();
        }
        self.totals.trace_dropped = self.telem.dropped_events();
        CycleResult { outcome, stats }
    }

    /// Decodes the block just swapped into the active home, according to
    /// the engine's decode mode: async offload defers to the next cycle's
    /// round-0 slot (returning the previous block's outcome), sliding
    /// window resolves the deferred remainder, and whole-block mode runs
    /// the standard dispatch. Stamps [`DecodeOutcome::degraded`] on budget
    /// overruns.
    fn decode_finished_block(&mut self, cycle_index: u64) -> DecodeOutcome {
        if self.async_decode {
            // The block's decode runs inside the next cycle's round-0
            // pipeline slot; hand back the previous block's outcome now.
            let prev = if self.async_pending {
                // The slot never ran (manual round stepping): decode the
                // previous block — still intact in the other home —
                // synchronously so it is not lost.
                let mut timer = StageTimer::start();
                let mut out =
                    decode_block_with(self.code, &self.blocks[self.active ^ 1], &mut self.decode);
                let (begin, ns) = timer.lap_span_ns();
                self.in_flight.decode += ns;
                if self.decode_budget_ns.is_some_and(|b| ns > b) {
                    out.degraded = true;
                }
                self.telem
                    .note_span(SpanKind::Decode, begin, ns, cycle_index);
                out
            } else {
                self.async_outcome
            };
            self.async_pending = true;
            return prev;
        }
        let mut timer = StageTimer::start();
        let mut outcome = if self.window.is_some() {
            self.finish_window_block()
        } else {
            decode_block_with(self.code, &self.blocks[self.active], &mut self.decode)
        };
        let (decode_begin, decode_ns) = timer.lap_span_ns();
        self.in_flight.decode += decode_ns;
        self.telem
            .note_span(SpanKind::Decode, decode_begin, decode_ns, cycle_index);
        if self.decode_budget_ns.is_some_and(|b| decode_ns > b) {
            outcome.degraded = true;
        }
        if self.window.as_ref().is_some_and(|ws| ws.over_budget) {
            outcome.degraded = true;
        }
        outcome
    }

    /// Ends a sliding-window block: feeds the terminating perfect round's
    /// events, resolves whatever the window deferred, and combines with the
    /// west parity committed during the stream. When the stream committed
    /// nothing ahead of the block end, the whole block goes through the
    /// standard dispatch instead — bit-identical to whole-block mode on
    /// quiet or short streams.
    fn finish_window_block(&mut self) -> DecodeOutcome {
        let CycleEngine {
            window,
            decode,
            sim,
            code,
            cfg,
            blocks,
            active,
            ..
        } = self;
        let ws = window.as_mut().expect("window mode");
        let events = sim.events();
        ws.wd.push_events(&events[ws.events_fed..]);
        ws.events_fed = events.len();
        let block = &blocks[*active];
        if ws.wd.committed_clusters() == 0 {
            ws.wd.reset();
            ws.events_fed = 0;
            return decode_block_with(code, block, decode);
        }
        let (graph, uf) = decode.window_parts(code, cfg.rounds);
        let west_matches = ws.wd.finish(graph, uf);
        let n_events = ws.wd.n_events();
        debug_assert_eq!(n_events, block.events.len());
        let error_parity = block.west_column_error_parity(code);
        ws.wd.reset();
        ws.events_fed = 0;
        DecodeOutcome {
            n_events,
            west_matches,
            logical_error: error_parity != (west_matches % 2 == 1),
            degraded: false,
        }
    }

    /// Runs one full cycle (block) and returns its outcome.
    ///
    /// On a [`ParallelCycleEngine`] the cycle executes the two-stage
    /// pipeline: round `t+1`'s sharded synthesis overlaps round `t`'s
    /// discriminate → syndrome stage, with the block decode at the end. The
    /// result is bit-identical to the serial engine's.
    pub fn run_cycle(&mut self) -> CycleResult {
        if self.exec.is_some() {
            return self.run_cycle_pooled();
        }
        self.begin_cycle();
        for _ in 0..self.cfg.rounds {
            self.step_round();
        }
        self.finish_cycle()
    }

    /// The pooled cycle: a software pipeline over the engine's two
    /// [`RoundBuffers`]. Each iteration prepares round `t+1` serially (data
    /// errors + parities + entropy, exactly the serial path's master-RNG
    /// draws), then overlaps its sharded synthesis into the *back* buffer
    /// with the consumption (discriminate + syndrome commit) of the *front*
    /// buffer, and ping-pongs the buffers.
    fn run_cycle_pooled(&mut self) -> CycleResult {
        self.run_cycle_pooled_ext(None)
    }

    /// [`CycleEngine::run_cycle_pooled`] with an optional control-plane task
    /// overlapped into the round-0 pipeline slot — the one consume stage
    /// with nothing to consume. While every group's round-0 synthesis fans
    /// out across the pool, `extra` runs on the calling thread; a
    /// discriminator retrain scheduled here hides behind synthesis instead
    /// of stalling the stream.
    fn run_cycle_pooled_ext(&mut self, extra: Option<&mut dyn FnMut()>) -> CycleResult {
        self.begin_cycle();
        // Round 0 has nothing to consume yet: plain sharded synthesis (plus
        // the overlapped extra task, when present).
        self.prepare_back_round();
        self.pipelined_round(false, extra);
        self.swap_round_buffers();
        for _ in 1..self.cfg.rounds {
            self.prepare_back_round();
            self.pipelined_round(true, None);
            self.swap_round_buffers();
        }
        self.consume_front_round();
        self.finish_cycle()
    }

    /// Stage-one prologue (serial): advances the master RNG exactly as
    /// [`CycleEngine::step_round`] does — data errors, true parities, one
    /// entropy word — derives the per-group stream seeds, and pre-sizes the
    /// back batch's rows for sharded writes.
    fn prepare_back_round(&mut self) {
        let mut timer = StageTimer::start();
        self.sim.apply_data_errors(&mut self.rng);
        self.sim.true_parities_into(
            &mut self
                .exec
                .as_mut()
                .expect("pooled engine")
                .back
                .true_parities,
        );
        let entropy = self.round_entropy();
        self.resolve_round_faults();
        let n_groups = self.map.n_groups();
        let exec = self.exec.as_mut().expect("pooled engine");
        for (g, s) in exec.seeds.iter_mut().enumerate() {
            *s = stream_seed(entropy, g as u64);
        }
        exec.back.batch.clear();
        for _ in 0..n_groups {
            let _ = exec.back.batch.push_empty_row();
        }
        let (begin, prologue_ns) = timer.lap_span_ns();
        self.in_flight.syndrome += prologue_ns;
        self.telem
            .note_span(SpanKind::Syndrome, begin, prologue_ns, self.synth_round);
    }

    /// One pooled pipeline step: fans the back round's per-group synthesis
    /// out across the pool while (when `consume_front`) discriminating the
    /// front round and committing its measured syndrome on the calling
    /// thread. Allocation-free once warm.
    fn pipelined_round(&mut self, consume_front: bool, extra: Option<&mut dyn FnMut()>) {
        let mut wall_timer = StageTimer::start();
        let round_arg = self.sim.round() as u64;
        let mut slot_decode_ns = 0u64;
        let CycleEngine {
            disc,
            map,
            sim,
            round: front,
            exec,
            faults,
            health,
            telem,
            code,
            blocks,
            active,
            decode,
            decode_budget_ns,
            async_pending,
            async_outcome,
            ..
        } = self;
        let disc: &D = disc;
        let map: &AncillaMap = map;
        let faults: &RoundFaults = faults;
        let exec = exec.as_mut().expect("pooled engine");
        let pool = exec.pool;
        let RoundBuffers {
            batch: back_batch,
            true_parities: back_parities,
            ..
        } = &mut exec.back;
        let n_samples = back_batch.n_samples();
        let row_width = back_batch.row_width();
        let synth_tiles = Tiles::new(&mut exec.synths);
        let row_tiles = Tiles::chunks(back_batch.as_mut_slice(), row_width);
        let seeds: &[u64] = &exec.seeds;
        let parities: &[bool] = back_parities;
        let round_faults = faults.is_active().then_some(faults);

        let (disc_ns, syndrome_ns) = pool.overlap(
            map.n_groups(),
            |g| {
                // SAFETY: the pool claims each index exactly once per
                // fan-out, so shard `g`'s synthesizer and batch row have no
                // other live borrows.
                let synth = unsafe { synth_tiles.item(g) };
                let row = unsafe { row_tiles.tile(g) };
                let (i_row, q_row) = row.split_at_mut(n_samples);
                let mut rng = StdRng::seed_from_u64(seeds[g]);
                synth.synth_into_slot_faulted(
                    map.prepared_state(g, parities),
                    round_faults,
                    i_row,
                    q_row,
                    &mut rng,
                );
            },
            || {
                if !consume_front {
                    // The idle consume slot: run the overlapped
                    // control-plane task (e.g. a discriminator retrain)
                    // behind round 0's synthesis fan-out.
                    if let Some(f) = extra {
                        f();
                    }
                    if *async_pending {
                        // Async decode offload: the previous cycle's block
                        // (stable in the active home until the next
                        // finish-cycle swap) decodes here, hidden behind
                        // round 0's synthesis fan-out.
                        let mut timer = StageTimer::start();
                        let mut out = decode_block_with(code, &blocks[*active], decode);
                        let (begin, ns) = timer.lap_span_ns();
                        if decode_budget_ns.is_some_and(|b| ns > b) {
                            out.degraded = true;
                        }
                        telem.note_span(SpanKind::Decode, begin, ns, round_arg);
                        *async_outcome = out;
                        *async_pending = false;
                        slot_decode_ns = ns;
                    }
                    return (0, 0);
                }
                let mut timer = StageTimer::start();
                disc.discriminate_shot_batch_r_into(
                    &front.batch,
                    &mut front.features,
                    &mut front.states,
                );
                let (disc_begin, disc_ns) = timer.lap_span_ns();
                for (a, m) in front.measured.iter_mut().enumerate() {
                    let (g, c) = map.slot(a);
                    *m = front.states[g].qubit(c);
                }
                sim.record_measured_syndrome(&front.measured);
                observe_round_health(disc, map, health, &front.features, &front.measured);
                let (commit_begin, commit_ns) = timer.lap_span_ns();
                telem.note_span(SpanKind::Discriminate, disc_begin, disc_ns, round_arg);
                telem.note_span(SpanKind::Syndrome, commit_begin, commit_ns, round_arg);
                (disc_ns, commit_ns)
            },
        );

        // The synth span covers the whole overlap window: the fan-out's
        // exact per-worker layout lives on the pool's worker tracks.
        let (wall_begin, wall) = wall_timer.lap_span_ns();
        self.telem
            .note_span(SpanKind::Synth, wall_begin, wall, round_arg);
        self.in_flight.discriminate += disc_ns;
        self.in_flight.syndrome += syndrome_ns;
        self.in_flight.decode += slot_decode_ns;
        // Pipeline accounting: the synth stage is charged only the wall time
        // it was *not* hidden behind the consume stage (front-round
        // discrimination + commit, plus any offloaded decode in the round-0
        // slot) — its exposed latency.
        self.in_flight.synth += wall.saturating_sub(disc_ns + syndrome_ns + slot_decode_ns);
        if consume_front {
            self.totals.rounds += 1;
            self.advance_window();
        }
    }

    /// Drains the front buffer (the pipeline's epilogue): batched
    /// discrimination plus measured-syndrome commit of the last round.
    fn consume_front_round(&mut self) {
        let round_arg = self.sim.round() as u64;
        let mut timer = StageTimer::start();
        let RoundBuffers {
            batch,
            features,
            states,
            measured,
            ..
        } = &mut self.round;
        self.disc
            .discriminate_shot_batch_r_into(batch, features, states);
        let (disc_begin, disc_ns) = timer.lap_span_ns();
        self.in_flight.discriminate += disc_ns;
        for (a, m) in measured.iter_mut().enumerate() {
            let (g, c) = self.map.slot(a);
            *m = states[g].qubit(c);
        }
        self.sim.record_measured_syndrome(measured);
        observe_round_health(self.disc, &self.map, &mut self.health, features, measured);
        let (commit_begin, commit_ns) = timer.lap_span_ns();
        self.in_flight.syndrome += commit_ns;
        self.totals.rounds += 1;
        self.telem
            .note_span(SpanKind::Discriminate, disc_begin, disc_ns, round_arg);
        self.telem
            .note_span(SpanKind::Syndrome, commit_begin, commit_ns, round_arg);
        self.advance_window();
    }

    /// Ping-pongs the freshly synthesized back buffer into the front slot.
    fn swap_round_buffers(&mut self) {
        let exec = self.exec.as_mut().expect("pooled engine");
        std::mem::swap(&mut self.round, &mut exec.back);
    }

    /// Blocking API: runs `n` cycles back to back.
    pub fn run_cycles(&mut self, n: usize) -> Vec<CycleResult> {
        (0..n).map(|_| self.run_cycle()).collect()
    }

    /// Pull-based streaming API: an endless iterator of cycle results —
    /// bound it with `.take(n)`.
    pub fn cycles(&mut self) -> Cycles<'_, 'a, R, D> {
        Cycles { engine: self }
    }
}

impl<'a, R: Real, D: ?Sized + PrecisionDiscriminator<R> + Recalibrate> CycleEngine<'a, R, D> {
    /// [`CycleEngine::run_cycle`] with the detect → recover loop closed:
    /// when the [`HealthMonitor`] reports Degraded or Critical, the
    /// discriminator has harvested enough windows
    /// ([`Recalibrate::recal_ready`]), and the hot-swap cooldown has
    /// elapsed, the cycle retrains and atomically hot-swaps the
    /// discriminator's calibration. On a pooled engine the retrain is
    /// overlapped into the round-0 pipeline slot, hidden behind the first
    /// round's synthesis fan-out; serially it runs before the cycle.
    ///
    /// A successful swap bumps [`EngineStats::hot_swaps`] and re-baselines
    /// the health monitor (the new calibration's feature scale invalidates
    /// the old margin baseline).
    pub fn run_cycle_adaptive(&mut self) -> CycleResult {
        let unhealthy = matches!(
            self.health.monitor.status(),
            HealthStatus::Degraded | HealthStatus::Critical
        );
        let cooled = self.totals.rounds >= self.last_swap_round.saturating_add(self.recal_cooldown)
            || self.totals.hot_swaps == 0;
        if !(unhealthy && cooled && self.disc.recal_ready()) {
            return self.run_cycle();
        }
        let disc = self.disc;
        let mut swapped = None;
        let result = if self.exec.is_some() {
            let mut retrain = || swapped = disc.recalibrate();
            self.run_cycle_pooled_ext(Some(&mut retrain))
        } else {
            swapped = disc.recalibrate();
            self.begin_cycle();
            for _ in 0..self.cfg.rounds {
                self.step_round();
            }
            self.finish_cycle()
        };
        // The cycle that hosted the retrain attempt (just finished).
        let cycle_index = self.totals.cycles.saturating_sub(1);
        if swapped.is_some() {
            self.totals.hot_swaps += 1;
            self.last_swap_round = self.totals.rounds;
            self.health.monitor.recalibrated();
            self.telem.note_recal_trained(cycle_index);
            self.telem.note_hot_swap(self.totals.hot_swaps);
        } else {
            self.telem.note_recal_declined(cycle_index);
        }
        result
    }

    /// Blocking adaptive API: [`CycleEngine::run_cycle_adaptive`], `n`
    /// times.
    pub fn run_cycles_adaptive(&mut self, n: usize) -> Vec<CycleResult> {
        (0..n).map(|_| self.run_cycle_adaptive()).collect()
    }
}

/// Feeds one consumed round into the engine's health state: widens each
/// group's feature row to `f64`, queries the discriminator's soft margins,
/// averages them over *live* ancilla slots (idle pad channels carry no
/// signal), and folds the mean plus the measured syndrome into the
/// [`HealthMonitor`]. Allocation-free once the feature-row buffer has its
/// warm size.
fn observe_round_health<R: Real, D: ?Sized + PrecisionDiscriminator<R>>(
    disc: &D,
    map: &AncillaMap,
    health: &mut HealthState,
    features: &[R],
    measured: &[bool],
) {
    let mut margin_sum = 0.0;
    let mut margin_n = 0usize;
    let n_groups = map.n_groups();
    if health.margin_supported && n_groups > 0 && !features.is_empty() {
        let width = features.len() / n_groups;
        if width > 0 && features.len() == n_groups * width {
            if health.feat_row.len() != width {
                health.feat_row.resize(width, 0.0);
            }
            for g in 0..n_groups {
                let row = &features[g * width..(g + 1) * width];
                for (dst, src) in health.feat_row.iter_mut().zip(row) {
                    *dst = src.to_f64();
                }
                if !disc.soft_margins(&health.feat_row, &mut health.margins) {
                    health.margin_supported = false;
                    margin_n = 0;
                    break;
                }
                for (c, &m) in health.margins.iter().enumerate() {
                    if map.ancilla(g, c).is_some() {
                        margin_sum += m;
                        margin_n += 1;
                    }
                }
            }
        }
    }
    let mean_margin = (margin_n > 0).then(|| margin_sum / margin_n as f64);
    health.monitor.observe_round(mean_margin, measured);
}

impl<R: Real, D: ?Sized> std::fmt::Debug for CycleEngine<'_, R, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleEngine")
            .field("cfg", &self.cfg)
            .field("distance", &self.code.distance())
            .field("groups", &self.map.n_groups())
            .field("totals", &self.totals)
            .finish_non_exhaustive()
    }
}

/// Endless pull-based iterator over an engine's cycles.
#[derive(Debug)]
pub struct Cycles<'e, 'a, R: Real = f64, D: ?Sized = dyn Discriminator + 'a> {
    engine: &'e mut CycleEngine<'a, R, D>,
}

impl<R: Real, D: ?Sized + PrecisionDiscriminator<R>> Iterator for Cycles<'_, '_, R, D> {
    type Item = CycleResult;

    fn next(&mut self) -> Option<CycleResult> {
        Some(self.engine.run_cycle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_mf_discriminator;

    fn setup() -> (ChipConfig, RotatedSurfaceCode, Box<dyn Discriminator>) {
        let chip = ChipConfig::two_qubit_test();
        let code = RotatedSurfaceCode::new(3);
        let disc = train_mf_discriminator(&chip, 12, 77);
        (chip, code, disc)
    }

    #[test]
    fn engine_streams_deterministic_cycles() {
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 3,
            data_error_prob: 0.01,
            seed: 5,
        };
        let run = || {
            let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
            let results = engine.run_cycles(4);
            let block = engine.last_block().clone();
            (results, block)
        };
        let (ra, ba) = run();
        let (rb, bb) = run();
        assert_eq!(ra.len(), 4);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.outcome, y.outcome, "same seed, same outcomes");
            assert_eq!(x.stats.rounds, 3);
        }
        assert_eq!(ba, bb, "same seed, same final block");
    }

    #[test]
    fn iterator_and_blocking_api_agree() {
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 2,
            data_error_prob: 0.02,
            seed: 9,
        };
        let mut a = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let mut b = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let blocking: Vec<DecodeOutcome> = a.run_cycles(5).iter().map(|r| r.outcome).collect();
        let pulled: Vec<DecodeOutcome> = b.cycles().take(5).map(|r| r.outcome).collect();
        assert_eq!(blocking, pulled);
        assert_eq!(a.stats().cycles, 5);
        assert_eq!(a.stats().rounds, 10);
    }

    #[test]
    fn perfect_readout_yields_low_logical_rate() {
        // With a tiny data error rate and a working discriminator, most
        // cycles must decode without a logical error.
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 3,
            data_error_prob: 0.002,
            seed: 21,
        };
        let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let failures = engine
            .run_cycles(30)
            .iter()
            .filter(|r| r.outcome.logical_error)
            .count();
        assert!(failures <= 6, "{failures}/30 logical errors");
    }

    #[test]
    fn stage_timings_are_populated() {
        let (chip, code, disc) = setup();
        let cfg = CycleConfig {
            rounds: 2,
            data_error_prob: 0.01,
            seed: 1,
        };
        let mut engine = CycleEngine::new(cfg, &chip, &code, disc.as_ref());
        let r = engine.run_cycle();
        assert!(r.stats.stage.synth > 0);
        assert!(r.stats.stage.discriminate > 0);
        assert!(r.stats.stage.total() >= r.stats.stage.synth);
        assert_eq!(engine.stats().stage, r.stats.stage);
    }

    #[test]
    #[should_panic(expected = "same channels")]
    fn rejects_chip_discriminator_mismatch() {
        let (_, code, disc) = setup();
        let five = ChipConfig::five_qubit_default();
        let cfg = CycleConfig::for_distance(3);
        let _ = CycleEngine::new(cfg, &five, &code, disc.as_ref());
    }
}
