//! Online recalibration: a self-harvesting, hot-swappable MF discriminator.
//!
//! [`AdaptiveMf`] wraps the `mf` design's fused demod + matched-filter GEMM
//! behind a **generation-counted atomic calibration slot**: every batch
//! discriminate loads the current [`Arc`]'d calibration (a read lock plus a
//! refcount bump — no allocation), so a retrain can build a complete new
//! calibration off to the side and [`SwapSlot::swap`] it in while the
//! engine keeps streaming. Readers either see the old calibration or the
//! new one, never a torn mix of old filters and new thresholds.
//!
//! While discriminating, the design *harvests its own training data*: shots
//! whose soft margin clears a self-normalizing confidence gate are copied
//! (raw window + self-assigned label) into a fixed-capacity [`WindowRing`].
//! [`AdaptiveMf::recalibrate`] then
//!
//! 1. averages the confident raw windows per qubit per class and
//!    demodulates the means (demodulation is linear, so the demodulated
//!    mean *is* the mean demodulated trace),
//! 2. rebuilds each drifted qubit's matched filter from the
//!    excited-minus-ground mean envelope,
//! 3. re-featurizes the harvested windows through the new
//!    [`herqles_core::FusedFilterKernel`] — one tall-skinny GEMM on the
//!    `herqles-num` kernel layer — and refits the per-qubit thresholds on
//!    those features,
//! 4. swaps the new calibration in atomically, bumping the generation.
//!
//! The retrain path may allocate (it is a rare control-plane event, and the
//! streaming engine can hide it behind synthesis via
//! [`herqles_exec::ShardPool::overlap`]); the harvest path on the round loop
//! is allocation-free once warm.
//!
//! Self-labeling is honest about its limits: labels come from the *current*
//! calibration, so recovery works while the drifted channel still labels
//! high-margin shots correctly — the regime the confidence gate selects for.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use herqles_core::bank::FilterBank;
use herqles_core::designs::MfDiscriminator;
use herqles_core::{Discriminator, PrecisionDiscriminator, PrecisionKernels, Real};
use readout_classifiers::ThresholdDiscriminator;
use readout_dsp::filters::MatchedFilter;
use readout_dsp::Demodulator;
use readout_sim::trace::{BasisState, IqTrace};
use readout_sim::ShotBatch;

/// A discriminator that can retrain itself from harvested data and hot-swap
/// the result into place. The streaming engine's adaptive cycle entry point
/// is bounded on this trait.
pub trait Recalibrate: Send + Sync {
    /// Whether enough harvested data is buffered for a retrain to be worth
    /// attempting.
    fn recal_ready(&self) -> bool;

    /// Rebuilds the calibration from harvested data and atomically swaps it
    /// in. Returns the new generation, or `None` when there was not enough
    /// per-class data to retrain anything.
    fn recalibrate(&self) -> Option<u64>;

    /// Generation of the live calibration (0 until the first swap).
    fn generation(&self) -> u64;
}

/// A generation-counted atomic publication slot.
///
/// Readers [`SwapSlot::load`] an [`Arc`] snapshot (read lock + refcount, no
/// allocation); writers build a replacement off-line and [`SwapSlot::swap`]
/// it in, bumping the generation. Std-only — no external atomics crates.
#[derive(Debug)]
pub struct SwapSlot<T> {
    current: RwLock<Arc<T>>,
    generation: AtomicU64,
}

impl<T> SwapSlot<T> {
    /// A slot publishing `value` at generation 0.
    pub fn new(value: T) -> Self {
        SwapSlot {
            current: RwLock::new(Arc::new(value)),
            generation: AtomicU64::new(0),
        }
    }

    /// Snapshot of the current value.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read().expect("swap slot poisoned"))
    }

    /// Atomically publishes `value`, returning the new generation.
    pub fn swap(&self, value: T) -> u64 {
        let mut slot = self.current.write().expect("swap slot poisoned");
        *slot = Arc::new(value);
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Generation of the published value (0 before any swap).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// One immutable calibration: filters, fused kernels, thresholds. Swapped
/// wholesale so readers never observe a torn calibration.
#[derive(Debug)]
struct Calibration {
    bank: FilterBank,
    kernels: PrecisionKernels,
    thresholds: Vec<ThresholdDiscriminator>,
}

impl Calibration {
    fn classify_features<R: Real>(&self, features: &[R]) -> BasisState {
        let mut state = BasisState::new(0);
        for (q, threshold) in self.thresholds.iter().enumerate() {
            state = state.with_qubit(q, threshold.classify_a(features[q].to_f64()));
        }
        state
    }
}

/// Fixed-capacity ring of harvested high-confidence raw windows.
///
/// Each slot stores one shot's raw row (`[i…, q…]`, widened to `f64`), the
/// self-assigned label bits, and a per-qubit confidence mask. The per-qubit
/// margin-scale EWMA that drives the confidence gate lives here too, so the
/// whole harvest path works under one uncontended mutex with zero
/// allocation.
#[derive(Debug)]
struct WindowRing {
    width: usize,
    capacity: usize,
    data: Vec<f64>,
    labels: Vec<u32>,
    conf: Vec<u32>,
    len: usize,
    head: usize,
    /// Per-qubit EWMA of the absolute soft margin — the self-normalizing
    /// scale the confidence gate compares against.
    scale: Vec<f64>,
}

impl WindowRing {
    fn new(capacity: usize, width: usize, n_qubits: usize) -> Self {
        WindowRing {
            width,
            capacity,
            data: vec![0.0; capacity * width],
            labels: vec![0; capacity],
            conf: vec![0; capacity],
            len: 0,
            head: 0,
            scale: vec![0.0; n_qubits],
        }
    }

    fn push<R: Real>(&mut self, i_row: &[R], q_row: &[R], label: u32, conf: u32) {
        let slot = &mut self.data[self.head * self.width..(self.head + 1) * self.width];
        let (i_dst, q_dst) = slot.split_at_mut(i_row.len());
        for (d, s) in i_dst.iter_mut().zip(i_row) {
            *d = s.to_f64();
        }
        for (d, s) in q_dst.iter_mut().zip(q_row) {
            *d = s.to_f64();
        }
        self.labels[self.head] = label;
        self.conf[self.head] = conf;
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    #[cfg(test)]
    fn row(&self, s: usize) -> &[f64] {
        &self.data[s * self.width..(s + 1) * self.width]
    }

    fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
    }
}

/// Tuning of the harvest ring and retrain gates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecalConfig {
    /// Harvested windows kept (ring capacity).
    pub capacity: usize,
    /// A shot is "confident" for qubit `q` when its margin is at least this
    /// fraction of the qubit's margin-scale EWMA.
    pub min_margin_frac: f64,
    /// Minimum confident windows *per class per qubit* to retrain that
    /// qubit's filter and threshold.
    pub min_windows: usize,
    /// EWMA weight of the per-qubit margin scale.
    pub scale_alpha: f64,
}

impl Default for RecalConfig {
    fn default() -> Self {
        RecalConfig {
            capacity: 256,
            min_margin_frac: 0.5,
            min_windows: 12,
            scale_alpha: 0.05,
        }
    }
}

/// The `mf` design wrapped in an atomic, self-recalibrating shell: same
/// fused batch hot path, plus window harvesting and
/// [`Recalibrate::recalibrate`].
///
/// Implements [`Discriminator`] (and `PrecisionDiscriminator<f32>`), so it
/// drives a `CycleEngine` at either pipeline precision.
#[derive(Debug)]
pub struct AdaptiveMf {
    demod: Demodulator,
    cfg: RecalConfig,
    slot: SwapSlot<Calibration>,
    ring: Mutex<WindowRing>,
    n_qubits: usize,
}

impl AdaptiveMf {
    /// Wraps a trained [`MfDiscriminator`]'s calibration (filters and
    /// thresholds are cloned; generation starts at 0).
    pub fn from_mf(mf: &MfDiscriminator, cfg: RecalConfig) -> Self {
        let demod = mf.demod().clone();
        let bank = mf.bank().clone();
        let kernels = PrecisionKernels::new(&demod, &bank);
        let n_qubits = bank.n_qubits();
        let width = 2 * demod.n_samples();
        AdaptiveMf {
            slot: SwapSlot::new(Calibration {
                bank,
                kernels,
                thresholds: mf.thresholds().to_vec(),
            }),
            ring: Mutex::new(WindowRing::new(cfg.capacity.max(1), width, n_qubits)),
            demod,
            cfg,
            n_qubits,
        }
    }

    /// Harvested windows currently buffered.
    pub fn buffered_windows(&self) -> usize {
        self.ring.lock().expect("ring poisoned").len
    }

    /// The live per-qubit decision thresholds (snapshot).
    pub fn thresholds(&self) -> Vec<ThresholdDiscriminator> {
        self.slot.load().thresholds.clone()
    }

    /// The fused batch path at any pipeline precision, plus harvesting.
    fn batch_into_r<R: Real>(
        &self,
        batch: &ShotBatch<R>,
        scratch: &mut Vec<R>,
        out: &mut Vec<BasisState>,
    ) {
        let cal = self.slot.load();
        out.clear();
        let kernel = cal.kernels.get::<R>();
        if !kernel.matches(batch) {
            out.extend((0..batch.n_shots()).map(|s| self.discriminate(&batch.trace(s))));
            return;
        }
        kernel.features_batch(batch, scratch);
        let width = kernel.n_features().max(1);
        out.extend(scratch.chunks(width).map(|f| cal.classify_features(f)));
        self.harvest(&cal, batch, scratch, out);
    }

    /// Updates the per-qubit margin scales and copies confident windows into
    /// the ring. Allocation-free: fixed ring storage, uncontended mutex.
    fn harvest<R: Real>(
        &self,
        cal: &Calibration,
        batch: &ShotBatch<R>,
        features: &[R],
        states: &[BasisState],
    ) {
        let width = cal.kernels.n_features().max(1);
        let mut ring = self.ring.lock().expect("ring poisoned");
        for s in 0..batch.n_shots() {
            let f = &features[s * width..(s + 1) * width];
            let mut conf = 0u32;
            for (q, threshold) in cal.thresholds.iter().enumerate() {
                let margin = (f[q].to_f64() - threshold.threshold()).abs();
                let scale = &mut ring.scale[q];
                *scale += self.cfg.scale_alpha * (margin - *scale);
                if margin >= self.cfg.min_margin_frac * *scale {
                    conf |= 1 << q;
                }
            }
            if conf != 0 {
                ring.push(batch.i_of(s), batch.q_of(s), states[s].bits(), conf);
            }
        }
    }
}

impl Discriminator for AdaptiveMf {
    fn name(&self) -> &str {
        "mf-adaptive"
    }

    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn discriminate(&self, raw: &IqTrace) -> BasisState {
        let cal = self.slot.load();
        let traces = self.demod.demodulate(raw);
        cal.classify_features(&cal.bank.features(&traces))
    }

    fn discriminate_shot_batch(&self, batch: &ShotBatch) -> Vec<BasisState> {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        self.discriminate_shot_batch_into(batch, &mut scratch, &mut out);
        out
    }

    fn discriminate_shot_batch_into(
        &self,
        batch: &ShotBatch,
        scratch: &mut Vec<f64>,
        out: &mut Vec<BasisState>,
    ) {
        self.batch_into_r(batch, scratch, out);
    }

    fn soft_margins(&self, features: &[f64], out: &mut [f64]) -> bool {
        let cal = self.slot.load();
        if features.len() < cal.thresholds.len() || out.len() < cal.thresholds.len() {
            return false;
        }
        for (q, threshold) in cal.thresholds.iter().enumerate() {
            out[q] = (features[q] - threshold.threshold()).abs();
        }
        true
    }
}

impl PrecisionDiscriminator<f32> for AdaptiveMf {
    fn discriminate_shot_batch_r_into(
        &self,
        batch: &ShotBatch<f32>,
        scratch: &mut Vec<f32>,
        out: &mut Vec<BasisState>,
    ) {
        self.batch_into_r(batch, scratch, out);
    }
}

impl Recalibrate for AdaptiveMf {
    fn recal_ready(&self) -> bool {
        // Cheap gate: enough windows that at least one qubit can plausibly
        // split into two sufficiently populated classes.
        self.buffered_windows() >= 4 * self.cfg.min_windows
    }

    fn recalibrate(&self) -> Option<u64> {
        // Snapshot the ring (copy, then release the lock so the hot path
        // keeps harvesting while we train).
        let (rows, labels, conf, n_windows) = {
            let ring = self.ring.lock().expect("ring poisoned");
            if ring.len == 0 {
                return None;
            }
            let rows: Vec<f64> = ring.data[..ring.len * ring.width].to_vec();
            (
                rows,
                ring.labels[..ring.len].to_vec(),
                ring.conf[..ring.len].to_vec(),
                ring.len,
            )
        };
        let cal = self.slot.load();
        let n_samples = self.demod.n_samples();
        let width = 2 * n_samples;
        let row = |s: usize| -> &[f64] { &rows[s * width..(s + 1) * width] };
        let kern = <f64 as Real>::kernel();

        // 1.+2. Per-qubit mean confident window per class → new envelope.
        let mut mfs = Vec::with_capacity(self.n_qubits);
        let mut retrained = vec![false; self.n_qubits];
        for (q, q_retrained) in retrained.iter_mut().enumerate() {
            let bit = 1u32 << q;
            let excited: Vec<usize> = (0..n_windows)
                .filter(|&s| conf[s] & bit != 0 && labels[s] & bit != 0)
                .collect();
            let ground: Vec<usize> = (0..n_windows)
                .filter(|&s| conf[s] & bit != 0 && labels[s] & bit == 0)
                .collect();
            if excited.len() < self.cfg.min_windows || ground.len() < self.cfg.min_windows {
                mfs.push(cal.bank.mf(q).clone());
                continue;
            }
            let mean_demod = |idx: &[usize]| -> IqTrace {
                let mut acc = vec![0.0f64; width];
                for &s in idx {
                    kern.axpy(1.0, row(s), &mut acc);
                }
                let inv = 1.0 / idx.len() as f64;
                for v in &mut acc {
                    *v *= inv;
                }
                let (i_mean, q_mean) = acc.split_at(n_samples);
                // Demodulation is linear: demod(mean raw) == mean demod.
                self.demod
                    .demodulate_qubit(&IqTrace::new(i_mean.to_vec(), q_mean.to_vec()), q)
            };
            let mean_e = mean_demod(&excited);
            let mean_g = mean_demod(&ground);
            let di: Vec<f64> = mean_e
                .i()
                .iter()
                .zip(mean_g.i())
                .map(|(a, b)| a - b)
                .collect();
            let dq: Vec<f64> = mean_e
                .q()
                .iter()
                .zip(mean_g.q())
                .map(|(a, b)| a - b)
                .collect();
            // Excited-minus-ground mean envelope: the matched filter for
            // white bin noise, oriented so positive ⇒ excited.
            mfs.push(MatchedFilter::from_envelope(IqTrace::new(di, dq)));
            *q_retrained = true;
        }
        if !retrained.iter().any(|&r| r) {
            return None;
        }

        // 3. Refit thresholds on the harvested windows, featurized through
        //    the new fused kernel — one tall-skinny GEMM on the kernel layer.
        let bank = FilterBank::new(mfs);
        let kernels = PrecisionKernels::new(&self.demod, &bank);
        let mut batch: ShotBatch<f64> = ShotBatch::with_capacity(n_windows, n_samples);
        for s in 0..n_windows {
            let (i_dst, q_dst) = batch.push_empty_row();
            let (i_src, q_src) = row(s).split_at(n_samples);
            i_dst.copy_from_slice(i_src);
            q_dst.copy_from_slice(q_src);
        }
        let mut features = Vec::new();
        kernels.get::<f64>().features_batch(&batch, &mut features);
        let f_width = kernels.n_features().max(1);
        let mut thresholds = Vec::with_capacity(self.n_qubits);
        for q in 0..self.n_qubits {
            if !retrained[q] {
                thresholds.push(cal.thresholds[q]);
                continue;
            }
            let bit = 1u32 << q;
            let mut excited = Vec::new();
            let mut ground = Vec::new();
            for s in 0..n_windows {
                if conf[s] & bit == 0 {
                    continue;
                }
                let v = features[s * f_width + q];
                if labels[s] & bit != 0 {
                    excited.push(v);
                } else {
                    ground.push(v);
                }
            }
            thresholds.push(ThresholdDiscriminator::train(&excited, &ground));
        }

        // 4. Atomic publication; stale self-labels die with the old epoch.
        let generation = self.slot.swap(Calibration {
            bank,
            kernels,
            thresholds,
        });
        self.ring.lock().expect("ring poisoned").clear();
        Some(generation)
    }

    fn generation(&self) -> u64 {
        self.slot.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train_mf_discriminator_typed;
    use readout_sim::{ChipConfig, Dataset};

    #[test]
    fn swap_slot_publishes_generations() {
        let slot = SwapSlot::new(1u32);
        assert_eq!(slot.generation(), 0);
        assert_eq!(*slot.load(), 1);
        assert_eq!(slot.swap(2), 1);
        assert_eq!(slot.swap(3), 2);
        assert_eq!(*slot.load(), 3);
        assert_eq!(slot.generation(), 2);
    }

    #[test]
    fn window_ring_wraps_and_clears() {
        let mut ring = WindowRing::new(2, 4, 1);
        ring.push(&[1.0, 2.0], &[3.0, 4.0], 1, 1);
        ring.push(&[5.0, 6.0], &[7.0, 8.0], 0, 1);
        ring.push(&[9.0, 10.0], &[11.0, 12.0], 1, 1);
        assert_eq!(ring.len, 2);
        // Third push overwrote slot 0.
        assert_eq!(ring.row(0), &[9.0, 10.0, 11.0, 12.0]);
        assert_eq!(ring.labels[0], 1);
        ring.clear();
        assert_eq!(ring.len, 0);
    }

    #[test]
    fn adaptive_mf_matches_wrapped_mf_before_any_swap() {
        let chip = ChipConfig::two_qubit_test();
        let mf = train_mf_discriminator_typed(&chip, 12, 99);
        let adaptive = AdaptiveMf::from_mf(&mf, RecalConfig::default());
        let ds = Dataset::generate(&chip, 16, 1234);
        for shot in &ds.shots {
            assert_eq!(
                adaptive.discriminate(&shot.raw),
                mf.discriminate(&shot.raw),
                "generation 0 must classify exactly like the wrapped mf"
            );
        }
        assert_eq!(adaptive.generation(), 0);
        assert_eq!(adaptive.name(), "mf-adaptive");
        assert_eq!(adaptive.n_qubits(), 2);
    }

    #[test]
    fn harvesting_fills_the_ring_and_retrain_swaps_a_generation() {
        let chip = ChipConfig::two_qubit_test();
        let mf = train_mf_discriminator_typed(&chip, 12, 99);
        let cfg = RecalConfig {
            min_windows: 8,
            ..RecalConfig::default()
        };
        let adaptive = AdaptiveMf::from_mf(&mf, cfg);
        let ds = Dataset::generate(&chip, 40, 777);
        let mut batch: ShotBatch<f64> = ShotBatch::with_capacity(ds.shots.len(), chip.n_samples());
        for shot in &ds.shots {
            batch.push_trace(&shot.raw);
        }
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        adaptive.discriminate_shot_batch_into(&batch, &mut scratch, &mut out);
        assert!(adaptive.buffered_windows() > 0, "confident shots harvested");
        assert!(adaptive.recal_ready());
        let generation = adaptive.recalibrate().expect("enough data to retrain");
        assert_eq!(generation, 1);
        assert_eq!(adaptive.generation(), 1);
        // The self-trained calibration still discriminates competently on
        // clean data (trained from its own labels, so near the original).
        let correct = ds
            .shots
            .iter()
            .filter(|s| adaptive.discriminate(&s.raw) == s.prepared)
            .count();
        let accuracy = correct as f64 / ds.shots.len() as f64;
        assert!(accuracy > 0.8, "post-swap accuracy {accuracy}");
    }
}
