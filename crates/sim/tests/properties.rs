//! Property-based tests of the simulator's physical invariants.

use proptest::prelude::*;
use readout_sim::config::QubitParams;
use readout_sim::events::StatePath;
use readout_sim::trace::{BasisState, IqPoint, IqTrace};
use readout_sim::trajectory::{baseband, excitation_measure};
use readout_sim::ChipConfig;

fn arb_point() -> impl Strategy<Value = IqPoint> {
    (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(i, q)| IqPoint::new(i, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rotation_preserves_norm(p in arb_point(), theta in -10.0..10.0f64) {
        let r = p.rotate(theta);
        prop_assert!((r.norm() - p.norm()).abs() < 1e-9);
    }

    #[test]
    fn rotation_composes(p in arb_point(), a in -3.0..3.0f64, b in -3.0..3.0f64) {
        let seq = p.rotate(a).rotate(b);
        let joint = p.rotate(a + b);
        prop_assert!(seq.distance(joint) < 1e-9);
    }

    #[test]
    fn mtv_is_bounded_by_extremes(vals in proptest::collection::vec(-50.0..50.0f64, 1..40)) {
        let tr = IqTrace::new(vals.clone(), vals.clone());
        let mtv = tr.mtv();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mtv.i >= lo - 1e-12 && mtv.i <= hi + 1e-12);
    }

    #[test]
    fn truncation_never_lengthens(vals in proptest::collection::vec(-1.0..1.0f64, 0..30), n in 0usize..40) {
        let tr = IqTrace::new(vals.clone(), vals);
        prop_assert!(tr.truncated(n).len() <= tr.len());
        prop_assert_eq!(tr.truncated(n).len(), n.min(tr.len()));
    }

    #[test]
    fn basis_state_qubit_roundtrip(bits in 0u32..(1 << 12), q in 0usize..12, v in any::<bool>()) {
        let s = BasisState::new(bits).with_qubit(q, v);
        prop_assert_eq!(s.qubit(q), v);
    }

    #[test]
    fn hamming_distance_is_metric(a in 0u32..1024, b in 0u32..1024, c in 0u32..1024) {
        let (sa, sb, sc) = (BasisState::new(a), BasisState::new(b), BasisState::new(c));
        prop_assert_eq!(sa.hamming_distance(sb), sb.hamming_distance(sa));
        prop_assert_eq!(sa.hamming_distance(sa), 0);
        prop_assert!(sa.hamming_distance(sc) <= sa.hamming_distance(sb) + sb.hamming_distance(sc));
    }

    #[test]
    fn trajectory_stays_within_hull(t_relax in 1e-9..0.9e-6f64) {
        // Baseband points never exceed the farthest steady-state magnitude
        // (the dynamics are contractions toward the targets).
        let params: QubitParams = ChipConfig::five_qubit_default().qubits[0].clone();
        let times: Vec<f64> = (0..100).map(|k| k as f64 * 1e-8).collect();
        let path = StatePath::Relaxation { time_s: t_relax };
        let limit = params.ground_ss.norm().max(params.excited_ss.norm()) + 1e-9;
        for p in baseband(&params, &path, &times) {
            prop_assert!(p.norm() <= limit, "point {p} outside hull");
        }
    }

    #[test]
    fn excitation_measure_is_affine_calibrated(alpha in 0.0..1.0f64) {
        // Points on the ground→excited segment measure exactly their mix.
        let params = ChipConfig::five_qubit_default().qubits[2].clone();
        let p = params.ground_ss + (params.excited_ss - params.ground_ss) * alpha;
        let m = excitation_measure(&params, p);
        prop_assert!((m - alpha).abs() < 1e-9);
    }
}
