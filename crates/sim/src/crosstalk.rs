//! Readout-crosstalk model between frequency-multiplexed channels.
//!
//! When several qubits share one feedline, the state of qubit *j* perturbs the
//! signal observed on qubit *q*'s channel (dispersive shifts pulling
//! neighbouring resonators, finite isolation between tones). The model here is
//! additive in the baseband: each aggressor contributes a shift proportional
//! to its instantaneous normalized excitation, plus a weaker *pairwise*
//! (nonlinear) term when two aggressors are excited simultaneously. The linear
//! part can be compensated by a linear classifier over all matched-filter
//! outputs; the pairwise part is what gives the neural network its measurable
//! edge in the cross-fidelity study (paper Table 2).

use std::error::Error;
use std::fmt;

use herqles_num::Real;

use crate::trace::IqPoint;

/// A structural defect in a [`CrosstalkModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrosstalkError {
    /// The model's dimension does not match the chip's channel count.
    SizeMismatch {
        /// Qubits the model was built for.
        model: usize,
        /// Qubits the chip actually has.
        chip: usize,
    },
    /// A qubit's self-coupling coefficient is nonzero (a qubit cannot be its
    /// own crosstalk aggressor).
    NonzeroDiagonal {
        /// The offending victim/aggressor index.
        qubit: usize,
    },
}

impl fmt::Display for CrosstalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CrosstalkError::SizeMismatch { model, chip } => {
                write!(
                    f,
                    "crosstalk model sized for {model} qubits, chip has {chip}"
                )
            }
            CrosstalkError::NonzeroDiagonal { qubit } => {
                write!(f, "crosstalk diagonal for qubit {qubit} must be zero")
            }
        }
    }
}

impl Error for CrosstalkError {}

/// Reusable row buffers for [`CrosstalkModel::apply_batch`].
///
/// Holds the victim-major linear shift rows, the per-aggressor weight rows,
/// the per-pair term rows and the per-victim pair sums. Sized lazily on
/// first use and only re-sized when the model or window changes, so a warm
/// streaming synthesizer applies crosstalk without touching the heap.
#[derive(Debug, Clone, Default)]
pub struct CrosstalkScratch {
    lin_i: Vec<f64>,
    lin_q: Vec<f64>,
    w: Vec<f64>,
    terms: Vec<f64>,
    pair: Vec<f64>,
}

impl CrosstalkScratch {
    /// An empty scratch; buffers are sized on first
    /// [`CrosstalkModel::apply_batch`].
    pub fn new() -> Self {
        CrosstalkScratch::default()
    }

    fn resize(&mut self, n: usize, n_samples: usize) {
        let rows = n * n_samples;
        self.lin_i.resize(rows, 0.0);
        self.lin_q.resize(rows, 0.0);
        self.w.resize(rows, 0.0);
        self.pair.resize(rows, 0.0);
        self.terms
            .resize(n * n.saturating_sub(1) / 2 * n_samples, 0.0);
    }
}

/// Crosstalk coefficients for one victim/aggressor pair and the shared
/// pairwise term.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkModel {
    n: usize,
    /// `linear[victim][aggressor]`: baseband shift (absolute IQ units) applied
    /// to the victim when the aggressor is fully excited. Diagonal is zero.
    linear: Vec<Vec<IqPoint>>,
    /// Direction and magnitude of the extra shift on victim `q` when a *pair*
    /// of other qubits is simultaneously excited.
    pairwise: Vec<IqPoint>,
    /// Per-qubit aggressor strength entering the pairwise term (normalized
    /// dispersive separation; a weakly coupled qubit contributes weakly).
    pair_strength: Vec<f64>,
    /// Extra multiplicative strength of the crosstalk during the ring-up
    /// transient: the shift is scaled by `1 + boost · exp(−t/τ)`. Resonators
    /// pull each other hardest while their fields are still building up,
    /// which concentrates crosstalk in the early readout window — exactly
    /// the window the relaxation matched filter projects onto, making the
    /// RMF double as a crosstalk probe (paper §4.3.2's "additional
    /// features").
    transient_boost: f64,
    /// Decay time of the transient boost, in seconds.
    transient_tau_s: f64,
}

impl CrosstalkModel {
    /// A crosstalk-free model for `n` qubits.
    pub fn none(n: usize) -> Self {
        CrosstalkModel {
            n,
            linear: vec![vec![IqPoint::ZERO; n]; n],
            pairwise: vec![IqPoint::ZERO; n],
            pair_strength: vec![1.0; n],
            transient_boost: 0.0,
            transient_tau_s: 1.0,
        }
    }

    /// Builds a model from explicit coefficient matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n` with `n == pairwise.len()`, or if
    /// it fails [`CrosstalkModel::validate`] (nonzero diagonal).
    pub fn from_coefficients(linear: Vec<Vec<IqPoint>>, pairwise: Vec<IqPoint>) -> Self {
        let n = linear.len();
        assert!(
            linear.iter().all(|row| row.len() == n),
            "matrix must be square"
        );
        assert_eq!(
            pairwise.len(),
            n,
            "pairwise vector must have one entry per qubit"
        );
        let model = CrosstalkModel {
            n,
            linear,
            pairwise,
            pair_strength: vec![1.0; n],
            transient_boost: 0.0,
            transient_tau_s: 1.0,
        };
        if let Err(e) = model.validate(n) {
            panic!("invalid crosstalk coefficients: {e}");
        }
        model
    }

    /// Default chain topology with unit aggressor strength: see
    /// [`CrosstalkModel::chain_for_separations`], which is what the default
    /// chips use. Kept for tests and for chips without per-qubit separation
    /// information (all aggressors treated as unit-separation).
    pub fn chain_default(n: usize) -> Self {
        Self::chain_for_separations(&vec![2.5; n])
    }

    /// Chain topology where each aggressor's pull is proportional to its own
    /// dispersive separation (a qubit that barely moves its own resonator
    /// cannot move its neighbours' either). Relative couplings: 21 % of the
    /// aggressor separation at chain distance 1, 7 % at distance 2, 1.5 %
    /// farther; pairwise term 8.5 %. The shift direction is deterministic per
    /// victim/aggressor pair so it has components both along and across each
    /// victim's separation axis. The transient boost concentrates the shift
    /// in the early window (2× extra at `t = 0`, τ = 200 ns).
    pub fn chain_for_separations(separations: &[f64]) -> Self {
        let n = separations.len();
        let mut linear = vec![vec![IqPoint::ZERO; n]; n];
        for (victim, row) in linear.iter_mut().enumerate() {
            for (aggressor, c) in row.iter_mut().enumerate() {
                if victim == aggressor {
                    continue;
                }
                let dist = victim.abs_diff(aggressor);
                let ratio = match dist {
                    1 => 0.21,
                    2 => 0.07,
                    _ => 0.015,
                };
                let mag = ratio * separations[aggressor];
                let angle = 0.9 * victim as f64 + 2.1 * aggressor as f64;
                *c = IqPoint::new(mag, 0.0).rotate(angle);
            }
        }
        let mean_sep = separations.iter().sum::<f64>() / n as f64;
        let pairwise = (0..n)
            .map(|q| IqPoint::new(0.085 * mean_sep, 0.0).rotate(1.3 * q as f64 + 0.4))
            .collect();
        CrosstalkModel {
            n,
            linear,
            pairwise,
            pair_strength: separations.iter().map(|s| s / mean_sep).collect(),
            transient_boost: 2.0,
            transient_tau_s: 200e-9,
        }
    }

    /// Number of qubits the model is sized for.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Linear coefficient applied to `victim` per unit excitation of
    /// `aggressor`.
    pub fn linear_coeff(&self, victim: usize, aggressor: usize) -> IqPoint {
        self.linear[victim][aggressor]
    }

    /// Time-dependent transient scale factor at `t` seconds into the window.
    pub fn transient_scale(&self, t_s: f64) -> f64 {
        1.0 + self.transient_boost * (-t_s / self.transient_tau_s).exp()
    }

    /// Instantaneous crosstalk shift on `victim` at time `t_s` (seconds into
    /// the readout window) given every qubit's normalized excitation measure
    /// `m` (0 = ground steady state, 1 = excited steady state; values in
    /// between during ring-up or decay).
    ///
    /// The pairwise contribution sums `m_j · m_k` over all aggressor pairs;
    /// the whole shift is scaled by the early-window transient factor.
    pub fn shift_at(&self, victim: usize, m: &[f64], t_s: f64) -> IqPoint {
        self.shift(victim, m) * self.transient_scale(t_s)
    }

    /// Steady-state crosstalk shift (no transient scaling); see
    /// [`CrosstalkModel::shift_at`].
    pub fn shift(&self, victim: usize, m: &[f64]) -> IqPoint {
        debug_assert_eq!(m.len(), self.n);
        let mut shift = IqPoint::ZERO;
        for (aggressor, &mj) in m.iter().enumerate() {
            if aggressor != victim && mj != 0.0 {
                shift += self.linear[victim][aggressor] * mj;
            }
        }
        let mut pair_sum = 0.0;
        for j in 0..self.n {
            if j == victim {
                continue;
            }
            for k in (j + 1)..self.n {
                if k == victim {
                    continue;
                }
                pair_sum += m[j] * self.pair_strength[j] * m[k] * self.pair_strength[k];
            }
        }
        shift + self.pairwise[victim] * pair_sum
    }

    /// Precomputed [`CrosstalkModel::transient_scale`] at each sample time.
    ///
    /// Sample clocks are fixed per configuration, so the per-sample `exp`
    /// inside the scale can be evaluated once and reused for every shot;
    /// the table entries are exactly `transient_scale(t)`.
    pub fn transient_table(&self, times_s: &[f64]) -> Vec<f64> {
        times_s.iter().map(|&t| self.transient_scale(t)).collect()
    }

    /// Applies the crosstalk shifts of a whole readout window in batch:
    /// equivalent to `basebands[v][t] += shift_at(v, m_t, times[t]) * gain`
    /// for every victim and sample (with the `gain` multiply skipped when
    /// `gain == 1.0`, like the per-sample caller did), but restructured
    /// into contiguous row passes:
    ///
    /// * the linear part becomes one axpy per victim/aggressor pair over
    ///   the sample axis, routed through the dispatched [`Kernel`]
    ///   (element-wise, aggressors ascending — the same adds in the same
    ///   per-element order as the scalar loop, so the scalar backend is
    ///   bit-identical and the AVX2 backend differs only by FMA
    ///   contraction);
    /// * the pairwise part hoists the per-aggressor weights
    ///   `w_j = m_j · p_j` and the pair terms `(w_j · m_k) · p_k` out of
    ///   the victim loop, preserving the original left-association and
    ///   per-victim summation order exactly;
    /// * the transient factor comes from a precomputed
    ///   [`CrosstalkModel::transient_table`].
    ///
    /// Both the streaming synthesizer and the offline reference route
    /// through this one function, so engine and offline traces stay
    /// bit-identical on every kernel backend.
    ///
    /// [`Kernel`]: herqles_num::Kernel
    ///
    /// # Panics
    ///
    /// Panics if `measures`, `basebands` or their rows disagree with the
    /// model size or the transient table length.
    pub fn apply_batch(
        &self,
        measures: &[Vec<f64>],
        transient: &[f64],
        gain: f64,
        basebands: &mut [Vec<IqPoint>],
        scratch: &mut CrosstalkScratch,
    ) {
        let n = self.n;
        let ns = transient.len();
        assert_eq!(measures.len(), n, "one measure row per qubit required");
        assert_eq!(basebands.len(), n, "one baseband per qubit required");
        for row in measures {
            assert_eq!(row.len(), ns, "measure row must match the window");
        }
        for row in basebands.iter() {
            assert_eq!(row.len(), ns, "baseband must match the window");
        }
        scratch.resize(n, ns);

        // Linear part, victim-major: lin[v][t] = Σ_{agg≠v} L[v][agg]·m[agg][t],
        // aggressors ascending so the per-element add order matches the
        // historical per-sample accumulation.
        let kernel = <f64 as Real>::kernel();
        scratch.lin_i.fill(0.0);
        scratch.lin_q.fill(0.0);
        for v in 0..n {
            let li = &mut scratch.lin_i[v * ns..v * ns + ns];
            for (agg, m) in measures.iter().enumerate() {
                if agg != v {
                    kernel.axpy(self.linear[v][agg].i, m, li);
                }
            }
            let lq = &mut scratch.lin_q[v * ns..v * ns + ns];
            for (agg, m) in measures.iter().enumerate() {
                if agg != v {
                    kernel.axpy(self.linear[v][agg].q, m, lq);
                }
            }
        }

        // Pairwise part: weights, then one term row per (j, k) pair, then
        // per-victim sums over that victim's pairs in lexicographic order —
        // the same addends in the same order as the scalar double loop.
        // Element-wise product rows, written through lockstep iterators so
        // the compiler can vectorize them (no reassociation — each output
        // element is the exact historical expression).
        for (j, m) in measures.iter().enumerate() {
            let p = self.pair_strength[j];
            let w = &mut scratch.w[j * ns..j * ns + ns];
            for (w, &m) in w.iter_mut().zip(m) {
                *w = m * p;
            }
        }
        let mut idx = 0;
        for j in 0..n {
            for (k, mk) in measures.iter().enumerate().skip(j + 1) {
                let pk = self.pair_strength[k];
                let wj = &scratch.w[j * ns..j * ns + ns];
                let term = &mut scratch.terms[idx * ns..idx * ns + ns];
                for ((term, &wj), &mk) in term.iter_mut().zip(wj).zip(mk) {
                    *term = (wj * mk) * pk;
                }
                idx += 1;
            }
        }
        for v in 0..n {
            let pair = &mut scratch.pair[v * ns..v * ns + ns];
            pair.fill(0.0);
            let mut idx = 0;
            for j in 0..n {
                for k in (j + 1)..n {
                    if j != v && k != v {
                        // axpy with α = 1.0 is a plain element-wise add on
                        // both backends (1·x is exact, and fma(1, x, acc)
                        // rounds exactly like acc + x), so routing the pair
                        // sums through the kernel keeps the scalar arm
                        // bit-identical while vectorizing the AVX2 arm.
                        let term = &scratch.terms[idx * ns..idx * ns + ns];
                        kernel.axpy(1.0, term, pair);
                    }
                    idx += 1;
                }
            }
        }

        // Combine, exactly as the per-sample expression nested it:
        // ((lin + pairwise·pair_sum) · transient) · gain.
        for (v, bb) in basebands.iter_mut().enumerate() {
            let li = &scratch.lin_i[v * ns..v * ns + ns];
            let lq = &scratch.lin_q[v * ns..v * ns + ns];
            let ps = &scratch.pair[v * ns..v * ns + ns];
            let pw = self.pairwise[v];
            let rows = bb.iter_mut().zip(li).zip(lq).zip(ps.iter().zip(transient));
            if gain != 1.0 {
                for (((bb, &li), &lq), (&ps, &tr)) in rows {
                    bb.i += (li + pw.i * ps) * tr * gain;
                    bb.q += (lq + pw.q * ps) * tr * gain;
                }
            } else {
                for (((bb, &li), &lq), (&ps, &tr)) in rows {
                    bb.i += (li + pw.i * ps) * tr;
                    bb.q += (lq + pw.q * ps) * tr;
                }
            }
        }
    }

    /// Checks the model is sized for an `n`-qubit chip and structurally
    /// sound.
    ///
    /// # Errors
    ///
    /// Returns the first [`CrosstalkError`] found: a dimension mismatch or a
    /// nonzero self-coupling coefficient.
    pub fn validate(&self, n: usize) -> Result<(), CrosstalkError> {
        if self.n != n {
            return Err(CrosstalkError::SizeMismatch {
                model: self.n,
                chip: n,
            });
        }
        for (v, row) in self.linear.iter().enumerate() {
            if row[v] != IqPoint::ZERO {
                return Err(CrosstalkError::NonzeroDiagonal { qubit: v });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_produces_zero_shift() {
        let xt = CrosstalkModel::none(3);
        assert_eq!(xt.shift(0, &[1.0, 1.0, 1.0]), IqPoint::ZERO);
    }

    #[test]
    fn chain_default_validates() {
        CrosstalkModel::chain_default(5).validate(5).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_size() {
        assert!(CrosstalkModel::chain_default(5).validate(4).is_err());
    }

    #[test]
    fn shift_is_linear_in_single_aggressor() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[2] = 1.0;
        let full = xt.shift(1, &m);
        m[2] = 0.5;
        let half = xt.shift(1, &m);
        assert!((full.i - 2.0 * half.i).abs() < 1e-12);
        assert!((full.q - 2.0 * half.q).abs() < 1e-12);
    }

    #[test]
    fn own_state_does_not_shift_self() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[1] = 1.0;
        assert_eq!(xt.shift(1, &m), IqPoint::ZERO);
    }

    #[test]
    fn adjacent_shift_exceeds_distant_shift() {
        let xt = CrosstalkModel::chain_default(5);
        let adj = xt.linear_coeff(2, 1).norm();
        let far = xt.linear_coeff(2, 4).norm();
        assert!(adj > far);
    }

    #[test]
    fn pairwise_term_engages_with_two_aggressors() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[0] = 1.0;
        m[2] = 1.0;
        let both = xt.shift(1, &m);
        let lin = xt.linear_coeff(1, 0) + xt.linear_coeff(1, 2);
        // Difference between the joint shift and the linear sum is exactly the
        // pairwise contribution.
        assert!((both - lin).norm() > 1e-6);
    }

    #[test]
    fn transient_boosts_early_window() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[0] = 1.0;
        let early = xt.shift_at(1, &m, 0.0);
        let late = xt.shift_at(1, &m, 1e-6);
        assert!(early.norm() > 2.0 * late.norm());
        // Late-window shift approaches the steady-state value.
        assert!((late.norm() - xt.shift(1, &m).norm()).abs() < 0.05 * xt.shift(1, &m).norm());
    }

    #[test]
    fn none_model_has_no_transient() {
        let xt = CrosstalkModel::none(3);
        assert_eq!(xt.transient_scale(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn from_coefficients_rejects_ragged_matrix() {
        let _ = CrosstalkModel::from_coefficients(
            vec![vec![IqPoint::ZERO; 2], vec![IqPoint::ZERO; 3]],
            vec![IqPoint::ZERO; 2],
        );
    }

    #[test]
    #[should_panic(expected = "diagonal for qubit 1")]
    fn from_coefficients_rejects_nonzero_diagonal() {
        let mut linear = vec![vec![IqPoint::ZERO; 2]; 2];
        linear[1][1] = IqPoint::new(0.1, 0.0);
        let _ = CrosstalkModel::from_coefficients(linear, vec![IqPoint::ZERO; 2]);
    }

    #[test]
    fn transient_table_matches_transient_scale() {
        let xt = CrosstalkModel::chain_default(5);
        let times: Vec<f64> = (0..64).map(|t| t as f64 * 2e-9).collect();
        let table = xt.transient_table(&times);
        for (&t, &tr) in times.iter().zip(&table) {
            assert_eq!(tr, xt.transient_scale(t), "transient at t={t}");
        }
    }

    #[test]
    fn apply_batch_matches_per_sample_shift_at() {
        // The batched pass must reproduce the historical per-sample loop:
        // bit-for-bit on the scalar kernel, and within FMA rounding slack on
        // any vector backend (CI runs this test under both arms).
        let xt = CrosstalkModel::chain_default(4);
        let n = 4;
        let times: Vec<f64> = (0..33).map(|t| t as f64 * 2e-9).collect();
        let measures: Vec<Vec<f64>> = (0..n)
            .map(|q| {
                times
                    .iter()
                    .enumerate()
                    .map(|(t, _)| ((q * 31 + t * 7) % 13) as f64 / 13.0 - 0.4)
                    .collect()
            })
            .collect();
        let base: Vec<Vec<IqPoint>> = (0..n)
            .map(|q| {
                times
                    .iter()
                    .enumerate()
                    .map(|(t, _)| IqPoint::new(q as f64 + t as f64 * 0.01, -(t as f64) * 0.02))
                    .collect()
            })
            .collect();
        for gain in [1.0, 0.35] {
            // Reference: the original sample-major loop over shift_at.
            let mut want = base.clone();
            let mut m = vec![0.0; n];
            for t in 0..times.len() {
                for (k, meas) in measures.iter().enumerate() {
                    m[k] = meas[t];
                }
                for (victim, bb) in want.iter_mut().enumerate() {
                    let mut shift = xt.shift_at(victim, &m, times[t]);
                    if gain != 1.0 {
                        shift = shift * gain;
                    }
                    bb[t] += shift;
                }
            }
            let mut got = base.clone();
            let transient = xt.transient_table(&times);
            let mut scratch = CrosstalkScratch::new();
            xt.apply_batch(&measures, &transient, gain, &mut got, &mut scratch);
            let scalar = herqles_num::active_kernel_name() == "scalar";
            for (v, (g_row, w_row)) in got.iter().zip(&want).enumerate() {
                for (t, (g, w)) in g_row.iter().zip(w_row).enumerate() {
                    if scalar {
                        assert_eq!(
                            (g.i.to_bits(), g.q.to_bits()),
                            (w.i.to_bits(), w.q.to_bits()),
                            "victim {v} sample {t} gain {gain}: scalar arm must be bit-identical"
                        );
                    } else {
                        assert!(
                            (g.i - w.i).abs() <= 1e-12 && (g.q - w.q).abs() <= 1e-12,
                            "victim {v} sample {t} gain {gain}: {g:?} vs {w:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn apply_batch_scratch_is_reusable_across_sizes() {
        // Shrinking then growing the problem must not leave stale rows behind.
        let big = CrosstalkModel::chain_default(5);
        let small = CrosstalkModel::chain_default(2);
        let times: Vec<f64> = (0..16).map(|t| t as f64 * 2e-9).collect();
        let mut scratch = CrosstalkScratch::new();
        for xt in [&big, &small, &big] {
            let n = xt.n_qubits();
            let measures = vec![vec![0.7; times.len()]; n];
            let mut bb = vec![vec![IqPoint::ZERO; times.len()]; n];
            let transient = xt.transient_table(&times);
            xt.apply_batch(&measures, &transient, 1.0, &mut bb, &mut scratch);
            let m = vec![0.7; n];
            for t in 0..times.len() {
                for (victim, row) in bb.iter().enumerate() {
                    let want = xt.shift_at(victim, &m, times[t]);
                    assert!((row[t].i - want.i).abs() <= 1e-12);
                    assert!((row[t].q - want.q).abs() <= 1e-12);
                }
            }
        }
    }

    #[test]
    fn validate_errors_are_typed_and_display() {
        let err = CrosstalkModel::chain_default(5).validate(4).unwrap_err();
        assert_eq!(err, CrosstalkError::SizeMismatch { model: 5, chip: 4 });
        assert!(err.to_string().contains("sized for 5 qubits, chip has 4"));
        // The enum is a std::error::Error, so it boxes like one.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("crosstalk"));
    }
}
