//! Readout-crosstalk model between frequency-multiplexed channels.
//!
//! When several qubits share one feedline, the state of qubit *j* perturbs the
//! signal observed on qubit *q*'s channel (dispersive shifts pulling
//! neighbouring resonators, finite isolation between tones). The model here is
//! additive in the baseband: each aggressor contributes a shift proportional
//! to its instantaneous normalized excitation, plus a weaker *pairwise*
//! (nonlinear) term when two aggressors are excited simultaneously. The linear
//! part can be compensated by a linear classifier over all matched-filter
//! outputs; the pairwise part is what gives the neural network its measurable
//! edge in the cross-fidelity study (paper Table 2).

use std::error::Error;
use std::fmt;

use crate::trace::IqPoint;

/// A structural defect in a [`CrosstalkModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrosstalkError {
    /// The model's dimension does not match the chip's channel count.
    SizeMismatch {
        /// Qubits the model was built for.
        model: usize,
        /// Qubits the chip actually has.
        chip: usize,
    },
    /// A qubit's self-coupling coefficient is nonzero (a qubit cannot be its
    /// own crosstalk aggressor).
    NonzeroDiagonal {
        /// The offending victim/aggressor index.
        qubit: usize,
    },
}

impl fmt::Display for CrosstalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CrosstalkError::SizeMismatch { model, chip } => {
                write!(
                    f,
                    "crosstalk model sized for {model} qubits, chip has {chip}"
                )
            }
            CrosstalkError::NonzeroDiagonal { qubit } => {
                write!(f, "crosstalk diagonal for qubit {qubit} must be zero")
            }
        }
    }
}

impl Error for CrosstalkError {}

/// Crosstalk coefficients for one victim/aggressor pair and the shared
/// pairwise term.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstalkModel {
    n: usize,
    /// `linear[victim][aggressor]`: baseband shift (absolute IQ units) applied
    /// to the victim when the aggressor is fully excited. Diagonal is zero.
    linear: Vec<Vec<IqPoint>>,
    /// Direction and magnitude of the extra shift on victim `q` when a *pair*
    /// of other qubits is simultaneously excited.
    pairwise: Vec<IqPoint>,
    /// Per-qubit aggressor strength entering the pairwise term (normalized
    /// dispersive separation; a weakly coupled qubit contributes weakly).
    pair_strength: Vec<f64>,
    /// Extra multiplicative strength of the crosstalk during the ring-up
    /// transient: the shift is scaled by `1 + boost · exp(−t/τ)`. Resonators
    /// pull each other hardest while their fields are still building up,
    /// which concentrates crosstalk in the early readout window — exactly
    /// the window the relaxation matched filter projects onto, making the
    /// RMF double as a crosstalk probe (paper §4.3.2's "additional
    /// features").
    transient_boost: f64,
    /// Decay time of the transient boost, in seconds.
    transient_tau_s: f64,
}

impl CrosstalkModel {
    /// A crosstalk-free model for `n` qubits.
    pub fn none(n: usize) -> Self {
        CrosstalkModel {
            n,
            linear: vec![vec![IqPoint::ZERO; n]; n],
            pairwise: vec![IqPoint::ZERO; n],
            pair_strength: vec![1.0; n],
            transient_boost: 0.0,
            transient_tau_s: 1.0,
        }
    }

    /// Builds a model from explicit coefficient matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n` with `n == pairwise.len()`, or if
    /// it fails [`CrosstalkModel::validate`] (nonzero diagonal).
    pub fn from_coefficients(linear: Vec<Vec<IqPoint>>, pairwise: Vec<IqPoint>) -> Self {
        let n = linear.len();
        assert!(
            linear.iter().all(|row| row.len() == n),
            "matrix must be square"
        );
        assert_eq!(
            pairwise.len(),
            n,
            "pairwise vector must have one entry per qubit"
        );
        let model = CrosstalkModel {
            n,
            linear,
            pairwise,
            pair_strength: vec![1.0; n],
            transient_boost: 0.0,
            transient_tau_s: 1.0,
        };
        if let Err(e) = model.validate(n) {
            panic!("invalid crosstalk coefficients: {e}");
        }
        model
    }

    /// Default chain topology with unit aggressor strength: see
    /// [`CrosstalkModel::chain_for_separations`], which is what the default
    /// chips use. Kept for tests and for chips without per-qubit separation
    /// information (all aggressors treated as unit-separation).
    pub fn chain_default(n: usize) -> Self {
        Self::chain_for_separations(&vec![2.5; n])
    }

    /// Chain topology where each aggressor's pull is proportional to its own
    /// dispersive separation (a qubit that barely moves its own resonator
    /// cannot move its neighbours' either). Relative couplings: 21 % of the
    /// aggressor separation at chain distance 1, 7 % at distance 2, 1.5 %
    /// farther; pairwise term 8.5 %. The shift direction is deterministic per
    /// victim/aggressor pair so it has components both along and across each
    /// victim's separation axis. The transient boost concentrates the shift
    /// in the early window (2× extra at `t = 0`, τ = 200 ns).
    pub fn chain_for_separations(separations: &[f64]) -> Self {
        let n = separations.len();
        let mut linear = vec![vec![IqPoint::ZERO; n]; n];
        for (victim, row) in linear.iter_mut().enumerate() {
            for (aggressor, c) in row.iter_mut().enumerate() {
                if victim == aggressor {
                    continue;
                }
                let dist = victim.abs_diff(aggressor);
                let ratio = match dist {
                    1 => 0.21,
                    2 => 0.07,
                    _ => 0.015,
                };
                let mag = ratio * separations[aggressor];
                let angle = 0.9 * victim as f64 + 2.1 * aggressor as f64;
                *c = IqPoint::new(mag, 0.0).rotate(angle);
            }
        }
        let mean_sep = separations.iter().sum::<f64>() / n as f64;
        let pairwise = (0..n)
            .map(|q| IqPoint::new(0.085 * mean_sep, 0.0).rotate(1.3 * q as f64 + 0.4))
            .collect();
        CrosstalkModel {
            n,
            linear,
            pairwise,
            pair_strength: separations.iter().map(|s| s / mean_sep).collect(),
            transient_boost: 2.0,
            transient_tau_s: 200e-9,
        }
    }

    /// Number of qubits the model is sized for.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Linear coefficient applied to `victim` per unit excitation of
    /// `aggressor`.
    pub fn linear_coeff(&self, victim: usize, aggressor: usize) -> IqPoint {
        self.linear[victim][aggressor]
    }

    /// Time-dependent transient scale factor at `t` seconds into the window.
    pub fn transient_scale(&self, t_s: f64) -> f64 {
        1.0 + self.transient_boost * (-t_s / self.transient_tau_s).exp()
    }

    /// Instantaneous crosstalk shift on `victim` at time `t_s` (seconds into
    /// the readout window) given every qubit's normalized excitation measure
    /// `m` (0 = ground steady state, 1 = excited steady state; values in
    /// between during ring-up or decay).
    ///
    /// The pairwise contribution sums `m_j · m_k` over all aggressor pairs;
    /// the whole shift is scaled by the early-window transient factor.
    pub fn shift_at(&self, victim: usize, m: &[f64], t_s: f64) -> IqPoint {
        self.shift(victim, m) * self.transient_scale(t_s)
    }

    /// Steady-state crosstalk shift (no transient scaling); see
    /// [`CrosstalkModel::shift_at`].
    pub fn shift(&self, victim: usize, m: &[f64]) -> IqPoint {
        debug_assert_eq!(m.len(), self.n);
        let mut shift = IqPoint::ZERO;
        for (aggressor, &mj) in m.iter().enumerate() {
            if aggressor != victim && mj != 0.0 {
                shift += self.linear[victim][aggressor] * mj;
            }
        }
        let mut pair_sum = 0.0;
        for j in 0..self.n {
            if j == victim {
                continue;
            }
            for k in (j + 1)..self.n {
                if k == victim {
                    continue;
                }
                pair_sum += m[j] * self.pair_strength[j] * m[k] * self.pair_strength[k];
            }
        }
        shift + self.pairwise[victim] * pair_sum
    }

    /// Checks the model is sized for an `n`-qubit chip and structurally
    /// sound.
    ///
    /// # Errors
    ///
    /// Returns the first [`CrosstalkError`] found: a dimension mismatch or a
    /// nonzero self-coupling coefficient.
    pub fn validate(&self, n: usize) -> Result<(), CrosstalkError> {
        if self.n != n {
            return Err(CrosstalkError::SizeMismatch {
                model: self.n,
                chip: n,
            });
        }
        for (v, row) in self.linear.iter().enumerate() {
            if row[v] != IqPoint::ZERO {
                return Err(CrosstalkError::NonzeroDiagonal { qubit: v });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_produces_zero_shift() {
        let xt = CrosstalkModel::none(3);
        assert_eq!(xt.shift(0, &[1.0, 1.0, 1.0]), IqPoint::ZERO);
    }

    #[test]
    fn chain_default_validates() {
        CrosstalkModel::chain_default(5).validate(5).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_size() {
        assert!(CrosstalkModel::chain_default(5).validate(4).is_err());
    }

    #[test]
    fn shift_is_linear_in_single_aggressor() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[2] = 1.0;
        let full = xt.shift(1, &m);
        m[2] = 0.5;
        let half = xt.shift(1, &m);
        assert!((full.i - 2.0 * half.i).abs() < 1e-12);
        assert!((full.q - 2.0 * half.q).abs() < 1e-12);
    }

    #[test]
    fn own_state_does_not_shift_self() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[1] = 1.0;
        assert_eq!(xt.shift(1, &m), IqPoint::ZERO);
    }

    #[test]
    fn adjacent_shift_exceeds_distant_shift() {
        let xt = CrosstalkModel::chain_default(5);
        let adj = xt.linear_coeff(2, 1).norm();
        let far = xt.linear_coeff(2, 4).norm();
        assert!(adj > far);
    }

    #[test]
    fn pairwise_term_engages_with_two_aggressors() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[0] = 1.0;
        m[2] = 1.0;
        let both = xt.shift(1, &m);
        let lin = xt.linear_coeff(1, 0) + xt.linear_coeff(1, 2);
        // Difference between the joint shift and the linear sum is exactly the
        // pairwise contribution.
        assert!((both - lin).norm() > 1e-6);
    }

    #[test]
    fn transient_boosts_early_window() {
        let xt = CrosstalkModel::chain_default(5);
        let mut m = [0.0; 5];
        m[0] = 1.0;
        let early = xt.shift_at(1, &m, 0.0);
        let late = xt.shift_at(1, &m, 1e-6);
        assert!(early.norm() > 2.0 * late.norm());
        // Late-window shift approaches the steady-state value.
        assert!((late.norm() - xt.shift(1, &m).norm()).abs() < 0.05 * xt.shift(1, &m).norm());
    }

    #[test]
    fn none_model_has_no_transient() {
        let xt = CrosstalkModel::none(3);
        assert_eq!(xt.transient_scale(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn from_coefficients_rejects_ragged_matrix() {
        let _ = CrosstalkModel::from_coefficients(
            vec![vec![IqPoint::ZERO; 2], vec![IqPoint::ZERO; 3]],
            vec![IqPoint::ZERO; 2],
        );
    }

    #[test]
    #[should_panic(expected = "diagonal for qubit 1")]
    fn from_coefficients_rejects_nonzero_diagonal() {
        let mut linear = vec![vec![IqPoint::ZERO; 2]; 2];
        linear[1][1] = IqPoint::new(0.1, 0.0);
        let _ = CrosstalkModel::from_coefficients(linear, vec![IqPoint::ZERO; 2]);
    }

    #[test]
    fn validate_errors_are_typed_and_display() {
        let err = CrosstalkModel::chain_default(5).validate(4).unwrap_err();
        assert_eq!(err, CrosstalkError::SizeMismatch { model: 5, chip: 4 });
        assert!(err.to_string().contains("sized for 5 qubits, chip has 4"));
        // The enum is a std::error::Error, so it boxes like one.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("crosstalk"));
    }
}
