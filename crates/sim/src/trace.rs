//! Core data types shared across the readout pipeline: IQ points, IQ time
//! traces, and multi-qubit basis states.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A single point in the IQ (in-phase / quadrature) plane.
///
/// Readout signals are quadrature-modulated; after demodulation each time bin
/// of a qubit's trace is one `IqPoint`. The type behaves like a complex number
/// `i + j·q` under addition and scalar multiplication.
///
/// ```
/// use readout_sim::IqPoint;
/// let a = IqPoint::new(1.0, 2.0);
/// let b = IqPoint::new(0.5, -1.0);
/// assert_eq!((a + b).i, 1.5);
/// assert!((a * 2.0).q == 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IqPoint {
    /// In-phase component.
    pub i: f64,
    /// Quadrature component.
    pub q: f64,
}

impl IqPoint {
    /// Origin of the IQ plane.
    pub const ZERO: IqPoint = IqPoint { i: 0.0, q: 0.0 };

    /// Creates a point from its in-phase and quadrature components.
    pub fn new(i: f64, q: f64) -> Self {
        IqPoint { i, q }
    }

    /// Euclidean distance to another point.
    ///
    /// ```
    /// use readout_sim::IqPoint;
    /// let d = IqPoint::new(0.0, 0.0).distance(IqPoint::new(3.0, 4.0));
    /// assert!((d - 5.0).abs() < 1e-12);
    /// ```
    pub fn distance(self, other: IqPoint) -> f64 {
        (self - other).norm()
    }

    /// Euclidean norm (distance from the origin).
    pub fn norm(self) -> f64 {
        self.i.hypot(self.q)
    }

    /// Complex multiplication by `e^{i·theta}` (rotation about the origin).
    pub fn rotate(self, theta: f64) -> IqPoint {
        let (s, c) = theta.sin_cos();
        IqPoint::new(self.i * c - self.q * s, self.i * s + self.q * c)
    }
}

impl Add for IqPoint {
    type Output = IqPoint;
    fn add(self, rhs: IqPoint) -> IqPoint {
        IqPoint::new(self.i + rhs.i, self.q + rhs.q)
    }
}

impl AddAssign for IqPoint {
    fn add_assign(&mut self, rhs: IqPoint) {
        self.i += rhs.i;
        self.q += rhs.q;
    }
}

impl Sub for IqPoint {
    type Output = IqPoint;
    fn sub(self, rhs: IqPoint) -> IqPoint {
        IqPoint::new(self.i - rhs.i, self.q - rhs.q)
    }
}

impl Mul<f64> for IqPoint {
    type Output = IqPoint;
    fn mul(self, rhs: f64) -> IqPoint {
        IqPoint::new(self.i * rhs, self.q * rhs)
    }
}

impl fmt::Display for IqPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.i, self.q)
    }
}

/// A time-ordered sequence of IQ samples.
///
/// Used both for raw ADC-rate waveforms (one sample every 2 ns at
/// 500 MS/s) and for demodulated traces (one sample per 50 ns averaging bin).
/// The I and Q channels always have equal length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IqTrace {
    i: Vec<f64>,
    q: Vec<f64>,
}

impl IqTrace {
    /// Creates a trace from separate I and Q channel vectors.
    ///
    /// # Panics
    ///
    /// Panics if the two channels have different lengths.
    pub fn new(i: Vec<f64>, q: Vec<f64>) -> Self {
        assert_eq!(i.len(), q.len(), "I and Q channels must have equal length");
        IqTrace { i, q }
    }

    /// Creates an all-zero trace of `len` samples.
    pub fn zeros(len: usize) -> Self {
        IqTrace {
            i: vec![0.0; len],
            q: vec![0.0; len],
        }
    }

    /// Number of time samples.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// Whether the trace contains no samples.
    pub fn is_empty(&self) -> bool {
        self.i.is_empty()
    }

    /// The I channel.
    pub fn i(&self) -> &[f64] {
        &self.i
    }

    /// The Q channel.
    pub fn q(&self) -> &[f64] {
        &self.q
    }

    /// The sample at time index `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn sample(&self, t: usize) -> IqPoint {
        IqPoint::new(self.i[t], self.q[t])
    }

    /// Sets the sample at time index `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    pub fn set_sample(&mut self, t: usize, p: IqPoint) {
        self.i[t] = p.i;
        self.q[t] = p.q;
    }

    /// Appends a sample at the end of the trace.
    pub fn push(&mut self, p: IqPoint) {
        self.i.push(p.i);
        self.q.push(p.q);
    }

    /// Iterates over samples as [`IqPoint`]s.
    pub fn iter(&self) -> impl Iterator<Item = IqPoint> + '_ {
        self.i
            .iter()
            .zip(self.q.iter())
            .map(|(&i, &q)| IqPoint::new(i, q))
    }

    /// The Mean Trace Value (MTV): the temporal mean of the trace.
    ///
    /// The paper uses the MTV both for visualization (Fig. 3b, Fig. 8a) and as
    /// the dimensionality reduction inside Algorithm 1's relaxation labeling.
    ///
    /// Returns [`IqPoint::ZERO`] for an empty trace.
    pub fn mtv(&self) -> IqPoint {
        if self.is_empty() {
            return IqPoint::ZERO;
        }
        let n = self.len() as f64;
        let si: f64 = self.i.iter().sum();
        let sq: f64 = self.q.iter().sum();
        IqPoint::new(si / n, sq / n)
    }

    /// Returns a copy truncated to the first `len` samples.
    ///
    /// Used for readout-duration reduction (paper §5): traces recorded for the
    /// full 1 µs window are discriminated using only a prefix. If `len`
    /// exceeds the trace length the whole trace is returned.
    pub fn truncated(&self, len: usize) -> IqTrace {
        let len = len.min(self.len());
        IqTrace {
            i: self.i[..len].to_vec(),
            q: self.q[..len].to_vec(),
        }
    }

    /// Concatenated `[I..., Q...]` feature vector, the input layout of the
    /// baseline FNN discriminator (500 I samples then 500 Q samples).
    pub fn to_feature_vec(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 * self.len());
        v.extend_from_slice(&self.i);
        v.extend_from_slice(&self.q);
        v
    }
}

impl FromIterator<IqPoint> for IqTrace {
    fn from_iter<T: IntoIterator<Item = IqPoint>>(iter: T) -> Self {
        let mut tr = IqTrace::default();
        for p in iter {
            tr.push(p);
        }
        tr
    }
}

/// A computational basis state of an `n`-qubit register, stored little-endian
/// (bit `k` is qubit `k`).
///
/// ```
/// use readout_sim::BasisState;
/// let s = BasisState::new(0b01101);
/// assert!(s.qubit(0) && !s.qubit(1) && s.qubit(2));
/// assert_eq!(s.index(), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BasisState(u32);

impl BasisState {
    /// Creates a basis state from its little-endian bit pattern.
    pub fn new(bits: u32) -> Self {
        BasisState(bits)
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// The integer index of the state (equal to the bit pattern).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether qubit `k` is excited (`1`) in this state.
    pub fn qubit(self, k: usize) -> bool {
        (self.0 >> k) & 1 == 1
    }

    /// Returns a copy with qubit `k` set to `value`.
    pub fn with_qubit(self, k: usize, value: bool) -> BasisState {
        if value {
            BasisState(self.0 | (1 << k))
        } else {
            BasisState(self.0 & !(1 << k))
        }
    }

    /// Flips qubit `k`.
    #[must_use]
    pub fn flipped(self, k: usize) -> BasisState {
        BasisState(self.0 ^ (1 << k))
    }

    /// Hamming distance to another basis state.
    pub fn hamming_distance(self, other: BasisState) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Iterates over all `2^n` basis states of an `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (guard against accidental enormous enumerations).
    pub fn all(n: usize) -> impl Iterator<Item = BasisState> {
        assert!(n <= 20, "refusing to enumerate more than 2^20 basis states");
        (0..(1u32 << n)).map(BasisState)
    }

    /// Renders the state as a bit string with qubit 0 leftmost, e.g. `|01101>`.
    pub fn to_bit_string(self, n: usize) -> String {
        let mut s = String::with_capacity(n + 2);
        s.push('|');
        for k in 0..n {
            s.push(if self.qubit(k) { '1' } else { '0' });
        }
        s.push('>');
        s
    }
}

impl From<u32> for BasisState {
    fn from(bits: u32) -> Self {
        BasisState(bits)
    }
}

impl fmt::Display for BasisState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iq_point_arithmetic() {
        let a = IqPoint::new(1.0, -2.0);
        let b = IqPoint::new(3.0, 4.0);
        assert_eq!(a + b, IqPoint::new(4.0, 2.0));
        assert_eq!(b - a, IqPoint::new(2.0, 6.0));
        assert_eq!(a * -1.0, IqPoint::new(-1.0, 2.0));
    }

    #[test]
    fn iq_point_rotation_preserves_norm() {
        let p = IqPoint::new(3.0, 4.0);
        let r = p.rotate(1.234);
        assert!((r.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn iq_point_rotation_quarter_turn() {
        let p = IqPoint::new(1.0, 0.0);
        let r = p.rotate(std::f64::consts::FRAC_PI_2);
        assert!(r.i.abs() < 1e-12 && (r.q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_mtv_is_mean() {
        let tr = IqTrace::new(vec![1.0, 3.0], vec![-2.0, 2.0]);
        assert_eq!(tr.mtv(), IqPoint::new(2.0, 0.0));
    }

    #[test]
    fn trace_mtv_empty_is_zero() {
        assert_eq!(IqTrace::default().mtv(), IqPoint::ZERO);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn trace_mismatched_channels_panic() {
        let _ = IqTrace::new(vec![1.0], vec![]);
    }

    #[test]
    fn trace_truncation_clamps() {
        let tr = IqTrace::new(vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]);
        assert_eq!(tr.truncated(2).len(), 2);
        assert_eq!(tr.truncated(99).len(), 3);
        assert_eq!(tr.truncated(0).len(), 0);
    }

    #[test]
    fn trace_feature_vec_layout() {
        let tr = IqTrace::new(vec![1.0, 2.0], vec![3.0, 4.0]);
        assert_eq!(tr.to_feature_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn trace_collects_from_points() {
        let tr: IqTrace = (0..3).map(|t| IqPoint::new(t as f64, 0.0)).collect();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.sample(2), IqPoint::new(2.0, 0.0));
    }

    #[test]
    fn basis_state_bits() {
        let s = BasisState::new(0b10110);
        assert!(!s.qubit(0));
        assert!(s.qubit(1));
        assert!(s.qubit(2));
        assert!(!s.qubit(3));
        assert!(s.qubit(4));
    }

    #[test]
    fn basis_state_flip_roundtrip() {
        let s = BasisState::new(0b00101);
        assert_eq!(s.flipped(1).flipped(1), s);
        assert_eq!(s.with_qubit(1, true).bits(), 0b00111);
    }

    #[test]
    fn basis_state_hamming() {
        assert_eq!(
            BasisState::new(0b11111).hamming_distance(BasisState::new(0b00000)),
            5
        );
        assert_eq!(
            BasisState::new(0b101).hamming_distance(BasisState::new(0b100)),
            1
        );
    }

    #[test]
    fn basis_state_enumeration() {
        let all: Vec<_> = BasisState::all(3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[5].index(), 5);
    }

    #[test]
    fn basis_state_bit_string() {
        assert_eq!(BasisState::new(0b01101).to_bit_string(5), "|10110>");
    }
}
