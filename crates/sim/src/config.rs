//! Chip- and qubit-level configuration of the simulated readout system.
//!
//! The default five-qubit chip ([`ChipConfig::five_qubit_default`]) is
//! calibrated so the discriminator study reproduces the *shape* of the paper's
//! Table 1: four well-separated qubits with relaxation fractions in the
//! 4–12 % band, and one poorly separated qubit (qubit 2, index 1) whose
//! ground/excited distributions overlap heavily.

use crate::crosstalk::CrosstalkModel;
use crate::trace::IqPoint;

/// Calibration parameters of a single qubit's readout channel.
#[derive(Debug, Clone, PartialEq)]
pub struct QubitParams {
    /// Intermediate frequency of this qubit's readout tone, in Hz.
    ///
    /// Must be below the ADC Nyquist frequency. The defaults are multiples of
    /// 20 MHz so an integer number of carrier cycles fits in each 50 ns
    /// demodulation bin.
    pub if_freq_hz: f64,
    /// Steady-state baseband IQ point when the qubit is in the ground state.
    pub ground_ss: IqPoint,
    /// Steady-state baseband IQ point when the qubit is in the excited state.
    pub excited_ss: IqPoint,
    /// Resonator ring-up/ring-down time constant, in seconds.
    ///
    /// The baseband signal relaxes exponentially toward the steady-state point
    /// with this time constant (`κ/2`-limited dynamics).
    pub ringup_tau_s: f64,
    /// Energy-relaxation time `T1`, in seconds. Excited-state shots decay to
    /// the ground trajectory after an `Exp(T1)`-distributed time.
    pub t1_s: f64,
    /// Probability that the readout drive spuriously excites a ground-state
    /// qubit at some point during the window (readout-induced excitation).
    pub excitation_prob: f64,
    /// Probability that state preparation failed, so the qubit starts the
    /// readout in the opposite of its nominal state.
    pub init_error_prob: f64,
}

impl QubitParams {
    /// Distance between the two steady-state points (the "separation").
    pub fn separation(&self) -> f64 {
        self.ground_ss.distance(self.excited_ss)
    }

    /// Unit vector from the ground toward the excited steady-state point.
    ///
    /// Returns the I axis when the separation is zero.
    pub fn separation_dir(&self) -> IqPoint {
        let d = self.separation();
        if d == 0.0 {
            IqPoint::new(1.0, 0.0)
        } else {
            (self.excited_ss - self.ground_ss) * (1.0 / d)
        }
    }
}

/// Full configuration of a frequency-multiplexed readout line.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipConfig {
    /// Per-qubit calibration; the vector length is the number of multiplexed
    /// qubits on this feedline.
    pub qubits: Vec<QubitParams>,
    /// ADC sampling rate in samples/second (paper: 500 MS/s).
    pub sample_rate_hz: f64,
    /// Total readout window, in seconds (paper: 1 µs).
    pub readout_duration_s: f64,
    /// Width of one demodulation averaging bin, in seconds (paper: 50 ns).
    pub demod_bin_s: f64,
    /// Standard deviation of the additive Gaussian noise on each raw ADC
    /// sample (per channel), in the same arbitrary units as the IQ points.
    pub adc_noise_sigma: f64,
    /// Readout-crosstalk model between multiplexed channels.
    pub crosstalk: CrosstalkModel,
}

impl ChipConfig {
    /// Number of qubits on the feedline.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Number of raw ADC samples in the readout window.
    pub fn n_samples(&self) -> usize {
        (self.sample_rate_hz * self.readout_duration_s).round() as usize
    }

    /// Number of demodulation bins in the readout window.
    pub fn n_bins(&self) -> usize {
        (self.readout_duration_s / self.demod_bin_s).round() as usize
    }

    /// Number of raw ADC samples per demodulation bin.
    pub fn samples_per_bin(&self) -> usize {
        (self.sample_rate_hz * self.demod_bin_s).round() as usize
    }

    /// Time of raw sample `t`, in seconds, measured from the start of the
    /// readout window.
    pub fn sample_time(&self, t: usize) -> f64 {
        t as f64 / self.sample_rate_hz
    }

    /// Noise standard deviation per demodulated bin component.
    ///
    /// Averaging `B` raw samples reduces the per-sample deviation by `√B`.
    pub fn bin_noise_sigma(&self) -> f64 {
        self.adc_noise_sigma / (self.samples_per_bin() as f64).sqrt()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: empty qubit
    /// list, non-positive rates/durations, bins not dividing the window, IF
    /// frequencies above Nyquist, or a crosstalk matrix of the wrong size.
    pub fn validate(&self) -> Result<(), String> {
        if self.qubits.is_empty() {
            return Err("chip must have at least one qubit".into());
        }
        if self.sample_rate_hz <= 0.0 || self.readout_duration_s <= 0.0 || self.demod_bin_s <= 0.0 {
            return Err("rates and durations must be positive".into());
        }
        let spb = self.sample_rate_hz * self.demod_bin_s;
        if (spb - spb.round()).abs() > 1e-9 || spb < 1.0 {
            return Err("demod bin must contain an integer number of ADC samples".into());
        }
        let bins = self.readout_duration_s / self.demod_bin_s;
        if (bins - bins.round()).abs() > 1e-9 {
            return Err("readout window must contain an integer number of bins".into());
        }
        let nyquist = self.sample_rate_hz / 2.0;
        for (k, q) in self.qubits.iter().enumerate() {
            if q.if_freq_hz >= nyquist {
                return Err(format!("qubit {k} IF frequency exceeds Nyquist"));
            }
            if q.t1_s <= 0.0 || q.ringup_tau_s <= 0.0 {
                return Err(format!("qubit {k} time constants must be positive"));
            }
            if !(0.0..=1.0).contains(&q.excitation_prob)
                || !(0.0..=1.0).contains(&q.init_error_prob)
            {
                return Err(format!("qubit {k} probabilities must lie in [0, 1]"));
            }
        }
        self.crosstalk
            .validate(self.n_qubits())
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    /// The five-qubit chip used throughout the reproduction.
    ///
    /// Matches the paper's setup dimensions (500 MS/s ADC, 1 µs readout,
    /// 50 ns demodulation bins → 500 raw samples, 20 bins) and is calibrated
    /// so that per-design accuracies land in the Table 1 regime:
    ///
    /// * qubit 2 (index 1) has ~0.6σ-scale separation → ≈75 % accuracy;
    /// * relaxation fractions ≈ {4.3, 8, 8.9, 11.6, 6.5} % for qubits 1–5;
    /// * nearest-neighbour crosstalk strong enough that a matched filter alone
    ///   loses several percent, most of which a trained network recovers.
    pub fn five_qubit_default() -> Self {
        // Separation magnitudes in units of the per-bin noise deviation
        // (bin noise is 1.0 with the defaults below).
        let separations: [f64; 5] = [2.60, 0.45, 2.10, 1.85, 2.80];
        // Direction of the ground→excited displacement, per qubit.
        let angles_deg: [f64; 5] = [25.0, 110.0, 60.0, 150.0, 95.0];
        // Ground-state steady-state points (offset from the origin, as in
        // Fig. 3 where both blobs sit away from the ADC zero).
        let ground_mag = 1.2;
        let ground_angles_deg: [f64; 5] = [200.0, 250.0, 170.0, 220.0, 190.0];
        // T1 chosen so the *Algorithm 1 detected* relaxation fractions land
        // near the paper's 4.3 / — / 8.9 / 11.6 / 6.5 % (detection catches
        // roughly the early half of all relaxers, so true fractions are about
        // twice the detected ones).
        let t1_us: [f64; 5] = [11.4, 6.0, 5.4, 4.1, 7.5];
        let excitation: [f64; 5] = [0.004, 0.010, 0.005, 0.005, 0.002];
        let if_freqs_mhz: [f64; 5] = [20.0, 40.0, 60.0, 80.0, 100.0];

        let qubits = (0..5)
            .map(|k| {
                let g = IqPoint::new(ground_mag, 0.0).rotate(ground_angles_deg[k].to_radians());
                let dir = IqPoint::new(1.0, 0.0).rotate(angles_deg[k].to_radians());
                QubitParams {
                    if_freq_hz: if_freqs_mhz[k] * 1e6,
                    ground_ss: g,
                    excited_ss: g + dir * separations[k],
                    ringup_tau_s: 60e-9,
                    t1_s: t1_us[k] * 1e-6,
                    excitation_prob: excitation[k],
                    init_error_prob: 0.003,
                }
            })
            .collect();

        ChipConfig {
            qubits,
            sample_rate_hz: 500e6,
            readout_duration_s: 1e-6,
            demod_bin_s: 50e-9,
            // 25 samples per bin → per-bin noise deviation of exactly 1.0.
            adc_noise_sigma: 5.0,
            crosstalk: CrosstalkModel::chain_for_separations(&separations),
        }
    }

    /// A reduced configuration for fast unit tests: the two *well separated*
    /// qubits of the default chip (indices 0 and 2), so tests can assert
    /// high accuracies without the deliberately pathological qubit 2.
    pub fn two_qubit_test() -> Self {
        let mut cfg = Self::five_qubit_default();
        let q2 = cfg.qubits.swap_remove(2);
        cfg.qubits.truncate(1);
        cfg.qubits.push(q2);
        let seps: Vec<f64> = cfg.qubits.iter().map(QubitParams::separation).collect();
        cfg.crosstalk = CrosstalkModel::chain_for_separations(&seps);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chip_validates() {
        let cfg = ChipConfig::five_qubit_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.n_qubits(), 5);
        assert_eq!(cfg.n_samples(), 500);
        assert_eq!(cfg.n_bins(), 20);
        assert_eq!(cfg.samples_per_bin(), 25);
    }

    #[test]
    fn default_bin_noise_is_unity() {
        let cfg = ChipConfig::five_qubit_default();
        assert!((cfg.bin_noise_sigma() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qubit2_is_poorly_separated() {
        let cfg = ChipConfig::five_qubit_default();
        let s: Vec<f64> = cfg.qubits.iter().map(|q| q.separation()).collect();
        for (k, &sep) in s.iter().enumerate() {
            if k == 1 {
                assert!(sep < 0.6, "qubit 2 must be poorly separated");
            } else {
                assert!(sep > 1.2, "qubit {k} must be well separated");
            }
        }
    }

    #[test]
    fn separation_dir_is_unit() {
        let cfg = ChipConfig::five_qubit_default();
        for q in &cfg.qubits {
            assert!((q.separation_dir().norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_rejects_empty_chip() {
        let mut cfg = ChipConfig::five_qubit_default();
        cfg.qubits.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_supra_nyquist_tone() {
        let mut cfg = ChipConfig::five_qubit_default();
        cfg.qubits[0].if_freq_hz = 300e6;
        assert!(cfg.validate().unwrap_err().contains("Nyquist"));
    }

    #[test]
    fn validation_rejects_fractional_bins() {
        let mut cfg = ChipConfig::five_qubit_default();
        cfg.demod_bin_s = 33e-9;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn sample_time_is_linear() {
        let cfg = ChipConfig::five_qubit_default();
        assert!((cfg.sample_time(250) - 0.5e-6).abs() < 1e-15);
    }
}
