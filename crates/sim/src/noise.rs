//! Gaussian noise generation for the simulated amplifier chain.
//!
//! The readout chain (HEMT + room-temperature amplifiers) adds noise that is
//! well modelled as white and Gaussian on both quadratures. `rand` does not
//! ship a normal distribution, so the Marsaglia polar method is provided by
//! [`Real::sample_gaussian`]; this type wraps it with a configured deviation
//! and the buffered spare deviate.

use herqles_num::Real;
use rand::Rng;

/// A buffered standard-normal sampler (Marsaglia polar method), generic over
/// the pipeline precision `R` ([`Real`], default `f64`). At `f32` the
/// rejection loop and output rounding run at single precision, matching the
/// rest of an `f32` pipeline; at `f64` the sample stream is bit-identical to
/// the historical hand-written implementation.
///
/// Each call to [`GaussianNoise::sample`] returns `N(0, sigma²)`.
///
/// ```
/// use readout_sim::GaussianNoise;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut noise = GaussianNoise::new(2.0);
/// let x: f64 = noise.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise<R: Real = f64> {
    sigma: R,
    spare: Option<R>,
}

impl<R: Real> GaussianNoise<R> {
    /// Creates a sampler with standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: R) -> Self {
        assert!(
            sigma.is_finite() && sigma >= R::ZERO,
            "sigma must be finite and non-negative"
        );
        GaussianNoise { sigma, spare: None }
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> R {
        self.sigma
    }

    /// Draws one `N(0, sigma²)` sample.
    pub fn sample<G: Rng + ?Sized>(&mut self, rng: &mut G) -> R {
        self.sigma * self.standard(rng)
    }

    /// Draws one standard-normal sample.
    pub fn standard<G: Rng + ?Sized>(&mut self, rng: &mut G) -> R {
        R::sample_gaussian(rng, &mut self.spare)
    }

    /// Adds `N(0, sigma²)` to every sample of an I/Q row pair through the
    /// dispatched bulk backend ([`Real::noise_kernel`]).
    ///
    /// On the scalar backend this replays the historical interleaved
    /// per-sample loop (`i[0], q[0], i[1], q[1], …` off the caller's RNG,
    /// spare buffered across calls) bit for bit; the AVX2 backend consumes
    /// exactly one `next_u64` from the caller and generates the deviates
    /// lane-parallel in registers.
    ///
    /// # Panics
    ///
    /// Panics if the rows differ in length.
    pub fn fill_add_iq<G: Rng + ?Sized>(&mut self, rng: &mut G, i_out: &mut [R], q_out: &mut [R]) {
        let mut rng = rng;
        R::noise_kernel().add_iq(&mut rng, self.sigma, &mut self.spare, i_out, q_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(sigma: f64, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = GaussianNoise::new(sigma);
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn samples_have_requested_moments() {
        let (mean, var) = moments(2.0, 200_000);
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 4.0).abs() < 0.1, "variance {var} too far from 4");
    }

    #[test]
    fn zero_sigma_is_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = GaussianNoise::new(0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = GaussianNoise::new(1.0);
            (0..5).map(|_| g.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_sigma_panics() {
        // NaN fails the is_finite gate — garbage configs die loudly instead
        // of silently poisoning every synthesized sample.
        let _ = GaussianNoise::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_sigma_panics() {
        let _ = GaussianNoise::new(f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = GaussianNoise::new(-1.0);
    }

    #[test]
    fn tail_fraction_is_plausible() {
        // ~4.55 % of standard-normal mass lies beyond 2 sigma.
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = GaussianNoise::new(1.0);
        let n = 100_000;
        let beyond = (0..n).filter(|_| g.sample(&mut rng).abs() > 2.0).count();
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.005, "tail fraction {frac}");
    }
}
