//! Stochastic state-transition events during the readout window.
//!
//! Three error mechanisms change a qubit's *effective* state trajectory
//! relative to its nominal preparation:
//!
//! * **initialization errors** — the qubit starts the window in the wrong
//!   state;
//! * **relaxation** — an excited qubit decays to the ground state after an
//!   exponentially distributed time `t ~ Exp(T1)` (paper §3.3.1);
//! * **readout-induced excitation** — the measurement tone spuriously excites
//!   a ground-state qubit at a uniformly distributed time (paper §2.3).

use rand::{Rng, RngExt};

use crate::config::QubitParams;

/// The resolved state path of one qubit over one readout window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatePath {
    /// In the ground state for the whole window.
    Ground,
    /// In the excited state for the whole window.
    Excited,
    /// Excited until `time_s`, then relaxed to ground (a `1 → 0` transition).
    Relaxation {
        /// Transition time measured from the start of the window, in seconds.
        time_s: f64,
    },
    /// Ground until `time_s`, then excited (a `0 → 1` transition).
    Excitation {
        /// Transition time measured from the start of the window, in seconds.
        time_s: f64,
    },
}

impl StatePath {
    /// Whether the qubit is excited at time `t` (seconds into the window).
    pub fn excited_at(&self, t: f64) -> bool {
        match *self {
            StatePath::Ground => false,
            StatePath::Excited => true,
            StatePath::Relaxation { time_s } => t < time_s,
            StatePath::Excitation { time_s } => t >= time_s,
        }
    }

    /// The state at the start of the window.
    pub fn initial_excited(&self) -> bool {
        self.excited_at(0.0)
    }

    /// The state at the end of a window of length `duration_s`.
    pub fn final_excited(&self, duration_s: f64) -> bool {
        self.excited_at(duration_s)
    }

    /// The relaxation time, if this path contains a `1 → 0` transition.
    pub fn relaxation_time(&self) -> Option<f64> {
        match *self {
            StatePath::Relaxation { time_s } => Some(time_s),
            _ => None,
        }
    }
}

/// Outcome of sampling one qubit's events for one shot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledPath {
    /// The resolved state path.
    pub path: StatePath,
    /// Whether an initialization error flipped the starting state away from
    /// the nominal preparation.
    pub init_error: bool,
}

/// Samples the state path of one qubit prepared in `prepared_excited` over a
/// window of `duration_s` seconds.
///
/// Initialization errors are applied first; the (possibly flipped) initial
/// state then determines which transition mechanism can fire. At most one
/// transition occurs per window — double transitions (`1→0→1`) have
/// probability `O(p²)` and are neglected, as in the paper's Algorithm 1
/// assumptions.
pub fn sample_path<R: Rng + ?Sized>(
    params: &QubitParams,
    prepared_excited: bool,
    duration_s: f64,
    rng: &mut R,
) -> SampledPath {
    let init_error = rng.random::<f64>() < params.init_error_prob;
    let initial_excited = prepared_excited ^ init_error;
    let path = if initial_excited {
        // Exponential relaxation: inverse-CDF sampling.
        let u: f64 = rng.random();
        // `u` is in [0, 1); guard the log anyway for pathological RNGs.
        let t = -params.t1_s * (1.0 - u).max(f64::MIN_POSITIVE).ln();
        if t < duration_s {
            StatePath::Relaxation { time_s: t }
        } else {
            StatePath::Excited
        }
    } else if rng.random::<f64>() < params.excitation_prob {
        StatePath::Excitation {
            time_s: rng.random::<f64>() * duration_s,
        }
    } else {
        StatePath::Ground
    };
    SampledPath { path, init_error }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q0() -> QubitParams {
        ChipConfig::five_qubit_default().qubits[0].clone()
    }

    #[test]
    fn ground_path_is_never_excited() {
        let p = StatePath::Ground;
        assert!(!p.excited_at(0.0) && !p.excited_at(1.0));
        assert!(p.relaxation_time().is_none());
    }

    #[test]
    fn relaxation_path_switches_state() {
        let p = StatePath::Relaxation { time_s: 0.5e-6 };
        assert!(p.excited_at(0.4e-6));
        assert!(!p.excited_at(0.6e-6));
        assert!(p.initial_excited());
        assert!(!p.final_excited(1e-6));
        assert_eq!(p.relaxation_time(), Some(0.5e-6));
    }

    #[test]
    fn excitation_path_switches_state() {
        let p = StatePath::Excitation { time_s: 0.3e-6 };
        assert!(!p.excited_at(0.2e-6));
        assert!(p.excited_at(0.3e-6));
        assert!(p.final_excited(1e-6));
    }

    #[test]
    fn relaxation_fraction_matches_t1() {
        let params = q0(); // T1 = 22.7 µs over a 1 µs window → ~4.3 %.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let relaxed = (0..n)
            .filter(|_| {
                matches!(
                    sample_path(&params, true, 1e-6, &mut rng).path,
                    StatePath::Relaxation { .. }
                )
            })
            .count();
        let frac = relaxed as f64 / n as f64;
        let expected = 1.0 - (-1e-6f64 / params.t1_s).exp();
        assert!(
            (frac - expected).abs() < 0.004,
            "relaxation fraction {frac} vs expected {expected}"
        );
    }

    #[test]
    fn relaxation_times_are_early_biased() {
        // For Exp(T1) truncated to a window much shorter than T1, transition
        // times are nearly uniform; their mean must be < 60 % of the window.
        let params = q0();
        let mut rng = StdRng::seed_from_u64(6);
        let times: Vec<f64> = (0..200_000)
            .filter_map(|_| {
                sample_path(&params, true, 1e-6, &mut rng)
                    .path
                    .relaxation_time()
            })
            .collect();
        assert!(!times.is_empty());
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!(
            mean > 0.3e-6 && mean < 0.6e-6,
            "mean relaxation time {mean}"
        );
        assert!(times.iter().all(|&t| (0.0..1e-6).contains(&t)));
    }

    #[test]
    fn ground_preparation_rarely_excites() {
        let params = q0(); // excitation_prob = 0.4 %.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let excited = (0..n)
            .filter(|_| {
                matches!(
                    sample_path(&params, false, 1e-6, &mut rng).path,
                    StatePath::Excitation { .. }
                )
            })
            .count();
        let frac = excited as f64 / n as f64;
        assert!(
            (frac - params.excitation_prob).abs() < 0.002,
            "excitation fraction {frac}"
        );
    }

    #[test]
    fn init_errors_flip_starting_state() {
        let mut params = q0();
        params.init_error_prob = 1.0;
        let mut rng = StdRng::seed_from_u64(8);
        let s = sample_path(&params, true, 1e-6, &mut rng);
        assert!(s.init_error);
        assert!(!s.path.initial_excited());
    }

    #[test]
    fn zero_error_probabilities_are_deterministic_for_ground() {
        let mut params = q0();
        params.init_error_prob = 0.0;
        params.excitation_prob = 0.0;
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(
                sample_path(&params, false, 1e-6, &mut rng).path,
                StatePath::Ground
            );
        }
    }
}
