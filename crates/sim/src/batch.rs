//! Structure-of-arrays shot batches for allocation-free batched inference.
//!
//! The per-shot pipeline walks one [`IqTrace`] at a time, allocating
//! per-qubit baseband traces and feature vectors for every shot. At hardware
//! line rate that is the wrong shape: the discriminator should see a
//! contiguous `[shot × sample]` buffer it can stream through fused kernels.
//! [`ShotBatch`] is that buffer — one flat `f64` plane holding every shot's
//! raw I and Q channels row by row, in the same `[I…, Q…]` row layout as
//! [`IqTrace::to_feature_vec`], so a batch row doubles as the baseline FNN's
//! input vector and as one row of the fused demod + matched-filter matmul.

use herqles_num::Real;

use crate::dataset::{Dataset, Shot};
use crate::trace::IqTrace;

/// A contiguous batch of equally long raw IQ traces.
///
/// Row `s` of the underlying buffer is shot `s` as `[i_0 … i_{T−1},
/// q_0 … q_{T−1}]`; rows are stored back to back, so the whole batch is a
/// row-major `[n_shots × 2T]` matrix ready for a blocked matmul with a
/// `[2T × features]` fused filter matrix — no per-shot allocation anywhere.
///
/// Generic over the pipeline precision `R` ([`Real`], default `f64`): the
/// batch models the ADC output plane, so this is where the digital pipeline's
/// precision begins. Packing an [`IqTrace`] (always `f64`, like the analog
/// physics it stands in for) into a `ShotBatch<f32>` rounds each sample once,
/// exactly as a narrower digitizer word would.
#[derive(Debug, Clone, PartialEq)]
pub struct ShotBatch<R: Real = f64> {
    n_shots: usize,
    n_samples: usize,
    data: Vec<R>,
}

impl<R: Real> ShotBatch<R> {
    /// An empty batch with capacity reserved for `n_shots` traces of
    /// `n_samples` samples.
    pub fn with_capacity(n_shots: usize, n_samples: usize) -> Self {
        ShotBatch::<R> {
            n_shots: 0,
            n_samples,
            data: Vec::with_capacity(n_shots * 2 * n_samples),
        }
    }

    /// Packs borrowed traces into a batch.
    ///
    /// Returns `None` if `raws` is empty or the traces have unequal lengths —
    /// callers fall back to the per-shot path in that case (e.g. mixed
    /// readout durations).
    pub fn try_from_traces(raws: &[&IqTrace]) -> Option<Self> {
        let first = raws.first()?;
        let n_samples = first.len();
        if raws.iter().any(|r| r.len() != n_samples) {
            return None;
        }
        let mut batch = ShotBatch::<R>::with_capacity(raws.len(), n_samples);
        for raw in raws {
            batch.push_trace(raw);
        }
        Some(batch)
    }

    /// Packs the raw traces of `dataset`'s shots at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_dataset(dataset: &Dataset, indices: &[usize]) -> Self {
        let mut batch = ShotBatch::<R>::with_capacity(indices.len(), dataset.config.n_samples());
        for &i in indices {
            batch.push_trace(&dataset.shots[i].raw);
        }
        batch
    }

    /// Packs a slice of owned shots.
    pub fn from_shots(shots: &[Shot]) -> Self {
        let n_samples = shots.first().map_or(0, |s| s.raw.len());
        let mut batch = ShotBatch::<R>::with_capacity(shots.len(), n_samples);
        for shot in shots {
            batch.push_trace(&shot.raw);
        }
        batch
    }

    /// Removes all shots, keeping the allocation and the configured sample
    /// count — the reuse primitive of the streaming round pipeline: a warm
    /// batch cycles through `clear` → `push_empty_row`×k with zero heap
    /// traffic.
    pub fn clear(&mut self) {
        self.n_shots = 0;
        self.data.clear();
    }

    /// Appends one zeroed row and returns its `(I, Q)` halves for in-place
    /// synthesis (e.g. [`crate::multiplex::synthesize_into`]).
    ///
    /// Uses the batch's configured sample count (set by
    /// [`ShotBatch::with_capacity`] or the first pushed trace); within the
    /// reserved capacity this performs no allocation.
    pub fn push_empty_row(&mut self) -> (&mut [R], &mut [R]) {
        let w = self.row_width();
        let start = self.data.len();
        self.data.resize(start + w, R::ZERO);
        self.n_shots += 1;
        self.data[start..].split_at_mut(self.n_samples)
    }

    /// Appends one trace to the batch.
    ///
    /// # Panics
    ///
    /// Panics if the trace length differs from the batch's sample count.
    pub fn push_trace(&mut self, raw: &IqTrace) {
        if self.n_shots == 0 && self.data.is_empty() {
            self.n_samples = raw.len();
        }
        assert_eq!(
            raw.len(),
            self.n_samples,
            "all traces in a batch must share one length"
        );
        self.data.extend(raw.i().iter().map(|&v| R::from_f64(v)));
        self.data.extend(raw.q().iter().map(|&v| R::from_f64(v)));
        self.n_shots += 1;
    }

    /// Number of shots in the batch.
    pub fn n_shots(&self) -> usize {
        self.n_shots
    }

    /// Whether the batch holds no shots.
    pub fn is_empty(&self) -> bool {
        self.n_shots == 0
    }

    /// Raw samples per shot (per channel).
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Width of one row: `2 × n_samples` (`I` plane then `Q` plane).
    pub fn row_width(&self) -> usize {
        2 * self.n_samples
    }

    /// The whole batch as one flat row-major `[n_shots × row_width]` slice.
    pub fn as_slice(&self) -> &[R] {
        &self.data
    }

    /// Mutable view of the whole batch, for in-place row synthesis from
    /// disjoint shards (e.g. one `herqles_exec::Tiles` tile per row); pair
    /// with [`ShotBatch::push_empty_row`] to pre-size the rows first.
    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.data
    }

    /// Row `shot` as `[i…, q…]`.
    ///
    /// # Panics
    ///
    /// Panics if `shot` is out of bounds.
    pub fn row(&self, shot: usize) -> &[R] {
        assert!(shot < self.n_shots, "shot index out of bounds");
        let w = self.row_width();
        &self.data[shot * w..(shot + 1) * w]
    }

    /// The I channel of `shot`.
    ///
    /// # Panics
    ///
    /// Panics if `shot` is out of bounds.
    pub fn i_of(&self, shot: usize) -> &[R] {
        &self.row(shot)[..self.n_samples]
    }

    /// The Q channel of `shot`.
    ///
    /// # Panics
    ///
    /// Panics if `shot` is out of bounds.
    pub fn q_of(&self, shot: usize) -> &[R] {
        &self.row(shot)[self.n_samples..]
    }

    /// Materializes shot `shot` as an owned [`IqTrace`] (the allocation the
    /// batched path exists to avoid; used only by per-shot fallbacks).
    ///
    /// # Panics
    ///
    /// Panics if `shot` is out of bounds.
    pub fn trace(&self, shot: usize) -> IqTrace {
        IqTrace::new(
            self.i_of(shot).iter().map(|&v| v.to_f64()).collect(),
            self.q_of(shot).iter().map(|&v| v.to_f64()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipConfig;

    fn ramp_trace(offset: f64, len: usize) -> IqTrace {
        IqTrace::new(
            (0..len).map(|t| offset + t as f64).collect(),
            (0..len).map(|t| -(offset + t as f64)).collect(),
        )
    }

    #[test]
    fn rows_follow_feature_vec_layout() {
        let a = ramp_trace(0.0, 4);
        let b = ramp_trace(10.0, 4);
        let batch: ShotBatch = ShotBatch::try_from_traces(&[&a, &b]).unwrap();
        assert_eq!(batch.n_shots(), 2);
        assert_eq!(batch.n_samples(), 4);
        assert_eq!(batch.row(0), a.to_feature_vec().as_slice());
        assert_eq!(batch.row(1), b.to_feature_vec().as_slice());
        assert_eq!(batch.as_slice().len(), 2 * 8);
    }

    #[test]
    fn channels_are_recoverable() {
        let a = ramp_trace(5.0, 3);
        let batch: ShotBatch = ShotBatch::try_from_traces(&[&a]).unwrap();
        assert_eq!(batch.i_of(0), a.i());
        assert_eq!(batch.q_of(0), a.q());
        assert_eq!(batch.trace(0), a);
    }

    #[test]
    fn ragged_traces_are_rejected() {
        let a = ramp_trace(0.0, 4);
        let b = ramp_trace(0.0, 5);
        assert!(ShotBatch::<f64>::try_from_traces(&[&a, &b]).is_none());
        assert!(ShotBatch::<f64>::try_from_traces(&[]).is_none());
    }

    #[test]
    fn dataset_packing_matches_shot_order() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 2, 7);
        let idx = [3usize, 0, 5];
        let batch: ShotBatch = ShotBatch::from_dataset(&ds, &idx);
        assert_eq!(batch.n_shots(), 3);
        for (r, &i) in idx.iter().enumerate() {
            assert_eq!(batch.trace(r), ds.shots[i].raw);
        }
    }

    #[test]
    fn from_shots_covers_all() {
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 1, 9);
        let batch: ShotBatch = ShotBatch::from_shots(&ds.shots);
        assert_eq!(batch.n_shots(), ds.shots.len());
        assert_eq!(batch.n_samples(), cfg.n_samples());
    }

    #[test]
    fn clear_and_push_empty_row_reuse_the_allocation() {
        let a = ramp_trace(0.0, 4);
        let b = ramp_trace(3.0, 4);
        let mut batch: ShotBatch = ShotBatch::with_capacity(2, 4);
        batch.push_trace(&a);
        batch.push_trace(&b);
        let cap = batch.as_slice().len();
        let ptr = batch.as_slice().as_ptr();
        batch.clear();
        assert!(batch.is_empty());
        for src in [&a, &b] {
            let (i, q) = batch.push_empty_row();
            i.copy_from_slice(src.i());
            q.copy_from_slice(src.q());
        }
        assert_eq!(batch.n_shots(), 2);
        assert_eq!(batch.as_slice().len(), cap);
        assert_eq!(batch.as_slice().as_ptr(), ptr, "buffer must be reused");
        assert_eq!(batch.trace(0), a);
        assert_eq!(batch.trace(1), b);
    }

    #[test]
    fn push_empty_row_yields_zeroed_halves() {
        let mut batch: ShotBatch = ShotBatch::with_capacity(1, 3);
        let (i, q) = batch.push_empty_row();
        assert_eq!(i, &[0.0; 3]);
        assert_eq!(q, &[0.0; 3]);
        assert_eq!(batch.n_samples(), 3);
        assert_eq!(batch.row_width(), 6);
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn push_rejects_length_mismatch() {
        let mut batch: ShotBatch = ShotBatch::with_capacity(2, 4);
        batch.push_trace(&ramp_trace(0.0, 4));
        batch.push_trace(&ramp_trace(0.0, 3));
    }
}
