//! Labeled shot generation: the synthetic counterpart of the paper's
//! calibration dataset.
//!
//! The paper's dataset contains readout traces for all `2^5` basis states of
//! the five-qubit chip (50 000 shots per state). [`Dataset::generate`]
//! produces the same structure at a configurable scale: for every basis state
//! and shot it samples per-qubit state paths (relaxation/excitation/init
//! errors), evolves the resonator basebands, applies crosstalk, synthesizes
//! the frequency-multiplexed ADC waveform, and records ground-truth event
//! information for validating the semi-supervised relaxation labeling
//! (Algorithm 1).

use herqles_exec::ShardPool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::ChipConfig;
use crate::events::{sample_path, StatePath};
use crate::multiplex::{synthesize, CarrierTable};
use crate::noise::GaussianNoise;
use crate::trace::{BasisState, IqPoint, IqTrace};
use crate::trajectory::{baseband, excitation_measure};

/// Ground-truth event record for one shot (not observable by discriminators;
/// used to validate labeling algorithms and to compute oracle accuracies).
#[derive(Debug, Clone, PartialEq)]
pub struct ShotTruth {
    /// State at the start of the window, after initialization errors.
    pub initial: BasisState,
    /// State at the end of the window, after any transitions.
    pub final_state: BasisState,
    /// Per-qubit relaxation times (seconds into the window), if the qubit
    /// underwent a `1 → 0` transition during readout.
    pub relaxation_time_s: Vec<Option<f64>>,
    /// Per-qubit excitation times, if the qubit underwent a `0 → 1`
    /// transition during readout.
    pub excitation_time_s: Vec<Option<f64>>,
}

/// One labeled readout shot: the nominally prepared state plus the raw
/// digitized ADC waveform of the shared feedline.
#[derive(Debug, Clone, PartialEq)]
pub struct Shot {
    /// The basis state the register was nominally prepared in (the label).
    pub prepared: BasisState,
    /// Raw quadrature-sampled ADC waveform (both channels, ADC rate).
    pub raw: IqTrace,
    /// Ground-truth events (hidden from discriminators).
    pub truth: ShotTruth,
}

/// Index-based train/validation/test partition of a [`Dataset`].
///
/// Splits are stratified per prepared basis state, mirroring the paper's
/// 9 750 / 5 250 / 35 000 split of each state's 50 000 traces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DatasetSplit {
    /// Indices of training shots.
    pub train: Vec<usize>,
    /// Indices of validation shots.
    pub val: Vec<usize>,
    /// Indices of test shots.
    pub test: Vec<usize>,
}

/// A collection of labeled shots generated from one chip configuration.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The configuration the shots were generated from.
    pub config: ChipConfig,
    /// All shots, grouped by prepared state (state-major order).
    pub shots: Vec<Shot>,
}

impl Dataset {
    /// Generates `shots_per_state` shots for each of the `2^n` basis states,
    /// sharding basis states across a machine-sized [`ShardPool`].
    ///
    /// Generation is deterministic in `seed` and — because every basis state
    /// draws from its own `seed`-derived RNG stream — independent of the
    /// thread count: `generate`, [`Dataset::generate_with_threads`] and
    /// [`Dataset::generate_with_pool`] at any parallelism produce identical
    /// shots.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`].
    pub fn generate(config: &ChipConfig, shots_per_state: usize, seed: u64) -> Dataset {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::generate_with_threads(config, shots_per_state, seed, threads)
    }

    /// [`Dataset::generate`] with an explicit thread count (1 runs inline on
    /// the caller's thread). Output is identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`].
    pub fn generate_with_threads(
        config: &ChipConfig,
        shots_per_state: usize,
        seed: u64,
        threads: usize,
    ) -> Dataset {
        let n_states = 1usize << config.n_qubits();
        let pool = ShardPool::new(threads.clamp(1, n_states));
        Self::generate_with_pool(config, shots_per_state, seed, &pool)
    }

    /// [`Dataset::generate`] on a caller-owned [`ShardPool`] — the shared
    /// execution runtime, so calibration generation and the streaming cycle
    /// engine can reuse one set of persistent workers. One basis state is one
    /// shard; output is identical for every pool size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipConfig::validate`].
    pub fn generate_with_pool(
        config: &ChipConfig,
        shots_per_state: usize,
        seed: u64,
        pool: &ShardPool,
    ) -> Dataset {
        config.validate().expect("invalid chip configuration");
        let carriers = CarrierTable::new(config);
        let n = config.n_qubits();
        let n_states = 1usize << n;

        let mut per_state: Vec<Vec<Shot>> = Vec::with_capacity(n_states);
        per_state.resize_with(n_states, Vec::new);
        pool.run_mut(&mut per_state, |state, bucket| {
            let prepared = BasisState::new(state as u32);
            let mut rng = StdRng::seed_from_u64(state_stream_seed(seed, state));
            bucket.reserve(shots_per_state);
            for _ in 0..shots_per_state {
                bucket.push(generate_shot(config, &carriers, prepared, &mut rng));
            }
        });

        let mut shots = Vec::with_capacity(shots_per_state << n);
        for bucket in per_state {
            shots.extend(bucket);
        }
        Dataset {
            config: config.clone(),
            shots,
        }
    }

    /// Number of qubits on the underlying chip.
    pub fn n_qubits(&self) -> usize {
        self.config.n_qubits()
    }

    /// Stratified split into train/validation/test index sets.
    ///
    /// Each prepared state's shots are shuffled (deterministically in `seed`)
    /// and divided according to the two fractions; the remainder is the test
    /// set.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac + val_frac > 1.0` or either fraction is negative.
    pub fn split(&self, train_frac: f64, val_frac: f64, seed: u64) -> DatasetSplit {
        assert!(
            train_frac >= 0.0 && val_frac >= 0.0,
            "fractions must be non-negative"
        );
        assert!(
            train_frac + val_frac <= 1.0,
            "train + val fractions must not exceed 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_state: Vec<Vec<usize>> = Vec::new();
        for (idx, shot) in self.shots.iter().enumerate() {
            let s = shot.prepared.index();
            if by_state.len() <= s {
                by_state.resize_with(s + 1, Vec::new);
            }
            by_state[s].push(idx);
        }
        let mut split = DatasetSplit::default();
        for mut group in by_state {
            group.shuffle(&mut rng);
            let n_train = (group.len() as f64 * train_frac).round() as usize;
            let n_val = (group.len() as f64 * val_frac).round() as usize;
            let n_val_end = (n_train + n_val).min(group.len());
            split.train.extend_from_slice(&group[..n_train]);
            split.val.extend_from_slice(&group[n_train..n_val_end]);
            split.test.extend_from_slice(&group[n_val_end..]);
        }
        split
    }

    /// Borrows the shots at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Vec<&Shot> {
        indices.iter().map(|&i| &self.shots[i]).collect()
    }
}

/// Derives the RNG seed of one basis state's generation stream from the
/// dataset seed: decorrelated streams per state, stable across sharding
/// layouts. Delegates to the shared [`herqles_exec::stream_seed`] derivation
/// (bit-identical to the formula this generator originally shipped with, so
/// pinned datasets are unchanged).
fn state_stream_seed(seed: u64, state: usize) -> u64 {
    herqles_exec::stream_seed(seed, state as u64)
}

fn generate_shot<R: Rng + ?Sized>(
    config: &ChipConfig,
    carriers: &CarrierTable,
    prepared: BasisState,
    rng: &mut R,
) -> Shot {
    let n = config.n_qubits();
    let n_samples = config.n_samples();
    let times: Vec<f64> = (0..n_samples)
        .map(|t| config.sample_time(t) + 0.5 / config.sample_rate_hz)
        .collect();

    // 1. Sample each qubit's state path.
    let mut paths = Vec::with_capacity(n);
    let mut initial = BasisState::new(0);
    let mut final_state = BasisState::new(0);
    let mut relaxation_time_s = Vec::with_capacity(n);
    let mut excitation_time_s = Vec::with_capacity(n);
    for (k, params) in config.qubits.iter().enumerate() {
        let sampled = sample_path(params, prepared.qubit(k), config.readout_duration_s, rng);
        initial = initial.with_qubit(k, sampled.path.initial_excited());
        final_state =
            final_state.with_qubit(k, sampled.path.final_excited(config.readout_duration_s));
        relaxation_time_s.push(sampled.path.relaxation_time());
        excitation_time_s.push(match sampled.path {
            StatePath::Excitation { time_s } => Some(time_s),
            _ => None,
        });
        paths.push(sampled.path);
    }

    // 2. Evolve noiseless basebands and the excitation measures that drive
    //    the crosstalk model.
    let mut basebands: Vec<Vec<IqPoint>> = config
        .qubits
        .iter()
        .zip(&paths)
        .map(|(params, path)| baseband(params, path, &times))
        .collect();
    let measures: Vec<Vec<f64>> = config
        .qubits
        .iter()
        .zip(&basebands)
        .map(|(params, bb)| bb.iter().map(|&s| excitation_measure(params, s)).collect())
        .collect();

    // 3. Apply crosstalk shifts sample by sample.
    let mut m = vec![0.0; n];
    for t in 0..n_samples {
        for (k, meas) in measures.iter().enumerate() {
            m[k] = meas[t];
        }
        for (victim, bb) in basebands.iter_mut().enumerate() {
            let shift = config.crosstalk.shift_at(victim, &m, times[t]);
            bb[t] += shift;
        }
    }

    // 4. Synthesize the multiplexed ADC waveform with additive noise.
    let mut noise = GaussianNoise::new(config.adc_noise_sigma);
    let raw = synthesize(carriers, &basebands, &mut noise, rng);

    Shot {
        prepared,
        raw,
        truth: ShotTruth {
            initial,
            final_state,
            relaxation_time_s,
            excitation_time_s,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        Dataset::generate(&ChipConfig::two_qubit_test(), 6, 99)
    }

    #[test]
    fn generation_covers_all_states() {
        let ds = small_dataset();
        assert_eq!(ds.shots.len(), 6 * 4);
        for s in BasisState::all(2) {
            let count = ds.shots.iter().filter(|sh| sh.prepared == s).count();
            assert_eq!(count, 6);
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = ChipConfig::two_qubit_test();
        let a = Dataset::generate(&cfg, 3, 5);
        let b = Dataset::generate(&cfg, 3, 5);
        assert_eq!(a.shots, b.shots);
        let c = Dataset::generate(&cfg, 3, 6);
        assert_ne!(a.shots, c.shots);
    }

    #[test]
    fn generation_is_independent_of_thread_count() {
        // The determinism pin of the parallel generator: per-state RNG
        // streams make the traces a function of (config, shots, seed) only,
        // regardless of how basis states are sharded across threads.
        let cfg = ChipConfig::two_qubit_test();
        let single = Dataset::generate_with_threads(&cfg, 4, 31, 1);
        for threads in [2, 3, 4, 16] {
            let multi = Dataset::generate_with_threads(&cfg, 4, 31, threads);
            assert_eq!(
                single.shots, multi.shots,
                "threads={threads} changed the generated traces"
            );
        }
        assert_eq!(single.shots, Dataset::generate(&cfg, 4, 31).shots);
    }

    #[test]
    fn generation_on_a_shared_pool_matches_the_inline_path() {
        // The ShardPool migration pin: a caller-owned pool of any size
        // produces the same dataset as single-threaded generation, and one
        // pool can serve several generations back to back.
        let cfg = ChipConfig::two_qubit_test();
        let single = Dataset::generate_with_threads(&cfg, 4, 31, 1);
        let pool = ShardPool::new(3);
        for _ in 0..2 {
            let pooled = Dataset::generate_with_pool(&cfg, 4, 31, &pool);
            assert_eq!(single.shots, pooled.shots);
        }
    }

    #[test]
    fn raw_traces_have_adc_length() {
        let ds = small_dataset();
        for shot in &ds.shots {
            assert_eq!(shot.raw.len(), ds.config.n_samples());
        }
    }

    #[test]
    fn truth_tracks_prepared_state_mostly() {
        // With default error rates the initial state should equal the
        // prepared state in the overwhelming majority of shots.
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 50, 11);
        let matching = ds
            .shots
            .iter()
            .filter(|s| s.truth.initial == s.prepared)
            .count();
        assert!(matching as f64 / ds.shots.len() as f64 > 0.95);
    }

    #[test]
    fn relaxation_truth_only_for_excited_preparations() {
        let ds = small_dataset();
        for shot in &ds.shots {
            for (k, t) in shot.truth.relaxation_time_s.iter().enumerate() {
                if t.is_some() {
                    assert!(
                        shot.truth.initial.qubit(k),
                        "relaxation recorded for a qubit that started in ground"
                    );
                    assert!(!shot.truth.final_state.qubit(k));
                }
            }
        }
    }

    #[test]
    fn split_is_stratified_and_complete() {
        let ds = Dataset::generate(&ChipConfig::two_qubit_test(), 10, 3);
        let split = ds.split(0.2, 0.1, 7);
        assert_eq!(split.train.len(), 4 * 2);
        assert_eq!(split.val.len(), 4);
        assert_eq!(split.test.len(), 40 - 8 - 4);
        let mut all: Vec<usize> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let ds = small_dataset();
        assert_eq!(ds.split(0.5, 0.2, 1), ds.split(0.5, 0.2, 1));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn split_rejects_oversubscription() {
        let _ = small_dataset().split(0.8, 0.5, 0);
    }

    #[test]
    fn subset_borrows_requested_shots() {
        let ds = small_dataset();
        let sub = ds.subset(&[0, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].prepared, ds.shots[0].prepared);
    }

    #[test]
    fn mtv_of_demixed_states_differs() {
        // Sanity: the raw multiplexed waveform of |00> and |11> must differ
        // substantially (different basebands on both tones).
        let cfg = ChipConfig::two_qubit_test();
        let ds = Dataset::generate(&cfg, 4, 21);
        let mean_raw = |state: BasisState| -> f64 {
            let shots: Vec<_> = ds.shots.iter().filter(|s| s.prepared == state).collect();
            shots
                .iter()
                .map(|s| s.raw.i().iter().map(|x| x * x).sum::<f64>())
                .sum::<f64>()
                / shots.len() as f64
        };
        let e00 = mean_raw(BasisState::new(0));
        let e11 = mean_raw(BasisState::new(3));
        assert!((e00 - e11).abs() > 1e-6);
    }
}
