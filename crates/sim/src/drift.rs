//! Deterministic, round-indexed channel-drift fault injection.
//!
//! Real superconducting readout is not stationary: IQ centroids wander with
//! flux drift, amplifier noise broadens, qubits leak to |2⟩ whose dispersive
//! shift parks the resonator far from both calibrated clouds, and TLS
//! activity produces transient crosstalk bursts. A [`FaultPlan`] scripts
//! those degradations as a composable list of [`DriftEvent`]s, each active
//! over a half-open round window `[start_round, end_round)` with
//! ramp-and-hold semantics, so a streaming engine can be driven through a
//! *reproducible* degradation scenario.
//!
//! The plan is purely round-indexed: resolving round `r` into a
//! [`RoundFaults`] snapshot touches no RNG and allocates nothing once the
//! snapshot buffers exist. The only stochastic fault — leakage — draws its
//! per-shot decision from the caller's per-group synthesis RNG stream, which
//! is already derived from `stream_seed(entropy, group)`; pooled and serial
//! execution therefore stay bit-identical under active fault injection at
//! any thread count.
//!
//! An empty plan resolves to an inactive snapshot and the synthesis path
//! skips every fault branch, keeping the no-fault stream bit-exact with the
//! pre-drift pipeline (pinned by the stream crate's parity tests).

use crate::trace::IqPoint;

/// One scripted channel degradation, active over rounds
/// `[start_round, end_round)` and (for the ramped kinds) held at full
/// strength afterwards.
///
/// Ramp semantics: strength is `0` before `start_round`, climbs linearly to
/// reach `1` at round `end_round − 1`, and holds at `1` from `end_round` on.
/// A zero-length window (`end_round == start_round`) is a step: full
/// strength from `start_round`. The exception is [`DriftEvent::CrosstalkBurst`],
/// which is *transient*: active only inside the window, gone after it (a
/// zero-length burst never fires).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftEvent {
    /// The readout cloud of channel `qubit` drifts by `delta` in the IQ
    /// plane (both basis states shift together — a local-oscillator /
    /// flux-drift error, the classic matched-filter killer).
    CentroidDrift {
        /// Victim readout channel.
        qubit: usize,
        /// First round of the ramp.
        start_round: u64,
        /// First round at which the full `delta` is held.
        end_round: u64,
        /// Full-strength IQ displacement.
        delta: IqPoint,
    },
    /// The ADC/amplifier noise deviation of the whole feedline scales by
    /// `factor` (ramped from `1`, held after the window).
    SigmaScale {
        /// First round of the ramp.
        start_round: u64,
        /// First round at which the full factor is held.
        end_round: u64,
        /// Full-strength sigma multiplier (`> 1` broadens, `< 1` narrows).
        factor: f64,
    },
    /// Channel `qubit` leaks to |2⟩ with per-shot probability ramping to
    /// `prob`: a leaked shot rings up from the origin toward `leak_ss`
    /// instead of either computational steady state, producing an IQ cloud
    /// the calibrated discriminator has never seen.
    Leakage {
        /// Leaking readout channel.
        qubit: usize,
        /// First round of the ramp.
        start_round: u64,
        /// First round at which the full probability is held.
        end_round: u64,
        /// Full-strength per-shot leakage probability.
        prob: f64,
        /// |2⟩ resonator steady-state point.
        leak_ss: IqPoint,
    },
    /// Transient crosstalk burst: every dispersive crosstalk shift (already
    /// carrying [`crate::CrosstalkModel::transient_scale`]'s early-window
    /// weighting) is additionally multiplied by `gain` — but only for rounds
    /// inside `[start_round, end_round)`.
    CrosstalkBurst {
        /// First round of the burst.
        start_round: u64,
        /// First round after the burst (exclusive).
        end_round: u64,
        /// Shift multiplier while the burst is active.
        gain: f64,
    },
}

/// Linear ramp-and-hold strength of a `[start, end)` window at round `r`.
fn ramp(r: u64, start: u64, end: u64) -> f64 {
    if r < start {
        0.0
    } else if r >= end {
        1.0
    } else {
        // Reaches exactly 1.0 at r == end − 1.
        (r - start + 1) as f64 / (end - start) as f64
    }
}

impl DriftEvent {
    /// The event's ramp strength (`0..=1`) at round `r`; for
    /// [`DriftEvent::CrosstalkBurst`] this is a gate (`1` inside the window,
    /// `0` outside).
    pub fn strength_at(&self, r: u64) -> f64 {
        match *self {
            DriftEvent::CentroidDrift {
                start_round,
                end_round,
                ..
            }
            | DriftEvent::SigmaScale {
                start_round,
                end_round,
                ..
            }
            | DriftEvent::Leakage {
                start_round,
                end_round,
                ..
            } => ramp(r, start_round, end_round),
            DriftEvent::CrosstalkBurst {
                start_round,
                end_round,
                ..
            } => {
                if r >= start_round && r < end_round {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// First round at which the event deviates from nominal.
    pub fn onset_round(&self) -> u64 {
        match *self {
            DriftEvent::CentroidDrift { start_round, .. }
            | DriftEvent::SigmaScale { start_round, .. }
            | DriftEvent::Leakage { start_round, .. }
            | DriftEvent::CrosstalkBurst { start_round, .. } => start_round,
        }
    }

    /// Highest channel index the event touches, if it is channel-local.
    fn qubit(&self) -> Option<usize> {
        match *self {
            DriftEvent::CentroidDrift { qubit, .. } | DriftEvent::Leakage { qubit, .. } => {
                Some(qubit)
            }
            _ => None,
        }
    }
}

/// A deterministic, composable schedule of [`DriftEvent`]s.
///
/// Events compose naturally: centroid deltas on the same channel add, sigma
/// factors and burst gains multiply, leakage probabilities saturate-add
/// (clamped to `1`). Resolution is pure arithmetic over the round index —
/// see [`FaultPlan::resolve_into`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<DriftEvent>,
}

impl FaultPlan {
    /// An empty plan: resolves to an inactive snapshot every round.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan over the given events.
    pub fn new(events: Vec<DriftEvent>) -> Self {
        FaultPlan { events }
    }

    /// Appends an event.
    pub fn push(&mut self, event: DriftEvent) {
        self.events.push(event);
    }

    /// The scheduled events.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Earliest onset round across all events (`None` for an empty plan).
    pub fn first_onset(&self) -> Option<u64> {
        self.events.iter().map(DriftEvent::onset_round).min()
    }

    /// Checks that every channel-local event targets a channel `< n_qubits`.
    pub fn validate(&self, n_qubits: usize) -> Result<(), String> {
        for e in &self.events {
            if let Some(q) = e.qubit() {
                if q >= n_qubits {
                    return Err(format!(
                        "fault plan targets channel {q}, chip has {n_qubits}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Resolves the plan at round `round` into `out`, a pre-sized snapshot.
    /// Allocation-free; `out.is_active()` reports whether any event deviates
    /// from nominal this round.
    ///
    /// # Panics
    ///
    /// Panics if an event targets a channel `out` was not sized for.
    pub fn resolve_into(&self, round: u64, out: &mut RoundFaults) {
        out.reset();
        for e in &self.events {
            let s = e.strength_at(round);
            if s == 0.0 {
                continue;
            }
            match *e {
                DriftEvent::CentroidDrift { qubit, delta, .. } => {
                    out.centroid_shift[qubit] += delta * s;
                }
                DriftEvent::SigmaScale { factor, .. } => {
                    out.sigma_scale *= 1.0 + (factor - 1.0) * s;
                }
                DriftEvent::Leakage { qubit, prob, .. } => {
                    out.leak_prob[qubit] = (out.leak_prob[qubit] + prob * s).min(1.0);
                }
                DriftEvent::CrosstalkBurst { gain, .. } => {
                    out.crosstalk_gain *= gain;
                }
            }
            if let DriftEvent::Leakage { qubit, leak_ss, .. } = *e {
                out.leak_ss[qubit] = leak_ss;
            }
        }
        out.active = out.sigma_scale != 1.0
            || out.crosstalk_gain != 1.0
            || out.centroid_shift.iter().any(|&p| p != IqPoint::ZERO)
            || out.leak_prob.iter().any(|&p| p > 0.0);
    }
}

/// The resolved fault state of one round: what synthesis applies.
///
/// Channel-indexed fields are sized for the chip's channel count; the same
/// snapshot applies to every feedline group of the round (channel `k` of
/// every group drifts together — a feedline-wide fault model).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFaults {
    active: bool,
    sigma_scale: f64,
    crosstalk_gain: f64,
    centroid_shift: Vec<IqPoint>,
    leak_prob: Vec<f64>,
    leak_ss: Vec<IqPoint>,
}

impl RoundFaults {
    /// A nominal (no-fault) snapshot for `n_qubits` channels.
    pub fn nominal(n_qubits: usize) -> Self {
        RoundFaults {
            active: false,
            sigma_scale: 1.0,
            crosstalk_gain: 1.0,
            centroid_shift: vec![IqPoint::ZERO; n_qubits],
            leak_prob: vec![0.0; n_qubits],
            leak_ss: vec![IqPoint::ZERO; n_qubits],
        }
    }

    fn reset(&mut self) {
        self.active = false;
        self.sigma_scale = 1.0;
        self.crosstalk_gain = 1.0;
        self.centroid_shift.fill(IqPoint::ZERO);
        self.leak_prob.fill(0.0);
        self.leak_ss.fill(IqPoint::ZERO);
    }

    /// Whether any fault deviates from nominal this round.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Feedline-wide ADC noise sigma multiplier.
    pub fn sigma_scale(&self) -> f64 {
        self.sigma_scale
    }

    /// Feedline-wide crosstalk shift multiplier.
    pub fn crosstalk_gain(&self) -> f64 {
        self.crosstalk_gain
    }

    /// IQ displacement of channel `k`'s baseband this round.
    pub fn centroid_shift(&self, k: usize) -> IqPoint {
        self.centroid_shift[k]
    }

    /// Per-shot |2⟩ leakage probability of channel `k` this round.
    pub fn leak_prob(&self, k: usize) -> f64 {
        self.leak_prob[k]
    }

    /// |2⟩ steady-state point of channel `k` (meaningful when
    /// [`RoundFaults::leak_prob`] is nonzero).
    pub fn leak_ss(&self, k: usize) -> IqPoint {
        self.leak_ss[k]
    }

    /// Channels the snapshot was sized for.
    pub fn n_qubits(&self) -> usize {
        self.centroid_shift.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(plan: &FaultPlan, r: u64, n: usize) -> RoundFaults {
        let mut rf = RoundFaults::nominal(n);
        plan.resolve_into(r, &mut rf);
        rf
    }

    #[test]
    fn empty_plan_is_inactive_every_round() {
        let plan = FaultPlan::none();
        for r in [0, 1, 10, u64::MAX] {
            assert!(!resolve(&plan, r, 3).is_active());
        }
        assert!(plan.is_empty());
        assert_eq!(plan.first_onset(), None);
    }

    #[test]
    fn centroid_ramp_hits_schedule_edges() {
        let plan = FaultPlan::new(vec![DriftEvent::CentroidDrift {
            qubit: 1,
            start_round: 10,
            end_round: 14,
            delta: IqPoint::new(4.0, -8.0),
        }]);
        // Before onset: nominal.
        assert!(!resolve(&plan, 9, 2).is_active());
        // First ramp round: 1/4 strength.
        let rf = resolve(&plan, 10, 2);
        assert!(rf.is_active());
        assert_eq!(rf.centroid_shift(1), IqPoint::new(1.0, -2.0));
        assert_eq!(rf.centroid_shift(0), IqPoint::ZERO);
        // Last ramp round reaches exactly full strength…
        assert_eq!(
            resolve(&plan, 13, 2).centroid_shift(1),
            IqPoint::new(4.0, -8.0)
        );
        // …and holds from end_round on.
        assert_eq!(
            resolve(&plan, 14, 2).centroid_shift(1),
            IqPoint::new(4.0, -8.0)
        );
        assert_eq!(
            resolve(&plan, 1000, 2).centroid_shift(1),
            IqPoint::new(4.0, -8.0)
        );
    }

    #[test]
    fn zero_length_ramp_is_a_step() {
        let plan = FaultPlan::new(vec![DriftEvent::SigmaScale {
            start_round: 5,
            end_round: 5,
            factor: 2.0,
        }]);
        assert_eq!(resolve(&plan, 4, 1).sigma_scale(), 1.0);
        assert_eq!(resolve(&plan, 5, 1).sigma_scale(), 2.0);
        assert_eq!(resolve(&plan, 6, 1).sigma_scale(), 2.0);
    }

    #[test]
    fn sigma_ramp_interpolates_the_factor() {
        let plan = FaultPlan::new(vec![DriftEvent::SigmaScale {
            start_round: 0,
            end_round: 2,
            factor: 3.0,
        }]);
        // Round 0: half-way up the ramp → 1 + (3−1)·0.5 = 2.
        assert_eq!(resolve(&plan, 0, 1).sigma_scale(), 2.0);
        assert_eq!(resolve(&plan, 1, 1).sigma_scale(), 3.0);
        assert_eq!(resolve(&plan, 7, 1).sigma_scale(), 3.0);
    }

    #[test]
    fn leakage_ramps_and_saturates() {
        let plan = FaultPlan::new(vec![
            DriftEvent::Leakage {
                qubit: 0,
                start_round: 0,
                end_round: 1,
                prob: 0.8,
                leak_ss: IqPoint::new(9.0, 9.0),
            },
            DriftEvent::Leakage {
                qubit: 0,
                start_round: 0,
                end_round: 1,
                prob: 0.8,
                leak_ss: IqPoint::new(9.0, 9.0),
            },
        ]);
        let rf = resolve(&plan, 3, 1);
        // Two 0.8 events saturate-add to 1.0, never beyond.
        assert_eq!(rf.leak_prob(0), 1.0);
        assert_eq!(rf.leak_ss(0), IqPoint::new(9.0, 9.0));
    }

    #[test]
    fn crosstalk_burst_is_transient_and_zero_length_never_fires() {
        let burst = FaultPlan::new(vec![DriftEvent::CrosstalkBurst {
            start_round: 3,
            end_round: 6,
            gain: 5.0,
        }]);
        assert_eq!(resolve(&burst, 2, 1).crosstalk_gain(), 1.0);
        assert_eq!(resolve(&burst, 3, 1).crosstalk_gain(), 5.0);
        assert_eq!(resolve(&burst, 5, 1).crosstalk_gain(), 5.0);
        // Transient: gone at end_round, unlike the ramp-and-hold kinds.
        assert_eq!(resolve(&burst, 6, 1).crosstalk_gain(), 1.0);

        let empty = FaultPlan::new(vec![DriftEvent::CrosstalkBurst {
            start_round: 3,
            end_round: 3,
            gain: 5.0,
        }]);
        for r in 0..10 {
            assert!(!resolve(&empty, r, 1).is_active(), "round {r}");
        }
    }

    #[test]
    fn events_compose_additively_and_multiplicatively() {
        let plan = FaultPlan::new(vec![
            DriftEvent::CentroidDrift {
                qubit: 0,
                start_round: 0,
                end_round: 0,
                delta: IqPoint::new(1.0, 0.0),
            },
            DriftEvent::CentroidDrift {
                qubit: 0,
                start_round: 0,
                end_round: 0,
                delta: IqPoint::new(0.0, 2.0),
            },
            DriftEvent::SigmaScale {
                start_round: 0,
                end_round: 0,
                factor: 2.0,
            },
            DriftEvent::SigmaScale {
                start_round: 0,
                end_round: 0,
                factor: 3.0,
            },
        ]);
        let rf = resolve(&plan, 0, 1);
        assert_eq!(rf.centroid_shift(0), IqPoint::new(1.0, 2.0));
        assert_eq!(rf.sigma_scale(), 6.0);
    }

    #[test]
    fn validate_rejects_out_of_range_channels() {
        let plan = FaultPlan::new(vec![DriftEvent::Leakage {
            qubit: 5,
            start_round: 0,
            end_round: 1,
            prob: 0.1,
            leak_ss: IqPoint::ZERO,
        }]);
        assert!(plan.validate(6).is_ok());
        assert!(plan.validate(5).unwrap_err().contains("channel 5"));
    }

    #[test]
    fn first_onset_is_the_earliest_event() {
        let plan = FaultPlan::new(vec![
            DriftEvent::SigmaScale {
                start_round: 40,
                end_round: 50,
                factor: 2.0,
            },
            DriftEvent::CrosstalkBurst {
                start_round: 12,
                end_round: 20,
                gain: 2.0,
            },
        ]);
        assert_eq!(plan.first_onset(), Some(12));
    }
}
