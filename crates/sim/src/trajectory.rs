//! Noiseless baseband trajectory of a readout resonator.
//!
//! The resonator field follows first-order (κ-limited) dynamics toward a
//! qubit-state-dependent steady-state point:
//!
//! ```text
//! s(t) = target + (s(t₀) − target) · exp(−(t − t₀)/τ)
//! ```
//!
//! where `target` switches between the ground and excited steady-state points
//! whenever the qubit's [`StatePath`] transitions. The field starts at the
//! origin (no drive before the window), producing the ring-up arcs of the
//! paper's Fig. 3(a); a mid-window relaxation produces the characteristic
//! excited-then-decaying traces of Fig. 8(b) that the relaxation matched
//! filter detects.

use crate::config::QubitParams;
use crate::events::StatePath;
use crate::trace::IqPoint;

/// Evaluates the noiseless baseband field of one qubit at the given sample
/// times, returning one [`IqPoint`] per time.
///
/// `times_s` must be non-decreasing (checked in debug builds only).
pub fn baseband(params: &QubitParams, path: &StatePath, times_s: &[f64]) -> Vec<IqPoint> {
    let mut out = Vec::new();
    baseband_into(params, path, times_s, &mut out);
    out
}

/// Allocation-free variant of [`baseband`]: clears `out` and refills it with
/// one point per sample time, reusing the existing capacity. [`baseband`] is
/// implemented on top of this function, so both produce identical values.
pub fn baseband_into(
    params: &QubitParams,
    path: &StatePath,
    times_s: &[f64],
    out: &mut Vec<IqPoint>,
) {
    out.clear();
    out.reserve(times_s.len());
    // Piecewise-exponential evolution; state changes at most once per window.
    let mut s = IqPoint::ZERO;
    let mut t_prev = 0.0;
    let transition = match *path {
        StatePath::Relaxation { time_s } | StatePath::Excitation { time_s } => Some(time_s),
        _ => None,
    };
    for &t in times_s {
        debug_assert!(t >= t_prev, "sample times must be non-decreasing");
        // If the transition falls inside (t_prev, t], advance to the
        // transition point first so the exponential restarts from there.
        if let Some(tt) = transition {
            if t_prev < tt && tt <= t {
                s = step(params, path, s, t_prev, tt);
                t_prev = tt;
            }
        }
        s = step(params, path, s, t_prev, t);
        t_prev = t;
        out.push(s);
    }
}

/// Normalized excitation measure of a baseband point: the projection of the
/// displacement from the ground steady state onto the separation axis,
/// in units of the full separation (≈0 when ground, ≈1 when excited).
///
/// Used by the crosstalk model to scale aggressor contributions.
pub fn excitation_measure(params: &QubitParams, s: IqPoint) -> f64 {
    let d = params.separation();
    if d == 0.0 {
        return 0.0;
    }
    let dir = params.separation_dir();
    let rel = s - params.ground_ss;
    (rel.i * dir.i + rel.q * dir.q) / d
}

fn step(params: &QubitParams, path: &StatePath, s: IqPoint, t0: f64, t1: f64) -> IqPoint {
    if t1 <= t0 {
        return s;
    }
    // Target during (t0, t1]: determined by the state just after t0 (the
    // caller splits intervals at the transition time).
    let excited = path.excited_at(t0 + 0.5 * (t1 - t0));
    let target = if excited {
        params.excited_ss
    } else {
        params.ground_ss
    };
    let decay = (-(t1 - t0) / params.ringup_tau_s).exp();
    target + (s - target) * decay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;

    fn q(k: usize) -> QubitParams {
        ChipConfig::five_qubit_default().qubits[k].clone()
    }

    fn uniform_times(n: usize, dt: f64) -> Vec<f64> {
        (1..=n).map(|k| k as f64 * dt).collect()
    }

    #[test]
    fn ground_trace_rings_up_to_ground_point() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let tr = baseband(&params, &StatePath::Ground, &times);
        let last = *tr.last().unwrap();
        // 1 µs ≫ τ = 140 ns → essentially settled.
        assert!(last.distance(params.ground_ss) < 1e-3 * params.ground_ss.norm().max(1.0));
    }

    #[test]
    fn excited_trace_rings_up_to_excited_point() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let tr = baseband(&params, &StatePath::Excited, &times);
        assert!(tr.last().unwrap().distance(params.excited_ss) < 1e-3);
    }

    #[test]
    fn ringup_is_monotone_toward_target() {
        let params = q(0);
        let times = uniform_times(100, 2e-9);
        let tr = baseband(&params, &StatePath::Ground, &times);
        let mut prev = IqPoint::ZERO.distance(params.ground_ss);
        for p in tr {
            let d = p.distance(params.ground_ss);
            assert!(d <= prev + 1e-12, "distance to target must shrink");
            prev = d;
        }
    }

    #[test]
    fn relaxation_trace_ends_at_ground() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let path = StatePath::Relaxation { time_s: 0.3e-6 };
        let tr = baseband(&params, &path, &times);
        // 0.7 µs of ring-down at τ = 140 ns leaves exp(-5) ≈ 0.7 % of the
        // separation.
        assert!(tr.last().unwrap().distance(params.ground_ss) < 0.02);
        // At 0.29 µs (τ-settled from t=0) the trace must be near the excited
        // point.
        let idx = (0.29e-6 / 2e-9) as usize;
        assert!(tr[idx].distance(params.excited_ss) < 0.2 * params.separation() + 0.05);
    }

    #[test]
    fn relaxation_trace_differs_from_both_pure_traces() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let relax = baseband(&params, &StatePath::Relaxation { time_s: 0.5e-6 }, &times);
        let ground = baseband(&params, &StatePath::Ground, &times);
        let excited = baseband(&params, &StatePath::Excited, &times);
        let dist = |a: &[IqPoint], b: &[IqPoint]| -> f64 {
            a.iter().zip(b).map(|(x, y)| x.distance(*y)).sum::<f64>()
        };
        assert!(dist(&relax, &ground) > 1.0);
        assert!(dist(&relax, &excited) > 1.0);
    }

    #[test]
    fn transition_inside_a_coarse_step_is_honoured() {
        // Even with a single sample after the transition, the trace must land
        // between the two steady states, not at the excited point.
        let params = q(0);
        let path = StatePath::Relaxation { time_s: 0.5e-6 };
        let tr = baseband(&params, &path, &[1.0e-6]);
        let d_ground = tr[0].distance(params.ground_ss);
        let d_excited = tr[0].distance(params.excited_ss);
        assert!(
            d_ground < d_excited,
            "late sample should be closer to ground"
        );
    }

    #[test]
    fn excitation_measure_endpoints() {
        let params = q(2);
        assert!(excitation_measure(&params, params.ground_ss).abs() < 1e-12);
        assert!((excitation_measure(&params, params.excited_ss) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn excitation_measure_zero_separation_is_zero() {
        let mut params = q(0);
        params.excited_ss = params.ground_ss;
        assert_eq!(excitation_measure(&params, IqPoint::new(3.0, 4.0)), 0.0);
    }
}
