//! Noiseless baseband trajectory of a readout resonator.
//!
//! The resonator field follows first-order (κ-limited) dynamics toward a
//! qubit-state-dependent steady-state point:
//!
//! ```text
//! s(t) = target + (s(t₀) − target) · exp(−(t − t₀)/τ)
//! ```
//!
//! where `target` switches between the ground and excited steady-state points
//! whenever the qubit's [`StatePath`] transitions. The field starts at the
//! origin (no drive before the window), producing the ring-up arcs of the
//! paper's Fig. 3(a); a mid-window relaxation produces the characteristic
//! excited-then-decaying traces of Fig. 8(b) that the relaxation matched
//! filter detects.

use crate::config::QubitParams;
use crate::events::StatePath;
use crate::trace::IqPoint;

/// Evaluates the noiseless baseband field of one qubit at the given sample
/// times, returning one [`IqPoint`] per time.
///
/// `times_s` must be non-decreasing (checked in debug builds only).
pub fn baseband(params: &QubitParams, path: &StatePath, times_s: &[f64]) -> Vec<IqPoint> {
    let mut out = Vec::new();
    baseband_into(params, path, times_s, &mut out);
    out
}

/// Allocation-free variant of [`baseband`]: clears `out` and refills it with
/// one point per sample time, reusing the existing capacity. [`baseband`] is
/// implemented on top of this function, so both produce identical values.
pub fn baseband_into(
    params: &QubitParams,
    path: &StatePath,
    times_s: &[f64],
    out: &mut Vec<IqPoint>,
) {
    out.clear();
    out.reserve(times_s.len());
    // Piecewise-exponential evolution; state changes at most once per window.
    let mut s = IqPoint::ZERO;
    let mut t_prev = 0.0;
    let mut memo = ExpMemo::new();
    let transition = match *path {
        StatePath::Relaxation { time_s } | StatePath::Excitation { time_s } => Some(time_s),
        _ => None,
    };
    for &t in times_s {
        debug_assert!(t >= t_prev, "sample times must be non-decreasing");
        // If the transition falls inside (t_prev, t], advance to the
        // transition point first so the exponential restarts from there.
        if let Some(tt) = transition {
            if t_prev < tt && tt <= t {
                s = step(params, path, s, t_prev, tt, &mut memo);
                t_prev = tt;
            }
        }
        s = step(params, path, s, t_prev, t, &mut memo);
        t_prev = t;
        out.push(s);
    }
}

/// Precomputed ring-up geometry of one qubit on a fixed uniform sample
/// clock, enabling closed-form baseband evaluation.
///
/// The sequential recurrence in [`baseband_into`] chains every sample
/// through the previous one (`s ← target + (s − target)·d`), which caps the
/// hot loop at the latency of one fused multiply-add per sample. On a
/// uniform clock the recurrence has a closed form: with `d = exp(−Δt/τ)`
/// and `v₀ = (s₀ − target)·exp(−t₀/τ)`,
///
/// ```text
/// s(tₖ) = target + v₀ · dᵏ
/// ```
///
/// so a whole segment becomes one independent (vectorizable) pass over a
/// precomputed `dᵏ` table. [`baseband_into_cached`] uses this table on the
/// SIMD kernel arms and falls back to the sequential reference whenever the
/// clock is not uniform, the table does not match, or the scalar backend is
/// dispatched (keeping the scalar arm bit-identical to history).
#[derive(Debug, Clone)]
pub struct RingupTable {
    /// `dᵏ` for `k ∈ 0..n` where `d = exp(−Δt/τ)`.
    dp: Vec<f64>,
    /// `exp(−t₀/τ)`: the decay of the (possibly fractional) first step from
    /// the window origin to the first sample.
    d0: f64,
    /// First sample time, for cheap table/clock agreement checks.
    t0: f64,
    /// Ring-up time constant the table was built for.
    tau: f64,
    /// Clock uniformity verified at construction; `false` always falls back.
    uniform: bool,
}

impl RingupTable {
    /// Builds the `dᵏ` table for `params`' ring-up constant on `times_s`.
    ///
    /// The clock is accepted as uniform when every step agrees with the
    /// first to within a 10⁻⁹ relative tolerance — sample clocks here are
    /// `k·Δt` sums whose floating-point jitter is a few ulps, while a
    /// genuinely non-uniform clock misses by orders of magnitude more.
    pub fn new(params: &QubitParams, times_s: &[f64]) -> Self {
        let tau = params.ringup_tau_s;
        let n = times_s.len();
        let mut table = RingupTable {
            dp: Vec::new(),
            d0: 1.0,
            t0: 0.0,
            tau,
            uniform: false,
        };
        // `>` guards (rather than `<=`) so NaN parameters also fall back.
        let usable = n > 0 && tau > 0.0 && times_s[0] > 0.0;
        if !usable {
            return table;
        }
        let dt = if n >= 2 {
            times_s[1] - times_s[0]
        } else {
            times_s[0]
        };
        let uniform_clock = dt > 0.0
            && times_s
                .windows(2)
                .all(|w| ((w[1] - w[0]) - dt).abs() <= 1e-9 * dt);
        if !uniform_clock {
            return table;
        }
        let d = (-dt / tau).exp();
        table.dp.reserve_exact(n);
        let mut acc = 1.0;
        for _ in 0..n {
            table.dp.push(acc);
            acc *= d;
        }
        table.d0 = (-times_s[0] / tau).exp();
        table.t0 = times_s[0];
        table.uniform = true;
        table
    }

    /// Whether this table was built for exactly this clock (and verified
    /// uniform).
    #[inline]
    fn matches(&self, times_s: &[f64]) -> bool {
        self.uniform
            && self.dp.len() == times_s.len()
            && times_s
                .first()
                .is_some_and(|&t| t.to_bits() == self.t0.to_bits())
    }
}

/// Closed-form variant of [`baseband_into`] driven by a [`RingupTable`]
/// built from the **same** `params` and `times_s`.
///
/// On the scalar kernel arm — or whenever the table does not match the
/// clock — this delegates to the sequential [`baseband_into`] reference, so
/// the scalar backend stays bit-identical to history. On the SIMD arms it
/// evaluates each constant-target segment as `target + v·dᵏ` over the
/// precomputed table (value-equal to the recurrence up to rounding, and
/// deterministic per backend); a mid-window transition splits the window at
/// the first sample past the transition with two exact scalar exponential
/// steps, exactly where the sequential loop splits it.
pub fn baseband_into_cached(
    params: &QubitParams,
    path: &StatePath,
    times_s: &[f64],
    table: &RingupTable,
    out: &mut Vec<IqPoint>,
) {
    if !table.matches(times_s) || herqles_num::active_kernel_name() == "scalar" {
        baseband_into(params, path, times_s, out);
        return;
    }
    out.clear();
    out.reserve(times_s.len());
    let n = times_s.len();
    // A transition at or before the window start never splits the sample
    // loop (the sequential loop's `t_prev < tt` guard): the whole window
    // rings toward the post-transition state.
    let split = match *path {
        StatePath::Relaxation { time_s } | StatePath::Excitation { time_s } if time_s > 0.0 => {
            Some(time_s)
        }
        _ => None,
    };
    match split {
        None => {
            // Constant target for the whole window: the state at any
            // positive probe time (paths without a positive-time transition
            // are time-independent there).
            let target = if path.excited_at(table.t0) {
                params.excited_ss
            } else {
                params.ground_ss
            };
            fill_geometric(target, (IqPoint::ZERO - target) * table.d0, &table.dp, out);
        }
        Some(tt) => {
            let (ta, tb) = match *path {
                StatePath::Relaxation { .. } => (params.excited_ss, params.ground_ss),
                StatePath::Excitation { .. } => (params.ground_ss, params.excited_ss),
                _ => unreachable!("split implies a transition path"),
            };
            // First sample at or after the transition: segment A covers
            // samples 0..ks ringing toward `ta`, segment B starts at `ks`.
            let ks = times_s.partition_point(|&t| t < tt);
            fill_geometric(
                ta,
                (IqPoint::ZERO - ta) * table.d0,
                &table.dp[..ks.min(n)],
                out,
            );
            if ks >= n {
                return;
            }
            let (s_prev, t_prev) = if ks == 0 {
                (IqPoint::ZERO, 0.0)
            } else {
                (out[ks - 1], times_s[ks - 1])
            };
            // Two exact scalar steps across the split — to the transition
            // under the old target, then to sample `ks` under the new one —
            // mirroring the sequential loop's interval split.
            let s_tt = ta + (s_prev - ta) * (-(tt - t_prev) / table.tau).exp();
            let s_ks = tb + (s_tt - tb) * (-(times_s[ks] - tt) / table.tau).exp();
            out.push(s_ks);
            fill_geometric(tb, s_ks - tb, &table.dp[1..n - ks], out);
        }
    }
}

/// Appends `target + v·dp[j]` for each table entry: one ring-up segment in
/// closed form. Independent iterations — the compiler vectorizes this where
/// the sequential recurrence could not be.
#[inline]
fn fill_geometric(target: IqPoint, v: IqPoint, dp: &[f64], out: &mut Vec<IqPoint>) {
    for &p in dp {
        out.push(target + v * p);
    }
}

/// Single-entry `exp` memo keyed on the exact bit pattern of the argument.
///
/// Sample clocks are uniform, so outside the one transition split every
/// [`step`] of a trace evaluates `exp` at the *same* `-dt/τ` — and `exp` of
/// identical input bits is identical output bits, so memoizing is
/// value-preserving while removing ~99 % of the hot path's libm calls.
struct ExpMemo {
    key: u64,
    val: f64,
}

impl ExpMemo {
    fn new() -> Self {
        // u64::MAX is a NaN pattern; dt/τ arguments are always finite, so
        // the first lookup can never spuriously hit.
        ExpMemo {
            key: u64::MAX,
            val: 0.0,
        }
    }

    #[inline]
    fn exp(&mut self, x: f64) -> f64 {
        let key = x.to_bits();
        if key != self.key {
            self.key = key;
            self.val = x.exp();
        }
        self.val
    }
}

/// Normalized excitation measure of a baseband point: the projection of the
/// displacement from the ground steady state onto the separation axis,
/// in units of the full separation (≈0 when ground, ≈1 when excited).
///
/// Used by the crosstalk model to scale aggressor contributions.
pub fn excitation_measure(params: &QubitParams, s: IqPoint) -> f64 {
    ExcitationProbe::new(params).measure(s)
}

/// Precomputed excitation-measure geometry of one qubit.
///
/// [`excitation_measure`] recomputes the separation distance and axis (two
/// square roots) on every call; a probe evaluates them once at construction
/// so the per-sample measure is a projection and a divide. The measured
/// values are identical — [`excitation_measure`] is implemented on top of
/// this type — which keeps the crosstalk physics bit-for-bit stable when
/// the streaming synthesizer switches to cached probes.
#[derive(Debug, Clone)]
pub struct ExcitationProbe {
    separation: f64,
    dir: IqPoint,
    ground_ss: IqPoint,
}

impl ExcitationProbe {
    /// Captures `params`' separation geometry.
    pub fn new(params: &QubitParams) -> Self {
        ExcitationProbe {
            separation: params.separation(),
            dir: params.separation_dir(),
            ground_ss: params.ground_ss,
        }
    }

    /// Normalized excitation of baseband point `s`; see
    /// [`excitation_measure`].
    #[inline]
    pub fn measure(&self, s: IqPoint) -> f64 {
        if self.separation == 0.0 {
            return 0.0;
        }
        let rel = s - self.ground_ss;
        (rel.i * self.dir.i + rel.q * self.dir.q) / self.separation
    }
}

fn step(
    params: &QubitParams,
    path: &StatePath,
    s: IqPoint,
    t0: f64,
    t1: f64,
    memo: &mut ExpMemo,
) -> IqPoint {
    if t1 <= t0 {
        return s;
    }
    // Target during (t0, t1]: determined by the state just after t0 (the
    // caller splits intervals at the transition time).
    let excited = path.excited_at(t0 + 0.5 * (t1 - t0));
    let target = if excited {
        params.excited_ss
    } else {
        params.ground_ss
    };
    let decay = memo.exp(-(t1 - t0) / params.ringup_tau_s);
    target + (s - target) * decay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;

    fn q(k: usize) -> QubitParams {
        ChipConfig::five_qubit_default().qubits[k].clone()
    }

    fn uniform_times(n: usize, dt: f64) -> Vec<f64> {
        (1..=n).map(|k| k as f64 * dt).collect()
    }

    #[test]
    fn ground_trace_rings_up_to_ground_point() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let tr = baseband(&params, &StatePath::Ground, &times);
        let last = *tr.last().unwrap();
        // 1 µs ≫ τ = 140 ns → essentially settled.
        assert!(last.distance(params.ground_ss) < 1e-3 * params.ground_ss.norm().max(1.0));
    }

    #[test]
    fn excited_trace_rings_up_to_excited_point() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let tr = baseband(&params, &StatePath::Excited, &times);
        assert!(tr.last().unwrap().distance(params.excited_ss) < 1e-3);
    }

    #[test]
    fn ringup_is_monotone_toward_target() {
        let params = q(0);
        let times = uniform_times(100, 2e-9);
        let tr = baseband(&params, &StatePath::Ground, &times);
        let mut prev = IqPoint::ZERO.distance(params.ground_ss);
        for p in tr {
            let d = p.distance(params.ground_ss);
            assert!(d <= prev + 1e-12, "distance to target must shrink");
            prev = d;
        }
    }

    #[test]
    fn relaxation_trace_ends_at_ground() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let path = StatePath::Relaxation { time_s: 0.3e-6 };
        let tr = baseband(&params, &path, &times);
        // 0.7 µs of ring-down at τ = 140 ns leaves exp(-5) ≈ 0.7 % of the
        // separation.
        assert!(tr.last().unwrap().distance(params.ground_ss) < 0.02);
        // At 0.29 µs (τ-settled from t=0) the trace must be near the excited
        // point.
        let idx = (0.29e-6 / 2e-9) as usize;
        assert!(tr[idx].distance(params.excited_ss) < 0.2 * params.separation() + 0.05);
    }

    #[test]
    fn relaxation_trace_differs_from_both_pure_traces() {
        let params = q(0);
        let times = uniform_times(500, 2e-9);
        let relax = baseband(&params, &StatePath::Relaxation { time_s: 0.5e-6 }, &times);
        let ground = baseband(&params, &StatePath::Ground, &times);
        let excited = baseband(&params, &StatePath::Excited, &times);
        let dist = |a: &[IqPoint], b: &[IqPoint]| -> f64 {
            a.iter().zip(b).map(|(x, y)| x.distance(*y)).sum::<f64>()
        };
        assert!(dist(&relax, &ground) > 1.0);
        assert!(dist(&relax, &excited) > 1.0);
    }

    #[test]
    fn transition_inside_a_coarse_step_is_honoured() {
        // Even with a single sample after the transition, the trace must land
        // between the two steady states, not at the excited point.
        let params = q(0);
        let path = StatePath::Relaxation { time_s: 0.5e-6 };
        let tr = baseband(&params, &path, &[1.0e-6]);
        let d_ground = tr[0].distance(params.ground_ss);
        let d_excited = tr[0].distance(params.excited_ss);
        assert!(
            d_ground < d_excited,
            "late sample should be closer to ground"
        );
    }

    #[test]
    fn excitation_measure_endpoints() {
        let params = q(2);
        assert!(excitation_measure(&params, params.ground_ss).abs() < 1e-12);
        assert!((excitation_measure(&params, params.excited_ss) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probe_matches_excitation_measure_bitwise() {
        let cfg = ChipConfig::five_qubit_default();
        let times = uniform_times(64, 2e-9);
        for params in &cfg.qubits {
            let probe = ExcitationProbe::new(params);
            let tr = baseband(params, &StatePath::Relaxation { time_s: 0.3e-6 }, &times);
            for &s in &tr {
                assert_eq!(
                    probe.measure(s).to_bits(),
                    excitation_measure(params, s).to_bits()
                );
            }
        }
    }

    #[test]
    fn cached_baseband_matches_sequential() {
        let times = uniform_times(500, 2e-9);
        let paths = [
            StatePath::Ground,
            StatePath::Excited,
            // Transition at the window start: no split, pure final state.
            StatePath::Relaxation { time_s: 0.0 },
            StatePath::Excitation { time_s: 0.0 },
            // Mid-window transitions, on and off the sample grid.
            StatePath::Relaxation { time_s: 0.3e-6 },
            StatePath::Excitation { time_s: 0.4567e-6 },
            StatePath::Relaxation { time_s: 2e-9 },
            StatePath::Excitation { time_s: 1e-9 },
            // Transition past the window end: segment B never starts.
            StatePath::Relaxation { time_s: 5e-6 },
        ];
        let scalar_arm = herqles_num::active_kernel_name() == "scalar";
        for params in &ChipConfig::five_qubit_default().qubits {
            let table = RingupTable::new(params, &times);
            for path in &paths {
                let reference = baseband(params, path, &times);
                let mut cached = Vec::new();
                baseband_into_cached(params, path, &times, &table, &mut cached);
                assert_eq!(cached.len(), reference.len());
                for (k, (c, r)) in cached.iter().zip(&reference).enumerate() {
                    if scalar_arm {
                        // The scalar arm must fall back to the sequential
                        // reference bit for bit.
                        assert_eq!(c.i.to_bits(), r.i.to_bits(), "{path:?} sample {k}");
                        assert_eq!(c.q.to_bits(), r.q.to_bits(), "{path:?} sample {k}");
                    } else {
                        assert!(
                            c.distance(*r) <= 1e-9 * (1.0 + r.norm()),
                            "{path:?} sample {k}: {c:?} vs {r:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cached_baseband_falls_back_bitwise_on_nonuniform_clock() {
        let params = q(0);
        let mut times = uniform_times(64, 2e-9);
        times[30] += 0.5e-9; // genuinely non-uniform step
        let table = RingupTable::new(&params, &times);
        let path = StatePath::Relaxation { time_s: 0.05e-6 };
        let reference = baseband(&params, &path, &times);
        let mut cached = Vec::new();
        baseband_into_cached(&params, &path, &times, &table, &mut cached);
        assert_eq!(cached.len(), reference.len());
        for (c, r) in cached.iter().zip(&reference) {
            assert_eq!(c.i.to_bits(), r.i.to_bits());
            assert_eq!(c.q.to_bits(), r.q.to_bits());
        }
    }

    #[test]
    fn ringup_table_rejects_mismatched_clock() {
        let params = q(0);
        let times = uniform_times(64, 2e-9);
        let table = RingupTable::new(&params, &times);
        // A different clock must not be accepted by a stale table.
        let other = uniform_times(64, 4e-9);
        let reference = baseband(&params, &StatePath::Excited, &other);
        let mut cached = Vec::new();
        baseband_into_cached(&params, &StatePath::Excited, &other, &table, &mut cached);
        for (c, r) in cached.iter().zip(&reference) {
            assert_eq!(c.i.to_bits(), r.i.to_bits());
            assert_eq!(c.q.to_bits(), r.q.to_bits());
        }
    }

    #[test]
    fn excitation_measure_zero_separation_is_zero() {
        let mut params = q(0);
        params.excited_ss = params.ground_ss;
        assert_eq!(excitation_measure(&params, IqPoint::new(3.0, 4.0)), 0.0);
    }
}
