//! Physics-level simulator of dispersive superconducting-qubit readout.
//!
//! This crate is the dataset substrate for the HERQULES reproduction: it
//! replaces the proprietary five-qubit chip measurements used by the paper
//! (Lienhard et al.'s trace dataset) with synthetically generated readout
//! traces that exhibit the same statistical structure the discriminators
//! exploit:
//!
//! * **Dispersive IQ separation** — each qubit's readout resonator rings up to
//!   a qubit-state-dependent steady-state point in the IQ plane
//!   ([`trajectory`]).
//! * **Relaxation / excitation events** — excited qubits decay with an
//!   exponentially distributed lifetime *during* the readout window, producing
//!   time-structured traces that start on the excited trajectory and decay to
//!   the ground one ([`events`]).
//! * **Readout crosstalk** — the state of neighbouring frequency-multiplexed
//!   qubits shifts a qubit's steady-state point ([`crosstalk`]).
//! * **Frequency multiplexing** — all five resonator signals share one feedline;
//!   the ADC digitizes the summed intermediate-frequency waveform
//!   ([`multiplex`]).
//! * **Additive Gaussian noise** — amplifier-chain noise on both ADC channels
//!   ([`noise`]).
//!
//! The top-level entry point is [`Dataset::generate`], which produces labeled
//! shots for every basis state of the configured chip, mirroring the paper's
//! calibration dataset (50 000 traces per basis state; scaled down by default).
//!
//! # Example
//!
//! ```
//! use readout_sim::{ChipConfig, Dataset};
//!
//! let config = ChipConfig::five_qubit_default();
//! let dataset = Dataset::generate(&config, 4, 1234);
//! assert_eq!(dataset.shots.len(), 4 * 32); // 2^5 basis states
//! ```

pub mod batch;
pub mod config;
pub mod crosstalk;
pub mod dataset;
pub mod drift;
pub mod events;
pub mod multiplex;
pub mod noise;
pub mod trace;
pub mod trajectory;

pub use batch::ShotBatch;
pub use config::{ChipConfig, QubitParams};
pub use crosstalk::{CrosstalkError, CrosstalkModel};
pub use dataset::{Dataset, DatasetSplit, Shot, ShotTruth};
pub use drift::{DriftEvent, FaultPlan, RoundFaults};
pub use herqles_num::Real;
pub use noise::GaussianNoise;
pub use trace::{BasisState, IqPoint, IqTrace};
