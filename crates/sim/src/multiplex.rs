//! Frequency-multiplexed waveform synthesis.
//!
//! All qubits on a feedline are read out through the same physical channel:
//! each qubit's baseband signal `s_q(t)` rides on its own intermediate
//! frequency `ω_q`, and the ADC digitizes the quadrature-sampled sum
//!
//! ```text
//! S(t) = Σ_q s_q(t) · e^{i ω_q t},    I(t) = Re S(t),   Q(t) = Im S(t).
//! ```
//!
//! The carrier phasors are precomputed once per configuration in a
//! [`CarrierTable`]; the same table is reused by the demodulator in
//! `readout-dsp`, guaranteeing synthesis and demodulation agree on phases.

use herqles_num::Real;
use rand::Rng;

use crate::config::ChipConfig;
use crate::noise::GaussianNoise;
use crate::trace::{IqPoint, IqTrace};

/// Precomputed carrier phasors `e^{i ω_q t}` for every qubit and raw sample.
#[derive(Debug, Clone)]
pub struct CarrierTable {
    /// `phasors[qubit][sample] = (cos ω_q t, sin ω_q t)`.
    phasors: Vec<Vec<(f64, f64)>>,
}

impl CarrierTable {
    /// Builds the table for a chip configuration.
    pub fn new(config: &ChipConfig) -> Self {
        let n_samples = config.n_samples();
        let phasors = config
            .qubits
            .iter()
            .map(|q| {
                (0..n_samples)
                    .map(|t| {
                        let phase =
                            2.0 * std::f64::consts::PI * q.if_freq_hz * config.sample_time(t);
                        let (s, c) = phase.sin_cos();
                        (c, s)
                    })
                    .collect()
            })
            .collect();
        CarrierTable { phasors }
    }

    /// The phasor of `qubit` at raw sample `t` as `(cos, sin)`.
    pub fn phasor(&self, qubit: usize, t: usize) -> (f64, f64) {
        self.phasors[qubit][t]
    }

    /// Number of qubits covered by the table.
    pub fn n_qubits(&self) -> usize {
        self.phasors.len()
    }

    /// Number of raw samples covered by the table.
    pub fn n_samples(&self) -> usize {
        self.phasors.first().map_or(0, Vec::len)
    }
}

/// Synthesizes the raw ADC trace from per-qubit baseband signals, adding
/// white Gaussian noise of deviation `noise.sigma()` to each channel sample.
///
/// `basebands[q][t]` is qubit `q`'s (crosstalk-shifted) baseband field at raw
/// sample `t`.
///
/// # Panics
///
/// Panics if the baseband dimensions do not match the carrier table.
pub fn synthesize<R: Rng + ?Sized>(
    carriers: &CarrierTable,
    basebands: &[Vec<IqPoint>],
    noise: &mut GaussianNoise,
    rng: &mut R,
) -> IqTrace {
    let n = carriers.n_samples();
    let mut i_ch = vec![0.0; n];
    let mut q_ch = vec![0.0; n];
    synthesize_into(carriers, basebands, noise, rng, &mut i_ch, &mut q_ch);
    IqTrace::new(i_ch, q_ch)
}

/// Allocation-free variant of [`synthesize`]: writes the summed waveform into
/// caller-owned channel slices (e.g. a [`crate::ShotBatch`] row obtained from
/// [`crate::ShotBatch::push_empty_row`]).
///
/// Generic over the output precision `R` ([`Real`]): the per-sample carrier
/// mixing, channel accumulation and amplifier-noise draws all run in `R`, so
/// an `f32` batch row is synthesized at `f32` arithmetic width end to end.
/// At `R = f64` every conversion is the identity and the accumulation and
/// RNG draw order are identical to [`synthesize`] (which is implemented on
/// top of this function), so materializing and streaming synthesis are
/// bit-identical for the same RNG state.
///
/// # Panics
///
/// Panics if the baseband dimensions or output slice lengths do not match the
/// carrier table.
pub fn synthesize_into<R: Real, G: Rng + ?Sized>(
    carriers: &CarrierTable,
    basebands: &[Vec<IqPoint>],
    noise: &mut GaussianNoise<R>,
    rng: &mut G,
    i_out: &mut [R],
    q_out: &mut [R],
) {
    assert_eq!(
        basebands.len(),
        carriers.n_qubits(),
        "one baseband per qubit required"
    );
    let n = carriers.n_samples();
    assert_eq!(i_out.len(), n, "I output length must match carrier table");
    assert_eq!(q_out.len(), n, "Q output length must match carrier table");
    i_out.fill(R::ZERO);
    q_out.fill(R::ZERO);
    for (q, bb) in basebands.iter().enumerate() {
        assert_eq!(bb.len(), n, "baseband length must match carrier table");
        for (t, s) in bb.iter().enumerate() {
            let (c, sn) = carriers.phasor(q, t);
            let (si, sq) = (R::from_f64(s.i), R::from_f64(s.q));
            let (c, sn) = (R::from_f64(c), R::from_f64(sn));
            // (s.i + i s.q) · (c + i sn)
            i_out[t] += si * c - sq * sn;
            q_out[t] += si * sn + sq * c;
        }
    }
    for t in 0..n {
        i_out[t] += noise.sample(rng);
        q_out[t] += noise.sample(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn carrier_table_has_unit_phasors() {
        let cfg = ChipConfig::five_qubit_default();
        let table = CarrierTable::new(&cfg);
        assert_eq!(table.n_qubits(), 5);
        assert_eq!(table.n_samples(), 500);
        for q in 0..5 {
            for t in (0..500).step_by(37) {
                let (c, s) = table.phasor(q, t);
                assert!((c * c + s * s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn carriers_complete_integer_cycles_per_bin() {
        // IFs are multiples of 20 MHz = 1 / 50 ns, so the phasor at the start
        // of every bin equals the phasor at t = 0.
        let cfg = ChipConfig::five_qubit_default();
        let table = CarrierTable::new(&cfg);
        let spb = cfg.samples_per_bin();
        for q in 0..5 {
            let (c0, s0) = table.phasor(q, 0);
            for bin in 1..cfg.n_bins() {
                let (c, s) = table.phasor(q, bin * spb);
                assert!((c - c0).abs() < 1e-9 && (s - s0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn synthesis_of_single_constant_tone() {
        // A single qubit with constant baseband (1, 0) must synthesize exactly
        // its carrier.
        let mut cfg = ChipConfig::five_qubit_default();
        cfg.qubits.truncate(1);
        let table = CarrierTable::new(&cfg);
        let bb = vec![vec![IqPoint::new(1.0, 0.0); cfg.n_samples()]];
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let raw = synthesize(&table, &bb, &mut noise, &mut rng);
        for t in 0..cfg.n_samples() {
            let (c, s) = table.phasor(0, t);
            assert!((raw.i()[t] - c).abs() < 1e-12);
            assert!((raw.q()[t] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn synthesis_is_additive_across_qubits() {
        let cfg = {
            let mut c = ChipConfig::five_qubit_default();
            c.qubits.truncate(2);
            c
        };
        let table = CarrierTable::new(&cfg);
        let n = cfg.n_samples();
        let bb0 = vec![vec![IqPoint::new(0.7, -0.2); n], vec![IqPoint::ZERO; n]];
        let bb1 = vec![vec![IqPoint::ZERO; n], vec![IqPoint::new(-0.1, 0.9); n]];
        let bb_both = vec![bb0[0].clone(), bb1[1].clone()];
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let r0 = synthesize(&table, &bb0, &mut noise, &mut rng);
        let r1 = synthesize(&table, &bb1, &mut noise, &mut rng);
        let rb = synthesize(&table, &bb_both, &mut noise, &mut rng);
        for t in 0..n {
            assert!((rb.i()[t] - r0.i()[t] - r1.i()[t]).abs() < 1e-12);
            assert!((rb.q()[t] - r0.q()[t] - r1.q()[t]).abs() < 1e-12);
        }
    }

    #[test]
    fn synthesize_into_batch_row_matches_materializing_path() {
        let cfg = ChipConfig::two_qubit_test();
        let table = CarrierTable::new(&cfg);
        let n = cfg.n_samples();
        let bb = vec![
            vec![IqPoint::new(0.6, -0.4); n],
            vec![IqPoint::new(-0.2, 0.8); n],
        ];
        let mut noise = GaussianNoise::new(cfg.adc_noise_sigma);
        let mut rng = StdRng::seed_from_u64(77);
        let owned = synthesize(&table, &bb, &mut noise, &mut rng);

        let mut noise2 = GaussianNoise::new(cfg.adc_noise_sigma);
        let mut rng2 = StdRng::seed_from_u64(77);
        let mut batch = crate::ShotBatch::with_capacity(1, n);
        let (i_row, q_row) = batch.push_empty_row();
        synthesize_into(&table, &bb, &mut noise2, &mut rng2, i_row, q_row);
        assert_eq!(
            batch.i_of(0),
            owned.i(),
            "streaming I must be bit-identical"
        );
        assert_eq!(
            batch.q_of(0),
            owned.q(),
            "streaming Q must be bit-identical"
        );
    }

    #[test]
    #[should_panic(expected = "one baseband per qubit")]
    fn synthesis_rejects_wrong_qubit_count() {
        let cfg = ChipConfig::five_qubit_default();
        let table = CarrierTable::new(&cfg);
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = synthesize(&table, &[], &mut noise, &mut rng);
    }
}
