//! Frequency-multiplexed waveform synthesis.
//!
//! All qubits on a feedline are read out through the same physical channel:
//! each qubit's baseband signal `s_q(t)` rides on its own intermediate
//! frequency `ω_q`, and the ADC digitizes the quadrature-sampled sum
//!
//! ```text
//! S(t) = Σ_q s_q(t) · e^{i ω_q t},    I(t) = Re S(t),   Q(t) = Im S(t).
//! ```
//!
//! The carrier phasors are precomputed once per configuration in a
//! [`CarrierTable`]; the same table is reused by the demodulator in
//! `readout-dsp`, guaranteeing synthesis and demodulation agree on phases.

use herqles_num::Real;
use rand::Rng;

use crate::config::ChipConfig;
use crate::noise::GaussianNoise;
use crate::trace::{IqPoint, IqTrace};

/// Precomputed carrier phasors `e^{i ω_q t}` for every qubit and raw sample.
///
/// Besides the `f64` phasor pairs the demodulator reads, the table caches
/// flattened per-precision cosine/sine planes (`[qubit × sample]`, values
/// rounded through [`Real::from_f64`] exactly as the per-sample mix did) so
/// trace assembly can run as contiguous [`herqles_num::Kernel::mix_accum`]
/// passes instead of per-sample phasor lookups.
#[derive(Debug, Clone)]
pub struct CarrierTable {
    /// `phasors[qubit][sample] = (cos ω_q t, sin ω_q t)`.
    phasors: Vec<Vec<(f64, f64)>>,
    planes32: CarrierPlanes<f32>,
    planes64: CarrierPlanes<f64>,
}

/// Flattened `R`-typed modulation planes of one [`CarrierTable`].
#[derive(Debug, Clone)]
struct CarrierPlanes<R> {
    cos: Vec<R>,
    sin: Vec<R>,
    n_samples: usize,
}

impl<R: Real> CarrierPlanes<R> {
    fn build(phasors: &[Vec<(f64, f64)>]) -> Self {
        let n_samples = phasors.first().map_or(0, Vec::len);
        let mut cos = Vec::with_capacity(phasors.len() * n_samples);
        let mut sin = Vec::with_capacity(phasors.len() * n_samples);
        for row in phasors {
            cos.extend(row.iter().map(|&(c, _)| R::from_f64(c)));
            sin.extend(row.iter().map(|&(_, s)| R::from_f64(s)));
        }
        CarrierPlanes {
            cos,
            sin,
            n_samples,
        }
    }

    fn cos_of(&self, qubit: usize) -> &[R] {
        &self.cos[qubit * self.n_samples..(qubit + 1) * self.n_samples]
    }

    fn sin_of(&self, qubit: usize) -> &[R] {
        &self.sin[qubit * self.n_samples..(qubit + 1) * self.n_samples]
    }
}

impl CarrierTable {
    /// Builds the table for a chip configuration.
    pub fn new(config: &ChipConfig) -> Self {
        let n_samples = config.n_samples();
        let phasors: Vec<Vec<(f64, f64)>> = config
            .qubits
            .iter()
            .map(|q| {
                (0..n_samples)
                    .map(|t| {
                        let phase =
                            2.0 * std::f64::consts::PI * q.if_freq_hz * config.sample_time(t);
                        let (s, c) = phase.sin_cos();
                        (c, s)
                    })
                    .collect()
            })
            .collect();
        let planes32 = CarrierPlanes::build(&phasors);
        let planes64 = CarrierPlanes::build(&phasors);
        CarrierTable {
            phasors,
            planes32,
            planes64,
        }
    }

    /// The phasor of `qubit` at raw sample `t` as `(cos, sin)`.
    pub fn phasor(&self, qubit: usize, t: usize) -> (f64, f64) {
        self.phasors[qubit][t]
    }

    /// Number of qubits covered by the table.
    pub fn n_qubits(&self) -> usize {
        self.phasors.len()
    }

    /// Number of raw samples covered by the table.
    pub fn n_samples(&self) -> usize {
        self.phasors.first().map_or(0, Vec::len)
    }

    /// The cached `R`-typed planes ([`Real`] is sealed to `f32`/`f64`, so
    /// one of the two stored precisions always matches).
    fn planes<R: Real>(&self) -> &CarrierPlanes<R> {
        use std::any::Any;
        let p32: &dyn Any = &self.planes32;
        if let Some(p) = p32.downcast_ref::<CarrierPlanes<R>>() {
            return p;
        }
        let p64: &dyn Any = &self.planes64;
        p64.downcast_ref::<CarrierPlanes<R>>()
            .expect("Real is sealed to f32/f64")
    }
}

/// Synthesizes the raw ADC trace from per-qubit baseband signals, adding
/// white Gaussian noise of deviation `noise.sigma()` to each channel sample.
///
/// `basebands[q][t]` is qubit `q`'s (crosstalk-shifted) baseband field at raw
/// sample `t`.
///
/// # Panics
///
/// Panics if the baseband dimensions do not match the carrier table.
pub fn synthesize<R: Real, G: Rng + ?Sized>(
    carriers: &CarrierTable,
    basebands: &[Vec<IqPoint>],
    noise: &mut GaussianNoise<R>,
    rng: &mut G,
) -> IqTrace {
    let n = carriers.n_samples();
    let mut i_ch = vec![R::ZERO; n];
    let mut q_ch = vec![R::ZERO; n];
    synthesize_into(carriers, basebands, noise, rng, &mut i_ch, &mut q_ch);
    IqTrace::new(
        i_ch.iter().map(|x| x.to_f64()).collect(),
        q_ch.iter().map(|x| x.to_f64()).collect(),
    )
}

/// Reusable SoA staging buffers for [`synthesize_into_scratch`]: one
/// baseband's I and Q samples, converted to `R` once per qubit so the mix
/// runs as a contiguous kernel pass.
#[derive(Debug, Clone)]
pub struct SynthScratch<R: Real> {
    bi: Vec<R>,
    bq: Vec<R>,
}

impl<R: Real> SynthScratch<R> {
    /// Pre-sizes the staging buffers for `n_samples`-sample windows.
    pub fn new(n_samples: usize) -> Self {
        SynthScratch {
            bi: vec![R::ZERO; n_samples],
            bq: vec![R::ZERO; n_samples],
        }
    }

    fn resize(&mut self, n_samples: usize) {
        self.bi.resize(n_samples, R::ZERO);
        self.bq.resize(n_samples, R::ZERO);
    }
}

/// Buffer-writing variant of [`synthesize`]: writes the summed waveform into
/// caller-owned channel slices (e.g. a [`crate::ShotBatch`] row obtained from
/// [`crate::ShotBatch::push_empty_row`]), allocating a fresh [`SynthScratch`]
/// per call. Hot paths that own a scratch should call
/// [`synthesize_into_scratch`] directly — the values are identical.
///
/// # Panics
///
/// Panics if the baseband dimensions or output slice lengths do not match the
/// carrier table.
pub fn synthesize_into<R: Real, G: Rng + ?Sized>(
    carriers: &CarrierTable,
    basebands: &[Vec<IqPoint>],
    noise: &mut GaussianNoise<R>,
    rng: &mut G,
    i_out: &mut [R],
    q_out: &mut [R],
) {
    let mut scratch = SynthScratch::new(carriers.n_samples());
    synthesize_into_scratch(carriers, basebands, noise, rng, &mut scratch, i_out, q_out);
}

/// The allocation-free trace-assembly engine behind [`synthesize`] and
/// [`synthesize_into`].
///
/// Generic over the output precision `R` ([`Real`]): carrier mixing, channel
/// accumulation and amplifier-noise draws all run in `R`, so an `f32` batch
/// row is synthesized at `f32` arithmetic width end to end. Per qubit, the
/// baseband is staged into `scratch`'s SoA rows (through the same
/// [`Real::from_f64`] rounding the per-sample loop applied) and mixed onto
/// the output by one [`herqles_num::Kernel::mix_accum`] pass over the
/// cached carrier planes; the amplifier noise then lands as one bulk
/// [`GaussianNoise::fill_add_iq`]. On the scalar backend every operation
/// matches the historical per-sample loop in order and rounding, so scalar
/// synthesis is bit-identical to the pre-batched implementation; the AVX2
/// backend diverges only by FMA contraction in the mix and by its
/// lane-parallel noise stream.
///
/// # Panics
///
/// Panics if the baseband dimensions or output slice lengths do not match the
/// carrier table.
pub fn synthesize_into_scratch<R: Real, G: Rng + ?Sized>(
    carriers: &CarrierTable,
    basebands: &[Vec<IqPoint>],
    noise: &mut GaussianNoise<R>,
    rng: &mut G,
    scratch: &mut SynthScratch<R>,
    i_out: &mut [R],
    q_out: &mut [R],
) {
    assert_eq!(
        basebands.len(),
        carriers.n_qubits(),
        "one baseband per qubit required"
    );
    let n = carriers.n_samples();
    assert_eq!(i_out.len(), n, "I output length must match carrier table");
    assert_eq!(q_out.len(), n, "Q output length must match carrier table");
    scratch.resize(n);
    i_out.fill(R::ZERO);
    q_out.fill(R::ZERO);
    let kernel = R::kernel();
    let planes = carriers.planes::<R>();
    for (q, bb) in basebands.iter().enumerate() {
        assert_eq!(bb.len(), n, "baseband length must match carrier table");
        for (t, s) in bb.iter().enumerate() {
            scratch.bi[t] = R::from_f64(s.i);
            scratch.bq[t] = R::from_f64(s.q);
        }
        kernel.mix_accum(
            &scratch.bi,
            &scratch.bq,
            planes.cos_of(q),
            planes.sin_of(q),
            i_out,
            q_out,
        );
    }
    noise.fill_add_iq(rng, i_out, q_out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn carrier_table_has_unit_phasors() {
        let cfg = ChipConfig::five_qubit_default();
        let table = CarrierTable::new(&cfg);
        assert_eq!(table.n_qubits(), 5);
        assert_eq!(table.n_samples(), 500);
        for q in 0..5 {
            for t in (0..500).step_by(37) {
                let (c, s) = table.phasor(q, t);
                assert!((c * c + s * s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn carriers_complete_integer_cycles_per_bin() {
        // IFs are multiples of 20 MHz = 1 / 50 ns, so the phasor at the start
        // of every bin equals the phasor at t = 0.
        let cfg = ChipConfig::five_qubit_default();
        let table = CarrierTable::new(&cfg);
        let spb = cfg.samples_per_bin();
        for q in 0..5 {
            let (c0, s0) = table.phasor(q, 0);
            for bin in 1..cfg.n_bins() {
                let (c, s) = table.phasor(q, bin * spb);
                assert!((c - c0).abs() < 1e-9 && (s - s0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn synthesis_of_single_constant_tone() {
        // A single qubit with constant baseband (1, 0) must synthesize exactly
        // its carrier.
        let mut cfg = ChipConfig::five_qubit_default();
        cfg.qubits.truncate(1);
        let table = CarrierTable::new(&cfg);
        let bb = vec![vec![IqPoint::new(1.0, 0.0); cfg.n_samples()]];
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let raw = synthesize(&table, &bb, &mut noise, &mut rng);
        for t in 0..cfg.n_samples() {
            let (c, s) = table.phasor(0, t);
            assert!((raw.i()[t] - c).abs() < 1e-12);
            assert!((raw.q()[t] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn synthesis_is_additive_across_qubits() {
        let cfg = {
            let mut c = ChipConfig::five_qubit_default();
            c.qubits.truncate(2);
            c
        };
        let table = CarrierTable::new(&cfg);
        let n = cfg.n_samples();
        let bb0 = vec![vec![IqPoint::new(0.7, -0.2); n], vec![IqPoint::ZERO; n]];
        let bb1 = vec![vec![IqPoint::ZERO; n], vec![IqPoint::new(-0.1, 0.9); n]];
        let bb_both = vec![bb0[0].clone(), bb1[1].clone()];
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let r0 = synthesize(&table, &bb0, &mut noise, &mut rng);
        let r1 = synthesize(&table, &bb1, &mut noise, &mut rng);
        let rb = synthesize(&table, &bb_both, &mut noise, &mut rng);
        for t in 0..n {
            assert!((rb.i()[t] - r0.i()[t] - r1.i()[t]).abs() < 1e-12);
            assert!((rb.q()[t] - r0.q()[t] - r1.q()[t]).abs() < 1e-12);
        }
    }

    #[test]
    fn synthesize_into_batch_row_matches_materializing_path() {
        let cfg = ChipConfig::two_qubit_test();
        let table = CarrierTable::new(&cfg);
        let n = cfg.n_samples();
        let bb = vec![
            vec![IqPoint::new(0.6, -0.4); n],
            vec![IqPoint::new(-0.2, 0.8); n],
        ];
        let mut noise = GaussianNoise::new(cfg.adc_noise_sigma);
        let mut rng = StdRng::seed_from_u64(77);
        let owned = synthesize(&table, &bb, &mut noise, &mut rng);

        let mut noise2 = GaussianNoise::new(cfg.adc_noise_sigma);
        let mut rng2 = StdRng::seed_from_u64(77);
        let mut batch = crate::ShotBatch::with_capacity(1, n);
        let (i_row, q_row) = batch.push_empty_row();
        synthesize_into(&table, &bb, &mut noise2, &mut rng2, i_row, q_row);
        assert_eq!(
            batch.i_of(0),
            owned.i(),
            "streaming I must be bit-identical"
        );
        assert_eq!(
            batch.q_of(0),
            owned.q(),
            "streaming Q must be bit-identical"
        );
    }

    #[test]
    #[should_panic(expected = "one baseband per qubit")]
    fn synthesis_rejects_wrong_qubit_count() {
        let cfg = ChipConfig::five_qubit_default();
        let table = CarrierTable::new(&cfg);
        let mut noise = GaussianNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = synthesize(&table, &[], &mut noise, &mut rng);
    }
}
