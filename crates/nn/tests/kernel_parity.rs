//! Kernel-parity harness: every SIMD backend against the scalar reference.
//!
//! The SIMD microkernels ([`herqles_num::kernel`]) are the first codepath
//! in the workspace whose results may *legitimately* differ from the
//! historical scalar pins: AVX2 reduces dot products over 8 (f32) / 4
//! (f64) lanes × 4 accumulators instead of the scalar 8-accumulator
//! fan-out, and FMA contracts each multiply-add to one rounding. Parity is
//! therefore **tolerance-based, not bit-exact**, with the bound derived
//! from what reassociation can actually move:
//!
//! For a dot of length `k` with partial sums reassociated into any tree,
//! each backend's error against the exact sum is bounded by
//! `~k · eps · Σ|aᵢ·bᵢ|`; the *difference between two backends* is at most
//! the sum of both. We pin `|scalar − simd| ≤ TOL_ULPS · eps_R · A` with
//! `A = Σ|aᵢ||bᵢ|` accumulated in `f64` and `TOL_ULPS = 32` — roughly 32
//! ULPs of the absolute-value dot, far above anything reassociation over
//! ≤ 8-lane × 4-acc trees plus FMA contraction produces for these shapes
//! (observed ≲ 4), far below any real kernel bug (a single dropped or
//! doubled element shows up at `~eps⁻¹` ULPs).
//!
//! The sweep covers every remainder edge the blocked GEMMs have: m, k, n
//! of 0 and 1, below/at/above the 8-lane f32 and 4-lane f64 widths, the
//! 32-element f32 (16-element f64) unrolled main-loop steps, the `KC`/`NC`
//! = 64 tile boundaries, the `SKINNY_N` = 16 path switch, and a
//! tall-skinny shape crossing the parallel threshold — for both `f32` and
//! `f64`, with seeded deterministic inputs.

use herqles_num::kernel::{Avx2Kernel, Kernel, ScalarKernel};
use herqles_num::Real;
use readout_nn::matrix::{gemm_into_with, gemm_rt_into_with};

/// Backend-difference headroom, in ULPs of the absolute-value dot.
const TOL_ULPS: f64 = 32.0;

/// Deterministic xorshift fill in `[-1, 1)`, matching the matrix tests'
/// generator so sweep inputs are reproducible from the seed alone.
fn pseudo_random<R: Real>(len: usize, seed: u64) -> Vec<R> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            R::from_f64((state % 1000) as f64 / 500.0 - 1.0)
        })
        .collect()
}

/// `Σ |a[r,·]| · |b[·,c]|` in `f64`: the scale the ULP tolerance is
/// relative to.
fn abs_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum()
}

/// Asserts two same-shape outputs agree within `TOL_ULPS` ULPs of the
/// per-element absolute-value dot.
fn assert_close<R: Real>(
    label: &str,
    scalar: &[R],
    simd: &[R],
    abs: &[f64],
    (m, k, n): (usize, usize, usize),
) {
    assert_eq!(scalar.len(), simd.len());
    for (i, (&s, &v)) in scalar.iter().zip(simd).enumerate() {
        let tol = TOL_ULPS * R::EPS.to_f64() * abs[i].max(1.0);
        let diff = (s.to_f64() - v.to_f64()).abs();
        assert!(
            diff <= tol,
            "{label} {}x{}x{} [{}]: scalar {} vs simd {} (diff {diff:e} > tol {tol:e})",
            m,
            k,
            n,
            i,
            s.to_f64(),
            v.to_f64(),
        );
    }
}

/// Shape grid: every lane/unroll/tile remainder class the kernels branch
/// on. `KC = NC = 64` (tile), `SKINNY_N = 16` (path switch), f32 lanes 8
/// (32/iter unrolled), f64 lanes 4 (16/iter unrolled).
fn shape_grid() -> Vec<(usize, usize, usize)> {
    let ms = [0, 1, 2, 3, 7, 33];
    let ks = [0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100];
    let ns = [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65];
    let mut shapes = Vec::new();
    for &m in &ms {
        for &k in &ks {
            for &n in &ns {
                shapes.push((m, k, n));
            }
        }
    }
    // Tall-skinny shapes: k ≥ 2·SKINNY_N forces the transposed dot-product
    // path; the last one crosses PARALLEL_THRESHOLD (2^18 MACs).
    shapes.extend([(1, 500, 1), (17, 200, 5), (33, 129, 15), (300, 500, 4)]);
    shapes
}

/// Runs the full shape sweep for one precision, comparing `kernel` against
/// the scalar reference through both GEMM entry points.
fn sweep_backend<R: Real>(kernel: &dyn Kernel<R>) {
    let scalar = &ScalarKernel;
    for (si, (m, k, n)) in shape_grid().into_iter().enumerate() {
        let seed = 0x9E37_79B9 + si as u64;
        let lhs: Vec<R> = pseudo_random(m * k, seed);
        let rhs: Vec<R> = pseudo_random(k * n, seed ^ 0xABCD);
        let lhs64: Vec<f64> = lhs.iter().map(|v| v.to_f64()).collect();
        let rhs64: Vec<f64> = rhs.iter().map(|v| v.to_f64()).collect();

        // Per-element |lhs row|·|rhs col| scale for the tolerance.
        let mut abs = vec![0.0f64; m * n];
        let mut rhs_col = vec![0.0f64; k];
        let mut rhs_t: Vec<R> = vec![R::ZERO; k * n];
        for c in 0..n {
            for l in 0..k {
                rhs_col[l] = rhs64[l * n + c];
                rhs_t[c * k + l] = rhs[l * n + c];
            }
            for r in 0..m {
                abs[r * n + c] = abs_dot(&lhs64[r * k..(r + 1) * k], &rhs_col);
            }
        }

        let mut out_scalar = vec![R::ZERO; m * n];
        let mut out_simd = vec![R::ZERO; m * n];
        gemm_into_with(scalar, &lhs, &rhs, &mut out_scalar, m, k, n);
        gemm_into_with(kernel, &lhs, &rhs, &mut out_simd, m, k, n);
        assert_close("gemm_into", &out_scalar, &out_simd, &abs, (m, k, n));

        gemm_rt_into_with(scalar, &lhs, &rhs_t, &mut out_scalar, m, k, n);
        gemm_rt_into_with(kernel, &lhs, &rhs_t, &mut out_simd, m, k, n);
        assert_close("gemm_rt_into", &out_scalar, &out_simd, &abs, (m, k, n));
    }
}

/// Primitive-level sweep: `dot`/`dot4`/`axpy`/`axpy4` at every length
/// through the unroll and remainder windows.
fn sweep_primitives<R: Real>(kernel: &dyn Kernel<R>) {
    let scalar = &ScalarKernel;
    for len in 0..=67 {
        let a: Vec<R> = pseudo_random(len, 11 + len as u64);
        let rows: Vec<Vec<R>> = (0..4)
            .map(|j| pseudo_random(len, 171 + j + len as u64))
            .collect();
        let bs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
        let a64: Vec<f64> = a.iter().map(|v| v.to_f64()).collect();

        let abs: Vec<f64> = (0..4)
            .map(|j| {
                let b64: Vec<f64> = rows[j].iter().map(|v| v.to_f64()).collect();
                abs_dot(&a64, &b64)
            })
            .collect();
        let tol = |j: usize| TOL_ULPS * R::EPS.to_f64() * abs[j].max(1.0);

        let d_scalar = scalar.dot(&a, bs[0]).to_f64();
        let d_simd = kernel.dot(&a, bs[0]).to_f64();
        assert!(
            (d_scalar - d_simd).abs() <= tol(0),
            "dot len {len}: {d_scalar} vs {d_simd}"
        );

        let d4_scalar = scalar.dot4(&a, bs);
        let d4_simd = kernel.dot4(&a, bs);
        for j in 0..4 {
            let (s, v) = (d4_scalar[j].to_f64(), d4_simd[j].to_f64());
            assert!(
                (s - v).abs() <= tol(j),
                "dot4 len {len} col {j}: {s} vs {v}"
            );
        }

        // axpy / axpy4 accumulate into a non-trivial out so the update is
        // checked against live partial sums, zero alphas included.
        let alphas = [
            R::from_f64(0.75),
            R::ZERO,
            R::from_f64(-1.25),
            R::from_f64(0.5),
        ];
        let base: Vec<R> = pseudo_random(len, 999 + len as u64);
        let mut out_scalar = base.clone();
        let mut out_simd = base.clone();
        scalar.axpy(alphas[0], bs[0], &mut out_scalar);
        kernel.axpy(alphas[0], bs[0], &mut out_simd);
        scalar.axpy4(alphas, bs, &mut out_scalar);
        kernel.axpy4(alphas, bs, &mut out_simd);
        for i in 0..len {
            let (s, v) = (out_scalar[i].to_f64(), out_simd[i].to_f64());
            // Element-wise updates reassociate at most 8 terms; the dot
            // tolerance at |terms| scale is generous headroom.
            let t = TOL_ULPS * R::EPS.to_f64() * (1.0 + s.abs());
            assert!((s - v).abs() <= t, "axpy len {len} [{i}]: {s} vs {v}");
        }
    }
}

/// The backends the host can run beyond the scalar reference. Empty on
/// machines without AVX2+FMA — the sweep then degenerates to
/// scalar-vs-scalar, keeping the harness green (and meaningful under
/// `HERQLES_KERNEL=scalar` CI runs) everywhere.
fn simd_backends<R: Real>() -> Vec<&'static dyn Kernel<R>>
where
    Avx2Kernel: Kernel<R>,
{
    match Avx2Kernel::get() {
        Some(avx2) => vec![avx2],
        None => {
            eprintln!("[kernel_parity] no AVX2+FMA on this host; scalar-only sweep");
            vec![]
        }
    }
}

#[test]
fn scalar_reference_agrees_with_itself_over_the_sweep() {
    // Guards the harness itself: zero diff must pass every shape/length.
    sweep_backend::<f64>(&ScalarKernel);
    sweep_primitives::<f32>(&ScalarKernel);
}

#[test]
fn f32_backends_match_scalar_over_shape_sweep() {
    for kernel in simd_backends::<f32>() {
        eprintln!("[kernel_parity] f32 sweep: {} vs scalar", kernel.name());
        sweep_backend::<f32>(kernel);
    }
}

#[test]
fn f64_backends_match_scalar_over_shape_sweep() {
    for kernel in simd_backends::<f64>() {
        eprintln!("[kernel_parity] f64 sweep: {} vs scalar", kernel.name());
        sweep_backend::<f64>(kernel);
    }
}

#[test]
fn f32_primitives_match_scalar_over_length_sweep() {
    for kernel in simd_backends::<f32>() {
        sweep_primitives::<f32>(kernel);
    }
}

#[test]
fn f64_primitives_match_scalar_over_length_sweep() {
    for kernel in simd_backends::<f64>() {
        sweep_primitives::<f64>(kernel);
    }
}

#[test]
fn dispatched_gemm_matches_explicit_backend_gemm() {
    // The plain gemm_into must be exactly the _with form on the dispatched
    // backend: same results bit for bit, whatever HERQLES_KERNEL says.
    let kernel = <f64 as Real>::kernel();
    let (m, k, n) = (9, 77, 13);
    let lhs: Vec<f64> = pseudo_random(m * k, 5);
    let rhs: Vec<f64> = pseudo_random(k * n, 6);
    let mut dispatched = vec![0.0; m * n];
    let mut explicit = vec![0.0; m * n];
    readout_nn::matrix::gemm_into(&lhs, &rhs, &mut dispatched, m, k, n);
    gemm_into_with(kernel, &lhs, &rhs, &mut explicit, m, k, n);
    assert_eq!(dispatched, explicit);
}
