//! Property-based tests of the NN library's algebraic invariants.

use proptest::prelude::*;
use readout_nn::loss::softmax_cross_entropy;
use readout_nn::net::argmax;
use readout_nn::{Matrix, Mlp, QuantConfig};

fn vecs(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0..10.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in vecs(6), b in vecs(6), c in vecs(6)) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 2, b);
        let c = Matrix::from_vec(2, 3, c);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.sub(&right).frobenius_norm() < 1e-6);
    }

    #[test]
    fn matmul_distributes_over_addition(a in vecs(6), b in vecs(8), c in vecs(8)) {
        let a = Matrix::from_vec(3, 2, a);
        let b = Matrix::from_vec(2, 4, b);
        let c = Matrix::from_vec(2, 4, c);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.sub(&right).frobenius_norm() < 1e-6);
    }

    #[test]
    fn scaling_commutes_with_matmul(a in vecs(4), b in vecs(6), k in -3.0..3.0f64) {
        let a = Matrix::from_vec(2, 2, a);
        let b = Matrix::from_vec(2, 3, b);
        let left = a.scale(k).matmul(&b);
        let right = a.matmul(&b).scale(k);
        prop_assert!(left.sub(&right).frobenius_norm() < 1e-6);
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_finite(logits in vecs(8), label in 0usize..4) {
        let m = Matrix::from_vec(2, 4, logits);
        let (loss, grad) = softmax_cross_entropy(&m, &[label, (label + 1) % 4]);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        prop_assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn network_output_is_shift_equivariant_free(input in vecs(4), seed in 0u64..50) {
        // Deterministic construction: same seed, same prediction.
        let net = Mlp::new(&[4, 6, 3], seed);
        prop_assert_eq!(net.predict(&input), net.predict(&input));
    }

    #[test]
    fn quantization_roundtrip_error_is_bounded(x in -15.0..15.0f64) {
        let q = QuantConfig::DEFAULT_16BIT;
        let err = (q.dequantize(q.quantize(x)) - x).abs();
        prop_assert!(err <= 0.5 / q.scale() + 1e-12, "error {err}");
    }

    #[test]
    fn argmax_returns_maximum(vals in proptest::collection::vec(-100.0..100.0f64, 1..20)) {
        let idx = argmax(&vals);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(vals[idx], max);
    }

    #[test]
    fn batch_prediction_matches_single(inputs in proptest::collection::vec(vecs(3), 1..6)) {
        let net = Mlp::new(&[3, 5, 4], 9);
        let batch = net.predict_batch(&inputs);
        for (x, &p) in inputs.iter().zip(&batch) {
            prop_assert_eq!(net.predict(x), p);
        }
    }
}
