//! Dense (fully connected) layers.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::matrix::Matrix;

/// A dense layer `y = x·W + b` with weights of shape `(input, output)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
}

impl Dense {
    /// Creates a layer with He-initialized weights (`N(0, 2/fan_in)`), the
    /// standard choice for ReLU networks, and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(input: usize, output: usize, rng: &mut StdRng) -> Self {
        assert!(input > 0 && output > 0, "layer dimensions must be positive");
        let scale = (2.0 / input as f64).sqrt();
        let mut data = Vec::with_capacity(input * output);
        // Marsaglia polar method, inlined to avoid a cross-crate dependency
        // on the simulator's noise type.
        let mut spare: Option<f64> = None;
        let mut normal = |rng: &mut StdRng| -> f64 {
            if let Some(z) = spare.take() {
                return z;
            }
            loop {
                let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    let f = (-2.0 * s.ln() / s).sqrt();
                    spare = Some(v * f);
                    return u * f;
                }
            }
        };
        for _ in 0..input * output {
            data.push(normal(rng) * scale);
        }
        Dense {
            weights: Matrix::from_vec(input, output, data),
            bias: vec![0.0; output],
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.cols()`.
    pub fn from_parameters(weights: Matrix, bias: Vec<f64>) -> Self {
        assert_eq!(
            bias.len(),
            weights.cols(),
            "bias length must equal output width"
        );
        Dense { weights, bias }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix, shape `(input, output)`.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable weight matrix.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable bias vector.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }

    /// Number of trainable parameters.
    pub fn n_parameters(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Number of multiply-accumulate operations per forward inference.
    pub fn n_macs(&self) -> usize {
        self.weights.rows() * self.weights.cols()
    }

    /// Forward pass for a batch: `(batch, input) → (batch, output)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_size()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weights);
        for r in 0..y.rows() {
            for (v, b) in y.row_mut(r).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
        y
    }
}

/// Applies ReLU in place and returns the activation mask (1.0 where the
/// pre-activation was positive) for the backward pass.
pub fn relu_inplace(x: &mut Matrix) -> Matrix {
    let mut mask = Matrix::zeros(x.rows(), x.cols());
    for (m, v) in mask.as_mut_slice().iter_mut().zip(x.as_mut_slice()) {
        if *v > 0.0 {
            *m = 1.0;
        } else {
            *v = 0.0;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_applies_affine_map() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let layer = Dense::from_parameters(w, vec![0.1, 0.2, 0.3]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[5.1, 7.2, 9.3]);
    }

    #[test]
    fn he_init_has_expected_scale() {
        let layer = Dense::new(1000, 10, &mut rng());
        let w = layer.weights();
        let var: f64 = w.as_slice().iter().map(|v| v * v).sum::<f64>() / w.as_slice().len() as f64;
        // He variance for fan_in 1000 is 0.002.
        assert!((var - 0.002).abs() < 0.0005, "weight variance {var}");
        assert!(layer.bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn parameter_counts() {
        let layer = Dense::new(10, 20, &mut rng());
        assert_eq!(layer.n_parameters(), 220);
        assert_eq!(layer.n_macs(), 200);
        assert_eq!(layer.input_size(), 10);
        assert_eq!(layer.output_size(), 20);
    }

    #[test]
    fn relu_zeroes_negatives_and_reports_mask() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let mask = relu_inplace(&mut x);
        assert_eq!(x.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        assert_eq!(mask.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn batch_forward_is_rowwise() {
        let layer = Dense::new(3, 2, &mut rng());
        let x = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        let y = layer.forward(&x);
        let y0 = layer.forward(&Matrix::from_vec(1, 3, x.row(0).to_vec()));
        assert_eq!(y.row(0), y0.row(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_layer_panics() {
        let _ = Dense::new(0, 3, &mut rng());
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn mismatched_bias_panics() {
        let _ = Dense::from_parameters(Matrix::zeros(2, 3), vec![0.0; 2]);
    }
}
