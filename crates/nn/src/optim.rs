//! First-order optimizers: SGD with momentum and Adam.
//!
//! Parameters are addressed by *slot*: each parameter group (a layer's weight
//! matrix or bias vector) gets a stable slot index, and the optimizer keeps
//! its per-element state (momentum, second moments) per slot, sized lazily on
//! first use.

/// A first-order optimizer updating parameter groups in place.
pub trait Optimizer {
    /// Applies one update to the parameter group identified by `slot`.
    ///
    /// # Panics
    ///
    /// Panics if a slot is reused with a different parameter length.
    fn step(&mut self, slot: usize, params: &mut [f64], grads: &[f64]);

    /// Informs the optimizer that one full optimization step (all slots) has
    /// completed; Adam uses this for bias correction.
    fn end_step(&mut self) {}
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates an SGD optimizer. `momentum = 0` recovers plain SGD.
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive or momentum is not in
    /// `[0, 1)`.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        if self.velocity.len() <= slot {
            self.velocity.resize_with(slot + 1, Vec::new);
        }
        let v = &mut self.velocity[slot];
        if v.is_empty() {
            v.resize(params.len(), 0.0);
        }
        assert_eq!(v.len(), params.len(), "slot reused with a different shape");
        for ((p, &g), vel) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vel = self.momentum * *vel - self.learning_rate * g;
            *p += *vel;
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with standard hyper-parameters.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    t: u64,
    first: Vec<Vec<f64>>,
    second: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an Adam optimizer with β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if the learning rate is not positive.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 1,
            first: Vec::new(),
            second: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        if self.first.len() <= slot {
            self.first.resize_with(slot + 1, Vec::new);
            self.second.resize_with(slot + 1, Vec::new);
        }
        let m = &mut self.first[slot];
        let v = &mut self.second[slot];
        if m.is_empty() {
            m.resize(params.len(), 0.0);
            v.resize(params.len(), 0.0);
        }
        assert_eq!(m.len(), params.len(), "slot reused with a different shape");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, &g)) in params.iter_mut().zip(grads).enumerate() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            *p -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn end_step(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x-3)² with the given optimizer; returns final x.
    fn minimize<O: Optimizer>(opt: &mut O, steps: usize) -> f64 {
        let mut x = [0.0f64];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
            opt.end_step();
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = minimize(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut heavy = Sgd::new(0.01, 0.9);
        let x_plain = minimize(&mut plain, 50);
        let x_heavy = minimize(&mut heavy, 50);
        assert!((x_heavy - 3.0).abs() < (x_plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = minimize(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_first_step_is_learning_rate_sized() {
        // With bias correction, the first Adam step is ≈ lr regardless of
        // gradient scale.
        let mut opt = Adam::new(0.5);
        let mut x = [0.0f64];
        opt.step(0, &mut x, &[1e6]);
        assert!((x[0] + 0.5).abs() < 1e-6, "first step {}", x[0]);
    }

    #[test]
    fn slots_are_independent() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut a = [0.0f64];
        let mut b = [0.0f64];
        opt.step(0, &mut a, &[1.0]);
        opt.step(1, &mut b, &[-1.0]);
        assert!(a[0] < 0.0 && b[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn slot_shape_change_panics() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0f64; 2];
        opt.step(0, &mut a, &[1.0, 1.0]);
        let mut b = [0.0f64; 3];
        opt.step(0, &mut b, &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_learning_rate_panics() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
