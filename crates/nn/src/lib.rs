//! Minimal dense neural-network library for qubit-state discrimination.
//!
//! The HERQULES paper trains two kinds of feed-forward networks: the large
//! baseline discriminator (1000-500-250-32 on raw ADC traces, Lienhard et
//! al.) and the small HERQULES head (`2N → 2N → 4N → 2N → 2^N` on matched-
//! filter outputs). This crate provides everything needed to train and run
//! both from scratch:
//!
//! * [`matrix`] — a row-major `f64` matrix with a parallel blocked matmul;
//! * [`layers`] — dense layers with He initialization and ReLU;
//! * [`loss`] — numerically stable softmax cross-entropy;
//! * [`optim`] — SGD-with-momentum and Adam optimizers;
//! * [`net`] — the [`Mlp`] network: builder, forward, training loop;
//! * [`data`] — feature standardization, one-hot labels, minibatching;
//! * [`quant`] — fixed-point (quantized) inference mirroring the FPGA
//!   datapath, for bit-width ablations.
//!
//! # Example
//!
//! Train a tiny network on a linearly separable problem:
//!
//! ```
//! use readout_nn::{Mlp, TrainConfig};
//!
//! let inputs: Vec<Vec<f64>> = vec![vec![-1.0], vec![-0.8], vec![0.9], vec![1.1]];
//! let labels = vec![0, 0, 1, 1];
//! let mut net = Mlp::new(&[1, 4, 2], 7);
//! let config = TrainConfig { epochs: 200, learning_rate: 2e-2, ..TrainConfig::default() };
//! net.train(&inputs, &labels, &config);
//! assert_eq!(net.predict(&[1.0]), 1);
//! assert_eq!(net.predict(&[-1.0]), 0);
//! ```

pub mod data;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod net;
pub mod optim;
pub mod quant;

pub use data::Standardizer;
pub use herqles_num::kernel;
pub use herqles_num::Real;
pub use layers::Dense;
pub use loss::softmax_cross_entropy;
pub use matrix::Matrix;
pub use net::{Mlp, TrainConfig, TrainReport};
pub use optim::{Adam, Optimizer, Sgd};
pub use quant::{QuantConfig, QuantizedMlp};
