//! Row-major `f64` matrix with a cache-blocked, thread-parallel matmul.
//!
//! Deliberately minimal: just what dense-layer training needs. The matmul
//! uses `ikj` loop order (streaming the output row while broadcasting one
//! left-operand element), parallelized over row blocks with scoped threads
//! when the problem is large enough to amortize spawning.

use std::fmt;

/// Minimum number of multiply-accumulates before the matmul bothers spawning
/// threads.
const PARALLEL_THRESHOLD: usize = 1 << 20;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let work = self.rows * self.cols * rhs.cols;
        let threads = if work >= PARALLEL_THRESHOLD {
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(self.rows.max(1))
        } else {
            1
        };
        if threads <= 1 {
            matmul_rows(&self.data, &rhs.data, &mut out.data, self.cols, rhs.cols, 0, self.rows);
        } else {
            let chunk = self.rows.div_ceil(threads);
            let cols = self.cols;
            let rcols = rhs.cols;
            let lhs = &self.data;
            let rdata = &rhs.data;
            std::thread::scope(|scope| {
                for (block, out_block) in out.data.chunks_mut(chunk * rcols).enumerate() {
                    let r0 = block * chunk;
                    let r1 = (r0 + chunk).min(self.rows);
                    scope.spawn(move || {
                        matmul_rows(lhs, rdata, out_block, cols, rcols, r0, r1);
                    });
                }
            });
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scaled copy.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|a| a * k).collect())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Computes output rows `[r0, r1)` of `lhs · rhs` into `out_block`
/// (`out_block` holds exactly those rows).
fn matmul_rows(
    lhs: &[f64],
    rhs: &[f64],
    out_block: &mut [f64],
    inner: usize,
    rcols: usize,
    r0: usize,
    r1: usize,
) {
    for r in r0..r1 {
        let out_row = &mut out_block[(r - r0) * rcols..(r - r0 + 1) * rcols];
        let lhs_row = &lhs[r * inner..(r + 1) * inner];
        for (l, &a) in lhs_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let rhs_row = &rhs[l * rcols..(l + 1) * rcols];
            for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                *o += a * b;
            }
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a.get(r, l) * b.get(l, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        // xorshift-based fill; deterministic and dependency-free.
        let mut state = seed | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn small_matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        let a = pseudo_random(33, 47, 1);
        let b = pseudo_random(47, 29, 2);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.sub(&slow).frobenius_norm() < 1e-9);
    }

    #[test]
    fn parallel_matmul_matches_naive() {
        // Big enough to cross PARALLEL_THRESHOLD.
        let a = pseudo_random(128, 200, 3);
        let b = pseudo_random(200, 64, 4);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.sub(&slow).frobenius_norm() < 1e-8);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = pseudo_random(5, 9, 5);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.get(2, 1), a.get(1, 2));
        assert_eq!((t.rows(), t.cols()), (3, 2));
    }

    #[test]
    fn distributivity_holds() {
        let a = pseudo_random(8, 6, 6);
        let b = pseudo_random(6, 7, 7);
        let c = pseudo_random(6, 7, 8);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert!(left.sub(&right).frobenius_norm() < 1e-9);
    }

    #[test]
    fn scale_and_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.scale(2.0).frobenius_norm() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        m.map_inplace(|x| x.max(0.0));
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);
    }
}
