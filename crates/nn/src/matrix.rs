//! Row-major real matrix with a cache-blocked, thread-parallel matmul,
//! generic over the scalar precision `R` ([`Real`], default `f64`).
//!
//! Deliberately minimal: just what dense-layer training and batched readout
//! inference need. The matmul kernel ([`gemm_into`]) streams each output row
//! against an L1-resident right-operand tile (`KC × NC` doubles = 32 KiB),
//! broadcasting one left-operand element at a time, and parallelizes over
//! output-row blocks with scoped threads when the problem is large enough to
//! amortize spawning. It is exposed on raw slices so callers owning flat
//! buffers (e.g. `ShotBatch` planes) can multiply with zero copies.
//!
//! Every inner loop — the broadcast rank-1 updates of the tiled path and
//! the multi-accumulator dots of the tall-skinny path — runs on the
//! process-dispatched SIMD microkernel backend
//! ([`herqles_num::kernel`]): AVX2+FMA on `x86_64` CPUs that support it,
//! the bit-identical-to-history scalar reference otherwise, overridable
//! with `HERQLES_KERNEL=scalar|avx2|auto`. The `*_with` variants
//! ([`gemm_into_with`], [`gemm_rt_into_with`]) take an explicit backend so
//! the kernel-parity suite can compare them head to head in one process.

use std::fmt;

use herqles_num::kernel::{active_kernel_name, Kernel, ScalarKernel};
use herqles_num::Real;

/// Minimum number of multiply-accumulates before the matmul bothers spawning
/// threads.
///
/// Measured on the reference container: scoped-thread spawn + join costs
/// ~9 µs, and the single-threaded kernel sustains 3.1–4.9 GMAC/s across the
/// shapes this workspace runs (64³ through 256×1000×5). 2^18 MACs is
/// therefore ~60–85 µs of work, so a two-way split saves ~30 µs net — the
/// smallest size where parallelism reliably wins. The previous 2^20
/// threshold left 4× that much single-threaded work on the table before any
/// parallelism kicked in.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Right-operand tile depth (rows of `rhs` per tile).
const KC: usize = 64;

/// Right-operand tile width (columns of `rhs` per tile); `KC × NC` doubles
/// fill a 32 KiB L1 data cache (an f32 tile uses half of it — still a win,
/// as the tile then shares L1 with the streamed left operand).
const NC: usize = 64;

/// Column count at or below which the kernel switches to the tall-skinny
/// path: transpose `rhs` once, then compute each output element as a
/// contiguous multi-accumulator dot product. The broadcast kernel loads and
/// stores the whole `n`-wide output segment per left-operand element, which
/// for small `n` (the fused readout filter banks have 5–10 columns) is 2
/// memory ops per FMA; the dot-product form streams both operands linearly
/// and keeps its accumulators in registers.
const SKINNY_N: usize = 16;

/// A dense row-major matrix of reals.
///
/// Generic over the scalar `R` ([`Real`], default `f64`): `Matrix` in type
/// position keeps meaning the double-precision matrix every training path
/// uses, while `Matrix<f32>` carries single-precision activation planes at
/// twice the SIMD width.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<R: Real = f64> {
    rows: usize,
    cols: usize,
    data: Vec<R>,
}

impl<R: Real> Matrix<R> {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![R::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<R>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<R>]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> R {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: R) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[R] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [R] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[R] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix<R>) -> Matrix<R> {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm_into(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<R> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix<R>) -> Matrix<R> {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix<R>) -> Matrix<R> {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scaled copy.
    pub fn scale(&self, k: R) -> Matrix<R> {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&a| a * k).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(R) -> R>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm, accumulated in `f64` regardless of `R`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| {
                let v = v.to_f64();
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Widens (or rounds) every element into another precision.
    pub fn to_precision<R2: Real>(&self) -> Matrix<R2> {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data
                .iter()
                .map(|&v| R2::from_f64(v.to_f64()))
                .collect(),
        )
    }
}

/// Computes `out = lhs · rhs` on flat row-major slices:
/// `[m × k] · [k × n] → [m × n]`.
///
/// `out` is fully overwritten. The kernel tiles `rhs` into `KC × NC` blocks
/// that stay L1-resident while every output row streams against them, and
/// splits output rows across scoped threads once the MAC count crosses
/// [`PARALLEL_THRESHOLD`]. This is the workhorse behind both [`Matrix::matmul`]
/// and the zero-copy batched readout-inference kernels, which own flat
/// buffers rather than `Matrix` values.
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn gemm_into<R: Real>(lhs: &[R], rhs: &[R], out: &mut [R], m: usize, k: usize, n: usize) {
    // The scalar arm is monomorphized (concrete `&ScalarKernel`, not the
    // `&dyn` the dispatcher hands out) so its inner loops inline and LLVM
    // auto-vectorizes them exactly like the pre-backend code — hosts
    // without SIMD support, and `HERQLES_KERNEL=scalar` runs, keep their
    // historical throughput. SIMD backends lose nothing behind `dyn`:
    // their bodies are `target_feature` functions that cannot inline into
    // generic callers anyway.
    if active_kernel_name() == "scalar" {
        gemm_into_with(&ScalarKernel, lhs, rhs, out, m, k, n);
    } else {
        gemm_into_with(R::kernel(), lhs, rhs, out, m, k, n);
    }
}

/// [`gemm_into`] on an explicit microkernel backend instead of the
/// process-dispatched one. The kernel-parity tests use this to compare
/// backends within one process; production callers use [`gemm_into`].
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn gemm_into_with<R: Real, K: Kernel<R> + ?Sized>(
    kernel: &K,
    lhs: &[R],
    rhs: &[R],
    out: &mut [R],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(lhs.len(), m * k, "lhs length must equal m*k");
    assert_eq!(rhs.len(), k * n, "rhs length must equal k*n");
    assert_eq!(out.len(), m * n, "out length must equal m*n");
    out.fill(R::ZERO);
    let work = m * k * n;
    let threads = if work >= PARALLEL_THRESHOLD {
        std::thread::available_parallelism()
            .map_or(1, |t| t.get())
            .min(m.max(1))
    } else {
        1
    };
    // Tall-skinny problems take the transposed dot-product kernel; the
    // transpose is O(k·n), amortized over all m rows.
    let rhs_t = if n > 0 && n <= SKINNY_N && k >= 2 * SKINNY_N {
        let mut rt = vec![R::ZERO; k * n];
        for (l, row) in rhs.chunks_exact(n).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                rt[j * k + l] = v;
            }
        }
        Some(rt)
    } else {
        None
    };
    let run = |out_block: &mut [R], r0: usize, r1: usize| match &rhs_t {
        Some(rt) => gemm_rows_skinny(kernel, lhs, rt, out_block, k, n, r0, r1),
        None => gemm_rows(kernel, lhs, rhs, out_block, k, n, r0, r1),
    };
    if threads <= 1 {
        run(out, 0, m);
    } else {
        let chunk = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (block, out_block) in out.chunks_mut(chunk * n).enumerate() {
                let r0 = block * chunk;
                let r1 = (r0 + chunk).min(m);
                scope.spawn(move || run(out_block, r0, r1));
            }
        });
    }
}

/// Computes `out = lhs · rhs_tᵀ` where `rhs_t` is stored **transposed**
/// (`[n × k]` row-major): `[m × k] · [k × n] → [m × n]`.
///
/// The fast path for callers that can keep the right operand transposed for
/// the lifetime of a kernel (e.g. compiled readout filter banks): every
/// output element is a contiguous dot product with no per-call transpose or
/// tile traffic. Parallelized over output-row blocks like [`gemm_into`].
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn gemm_rt_into<R: Real>(lhs: &[R], rhs_t: &[R], out: &mut [R], m: usize, k: usize, n: usize) {
    // Monomorphized scalar arm, as in [`gemm_into`].
    if active_kernel_name() == "scalar" {
        gemm_rt_into_with(&ScalarKernel, lhs, rhs_t, out, m, k, n);
    } else {
        gemm_rt_into_with(R::kernel(), lhs, rhs_t, out, m, k, n);
    }
}

/// [`gemm_rt_into`] on an explicit microkernel backend instead of the
/// process-dispatched one (see [`gemm_into_with`]).
///
/// # Panics
///
/// Panics if any slice length disagrees with the given dimensions.
pub fn gemm_rt_into_with<R: Real, K: Kernel<R> + ?Sized>(
    kernel: &K,
    lhs: &[R],
    rhs_t: &[R],
    out: &mut [R],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(lhs.len(), m * k, "lhs length must equal m*k");
    assert_eq!(rhs_t.len(), k * n, "rhs_t length must equal k*n");
    assert_eq!(out.len(), m * n, "out length must equal m*n");
    let work = m * k * n;
    let threads = if work >= PARALLEL_THRESHOLD {
        std::thread::available_parallelism()
            .map_or(1, |t| t.get())
            .min(m.max(1))
    } else {
        1
    };
    if threads <= 1 {
        gemm_rows_skinny(kernel, lhs, rhs_t, out, k, n, 0, m);
    } else {
        let chunk = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (block, out_block) in out.chunks_mut(chunk * n).enumerate() {
                let r0 = block * chunk;
                let r1 = (r0 + chunk).min(m);
                scope.spawn(move || gemm_rows_skinny(kernel, lhs, rhs_t, out_block, k, n, r0, r1));
            }
        });
    }
}

/// Tall-skinny kernel: `rhs_t` is the `[n × k]` transpose of `rhs`, so every
/// output element is one linear scan of two contiguous slices. Columns are
/// register-blocked four at a time ([`Kernel::dot4`] shares each
/// left-operand load across four accumulator chains), with a plain
/// [`Kernel::dot`] sweep over the `rcols % 4` remainder.
#[allow(clippy::too_many_arguments)]
fn gemm_rows_skinny<R: Real, K: Kernel<R> + ?Sized>(
    kernel: &K,
    lhs: &[R],
    rhs_t: &[R],
    out_block: &mut [R],
    inner: usize,
    rcols: usize,
    r0: usize,
    r1: usize,
) {
    let quad = kernel.quad_blocked();
    for r in r0..r1 {
        let lhs_row = &lhs[r * inner..(r + 1) * inner];
        let out_row = &mut out_block[(r - r0) * rcols..(r - r0 + 1) * rcols];
        let mut j = 0;
        if quad {
            while j + 4 <= rcols {
                let dots = kernel.dot4(
                    lhs_row,
                    [
                        &rhs_t[j * inner..(j + 1) * inner],
                        &rhs_t[(j + 1) * inner..(j + 2) * inner],
                        &rhs_t[(j + 2) * inner..(j + 3) * inner],
                        &rhs_t[(j + 3) * inner..(j + 4) * inner],
                    ],
                );
                out_row[j..j + 4].copy_from_slice(&dots);
                j += 4;
            }
        }
        // Remainder columns — or, for non-quad backends (the scalar
        // reference), every column: the plain per-column dot is the loop
        // shape LLVM optimizes best for plain code.
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            *o = kernel.dot(lhs_row, &rhs_t[jj * inner..(jj + 1) * inner]);
        }
    }
}

/// Computes output rows `[r0, r1)` of `lhs · rhs` into `out_block`
/// (`out_block` holds exactly those rows, already zeroed). The inner tile
/// update is register-blocked four right-operand rows at a time
/// ([`Kernel::axpy4`] pays one `out` load/store per four fused
/// multiply-adds), with a per-row [`Kernel::axpy`] — which skips
/// ReLU-sparse zero multipliers — over the `kw % 4` remainder.
#[allow(clippy::too_many_arguments)]
fn gemm_rows<R: Real, K: Kernel<R> + ?Sized>(
    kernel: &K,
    lhs: &[R],
    rhs: &[R],
    out_block: &mut [R],
    inner: usize,
    rcols: usize,
    r0: usize,
    r1: usize,
) {
    for jc in (0..rcols).step_by(NC) {
        let jw = NC.min(rcols - jc);
        for kc in (0..inner).step_by(KC) {
            let kw = KC.min(inner - kc);
            // The rhs tile rows [kc, kc+kw) × cols [jc, jc+jw) are revisited
            // by every output row below and stay L1-resident.
            for r in r0..r1 {
                let out_seg = &mut out_block[(r - r0) * rcols + jc..(r - r0) * rcols + jc + jw];
                let lhs_seg = &lhs[r * inner + kc..r * inner + kc + kw];
                let rhs_seg = |l: usize| &rhs[(kc + l) * rcols + jc..(kc + l) * rcols + jc + jw];
                let mut l = 0;
                if kernel.quad_blocked() {
                    while l + 4 <= kw {
                        let alphas = [lhs_seg[l], lhs_seg[l + 1], lhs_seg[l + 2], lhs_seg[l + 3]];
                        if alphas.iter().all(|&a| a != R::ZERO) {
                            kernel.axpy4(
                                alphas,
                                [rhs_seg(l), rhs_seg(l + 1), rhs_seg(l + 2), rhs_seg(l + 3)],
                                out_seg,
                            );
                        } else {
                            // A quad with zero multipliers takes the per-row
                            // form: axpy skips zeros on every backend, so
                            // zero-alpha rows are never *read* — SIMD
                            // backends would otherwise turn 0 · ∞ (a
                            // blown-up weight) into NaN where the scalar
                            // reference stays finite.
                            for (off, &a) in alphas.iter().enumerate() {
                                kernel.axpy(a, rhs_seg(l + off), out_seg);
                            }
                        }
                        l += 4;
                    }
                }
                // Remainder rows — or, for non-quad backends, every row.
                for (ll, &a) in lhs_seg.iter().enumerate().skip(l) {
                    kernel.axpy(a, rhs_seg(ll), out_seg);
                }
            }
        }
    }
}

impl<R: Real> fmt::Display for Matrix<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a.get(r, l) * b.get(l, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        // xorshift-based fill; deterministic and dependency-free.
        let mut state = seed | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn small_matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matmul_matches_naive() {
        let a = pseudo_random(33, 47, 1);
        let b = pseudo_random(47, 29, 2);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.sub(&slow).frobenius_norm() < 1e-9);
    }

    #[test]
    fn parallel_matmul_matches_naive() {
        // Big enough to cross PARALLEL_THRESHOLD.
        let a = pseudo_random(128, 200, 3);
        let b = pseudo_random(200, 64, 4);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.sub(&slow).frobenius_norm() < 1e-8);
    }

    #[test]
    fn skinny_matmul_matches_naive() {
        // n ≤ SKINNY_N and k ≥ 2·SKINNY_N exercises the transposed
        // dot-product kernel.
        let a = pseudo_random(17, 200, 9);
        let b = pseudo_random(200, 5, 10);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.sub(&slow).frobenius_norm() < 1e-9);
    }

    #[test]
    fn gemm_rt_matches_gemm() {
        let a = pseudo_random(23, 150, 11);
        let b = pseudo_random(150, 7, 12);
        let reference = a.matmul(&b);
        let bt = b.transpose();
        let mut out = vec![0.0; 23 * 7];
        gemm_rt_into(a.as_slice(), bt.as_slice(), &mut out, 23, 150, 7);
        let out = Matrix::from_vec(23, 7, out);
        assert!(out.sub(&reference).frobenius_norm() < 1e-9);
    }

    #[test]
    fn gemm_rt_parallel_path_matches() {
        // Large enough to cross PARALLEL_THRESHOLD.
        let a = pseudo_random(300, 500, 13);
        let b = pseudo_random(500, 4, 14);
        let bt = b.transpose();
        let mut out = vec![0.0; 300 * 4];
        gemm_rt_into(a.as_slice(), bt.as_slice(), &mut out, 300, 500, 4);
        let slow = naive_matmul(&a, &b);
        let out = Matrix::from_vec(300, 4, out);
        assert!(out.sub(&slow).frobenius_norm() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "rhs_t length")]
    fn gemm_rt_rejects_bad_lengths() {
        let mut out = vec![0.0; 4];
        gemm_rt_into(&[1.0, 2.0], &[1.0], &mut out, 2, 1, 2);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = pseudo_random(5, 9, 5);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.get(2, 1), a.get(1, 2));
        assert_eq!((t.rows(), t.cols()), (3, 2));
    }

    #[test]
    fn distributivity_holds() {
        let a = pseudo_random(8, 6, 6);
        let b = pseudo_random(6, 7, 7);
        let c = pseudo_random(6, 7, 8);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert!(left.sub(&right).frobenius_norm() < 1e-9);
    }

    #[test]
    fn scale_and_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.scale(2.0).frobenius_norm() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a: Matrix = Matrix::zeros(2, 3);
        let b: Matrix = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        m.map_inplace(|x| x.max(0.0));
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);
    }
}
