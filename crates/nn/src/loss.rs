//! Softmax cross-entropy loss (numerically stable, combined form).

use crate::matrix::Matrix;

/// Computes the mean softmax cross-entropy of `logits` against integer class
/// `labels`, plus the gradient with respect to the logits.
///
/// The gradient of the combined softmax+CE is `(softmax(logits) − onehot)/B`
/// where `B` is the batch size, which is what the returned matrix contains.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    assert_eq!(
        labels.len(),
        logits.rows(),
        "one label per batch row required"
    );
    let classes = logits.cols();
    let batch = logits.rows();
    let mut grad = Matrix::zeros(batch, classes);
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate().take(batch) {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        loss += -(row[label] - max - log_denom);
        let grow = grad.row_mut(r);
        for (c, &v) in row.iter().enumerate() {
            let p = (v - max).exp() / denom;
            grow[c] = (p - if c == label { 1.0 } else { 0.0 }) / batch as f64;
        }
    }
    (loss / batch as f64, grad)
}

/// Row-wise softmax probabilities of a logits matrix.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Matrix::zeros(2, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Matrix::from_vec(1, 3, vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn confident_wrong_prediction_has_large_loss() {
        let logits = Matrix::from_vec(1, 3, vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!(loss > 5.0);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, -0.5, 0.2, 3.0, 3.0, -1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 0]);
        for r in 0..2 {
            let s: f64 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-12, "row {r} gradient sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_vec(1, 3, vec![0.3, -0.7, 1.1]);
        let labels = [2];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-6;
        for c in 0..3 {
            let mut plus = logits.clone();
            plus.set(0, c, logits.get(0, c) + eps);
            let mut minus = logits.clone();
            minus.set(0, c, logits.get(0, c) - eps);
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - grad.get(0, c)).abs() < 1e-6, "component {c}");
        }
    }

    #[test]
    fn loss_is_stable_for_huge_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1e4, -1e4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss >= 0.0);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn softmax_rows_are_probability_vectors() {
        let logits = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, -5.0, 5.0, 0.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Matrix::zeros(1, 2);
        let _ = softmax_cross_entropy(&logits, &[2]);
    }
}
