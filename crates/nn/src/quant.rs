//! Fixed-point (quantized) inference mirroring the FPGA datapath.
//!
//! hls4ml-style FPGA implementations run dense layers in fixed-point
//! arithmetic (`ap_fixed<W, I>`). This module quantizes a trained [`Mlp`]
//! into integer weights/biases and executes inference entirely in `i64`
//! multiply-accumulates, so the accuracy impact of a hardware bit-width
//! choice can be measured in software (the bit-width ablation of the
//! reproduction's FPGA study).

use crate::matrix::Matrix;
use crate::net::{argmax, Mlp};

/// Fixed-point format: `total_bits` including sign, of which `frac_bits`
/// fractional.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantConfig {
    /// Total word width (including the sign bit), at most 32.
    pub total_bits: u32,
    /// Fractional bits (the binary point position).
    pub frac_bits: u32,
}

impl QuantConfig {
    /// The paper's FPGA evaluations use 16-bit words with 10 fractional bits,
    /// a common hls4ml default for small MLPs.
    pub const DEFAULT_16BIT: QuantConfig = QuantConfig {
        total_bits: 16,
        frac_bits: 10,
    };

    /// Scale factor `2^frac_bits`.
    pub fn scale(self) -> f64 {
        f64::from(1u32 << self.frac_bits)
    }

    /// Largest representable magnitude.
    pub fn max_value(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Quantizes a float to the saturating fixed-point grid.
    pub fn quantize(self, x: f64) -> i64 {
        let v = (x * self.scale()).round();
        let max = self.max_value() as f64;
        v.clamp(-max, max) as i64
    }

    /// Dequantizes back to float.
    pub fn dequantize(self, v: i64) -> f64 {
        v as f64 / self.scale()
    }

    /// Validates the format.
    ///
    /// # Errors
    ///
    /// Returns a message if widths are inconsistent (`frac_bits >=
    /// total_bits`, zero or oversized words).
    pub fn validate(self) -> Result<(), String> {
        if self.total_bits == 0 || self.total_bits > 32 {
            return Err("total bits must be in 1..=32".into());
        }
        if self.frac_bits >= self.total_bits {
            return Err("fractional bits must be smaller than total bits".into());
        }
        Ok(())
    }
}

/// A quantized copy of an [`Mlp`] executing in integer arithmetic.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    /// Per layer: `(weights[input][output], bias[output])` in fixed point.
    layers: Vec<(Vec<Vec<i64>>, Vec<i64>)>,
    config: QuantConfig,
}

impl QuantizedMlp {
    /// Quantizes every parameter of `net` into the given format.
    ///
    /// # Panics
    ///
    /// Panics if the format fails [`QuantConfig::validate`].
    pub fn from_mlp(net: &Mlp, config: QuantConfig) -> Self {
        config.validate().expect("invalid quantization format");
        let layers = net
            .layers()
            .iter()
            .map(|layer| {
                let w = layer.weights();
                let weights: Vec<Vec<i64>> = (0..w.rows())
                    .map(|r| w.row(r).iter().map(|&x| config.quantize(x)).collect())
                    .collect();
                let bias: Vec<i64> = layer.bias().iter().map(|&x| config.quantize(x)).collect();
                (weights, bias)
            })
            .collect();
        QuantizedMlp { layers, config }
    }

    /// The quantization format in use.
    pub fn config(&self) -> QuantConfig {
        self.config
    }

    /// Integer forward pass; returns fixed-point logits.
    ///
    /// Accumulation is in `i64`; after every layer the product scale
    /// (`2^{2f}`) is renormalized back to `2^f` by an arithmetic shift, as a
    /// DSP datapath would.
    ///
    /// # Panics
    ///
    /// Panics if the input dimension is wrong.
    pub fn forward_fixed(&self, input: &[f64]) -> Vec<i64> {
        let mut act: Vec<i64> = input.iter().map(|&x| self.config.quantize(x)).collect();
        let mut scratch = Vec::new();
        self.forward_quantized(&mut act, &mut scratch);
        act
    }

    /// Runs the layer stack over an already-quantized activation vector,
    /// double-buffering through `scratch` so repeated calls (the batched
    /// path) allocate nothing once both buffers are warm. `act` holds the
    /// logits on return.
    fn forward_quantized(&self, act: &mut Vec<i64>, scratch: &mut Vec<i64>) {
        let shift = self.config.frac_bits;
        for (idx, (weights, bias)) in self.layers.iter().enumerate() {
            assert_eq!(act.len(), weights.len(), "input dimension mismatch");
            let out_dim = bias.len();
            scratch.clear();
            scratch.resize(out_dim, 0i64);
            for (a, wrow) in act.iter().zip(weights) {
                if *a == 0 {
                    continue;
                }
                for (n, w) in scratch.iter_mut().zip(wrow) {
                    *n += a * w;
                }
            }
            for (n, b) in scratch.iter_mut().zip(bias) {
                // Renormalize the product scale, then add the bias (already
                // at scale 2^f).
                *n >>= shift;
                *n += b;
            }
            // ReLU on hidden layers.
            if idx + 1 < self.layers.len() {
                for n in scratch.iter_mut() {
                    if *n < 0 {
                        *n = 0;
                    }
                }
            }
            std::mem::swap(act, scratch);
        }
    }

    /// Batched fixed-point inference over single-precision activations — the
    /// bridge between the precision-generic float pipeline and the FPGA's
    /// fixed-point datapath: an `f32` feature plane (e.g. fused-filter
    /// outputs) is quantized row by row to the configured grid and classified
    /// entirely in integer arithmetic. Returns one predicted class per row.
    ///
    /// Decisions are identical to calling [`QuantizedMlp::predict`] on each
    /// widened row: `f32 → f64 → fixed` rounds the same way as `f32 → fixed`
    /// because every `f32` is exactly representable in `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the network's input dimension.
    pub fn forward_batch(&self, x: &Matrix<f32>) -> Vec<usize> {
        let mut act: Vec<i64> = Vec::new();
        let mut scratch: Vec<i64> = Vec::new();
        let mut out = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            act.clear();
            act.extend(x.row(r).iter().map(|&v| self.config.quantize(f64::from(v))));
            self.forward_quantized(&mut act, &mut scratch);
            let mut best = 0;
            for (i, &v) in act.iter().enumerate() {
                if v > act[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        out
    }

    /// Predicted class of one input.
    pub fn predict(&self, input: &[f64]) -> usize {
        let logits = self.forward_fixed(input);
        let floats: Vec<f64> = logits.iter().map(|&v| v as f64).collect();
        argmax(&floats)
    }

    /// Predicted classes for many inputs.
    pub fn predict_batch(&self, inputs: &[Vec<f64>]) -> Vec<usize> {
        inputs.iter().map(|x| self.predict(x)).collect()
    }

    /// Exports one layer's weights as a hexadecimal memory image — one word
    /// per line, two's-complement at the configured word width, row-major
    /// `[input][output]` order, biases appended. This is the `.mem`/`.mif`
    /// format FPGA toolchains initialize block RAM and LUT-ROM from, which
    /// is how a trained HERQULES head actually reaches the hardware.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn export_memory_image(&self, layer: usize) -> String {
        assert!(layer < self.layers.len(), "layer index out of range");
        let width_nibbles = (self.config.total_bits as usize).div_ceil(4);
        let mask = if self.config.total_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.total_bits) - 1
        };
        let (weights, bias) = &self.layers[layer];
        let mut out = String::new();
        for row in weights {
            for &w in row {
                let word = (w as u64) & mask;
                out.push_str(&format!("{word:0width_nibbles$x}\n"));
            }
        }
        for &b in bias {
            let word = (b as u64) & mask;
            out.push_str(&format!("{word:0width_nibbles$x}\n"));
        }
        out
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::TrainConfig;

    #[test]
    fn quantize_roundtrips_representable_values() {
        let q = QuantConfig::DEFAULT_16BIT;
        for x in [-3.5, -0.125, 0.0, 0.5, 7.25] {
            assert!((q.dequantize(q.quantize(x)) - x).abs() < 1.0 / q.scale());
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = QuantConfig {
            total_bits: 8,
            frac_bits: 4,
        };
        assert_eq!(q.quantize(1e9), q.max_value());
        assert_eq!(q.quantize(-1e9), -q.max_value());
    }

    #[test]
    fn invalid_formats_are_rejected() {
        assert!(QuantConfig {
            total_bits: 8,
            frac_bits: 8
        }
        .validate()
        .is_err());
        assert!(QuantConfig {
            total_bits: 0,
            frac_bits: 0
        }
        .validate()
        .is_err());
        assert!(QuantConfig {
            total_bits: 40,
            frac_bits: 8
        }
        .validate()
        .is_err());
        assert!(QuantConfig::DEFAULT_16BIT.validate().is_ok());
    }

    fn trained_net() -> (Mlp, Vec<Vec<f64>>, Vec<usize>) {
        // Separable 2-class problem in 2D.
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for k in 0..100 {
            let t = k as f64 / 10.0;
            inputs.push(vec![t.sin() + 2.0, t.cos()]);
            labels.push(0);
            inputs.push(vec![t.sin() - 2.0, t.cos()]);
            labels.push(1);
        }
        let mut net = Mlp::new(&[2, 8, 2], 3);
        net.train(
            &inputs,
            &labels,
            &TrainConfig {
                epochs: 60,
                ..TrainConfig::default()
            },
        );
        (net, inputs, labels)
    }

    #[test]
    fn sixteen_bit_quantization_preserves_predictions() {
        let (net, inputs, _) = trained_net();
        let qnet = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
        let float_preds = net.predict_batch(&inputs);
        let fixed_preds = qnet.predict_batch(&inputs);
        let agree = float_preds
            .iter()
            .zip(&fixed_preds)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree as f64 / inputs.len() as f64 > 0.98,
            "agreement {agree}/{}",
            inputs.len()
        );
    }

    #[test]
    fn very_low_bit_width_degrades() {
        let (net, inputs, labels) = trained_net();
        let q4 = QuantizedMlp::from_mlp(
            &net,
            QuantConfig {
                total_bits: 4,
                frac_bits: 2,
            },
        );
        let q16 = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
        let acc = |preds: &[usize]| {
            preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
        };
        let acc4 = acc(&q4.predict_batch(&inputs));
        let acc16 = acc(&q16.predict_batch(&inputs));
        assert!(
            acc16 >= acc4,
            "16-bit {acc16} must not be worse than 4-bit {acc4}"
        );
    }

    #[test]
    fn forward_batch_matches_per_row_predictions_within_one_percent_of_float() {
        let (net, inputs, labels) = trained_net();
        let qnet = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
        let x32: Matrix<f32> = Matrix::from_rows(&inputs).to_precision::<f32>();
        let batch = qnet.forward_batch(&x32);
        // Identical to widening each f32 row and running the scalar path.
        for (r, &pred) in batch.iter().enumerate() {
            let widened: Vec<f64> = x32.row(r).iter().map(|&v| f64::from(v)).collect();
            assert_eq!(pred, qnet.predict(&widened), "row {r}");
        }
        // Accuracy within 1 % of the float MLP on the same seeded dataset.
        let acc = |preds: &[usize]| {
            preds.iter().zip(&labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
        };
        let float_acc = acc(&net.predict_batch(&inputs));
        let fixed_acc = acc(&batch);
        assert!(
            (float_acc - fixed_acc).abs() <= 0.01,
            "float {float_acc} vs quantized-f32 batch {fixed_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_dimension_panics() {
        let (net, _, _) = trained_net();
        let qnet = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
        let _ = qnet.forward_fixed(&[1.0]);
    }

    #[test]
    fn memory_image_has_one_word_per_parameter() {
        let (net, _, _) = trained_net(); // 2-8-2 network
        let qnet = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
        assert_eq!(qnet.n_layers(), 2);
        let image = qnet.export_memory_image(0);
        // Layer 0: 2×8 weights + 8 biases = 24 words of 4 hex nibbles.
        let lines: Vec<&str> = image.lines().collect();
        assert_eq!(lines.len(), 24);
        assert!(lines.iter().all(|l| l.len() == 4));
        assert!(lines
            .iter()
            .all(|l| l.chars().all(|c| c.is_ascii_hexdigit())));
    }

    #[test]
    fn memory_image_words_decode_back_to_weights() {
        let (net, _, _) = trained_net();
        let qnet = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
        let image = qnet.export_memory_image(1);
        let first_word = image.lines().next().unwrap();
        let raw = u64::from_str_radix(first_word, 16).unwrap();
        // Sign-extend 16-bit two's complement.
        let value = (raw as i64) << 48 >> 48;
        let expected = QuantConfig::DEFAULT_16BIT.quantize(net.layers()[1].weights().get(0, 0));
        assert_eq!(value, expected);
    }

    #[test]
    #[should_panic(expected = "layer index out of range")]
    fn bad_layer_export_panics() {
        let (net, _, _) = trained_net();
        let qnet = QuantizedMlp::from_mlp(&net, QuantConfig::DEFAULT_16BIT);
        let _ = qnet.export_memory_image(5);
    }
}
