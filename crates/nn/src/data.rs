//! Data utilities: feature standardization and minibatch iteration.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-feature affine normalizer: `x → (x − mean) / std`.
///
/// Fit on the training set and applied to every set; keeping the filter
/// outputs roughly unit-scale makes the small FNN train reliably across
/// qubits with very different separations.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits mean and standard deviation per feature column.
    ///
    /// Features with vanishing deviation are given unit scale so transform
    /// stays finite.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or rows have unequal lengths.
    pub fn fit(samples: &[Vec<f64>]) -> Self {
        assert!(
            !samples.is_empty(),
            "cannot fit a standardizer on no samples"
        );
        let dim = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == dim),
            "all samples must have equal dimension"
        );
        let n = samples.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in samples {
            for (m, &x) in mean.iter_mut().zip(s) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; dim];
        for s in samples {
            for (d, (&x, &m)) in std.iter_mut().zip(s.iter().zip(&mean)) {
                *d += (x - m) * (x - m);
            }
        }
        for d in &mut std {
            *d = (*d / n).sqrt();
            if *d < 1e-12 {
                *d = 1.0;
            }
        }
        Standardizer { mean, std }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Transforms one sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample dimension differs from the fitted dimension.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.dim(), "sample dimension mismatch");
        sample
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    /// Transforms a whole set of samples.
    pub fn transform_all(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples.iter().map(|s| self.transform(s)).collect()
    }

    /// Transforms a flat row-major `[n × dim]` buffer in place — the
    /// allocation-free path used by batched inference.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of the fitted dimension.
    pub fn transform_rows_inplace(&self, rows: &mut [f64]) {
        let dim = self.dim();
        assert_eq!(rows.len() % dim.max(1), 0, "buffer is not whole rows");
        for row in rows.chunks_mut(dim) {
            for (x, (&m, &s)) in row.iter_mut().zip(self.mean.iter().zip(&self.std)) {
                *x = (*x - m) / s;
            }
        }
    }
}

/// Yields shuffled minibatch index ranges over `n` samples.
///
/// The last batch may be smaller than `batch_size`.
pub fn minibatch_indices(n: usize, batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_centers_and_scales() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
        let s = Standardizer::fit(&data);
        let t = s.transform_all(&data);
        // Means of transformed columns must be 0, deviations 1.
        for c in 0..2 {
            let mean: f64 = t.iter().map(|r| r[c]).sum::<f64>() / 2.0;
            let var: f64 = t.iter().map(|r| r[c] * r[c]).sum::<f64>() / 2.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_stays_finite() {
        let data = vec![vec![5.0], vec![5.0], vec![5.0]];
        let s = Standardizer::fit(&data);
        let t = s.transform(&[5.0]);
        assert_eq!(t, vec![0.0]);
        assert!(s.transform(&[6.0])[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_panics() {
        let _ = Standardizer::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_transform_panics() {
        let s = Standardizer::fit(&[vec![1.0, 2.0]]);
        let _ = s.transform(&[1.0]);
    }

    #[test]
    fn minibatches_cover_every_index_once() {
        let batches = minibatch_indices(10, 3, 4);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn minibatches_are_shuffled_deterministically() {
        assert_eq!(minibatch_indices(20, 4, 1), minibatch_indices(20, 4, 1));
        assert_ne!(minibatch_indices(20, 4, 1), minibatch_indices(20, 4, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_panics() {
        let _ = minibatch_indices(5, 0, 0);
    }
}
