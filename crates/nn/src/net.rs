//! The multilayer perceptron: architecture, inference, and training loop.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::minibatch_indices;
use crate::layers::{relu_inplace, Dense};
use crate::loss::{softmax, softmax_cross_entropy};
use crate::matrix::Matrix;
use crate::optim::{Adam, Optimizer, Sgd};

/// Which optimizer the training loop instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Adam with the configured learning rate.
    Adam,
    /// SGD with the configured learning rate and the given momentum.
    Sgd {
        /// Momentum coefficient in `[0, 1)`.
        momentum: f64,
    },
}

/// Training hyper-parameters for [`Mlp::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimizer learning rate.
    pub learning_rate: f64,
    /// Optimizer flavour.
    pub optimizer: OptimizerKind,
    /// Seed controlling minibatch shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            optimizer: OptimizerKind::Adam,
            seed: 0,
        }
    }
}

/// Summary returned by [`Mlp::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss after each epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock time spent inside the training loop.
    pub wall_time: Duration,
}

impl TrainReport {
    /// The loss after the final epoch.
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// A feed-forward network of dense layers with ReLU activations on hidden
/// layers and linear output (softmax applied in the loss / probability
/// helpers).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds a network with the given layer sizes, e.g. `[10, 20, 40, 20, 32]`
    /// for the paper's five-qubit HERQULES head. Weights are He-initialized
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers }
    }

    /// The layer sizes, input first.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![self.layers[0].input_size()];
        sizes.extend(self.layers.iter().map(Dense::output_size));
        sizes
    }

    /// Input dimension.
    pub fn input_size(&self) -> usize {
        self.layers[0].input_size()
    }

    /// Output dimension (number of classes).
    pub fn output_size(&self) -> usize {
        self.layers
            .last()
            .expect("at least one layer")
            .output_size()
    }

    /// The dense layers, input side first.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Total number of trainable parameters.
    pub fn n_parameters(&self) -> usize {
        self.layers.iter().map(Dense::n_parameters).sum()
    }

    /// Total multiply-accumulates per single-sample inference.
    pub fn n_macs(&self) -> usize {
        self.layers.iter().map(Dense::n_macs).sum()
    }

    /// Forward pass producing logits for a batch, one sample per row.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_size()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut a = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            relu_inplace(&mut a);
            a = layer.forward(&a);
        }
        a
    }

    /// Forward pass producing softmax probabilities.
    pub fn forward_probs(&self, x: &Matrix) -> Matrix {
        softmax(&self.forward(x))
    }

    /// Predicted class of a single input.
    ///
    /// # Panics
    ///
    /// Panics if the input dimension is wrong.
    pub fn predict(&self, input: &[f64]) -> usize {
        let x = Matrix::from_vec(1, input.len(), input.to_vec());
        let logits = self.forward(&x);
        argmax(logits.row(0))
    }

    /// Predicted classes for a set of inputs (one batched forward pass).
    pub fn predict_batch(&self, inputs: &[Vec<f64>]) -> Vec<usize> {
        if inputs.is_empty() {
            return Vec::new();
        }
        self.predict_rows(&Matrix::from_rows(inputs))
    }

    /// Predicted classes for a batch already materialized as a matrix (one
    /// sample per row) — the zero-copy path for batched inference pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_size()`.
    pub fn predict_rows(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x);
        (0..logits.rows()).map(|r| argmax(logits.row(r))).collect()
    }

    /// Trains the network with softmax cross-entropy on integer labels.
    ///
    /// # Panics
    ///
    /// Panics if inputs/labels disagree in length, the set is empty, or a
    /// label exceeds the output width.
    pub fn train(
        &mut self,
        inputs: &[Vec<f64>],
        labels: &[usize],
        config: &TrainConfig,
    ) -> TrainReport {
        assert_eq!(inputs.len(), labels.len(), "one label per input required");
        assert!(!inputs.is_empty(), "training set must be non-empty");
        let mut optimizer: Box<dyn Optimizer> = match config.optimizer {
            OptimizerKind::Adam => Box::new(Adam::new(config.learning_rate)),
            OptimizerKind::Sgd { momentum } => Box::new(Sgd::new(config.learning_rate, momentum)),
        };
        let start = Instant::now();
        let mut epoch_losses = Vec::with_capacity(config.epochs);
        for epoch in 0..config.epochs {
            let batches = minibatch_indices(
                inputs.len(),
                config.batch_size,
                config.seed.wrapping_add(epoch as u64),
            );
            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            for batch in &batches {
                let x_rows: Vec<Vec<f64>> = batch.iter().map(|&i| inputs[i].clone()).collect();
                let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                let x = Matrix::from_rows(&x_rows);
                let loss = self.train_step(&x, &y, optimizer.as_mut());
                epoch_loss += loss * batch.len() as f64;
                seen += batch.len();
            }
            epoch_losses.push(epoch_loss / seen as f64);
        }
        TrainReport {
            epoch_losses,
            wall_time: start.elapsed(),
        }
    }

    /// One forward/backward/update step on a batch; returns the batch loss.
    fn train_step(&mut self, x: &Matrix, labels: &[usize], optimizer: &mut dyn Optimizer) -> f64 {
        // Forward, caching post-activation inputs of every layer.
        let mut activations: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut masks: Vec<Matrix> = Vec::with_capacity(self.layers.len().saturating_sub(1));
        activations.push(x.clone());
        let mut a = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            let mask = relu_inplace(&mut a);
            masks.push(mask);
            activations.push(a.clone());
            a = layer.forward(&a);
        }
        let (loss, mut delta) = softmax_cross_entropy(&a, labels);

        // Backward through the stack.
        for l in (0..self.layers.len()).rev() {
            let input = &activations[l];
            // dW = inputᵀ · delta ; db = column sums of delta.
            let grad_w = input.transpose().matmul(&delta);
            let mut grad_b = vec![0.0; delta.cols()];
            for r in 0..delta.rows() {
                for (g, &d) in grad_b.iter_mut().zip(delta.row(r)) {
                    *g += d;
                }
            }
            // Propagate before updating the weights.
            if l > 0 {
                let mut next = delta.matmul(&self.layers[l].weights().transpose());
                let mask = &masks[l - 1];
                for (v, &m) in next.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *v *= m;
                }
                delta = next;
            }
            let layer = &mut self.layers[l];
            optimizer.step(2 * l, layer.weights_mut().as_mut_slice(), grad_w.as_slice());
            optimizer.step(2 * l + 1, layer.bias_mut(), &grad_b);
        }
        optimizer.end_step();
        loss
    }
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..50 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                inputs.push(vec![a, b]);
                labels.push(((a as i32) ^ (b as i32)) as usize);
            }
        }
        (inputs, labels)
    }

    #[test]
    fn architecture_reporting() {
        let net = Mlp::new(&[10, 20, 40, 20, 32], 0);
        assert_eq!(net.layer_sizes(), vec![10, 20, 40, 20, 32]);
        assert_eq!(net.input_size(), 10);
        assert_eq!(net.output_size(), 32);
        assert_eq!(net.n_macs(), 10 * 20 + 20 * 40 + 40 * 20 + 20 * 32);
        assert_eq!(net.n_parameters(), net.n_macs() + 20 + 40 + 20 + 32);
    }

    #[test]
    fn deterministic_construction() {
        let a = Mlp::new(&[4, 8, 2], 3);
        let b = Mlp::new(&[4, 8, 2], 3);
        assert_eq!(a, b);
        let c = Mlp::new(&[4, 8, 2], 4);
        assert_ne!(a, c);
    }

    #[test]
    fn learns_xor() {
        let (inputs, labels) = xor_data();
        let mut net = Mlp::new(&[2, 8, 8, 2], 1);
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 16,
            learning_rate: 5e-3,
            ..TrainConfig::default()
        };
        let report = net.train(&inputs, &labels, &cfg);
        assert!(report.final_loss() < 0.05, "loss {}", report.final_loss());
        for (a, b, want) in [(0.0, 0.0, 0), (0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)] {
            assert_eq!(net.predict(&[a, b]), want, "xor({a},{b})");
        }
    }

    #[test]
    fn sgd_also_learns() {
        let (inputs, labels) = xor_data();
        let mut net = Mlp::new(&[2, 16, 2], 2);
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 8,
            learning_rate: 0.05,
            optimizer: OptimizerKind::Sgd { momentum: 0.9 },
            seed: 0,
        };
        net.train(&inputs, &labels, &cfg);
        assert_eq!(net.predict(&[1.0, 0.0]), 1);
        assert_eq!(net.predict(&[1.0, 1.0]), 0);
    }

    #[test]
    fn loss_decreases_during_training() {
        let (inputs, labels) = xor_data();
        let mut net = Mlp::new(&[2, 8, 2], 5);
        let report = net.train(
            &inputs,
            &labels,
            &TrainConfig {
                epochs: 50,
                ..TrainConfig::default()
            },
        );
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn batch_prediction_matches_single() {
        let net = Mlp::new(&[3, 6, 4], 9);
        let inputs = vec![vec![0.1, -0.5, 0.3], vec![1.0, 1.0, -1.0]];
        let batch = net.predict_batch(&inputs);
        assert_eq!(batch[0], net.predict(&inputs[0]));
        assert_eq!(batch[1], net.predict(&inputs[1]));
    }

    #[test]
    fn probabilities_form_simplex() {
        let net = Mlp::new(&[2, 5, 3], 0);
        let p = net.forward_probs(&Matrix::from_vec(1, 2, vec![0.2, -0.7]));
        let sum: f64 = p.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_prediction_is_empty() {
        let net = Mlp::new(&[2, 3, 2], 0);
        assert!(net.predict_batch(&[]).is_empty());
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        assert_eq!(argmax(&[1.0, 1.0, 0.0]), 0);
        assert_eq!(argmax(&[0.0, 2.0, 2.0]), 1);
    }

    #[test]
    #[should_panic(expected = "one label per input")]
    fn mismatched_training_data_panics() {
        let mut net = Mlp::new(&[1, 2, 2], 0);
        let _ = net.train(&[vec![0.0]], &[0, 1], &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_size_panics() {
        let _ = Mlp::new(&[3], 0);
    }
}
