//! The persistent shard pool.
//!
//! A [`ShardPool`] owns a fixed set of worker threads that live as long as
//! the pool. Work is submitted as a *fan-out*: a task count `n` and a
//! `Fn(usize) + Sync` closure; workers (and the calling thread) claim task
//! indices from a shared cursor until all `n` have run. The closure is
//! borrowed, not boxed — publication writes one lifetime-erased fat pointer
//! into the job slot — so a warm dispatch performs **zero heap allocation**,
//! which is what lets the streaming engine's allocation-free round invariant
//! survive parallelization.
//!
//! Determinism: the pool itself guarantees only that each index in `0..n` is
//! executed exactly once per fan-out. Thread-count independence is the
//! *caller's* construction — each task must write only its own shard and
//! draw randomness only from its own [`stream_seed`](crate::stream_seed)
//! -derived stream. Every call site in this workspace follows that pattern
//! and pins it with a determinism test.
//!
//! Scheduling is dynamic (free workers take the next index), which keeps
//! ragged shard runtimes load-balanced without affecting results.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use herqles_telemetry::time::now_ns;

use crate::telemetry::PoolTelemetry;
use crate::tiles::Tiles;

thread_local! {
    /// The pool this thread is currently running a fan-out for — as
    /// publisher or as worker. A nested fan-out on the *same* pool can never
    /// make progress (the job slot is busy and, for a worker, its own task
    /// must finish first), so publication checks this and panics immediately
    /// instead of deadlocking. Fan-outs on a *different* pool nest fine.
    static ACTIVE_POOL: Cell<*const ()> = const { Cell::new(std::ptr::null()) };
}

/// RAII restore of [`ACTIVE_POOL`], unwind-safe.
struct ActivePoolGuard(*const ());

impl ActivePoolGuard {
    fn enter(pool_id: *const ()) -> Self {
        ActivePoolGuard(ACTIVE_POOL.with(|p| p.replace(pool_id)))
    }
}

impl Drop for ActivePoolGuard {
    fn drop(&mut self) {
        ACTIVE_POOL.with(|p| p.set(self.0));
    }
}

/// Lifetime-erased pointer to the fan-out closure of the current job.
///
/// Only dereferenced while the publishing [`ShardPool::run`] /
/// [`ShardPool::overlap`] frame is blocked on completion, which keeps the
/// closure alive.
#[derive(Clone, Copy)]
struct Job {
    task: *const (dyn Fn(usize) + Sync + 'static),
    n_tasks: usize,
}

// SAFETY: the pointer is only sent to pool workers and only dereferenced
// under the validity protocol above.
unsafe impl Send for Job {}

/// Shared dispatch state, guarded by one mutex.
struct Slot {
    job: Option<Job>,
    /// Bumped at every publication; lets idle workers distinguish a new job
    /// from the one they already drained.
    generation: u64,
    /// Next unclaimed task index of the current job.
    next: usize,
    /// Tasks published but not yet completed.
    pending: usize,
    /// Whether any task of the current job panicked.
    panicked: bool,
    shutdown: bool,
    /// Optional per-worker instrumentation. Read (one `Arc` clone) at most
    /// once per fan-out per thread, under this same lock; `None` costs one
    /// branch.
    telem: Option<Arc<PoolTelemetry>>,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers wait here for a new generation.
    work: Condvar,
    /// The publisher waits here for `pending == 0`.
    done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Slot> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A persistent, deterministic worker pool for sharded fan-outs.
///
/// `ShardPool::new(t)` provides total parallelism `t`: `t - 1` background
/// workers plus the calling thread, which always participates in fan-outs
/// (so `ShardPool::new(1)` spawns nothing and runs everything inline).
///
/// Fan-outs on one pool are serialized internally; the pool is `Sync` and
/// may be shared, but concurrent fan-outs queue rather than interleave.
/// *Nested* fan-outs on the same pool — publishing from inside a task or a
/// [`ShardPool::overlap`] consume stage — can never make progress and
/// therefore panic immediately rather than deadlock; nesting across
/// *different* pools is fine.
pub struct ShardPool {
    shared: Arc<Shared>,
    /// Serializes publications so one job slot suffices.
    fan_out_guard: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl ShardPool {
    /// Builds a pool with total parallelism `threads` (the caller counts as
    /// one; `threads - 1` background workers are spawned).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                job: None,
                generation: 0,
                next: 0,
                pending: 0,
                panicked: false,
                shutdown: false,
                telem: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("herqles-shard-{k}"))
                    .spawn(move || worker_loop(&shared, k))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ShardPool {
            shared,
            fan_out_guard: Mutex::new(()),
            workers,
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`).
    pub fn with_default_parallelism() -> Self {
        ShardPool::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Total parallelism: background workers plus the calling thread.
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Attaches (or, with `None`, detaches) per-worker instrumentation:
    /// every subsequently executed task records a span + busy-ns into
    /// `telem`. Zero-cost when unset beyond one branch per task. Takes
    /// effect from the next fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `telem` was sized for a different worker count than
    /// [`ShardPool::threads`].
    pub fn set_telemetry(&self, telem: Option<Arc<PoolTelemetry>>) {
        if let Some(t) = &telem {
            assert_eq!(
                t.workers(),
                self.threads(),
                "PoolTelemetry sized for {} workers, pool has {} threads",
                t.workers(),
                self.threads()
            );
        }
        self.shared.lock().telem = telem;
    }

    /// The currently attached instrumentation, if any.
    pub fn telemetry(&self) -> Option<Arc<PoolTelemetry>> {
        self.shared.lock().telem.clone()
    }

    /// Forces every thread of the pool through one full task execution
    /// (publication, claim, run, completion) before returning.
    ///
    /// Dynamic scheduling means an idle worker may otherwise claim its first
    /// task arbitrarily late and pay its one-time lazy runtime
    /// initialization (TLS, unwind bookkeeping) in the middle of a
    /// latency-critical — or allocation-probed — region. One fan-out of
    /// exactly `threads()` barrier-synchronized tasks guarantees each thread
    /// claims exactly one task (no thread can take a second before all have
    /// arrived), making the warm-up deterministic rather than scheduling-
    /// dependent.
    pub fn warm_up(&self) {
        let barrier = std::sync::Barrier::new(self.threads());
        self.run(self.threads(), |_| {
            barrier.wait();
        });
    }

    /// Runs `f(i)` for every `i in 0..n_tasks` across the pool, returning
    /// when all tasks have completed. The calling thread participates.
    ///
    /// Each index is executed exactly once; scheduling is dynamic, so `f`
    /// must not depend on execution order (write only shard `i`'s output,
    /// derive randomness from `i`).
    ///
    /// Warm calls perform no heap allocation.
    ///
    /// # Panics
    ///
    /// Propagates a panic if any task panicked (after all tasks finished or
    /// were abandoned, so no worker still borrows `f`).
    pub fn run<F: Fn(usize) + Sync>(&self, n_tasks: usize, f: F) {
        self.overlap(n_tasks, f, || ());
    }

    /// Runs `f(i, &mut shards[i])` for every shard across the pool.
    ///
    /// The `&mut` accesses are disjoint by construction (task `i` touches
    /// shard `i` only), which is what makes lock-free parallel mutation
    /// sound here.
    pub fn run_mut<S: Send, F: Fn(usize, &mut S) + Sync>(&self, shards: &mut [S], f: F) {
        let tiles = Tiles::new(shards);
        self.run(tiles.len(), |i| {
            // SAFETY: the dispatch loop hands index `i` to exactly one task,
            // so this is the only live borrow of shard `i`.
            f(i, unsafe { tiles.item(i) });
        });
    }

    /// The two-stage pipeline primitive: fans `produce` out across the
    /// background workers while the calling thread runs `consume`; the
    /// caller then joins the remaining `produce` tasks and blocks until the
    /// fan-out completes. Returns `consume`'s result.
    ///
    /// The stages must touch disjoint state (e.g. `produce` fills the next
    /// round's buffers while `consume` drains the current round's); under
    /// that contract the result is identical to running `consume` and the
    /// `produce` loop sequentially — which is exactly what a 1-thread pool
    /// does.
    pub fn overlap<T, P, C>(&self, n_produce: usize, produce: P, consume: C) -> T
    where
        P: Fn(usize) + Sync,
        C: FnOnce() -> T,
    {
        if self.workers.is_empty() || n_produce == 0 {
            // Inline degeneration: consume, then the produce loop. Order is
            // unobservable under the disjoint-stages contract. The caller is
            // logical worker 0 for instrumentation purposes.
            let out = consume();
            if n_produce > 0 {
                let telem = self.shared.lock().telem.clone();
                for i in 0..n_produce {
                    match telem.as_deref() {
                        Some(t) => {
                            let begin = now_ns();
                            produce(i);
                            t.note_task(0, i, begin, now_ns().saturating_sub(begin));
                        }
                        None => produce(i),
                    }
                }
            }
            return out;
        }

        let pool_id = Arc::as_ptr(&self.shared) as *const ();
        assert!(
            ACTIVE_POOL.with(Cell::get) != pool_id,
            "nested fan-out on the same ShardPool (from a task or consume stage) would deadlock"
        );
        let _active = ActivePoolGuard::enter(pool_id);
        let guard = self.fan_out_guard.lock().unwrap_or_else(|e| e.into_inner());

        // Publish the job. SAFETY of the lifetime erasure: this frame does
        // not return (and `produce` is not dropped) until `pending == 0` and
        // the slot is cleared below, so no worker can observe a dangling
        // pointer.
        let task_ref: &(dyn Fn(usize) + Sync) = &produce;
        let task: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(task_ref) };
        let telem = {
            let mut slot = self.shared.lock();
            slot.job = Some(Job {
                task,
                n_tasks: n_produce,
            });
            slot.generation = slot.generation.wrapping_add(1);
            slot.next = 0;
            slot.pending = n_produce;
            slot.panicked = false;
            self.shared.work.notify_all();
            slot.telem.clone()
        };

        // Stage two runs on the calling thread, overlapped with the fan-out.
        // A consume panic must not unwind past the borrow of `produce`, so
        // it is caught and re-raised after the fan-out completes.
        let consumed = catch_unwind(AssertUnwindSafe(consume));

        // Join the fan-out: claim remaining indices, then wait for stragglers.
        loop {
            let i = {
                let mut slot = self.shared.lock();
                if slot.next >= n_produce {
                    break;
                }
                let i = slot.next;
                slot.next += 1;
                i
            };
            let begin = telem.as_deref().map(|_| now_ns());
            let result = catch_unwind(AssertUnwindSafe(|| produce(i)));
            if let (Some(t), Some(begin)) = (telem.as_deref(), begin) {
                t.note_task(0, i, begin, now_ns().saturating_sub(begin));
            }
            let mut slot = self.shared.lock();
            if result.is_err() {
                slot.panicked = true;
            }
            slot.pending -= 1;
            if slot.pending == 0 {
                self.shared.done.notify_all();
            }
        }
        let panicked = {
            let mut slot = self.shared.lock();
            while slot.pending > 0 {
                slot = self
                    .shared
                    .done
                    .wait(slot)
                    .unwrap_or_else(|e| e.into_inner());
            }
            slot.job = None;
            slot.panicked
        };
        drop(guard);

        match consumed {
            Ok(out) => {
                assert!(!panicked, "a ShardPool task panicked");
                out
            }
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.lock();
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    // Workers belong to exactly one pool for their whole life: mark it once
    // so a task that tries to publish a nested fan-out on this same pool
    // panics (propagated to the publisher) instead of deadlocking.
    ACTIVE_POOL.with(|p| p.set(shared as *const Shared as *const ()));
    let mut slot = shared.lock();
    loop {
        if slot.shutdown {
            return;
        }
        let claimable = slot
            .job
            .is_some_and(|job| slot.next < job.n_tasks && slot.pending > 0);
        if !claimable {
            slot = shared.work.wait(slot).unwrap_or_else(|e| e.into_inner());
            continue;
        }
        let job = slot.job.expect("claimable job present");
        let generation = slot.generation;
        // One `Arc` clone per generation, under the lock we already hold —
        // not per task, and no allocation.
        let telem = slot.telem.clone();
        // Drain this generation's tasks. The publisher stays blocked while
        // `pending > 0` (each claimed task keeps `pending` nonzero until its
        // completion is recorded), so the task pointer stays valid for every
        // claim made here.
        while slot.generation == generation && slot.next < job.n_tasks {
            let i = slot.next;
            slot.next += 1;
            drop(slot);
            let begin = telem.as_deref().map(|_| now_ns());
            // SAFETY: pointer validity per the protocol above.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.task)(i) }));
            if let (Some(t), Some(begin)) = (telem.as_deref(), begin) {
                t.note_task(worker, i, begin, now_ns().saturating_sub(begin));
            }
            slot = shared.lock();
            if result.is_err() {
                slot.panicked = true;
            }
            slot.pending -= 1;
            if slot.pending == 0 {
                shared.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ShardPool::new(4);
        for n in [0usize, 1, 3, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n}: some index ran zero or multiple times"
            );
        }
    }

    #[test]
    fn run_mut_gives_each_task_its_own_shard() {
        for threads in [1, 2, 4, 8] {
            let pool = ShardPool::new(threads);
            let mut shards = vec![0usize; 37];
            pool.run_mut(&mut shards, |i, s| *s = i * i);
            let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(shards, expect, "threads={threads}");
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let reference: Vec<u64> = (0..100).map(|i| crate::stream_seed(5, i)).collect();
        for threads in [1, 2, 3, 7] {
            let pool = ShardPool::new(threads);
            let mut out = vec![0u64; 100];
            pool.run_mut(&mut out, |i, v| *v = crate::stream_seed(5, i as u64));
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_fan_outs() {
        let pool = ShardPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(17, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 17);
    }

    #[test]
    fn overlap_runs_consume_and_all_produce_tasks() {
        for threads in [1, 2, 4] {
            let pool = ShardPool::new(threads);
            let mut produced = vec![false; 23];
            let tiles = Tiles::new(&mut produced);
            let consumed = pool.overlap(
                tiles.len(),
                |i| {
                    // SAFETY: one task per index.
                    *unsafe { tiles.item(i) } = true;
                },
                || 41 + 1,
            );
            assert_eq!(consumed, 42);
            assert!(produced.iter().all(|&p| p), "threads={threads}");
        }
    }

    #[test]
    fn overlap_with_zero_produce_tasks_still_consumes() {
        let pool = ShardPool::new(2);
        assert_eq!(pool.overlap(0, |_| unreachable!(), || "ok"), "ok");
    }

    #[test]
    fn task_panic_propagates_after_the_fan_out_completes() {
        let pool = ShardPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "panic must propagate to the publisher");
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool must remain usable after a panicked fan-out.
        let ok = AtomicUsize::new(0);
        pool.run(4, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_fan_out_panics_instead_of_deadlocking() {
        // From the consume stage of an overlap (publisher thread)…
        let pool = ShardPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.overlap(2, |_| {}, || pool.run(1, |_| {}));
        }));
        assert!(result.is_err(), "nested publish must panic, not hang");
        // …and from inside a task (worker or participating caller).
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |_| pool.run(1, |_| {}));
        }));
        assert!(result.is_err(), "nested task publish must panic, not hang");
        // The pool survives both.
        let hits = AtomicUsize::new(0);
        pool.run(3, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn fan_outs_nest_across_different_pools() {
        let outer = ShardPool::new(2);
        let inner = ShardPool::new(2);
        let hits = AtomicUsize::new(0);
        outer.run(4, |_| {
            inner.run(2, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ShardPool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        pool.run(5, |_| assert_eq!(std::thread::current().id(), caller));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = ShardPool::new(0);
    }

    #[test]
    fn telemetry_records_every_task_with_worker_tracks() {
        let pool = ShardPool::new(3);
        let telem = Arc::new(PoolTelemetry::with_span_capacity(3, 256));
        pool.set_telemetry(Some(Arc::clone(&telem)));
        pool.warm_up();
        pool.run(20, |_| std::hint::black_box(()));
        let consumed = pool.overlap(10, |_| std::hint::black_box(()), || 7);
        assert_eq!(consumed, 7);
        // warm_up (3 tasks) + run (20) + overlap (10).
        assert_eq!(telem.total_tasks(), 33);
        let spans = telem.spans().snapshot();
        assert_eq!(spans.len(), 33);
        assert!(spans
            .iter()
            .all(|s| s.kind == herqles_telemetry::SpanKind::Task && (s.track as usize) < 3));
        // warm_up's barrier guarantees every worker ran at least one task.
        for w in 0..3 {
            assert!(telem.tasks_run(w) >= 1, "worker {w} never ran a task");
            assert!(telem.busy_ns(w) > 0 || telem.tasks_run(w) == 0);
        }
        // Detaching stops recording; the pool still works.
        pool.set_telemetry(None);
        pool.run(5, |_| {});
        assert_eq!(telem.total_tasks(), 33);

        // The 1-thread inline degeneration path records as worker 0 too.
        let inline_pool = ShardPool::new(1);
        let inline_telem = Arc::new(PoolTelemetry::with_span_capacity(1, 64));
        inline_pool.set_telemetry(Some(Arc::clone(&inline_telem)));
        inline_pool.run(4, |_| {});
        assert_eq!(inline_telem.tasks_run(0), 4);
        assert!(inline_telem.spans().snapshot().iter().all(|s| s.track == 0));
    }
}
