//! # herqles-exec — deterministic parallel execution runtime
//!
//! The streaming QEC-cycle engine and the calibration-dataset generator both
//! shard *embarrassingly parallel but order-sensitive* work: every shard's
//! output must be a pure function of `(shard index, seed)` so that running
//! on 1, 2 or 16 threads produces bit-identical results. Before this crate
//! each call site hand-rolled `std::thread::scope` sharding; this crate
//! centralizes the pattern behind a persistent worker pool:
//!
//! * [`ShardPool`] — a fixed set of persistent worker threads with three
//!   entry points:
//!   - [`ShardPool::run`]: parallel-for over task indices (the caller
//!     participates, so a 1-thread pool degenerates to an inline loop);
//!   - [`ShardPool::run_mut`]: parallel-for over disjoint `&mut` shards;
//!   - [`ShardPool::overlap`]: the two-stage pipeline primitive — task
//!     indices fan out to the workers while the caller runs a serial
//!     `consume` stage, then joins the fan-out. This is what lets the cycle
//!     engine synthesize round `t+1`'s readout while discriminating and
//!     decoding round `t`.
//! * [`Tiles`] — a `Sync` view of disjoint mutable tiles over one buffer,
//!   for shard closures that each write their own row of a shared batch;
//! * [`stream_seed`] — the SplitMix64 RNG-stream derivation (shared with
//!   `readout_sim`'s dataset generator) that makes per-shard randomness a
//!   function of `(root seed, shard index)` rather than of the sharding
//!   layout.
//! * [`PoolTelemetry`] — optional per-worker instrumentation
//!   ([`ShardPool::set_telemetry`]): task spans with worker-id tracks plus
//!   busy/idle-ns counters, zero-cost when unset and allocation-free when
//!   attached.
//!
//! **Determinism is by construction, not by scheduling**: the pool hands out
//! task indices dynamically (whichever worker is free takes the next shard),
//! but because every task writes only its own shard and draws only from its
//! own derived RNG stream, the result is independent of the interleaving.
//! Dispatch itself performs **zero heap allocation**, so a warm engine round
//! stays allocation-free even when it fans out across the pool.
//!
//! # Example
//!
//! ```
//! use herqles_exec::{stream_seed, ShardPool};
//!
//! let pool = ShardPool::new(4);
//! let mut shards = vec![0u64; 16];
//! pool.run_mut(&mut shards, |i, out| {
//!     // Each shard derives its own RNG stream: the result is identical
//!     // for every pool size.
//!     *out = stream_seed(42, i as u64);
//! });
//! assert_eq!(shards[3], stream_seed(42, 3));
//! ```

pub mod pool;
pub mod rng;
pub mod telemetry;
pub mod tiles;

pub use pool::ShardPool;
pub use rng::stream_seed;
pub use telemetry::PoolTelemetry;
pub use tiles::Tiles;
