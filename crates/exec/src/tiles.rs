//! Disjoint mutable tiles over one contiguous buffer.
//!
//! Shard closures frequently need to write their own slice of a *shared*
//! buffer — e.g. one row of a `[groups × samples]` shot batch — from several
//! workers at once. Safe Rust cannot express "this `&mut [T]` is split into
//! tiles and each task touches exactly one", so [`Tiles`] carries the raw
//! pointer and a documented safety contract instead: the
//! [`ShardPool`](crate::ShardPool) dispatch loop hands every index to exactly
//! one task, which makes per-index access exclusive by construction.

use std::marker::PhantomData;

/// A `Sync` view of `n_tiles` disjoint mutable tiles of `tile_len` elements
/// each over one borrowed buffer.
///
/// Constructed from an exclusive borrow, so for its lifetime no other code
/// can observe the buffer; the unsafe accessors re-partition that exclusivity
/// across tasks.
#[derive(Debug)]
pub struct Tiles<'a, T> {
    ptr: *mut T,
    n_tiles: usize,
    tile_len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a Tiles value only ever hands out disjoint &mut tiles (per the
// accessors' contracts), so sharing the view across threads is sound exactly
// when sending &mut [T] itself would be.
unsafe impl<T: Send> Sync for Tiles<'_, T> {}
unsafe impl<T: Send> Send for Tiles<'_, T> {}

impl<'a, T> Tiles<'a, T> {
    /// One element per tile: tile `i` is element `i`.
    pub fn new(slice: &'a mut [T]) -> Self {
        Tiles {
            ptr: slice.as_mut_ptr(),
            n_tiles: slice.len(),
            tile_len: 1,
            _marker: PhantomData,
        }
    }

    /// Fixed-width tiles: tile `i` is `slice[i*tile_len .. (i+1)*tile_len]`.
    ///
    /// # Panics
    ///
    /// Panics if `tile_len` is zero or does not divide the buffer length.
    pub fn chunks(slice: &'a mut [T], tile_len: usize) -> Self {
        assert!(tile_len > 0, "tile length must be positive");
        assert_eq!(
            slice.len() % tile_len,
            0,
            "tile length must divide the buffer length"
        );
        Tiles {
            ptr: slice.as_mut_ptr(),
            n_tiles: slice.len() / tile_len,
            tile_len,
            _marker: PhantomData,
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.n_tiles
    }

    /// Whether the view holds no tiles.
    pub fn is_empty(&self) -> bool {
        self.n_tiles == 0
    }

    /// Elements per tile.
    pub fn tile_len(&self) -> usize {
        self.tile_len
    }

    /// Exclusive access to tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    ///
    /// # Safety
    ///
    /// For any index `i`, at most one live `&mut` obtained from this view may
    /// exist at a time (across all threads). The [`ShardPool`](crate::pool)
    /// dispatch loop guarantees this when each task touches only the tile of
    /// its own task index.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn tile(&self, i: usize) -> &'a mut [T] {
        assert!(i < self.n_tiles, "tile index out of range");
        std::slice::from_raw_parts_mut(self.ptr.add(i * self.tile_len), self.tile_len)
    }

    /// Exclusive access to single-element tile `i` (requires `tile_len == 1`,
    /// i.e. a view built with [`Tiles::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the view is chunked.
    ///
    /// # Safety
    ///
    /// Same contract as [`Tiles::tile`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn item(&self, i: usize) -> &'a mut T {
        assert_eq!(
            self.tile_len, 1,
            "item access requires single-element tiles"
        );
        assert!(i < self.n_tiles, "tile index out of range");
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_partition_the_buffer() {
        let mut buf = vec![0u32; 12];
        let tiles = Tiles::chunks(&mut buf, 3);
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles.tile_len(), 3);
        for i in 0..4 {
            // SAFETY: each index accessed exactly once, sequentially.
            let t = unsafe { tiles.tile(i) };
            t.fill(i as u32);
        }
        assert_eq!(buf, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn item_view_is_per_element() {
        let mut buf = vec![0u8; 5];
        let tiles = Tiles::new(&mut buf);
        for i in 0..tiles.len() {
            // SAFETY: sequential exclusive access.
            *unsafe { tiles.item(i) } = i as u8;
        }
        assert_eq!(buf, [0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "divide the buffer length")]
    fn ragged_tiling_is_rejected() {
        let mut buf = vec![0u8; 5];
        let _ = Tiles::chunks(&mut buf, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tile_panics() {
        let mut buf = vec![0u8; 4];
        let tiles = Tiles::chunks(&mut buf, 2);
        let _ = unsafe { tiles.tile(2) };
    }
}
