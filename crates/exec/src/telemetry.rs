//! Per-worker pool instrumentation: task spans and busy-time counters.
//!
//! A [`PoolTelemetry`] attached to a [`ShardPool`](crate::ShardPool) via
//! [`ShardPool::set_telemetry`](crate::ShardPool::set_telemetry) records one
//! [`SpanKind::Task`] span per executed fan-out task — begin timestamp,
//! duration, the *worker index* as the span track, the task index as the
//! payload — plus per-worker busy-ns and task counters. That is exactly
//! what a flight-recorder export needs to show `overlap`'s
//! synthesis/decode concurrency: which worker ran which shard, when, for
//! how long, laid out on one track per worker.
//!
//! Cost model: when no telemetry is attached the pool's dispatch path pays
//! one `Option` check per fan-out. When attached, each task pays two
//! monotonic-clock reads, one lock-free span record and two relaxed
//! `fetch_add`s — no locks, no allocation — so the streaming engine's
//! zero-alloc warm-cycle invariant survives with instrumentation on.
//!
//! Worker indexing: the calling thread is logical worker `0` (it always
//! participates in fan-outs); background workers are `1..threads`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use herqles_telemetry::span::{SpanKind, SpanRing};
use herqles_telemetry::time::now_ns;

/// Default span-ring capacity: enough for several hundred fan-outs of a
/// typical shard count before wrapping.
pub const POOL_SPAN_CAPACITY: usize = 8192;

/// Per-worker instrumentation shared between a pool's threads and the
/// observer draining it. See the module docs.
#[derive(Debug)]
pub struct PoolTelemetry {
    spans: SpanRing,
    busy_ns: Vec<AtomicU64>,
    tasks: Vec<AtomicU64>,
    /// [`now_ns`] at construction, the baseline for idle accounting.
    created_ns: u64,
}

impl PoolTelemetry {
    /// Telemetry for a pool of total parallelism `threads` (caller + background
    /// workers) with the default span capacity.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_span_capacity(threads, POOL_SPAN_CAPACITY)
    }

    /// Telemetry with an explicit span-ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `span_capacity` is zero.
    #[must_use]
    pub fn with_span_capacity(threads: usize, span_capacity: usize) -> Self {
        assert!(threads > 0, "pool telemetry needs at least one worker");
        PoolTelemetry {
            spans: SpanRing::new(span_capacity),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            tasks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            created_ns: now_ns(),
        }
    }

    /// Workers this telemetry covers (caller included).
    pub fn workers(&self) -> usize {
        self.busy_ns.len()
    }

    /// Records one executed task. Called by the pool's dispatch paths;
    /// lock- and allocation-free.
    #[inline]
    pub(crate) fn note_task(&self, worker: usize, task_index: usize, begin_ns: u64, dur_ns: u64) {
        self.spans.record(
            SpanKind::Task,
            worker as u32,
            begin_ns,
            dur_ns,
            task_index as u64,
        );
        self.busy_ns[worker].fetch_add(dur_ns, Relaxed);
        self.tasks[worker].fetch_add(1, Relaxed);
    }

    /// The task-span ring (track = worker index, `arg` = task index).
    pub fn spans(&self) -> &SpanRing {
        &self.spans
    }

    /// Nanoseconds worker `w` spent inside tasks since construction.
    pub fn busy_ns(&self, w: usize) -> u64 {
        self.busy_ns[w].load(Relaxed)
    }

    /// Nanoseconds worker `w` spent *outside* tasks since this telemetry
    /// was constructed (wall time minus busy time, saturating).
    pub fn idle_ns(&self, w: usize) -> u64 {
        now_ns()
            .saturating_sub(self.created_ns)
            .saturating_sub(self.busy_ns(w))
    }

    /// Tasks worker `w` has executed since construction.
    pub fn tasks_run(&self, w: usize) -> u64 {
        self.tasks[w].load(Relaxed)
    }

    /// Total tasks executed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.tasks.iter().map(|t| t.load(Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_task_accumulates_per_worker() {
        let t = PoolTelemetry::with_span_capacity(3, 16);
        t.note_task(0, 5, 100, 40);
        t.note_task(2, 6, 100, 60);
        t.note_task(2, 7, 160, 10);
        assert_eq!(t.workers(), 3);
        assert_eq!(t.busy_ns(0), 40);
        assert_eq!(t.busy_ns(1), 0);
        assert_eq!(t.busy_ns(2), 70);
        assert_eq!(t.tasks_run(2), 2);
        assert_eq!(t.total_tasks(), 3);
        let spans = t.spans().snapshot();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.kind == SpanKind::Task));
        assert_eq!(spans[1].track, 2);
        assert_eq!(spans[1].arg, 6);
        assert!(t.idle_ns(1) >= t.idle_ns(2).saturating_sub(1_000_000_000));
    }
}
