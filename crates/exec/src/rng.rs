//! Derivation of decorrelated per-shard RNG streams.
//!
//! Thread-count-independent parallelism needs per-shard randomness that is a
//! pure function of `(root seed, shard index)` — never of which worker runs
//! the shard or in what order. [`stream_seed`] provides that: a SplitMix64
//! finalizer over a golden-ratio-spaced sequence, the same construction the
//! calibration-dataset generator has used per basis state since it was
//! parallelized (so existing pinned outputs are preserved bit for bit).

/// Derives the RNG seed of shard `index`'s stream from the root `seed`.
///
/// SplitMix64 finalizer over a golden-ratio-spaced input: adjacent indices
/// map to decorrelated seeds, and the mapping is stable across sharding
/// layouts and thread counts. Feed the result to
/// `rand::rngs::StdRng::seed_from_u64`.
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_decorrelated_and_deterministic() {
        assert_eq!(stream_seed(7, 0), stream_seed(7, 0));
        assert_ne!(stream_seed(7, 0), stream_seed(7, 1));
        assert_ne!(stream_seed(7, 0), stream_seed(8, 0));
        // No short-range collisions over a realistic shard range.
        let seeds: Vec<u64> = (0..1024).map(|i| stream_seed(99, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision in stream seeds");
    }

    #[test]
    fn matches_the_dataset_generators_historical_derivation() {
        // The dataset generator's per-state seeds are pinned by
        // `generation_is_independent_of_thread_count`; this formula must stay
        // bit-identical to the one it shipped with.
        let golden = 0x9E37_79B9_7F4A_7C15u64;
        for (seed, state) in [(0u64, 0u64), (31, 3), (u64::MAX, 17)] {
            let mut z = seed
                .wrapping_add((state + 1).wrapping_mul(golden))
                .wrapping_add(golden);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            assert_eq!(stream_seed(seed, state), z);
        }
    }
}
