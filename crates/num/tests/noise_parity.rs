//! Noise-backend parity suite, mirroring `kernel_parity.rs`: the scalar
//! backend is pinned bit-for-bit against the historical per-sample draw
//! loop, and the AVX2 backend — which intentionally runs a different (lane
//! -parallel) stream — is pinned statistically: moment bounds, a KS-style
//! CDF distance against the scalar reference, and a buffer-length sweep
//! over the 0/1/lane/remainder edges.

use herqles_num::{Avx2NoiseKernel, NoiseKernel, Real, ScalarNoiseKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lengths exercising empty, sub-lane, exact-lane/batch, and remainder
/// shapes of the 4-lane / 8-deviate AVX2 pipeline.
const LENGTHS: &[usize] = &[0, 1, 3, 4, 7, 8, 9, 16, 31, 32, 33, 500];

fn scalar_reference<R: Real>(seed: u64, n: usize) -> Vec<R> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spare = None;
    (0..n)
        .map(|_| R::sample_gaussian(&mut rng, &mut spare))
        .collect()
}

#[test]
fn scalar_fill_bit_identical_to_draw_loop_all_lengths() {
    for &n in LENGTHS {
        let mut out = vec![0.0f64; n];
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ n as u64);
        ScalarNoiseKernel.fill_standard(&mut rng, &mut None.clone(), &mut out);
        // fill_standard took its own spare; replay with an explicit one.
        let mut out2 = vec![0.0f64; n];
        let mut rng2 = StdRng::seed_from_u64(0xC0FFEE ^ n as u64);
        let mut spare = None;
        ScalarNoiseKernel.fill_standard(&mut rng2, &mut spare, &mut out2);
        assert_eq!(out, out2);
        assert_eq!(out2, scalar_reference::<f64>(0xC0FFEE ^ n as u64, n));
    }
}

#[test]
fn scalar_add_iq_bit_identical_to_interleaved_loop_all_lengths() {
    for &n in LENGTHS {
        let sigma = 2.5f64;
        let mut i_a = vec![1.0f64; n];
        let mut q_a = vec![-1.0f64; n];
        let mut rng = StdRng::seed_from_u64(n as u64 + 1);
        let mut spare = None;
        ScalarNoiseKernel.add_iq(&mut rng, sigma, &mut spare, &mut i_a, &mut q_a);

        let mut i_b = vec![1.0f64; n];
        let mut q_b = vec![-1.0f64; n];
        let mut rng2 = StdRng::seed_from_u64(n as u64 + 1);
        let mut spare2 = None;
        for t in 0..n {
            i_b[t] += sigma * f64::sample_gaussian(&mut rng2, &mut spare2);
            q_b[t] += sigma * f64::sample_gaussian(&mut rng2, &mut spare2);
        }
        assert_eq!(i_a, i_b, "length {n}");
        assert_eq!(q_a, q_b, "length {n}");
        // Same number of caller draws consumed.
        assert_eq!(rng.next_u64(), rng2.next_u64(), "length {n}");
    }
}

#[test]
fn avx2_fill_deterministic_and_finite_all_lengths() {
    let Some(k) = Avx2NoiseKernel::get() else {
        eprintln!("skipping: no AVX2+FMA on this host");
        return;
    };
    for &n in LENGTHS {
        let run = || {
            let mut rng = StdRng::seed_from_u64(99 + n as u64);
            let mut out = vec![0.0f64; n];
            k.fill_standard(&mut rng, &mut None, &mut out);
            out
        };
        let a = run();
        assert_eq!(a, run(), "length {n} must be deterministic per seed");
        for (t, x) in a.iter().enumerate() {
            assert!(x.is_finite(), "non-finite deviate at {t} (length {n})");
        }
    }
}

#[test]
fn avx2_add_iq_consumes_one_draw_and_adds_in_place() {
    let Some(k) = Avx2NoiseKernel::get() else {
        eprintln!("skipping: no AVX2+FMA on this host");
        return;
    };
    for &n in LENGTHS {
        let mut rng = StdRng::seed_from_u64(7);
        let mut shadow = StdRng::seed_from_u64(7);
        let base_i = vec![0.5f64; n];
        let base_q = vec![-0.25f64; n];
        let mut i = base_i.clone();
        let mut q = base_q.clone();
        k.add_iq(&mut rng, 3.0, &mut None, &mut i, &mut q);
        let _one_draw = shadow.next_u64();
        assert_eq!(rng.next_u64(), shadow.next_u64(), "length {n}");

        // The fill is seed-pure: replaying the same caller state onto zero
        // rows must reproduce the added deviates (up to one FMA rounding of
        // the non-zero accumulate, hence the tight tolerance rather than
        // bit equality).
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut zi = vec![0.0f64; n];
        let mut zq = vec![0.0f64; n];
        k.add_iq(&mut rng2, 3.0, &mut None, &mut zi, &mut zq);
        for t in 0..n {
            assert!(
                (i[t] - base_i[t] - zi[t]).abs() <= 1e-12,
                "i lane {t} (length {n})"
            );
            assert!(
                (q[t] - base_q[t] - zq[t]).abs() <= 1e-12,
                "q lane {t} (length {n})"
            );
        }
    }
}

#[test]
fn avx2_zero_sigma_still_consumes_the_seed_draw() {
    let Some(k) = Avx2NoiseKernel::get() else {
        eprintln!("skipping: no AVX2+FMA on this host");
        return;
    };
    let mut rng = StdRng::seed_from_u64(1);
    let mut shadow = StdRng::seed_from_u64(1);
    let mut i = vec![1.0f64; 16];
    let mut q = vec![2.0f64; 16];
    k.add_iq(&mut rng, 0.0, &mut None, &mut i, &mut q);
    assert_eq!(i, vec![1.0f64; 16]);
    assert_eq!(q, vec![2.0f64; 16]);
    let _ = shadow.next_u64();
    assert_eq!(rng.next_u64(), shadow.next_u64());
}

/// Moments of a large seeded AVX2 sample: mean ≈ 0, variance ≈ 1, excess
/// kurtosis ≈ 0. Bounds are ~6 standard errors for n = 400 000 — loose
/// enough to be seed-robust, tight enough to catch a broken uniform map,
/// a mis-scaled polar factor, or a fat-tailed lane bug.
#[test]
fn avx2_moment_bounds() {
    let Some(k) = Avx2NoiseKernel::get() else {
        eprintln!("skipping: no AVX2+FMA on this host");
        return;
    };
    const N: usize = 400_000;
    let mut out = vec![0.0f64; N];
    let mut rng = StdRng::seed_from_u64(0xA5A5);
    k.fill_standard(&mut rng, &mut None, &mut out);
    let n = N as f64;
    let mean = out.iter().sum::<f64>() / n;
    let var = out.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let m4 = out.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
    let kurt = m4 / (var * var) - 3.0;
    assert!(mean.abs() < 6.0 / n.sqrt(), "mean {mean}");
    assert!(
        (var - 1.0).abs() < 6.0 * (2.0f64).sqrt() / n.sqrt(),
        "variance {var}"
    );
    assert!(
        kurt.abs() < 6.0 * (24.0f64).sqrt() / n.sqrt(),
        "excess kurtosis {kurt}"
    );
}

/// KS-style two-sample check: the empirical CDF of the AVX2 stream vs the
/// scalar (Marsaglia-polar off StdRng) stream. With n = m = 200 000 the
/// 1e-6-level critical value of the two-sample KS statistic is ~4.9·√(1/n);
/// 6·√(2/n) gives comfortable seed headroom while still failing for any
/// systematic CDF distortion above ~0.6 %.
#[test]
fn avx2_ks_distance_vs_scalar_reference() {
    let Some(k) = Avx2NoiseKernel::get() else {
        eprintln!("skipping: no AVX2+FMA on this host");
        return;
    };
    const N: usize = 200_000;
    let mut a = vec![0.0f64; N];
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    k.fill_standard(&mut rng, &mut None, &mut a);
    let mut b = scalar_reference::<f64>(0xF00D, N);
    a.sort_by(|x, y| x.partial_cmp(y).unwrap());
    b.sort_by(|x, y| x.partial_cmp(y).unwrap());
    // Two-pointer sweep over the merged order.
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < N && j < N {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / N as f64 - j as f64 / N as f64).abs());
    }
    let bound = 6.0 * (2.0 / N as f64).sqrt();
    assert!(d < bound, "KS distance {d} ≥ {bound}");
}

#[test]
fn avx2_f32_tracks_f64_pipeline() {
    let Some(k) = Avx2NoiseKernel::get() else {
        eprintln!("skipping: no AVX2+FMA on this host");
        return;
    };
    for &n in LENGTHS {
        let mut as32 = vec![0.0f32; n];
        let mut rng32 = StdRng::seed_from_u64(42);
        k.fill_standard(&mut rng32, &mut None, &mut as32);
        let mut as64 = vec![0.0f64; n];
        let mut rng64 = StdRng::seed_from_u64(42);
        k.fill_standard(&mut rng64, &mut None, &mut as64);
        for t in 0..n {
            assert_eq!(as32[t], as64[t] as f32, "slot {t} (length {n})");
        }
    }
}
