//! SIMD microkernel backends for the `Real`-generic GEMMs.
//!
//! The hot path of the whole workspace — the fused demod + matched-filter
//! GEMM, the NN heads, the streaming discriminate stage — bottoms out in
//! three primitive shapes: a contiguous dot product, a register-blocked
//! 4-column dot ([`Kernel::dot4`], one left-operand load feeding four
//! accumulator chains), and the broadcast-GEMM rank-1 update
//! ([`Kernel::axpy`] / the 4-row fused [`Kernel::axpy4`]). [`Kernel`]
//! abstracts exactly those primitives so one backend serves both pipeline
//! precisions:
//!
//! | backend | where | f32 lanes | f64 lanes |
//! |---|---|---|---|
//! | [`ScalarKernel`] | everywhere | 1 (8-acc ILP) | 1 (8-acc ILP) |
//! | [`Avx2Kernel`] | `x86_64` with AVX2+FMA | 8 | 4 |
//!
//! # Dispatch
//!
//! The active backend is resolved **once per process**, on first use, from
//! the `HERQLES_KERNEL` environment variable:
//!
//! * `auto` (default) — AVX2+FMA when the CPU has it, scalar otherwise;
//! * `scalar` — force the reference backend;
//! * `avx2` — force AVX2+FMA; **panics** if the host lacks it (a silently
//!   ignored override would invalidate a recorded experiment).
//!
//! [`select_kernel`] overrides the choice programmatically at any point
//! (benches use it to emit scalar-vs-dispatched rows from one process);
//! [`active_kernel_name`] reports what is live. Every backend computes the
//! same results up to floating-point reassociation and FMA contraction —
//! the kernel-parity suite (`crates/nn/tests/kernel_parity.rs`) pins each
//! backend against [`ScalarKernel`] under documented ULP tolerances, and
//! [`ScalarKernel`] itself is bit-identical to the pre-SIMD hand-written
//! loops, so `HERQLES_KERNEL=scalar` reproduces historical results exactly.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::Real;

/// One SIMD (or scalar) implementation of the GEMM primitives at scalar
/// type `R`.
///
/// All slice arguments of one call **must share one length** — the GEMM
/// callers guarantee it, and the scalar reference debug-asserts it.
/// Implementations stay memory-safe on unequal lengths (the AVX2 paths
/// bound their pointers by the common prefix) but the *value* computed is
/// then unspecified and differs between backends. `out`-accumulating
/// methods (`axpy*`) must add into `out`, never overwrite it.
pub trait Kernel<R: Real>: Send + Sync {
    /// Backend label (`"scalar"` / `"avx2"`), used by bench rows and tests.
    fn name(&self) -> &'static str;

    /// Contiguous dot product `Σ a[i]·b[i]`.
    fn dot(&self, a: &[R], b: &[R]) -> R;

    /// Register-blocked 4-column dot: `[Σ a·b0, Σ a·b1, Σ a·b2, Σ a·b3]`.
    ///
    /// The tall-skinny GEMM calls this with four consecutive rows of the
    /// transposed right operand so each left-operand load feeds four
    /// accumulator chains.
    fn dot4(&self, a: &[R], bs: [&[R]; 4]) -> [R; 4];

    /// Rank-1 update segment `out[i] += alpha · x[i]`.
    ///
    /// `alpha == 0` must leave `out` untouched (the broadcast GEMM leans on
    /// this to skip ReLU-sparse left operands).
    fn axpy(&self, alpha: R, x: &[R], out: &mut [R]);

    /// Four fused rank-1 updates `out[i] += Σ_j alphas[j] · xs[j][i]`.
    ///
    /// The broadcast GEMM calls this with four consecutive right-operand
    /// rows of one L1 tile, quartering the `out` load/store traffic. The
    /// accumulation order over `j` is ascending, so the scalar backend is
    /// bit-identical to four sequential [`Kernel::axpy`] calls.
    fn axpy4(&self, alphas: [R; 4], xs: [&[R]; 4], out: &mut [R]);

    /// Whether the GEMMs should present work to this backend in quads
    /// ([`Kernel::dot4`] / [`Kernel::axpy4`]) rather than one column/row at
    /// a time.
    ///
    /// SIMD backends say `true`: the quad forms amortize left-operand loads
    /// and `out` traffic across register-blocked accumulator chains. The
    /// scalar reference says `false` — measured on the reference container,
    /// funneling four array-returning dot calls through one statement
    /// defeats LLVM's scalar-replacement + vectorization of the plain
    /// per-column dot loop and costs ~3.5× on the fused-MF GEMM, so the
    /// scalar arm keeps the exact pre-backend loop shape instead.
    fn quad_blocked(&self) -> bool {
        true
    }

    /// Carrier mix-accumulate: the multiplexed-readout modulation
    /// `i_out[t] += bi[t]·cos[t] − bq[t]·sin[t]`,
    /// `q_out[t] += bi[t]·sin[t] + bq[t]·cos[t]`.
    ///
    /// The default body is the historical per-sample scalar expression in
    /// its exact operation order, so every non-overriding backend (the
    /// scalar reference in particular) is bit-identical to the pre-batched
    /// synthesis loop. The AVX2 override contracts the multiplies into
    /// FMAs, diverging by at most the contraction rounding.
    fn mix_accum(
        &self,
        bi: &[R],
        bq: &[R],
        cos: &[R],
        sin: &[R],
        i_out: &mut [R],
        q_out: &mut [R],
    ) {
        let n = bi
            .len()
            .min(bq.len())
            .min(cos.len())
            .min(sin.len())
            .min(i_out.len())
            .min(q_out.len());
        for t in 0..n {
            let (si, sq) = (bi[t], bq[t]);
            let (c, sn) = (cos[t], sin[t]);
            i_out[t] += si * c - sq * sn;
            q_out[t] += si * sn + sq * c;
        }
    }
}

/// The portable reference backend: plain Rust loops with the 8-accumulator
/// dot-product fan-out the workspace has always used, bit-identical to the
/// pre-SIMD `gemm_into`/`gemm_rt_into` on every input.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl<R: Real> Kernel<R> for ScalarKernel {
    #[inline(always)]
    fn name(&self) -> &'static str {
        "scalar"
    }

    /// Eight-accumulator contiguous dot product; the accumulator fan-out
    /// breaks the add dependency chain so the loop saturates the FMA ports
    /// even without explicit SIMD.
    #[inline(always)]
    fn dot(&self, a: &[R], b: &[R]) -> R {
        debug_assert_eq!(a.len(), b.len(), "kernel slices must share a length");
        let mut acc = [R::ZERO; 8];
        let ca = a.chunks_exact(8);
        let cb = b.chunks_exact(8);
        let (ta, tb) = (ca.remainder(), cb.remainder());
        for (x, y) in ca.zip(cb) {
            for i in 0..8 {
                acc[i] += x[i] * y[i];
            }
        }
        let mut tail = R::ZERO;
        for (&x, &y) in ta.iter().zip(tb) {
            tail += x * y;
        }
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
    }

    #[inline(always)]
    fn dot4(&self, a: &[R], bs: [&[R]; 4]) -> [R; 4] {
        [
            self.dot(a, bs[0]),
            self.dot(a, bs[1]),
            self.dot(a, bs[2]),
            self.dot(a, bs[3]),
        ]
    }

    #[inline(always)]
    fn axpy(&self, alpha: R, x: &[R], out: &mut [R]) {
        if alpha == R::ZERO {
            // ReLU activations make training matmuls sparse.
            return;
        }
        for (o, &v) in out.iter_mut().zip(x) {
            *o += alpha * v;
        }
    }

    #[inline(always)]
    fn axpy4(&self, alphas: [R; 4], xs: [&[R]; 4], out: &mut [R]) {
        for j in 0..4 {
            self.axpy(alphas[j], xs[j], out);
        }
    }

    #[inline(always)]
    fn quad_blocked(&self) -> bool {
        false
    }
}

/// The `x86_64` AVX2+FMA backend: 8-lane f32 / 4-lane f64 microkernels via
/// `std::arch` intrinsics behind `#[target_feature]`.
///
/// Instances are only obtainable through [`Avx2Kernel::get`], which returns
/// `Some` exactly when the running CPU reports AVX2 **and** FMA — the safe
/// trait methods may therefore call the `target_feature` functions without
/// re-checking. Results differ from [`ScalarKernel`] only by reduction
/// order and FMA contraction (unrounded multiply feeding the add), bounded
/// by the kernel-parity suite's ULP tolerances.
#[derive(Debug, Clone, Copy)]
pub struct Avx2Kernel(());

/// The one (zero-sized) AVX2 backend instance [`Avx2Kernel::get`] hands out.
static AVX2_INSTANCE: Avx2Kernel = Avx2Kernel(());

impl Avx2Kernel {
    /// The AVX2+FMA backend, iff the host supports it (always `None` off
    /// `x86_64`).
    pub fn get() -> Option<&'static Avx2Kernel> {
        if avx2_available() {
            Some(&AVX2_INSTANCE)
        } else {
            None
        }
    }
}

/// Whether the running CPU supports the [`Avx2Kernel`] (AVX2 and FMA).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
impl Kernel<f32> for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: an Avx2Kernel only exists when AVX2+FMA were detected.
        unsafe { avx2::dot_f32(a, b) }
    }

    fn dot4(&self, a: &[f32], bs: [&[f32]; 4]) -> [f32; 4] {
        // SAFETY: as above.
        unsafe { avx2::dot4_f32(a, bs) }
    }

    fn axpy(&self, alpha: f32, x: &[f32], out: &mut [f32]) {
        if alpha == 0.0 {
            return;
        }
        // SAFETY: as above.
        unsafe { avx2::axpy_f32(alpha, x, out) }
    }

    fn axpy4(&self, alphas: [f32; 4], xs: [&[f32]; 4], out: &mut [f32]) {
        // SAFETY: as above.
        unsafe { avx2::axpy4_f32(alphas, xs, out) }
    }

    fn mix_accum(
        &self,
        bi: &[f32],
        bq: &[f32],
        cos: &[f32],
        sin: &[f32],
        i_out: &mut [f32],
        q_out: &mut [f32],
    ) {
        // SAFETY: as above.
        unsafe { avx2::mix_accum_f32(bi, bq, cos, sin, i_out, q_out) }
    }
}

#[cfg(target_arch = "x86_64")]
impl Kernel<f64> for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        // SAFETY: an Avx2Kernel only exists when AVX2+FMA were detected.
        unsafe { avx2::dot_f64(a, b) }
    }

    fn dot4(&self, a: &[f64], bs: [&[f64]; 4]) -> [f64; 4] {
        // SAFETY: as above.
        unsafe { avx2::dot4_f64(a, bs) }
    }

    fn axpy(&self, alpha: f64, x: &[f64], out: &mut [f64]) {
        if alpha == 0.0 {
            return;
        }
        // SAFETY: as above.
        unsafe { avx2::axpy_f64(alpha, x, out) }
    }

    fn axpy4(&self, alphas: [f64; 4], xs: [&[f64]; 4], out: &mut [f64]) {
        // SAFETY: as above.
        unsafe { avx2::axpy4_f64(alphas, xs, out) }
    }

    fn mix_accum(
        &self,
        bi: &[f64],
        bq: &[f64],
        cos: &[f64],
        sin: &[f64],
        i_out: &mut [f64],
        q_out: &mut [f64],
    ) {
        // SAFETY: as above.
        unsafe { avx2::mix_accum_f64(bi, bq, cos, sin, i_out, q_out) }
    }
}

/// Off `x86_64` the type still exists (so generic code and the parity
/// harness compile everywhere) but [`Avx2Kernel::get`] never hands one out;
/// these impls delegate to the scalar reference and are unreachable in
/// practice.
#[cfg(not(target_arch = "x86_64"))]
impl<R: Real> Kernel<R> for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dot(&self, a: &[R], b: &[R]) -> R {
        ScalarKernel.dot(a, b)
    }

    fn dot4(&self, a: &[R], bs: [&[R]; 4]) -> [R; 4] {
        ScalarKernel.dot4(a, bs)
    }

    fn axpy(&self, alpha: R, x: &[R], out: &mut [R]) {
        ScalarKernel.axpy(alpha, x, out);
    }

    fn axpy4(&self, alphas: [R; 4], xs: [&[R]; 4], out: &mut [R]) {
        ScalarKernel.axpy4(alphas, xs, out);
    }
}

/// A requestable backend: what `HERQLES_KERNEL` and [`select_kernel`]
/// accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The portable reference loops.
    Scalar,
    /// AVX2+FMA microkernels (requires hardware support).
    Avx2,
    /// Best available: [`KernelBackend::Avx2`] when supported, else scalar.
    Auto,
}

impl KernelBackend {
    /// Parses a `HERQLES_KERNEL` value.
    pub fn parse(s: &str) -> Result<KernelBackend, KernelSelectError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelBackend::Scalar),
            "avx2" => Ok(KernelBackend::Avx2),
            "auto" | "" => Ok(KernelBackend::Auto),
            other => Err(KernelSelectError {
                reason: format!("unknown kernel backend {other:?} (expected scalar|avx2|auto)"),
            }),
        }
    }
}

/// Why a kernel selection was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSelectError {
    reason: String,
}

impl std::fmt::Display for KernelSelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for KernelSelectError {}

/// The resolved backend, process-wide: 0 = not yet resolved, 1 = scalar,
/// 2 = avx2. Both precisions share one selection so an `f32` and an `f64`
/// pipeline in the same process always ride the same backend.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

pub(crate) const SCALAR_ID: u8 = 1;
const AVX2_ID: u8 = 2;

fn backend_id(backend: KernelBackend) -> Result<u8, KernelSelectError> {
    match backend {
        KernelBackend::Scalar => Ok(SCALAR_ID),
        KernelBackend::Avx2 => {
            if avx2_available() {
                Ok(AVX2_ID)
            } else {
                Err(KernelSelectError {
                    reason: "HERQLES_KERNEL=avx2 requested but this CPU lacks AVX2+FMA \
                             (use scalar or auto)"
                        .to_string(),
                })
            }
        }
        KernelBackend::Auto => Ok(if avx2_available() { AVX2_ID } else { SCALAR_ID }),
    }
}

/// Resolves the active backend id, reading `HERQLES_KERNEL` on first use.
///
/// # Panics
///
/// Panics if the environment variable holds an unknown value or requests
/// `avx2` on hardware without it — a silently ignored override would
/// invalidate a recorded experiment.
pub(crate) fn resolved() -> u8 {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let requested = match std::env::var("HERQLES_KERNEL") {
                Ok(v) => KernelBackend::parse(&v).unwrap_or_else(|e| panic!("{e}")),
                Err(_) => KernelBackend::Auto,
            };
            let id = backend_id(requested).unwrap_or_else(|e| panic!("{e}"));
            // A concurrent first-use resolves to the same id (env + CPUID
            // are process-constant), so a plain store is race-free in effect.
            ACTIVE.store(id, Ordering::Relaxed);
            id
        }
        id => id,
    }
}

/// Overrides the process-wide kernel selection and returns the name of the
/// now-active backend.
///
/// Takes effect for every subsequent GEMM in the process (calls already in
/// flight on other threads finish on the backend they started with — both
/// compute the same results within the parity tolerances). Selecting
/// [`KernelBackend::Avx2`] on hardware without it fails without changing
/// the selection.
pub fn select_kernel(backend: KernelBackend) -> Result<&'static str, KernelSelectError> {
    let id = backend_id(backend)?;
    ACTIVE.store(id, Ordering::Relaxed);
    Ok(id_name(id))
}

fn id_name(id: u8) -> &'static str {
    match id {
        SCALAR_ID => "scalar",
        AVX2_ID => "avx2",
        _ => unreachable!("unknown kernel backend id {id}"),
    }
}

/// The name of the backend the GEMMs are currently dispatched to
/// (`"scalar"` or `"avx2"`), resolving `HERQLES_KERNEL` if this is the
/// first kernel use of the process.
pub fn active_kernel_name() -> &'static str {
    id_name(resolved())
}

macro_rules! active_fn {
    ($name:ident, $t:ty) => {
        /// The dispatched backend at this scalar type (monomorphic so the
        /// sealed [`Real::kernel`] impls can reference it directly).
        pub(crate) fn $name() -> &'static dyn Kernel<$t> {
            match resolved() {
                SCALAR_ID => &ScalarKernel,
                _ => &AVX2_INSTANCE,
            }
        }
    };
}

active_fn!(active_f32, f32);
active_fn!(active_f64, f64);

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The `#[target_feature]` bodies. Callers guarantee AVX2+FMA (see
    //! [`super::Avx2Kernel`]); every function handles arbitrary slice
    //! lengths with a scalar tail, so all m/k/n remainder edges of the
    //! blocked GEMMs land here rather than in the callers.

    use std::arch::x86_64::*;

    /// Horizontal sum of 8 f32 lanes.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// Horizontal sum of 4 f64 lanes.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum_pd(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// 8-lane f32 dot with a 4-vector (32 MAC/iter) main loop.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 16)),
                _mm256_loadu_ps(bp.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 24)),
                _mm256_loadu_ps(bp.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            i += 8;
        }
        let mut sum = hsum_ps(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }

    /// 4-lane f64 dot with a 4-vector (16 MAC/iter) main loop.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
                acc1,
            );
            acc2 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 8)),
                _mm256_loadu_pd(bp.add(i + 8)),
                acc2,
            );
            acc3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 12)),
                _mm256_loadu_pd(bp.add(i + 12)),
                acc3,
            );
            i += 16;
        }
        while i + 4 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            i += 4;
        }
        let mut sum = hsum_pd(_mm256_add_pd(
            _mm256_add_pd(acc0, acc1),
            _mm256_add_pd(acc2, acc3),
        ));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }

    /// Register-blocked 4-column f32 dot: two a-vectors per iteration feed
    /// eight accumulator chains (4 columns × 2-deep unroll).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot4_f32(a: &[f32], bs: [&[f32]; 4]) -> [f32; 4] {
        let n = bs.iter().fold(a.len(), |acc, b| acc.min(b.len()));
        let ap = a.as_ptr();
        let bp = [
            bs[0].as_ptr(),
            bs[1].as_ptr(),
            bs[2].as_ptr(),
            bs[3].as_ptr(),
        ];
        let mut lo = [_mm256_setzero_ps(); 4];
        let mut hi = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i + 16 <= n {
            let va0 = _mm256_loadu_ps(ap.add(i));
            let va1 = _mm256_loadu_ps(ap.add(i + 8));
            for j in 0..4 {
                lo[j] = _mm256_fmadd_ps(va0, _mm256_loadu_ps(bp[j].add(i)), lo[j]);
                hi[j] = _mm256_fmadd_ps(va1, _mm256_loadu_ps(bp[j].add(i + 8)), hi[j]);
            }
            i += 16;
        }
        while i + 8 <= n {
            let va = _mm256_loadu_ps(ap.add(i));
            for j in 0..4 {
                lo[j] = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp[j].add(i)), lo[j]);
            }
            i += 8;
        }
        let mut out = [0.0f32; 4];
        for j in 0..4 {
            out[j] = hsum_ps(_mm256_add_ps(lo[j], hi[j]));
        }
        while i < n {
            for j in 0..4 {
                out[j] += a[i] * bs[j][i];
            }
            i += 1;
        }
        out
    }

    /// Register-blocked 4-column f64 dot (4 columns × 2-deep unroll).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot4_f64(a: &[f64], bs: [&[f64]; 4]) -> [f64; 4] {
        let n = bs.iter().fold(a.len(), |acc, b| acc.min(b.len()));
        let ap = a.as_ptr();
        let bp = [
            bs[0].as_ptr(),
            bs[1].as_ptr(),
            bs[2].as_ptr(),
            bs[3].as_ptr(),
        ];
        let mut lo = [_mm256_setzero_pd(); 4];
        let mut hi = [_mm256_setzero_pd(); 4];
        let mut i = 0;
        while i + 8 <= n {
            let va0 = _mm256_loadu_pd(ap.add(i));
            let va1 = _mm256_loadu_pd(ap.add(i + 4));
            for j in 0..4 {
                lo[j] = _mm256_fmadd_pd(va0, _mm256_loadu_pd(bp[j].add(i)), lo[j]);
                hi[j] = _mm256_fmadd_pd(va1, _mm256_loadu_pd(bp[j].add(i + 4)), hi[j]);
            }
            i += 8;
        }
        while i + 4 <= n {
            let va = _mm256_loadu_pd(ap.add(i));
            for j in 0..4 {
                lo[j] = _mm256_fmadd_pd(va, _mm256_loadu_pd(bp[j].add(i)), lo[j]);
            }
            i += 4;
        }
        let mut out = [0.0f64; 4];
        for j in 0..4 {
            out[j] = hsum_pd(_mm256_add_pd(lo[j], hi[j]));
        }
        while i < n {
            for j in 0..4 {
                out[j] += a[i] * bs[j][i];
            }
            i += 1;
        }
        out
    }

    /// f32 `out += alpha · x` over the common length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_f32(alpha: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len().min(out.len());
        let va = _mm256_set1_ps(alpha);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let o = _mm256_fmadd_ps(va, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(op.add(i)));
            _mm256_storeu_ps(op.add(i), o);
            i += 8;
        }
        while i < n {
            out[i] += alpha * x[i];
            i += 1;
        }
    }

    /// f64 `out += alpha · x` over the common length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_f64(alpha: f64, x: &[f64], out: &mut [f64]) {
        let n = x.len().min(out.len());
        let va = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let o = _mm256_fmadd_pd(va, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(op.add(i)));
            _mm256_storeu_pd(op.add(i), o);
            i += 4;
        }
        while i < n {
            out[i] += alpha * x[i];
            i += 1;
        }
    }

    /// f32 `out += Σ_j alphas[j] · xs[j]`: one `out` load/store per four
    /// fused multiply-adds.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy4_f32(alphas: [f32; 4], xs: [&[f32]; 4], out: &mut [f32]) {
        let n = xs.iter().fold(out.len(), |acc, x| acc.min(x.len()));
        let va = [
            _mm256_set1_ps(alphas[0]),
            _mm256_set1_ps(alphas[1]),
            _mm256_set1_ps(alphas[2]),
            _mm256_set1_ps(alphas[3]),
        ];
        let xp = [
            xs[0].as_ptr(),
            xs[1].as_ptr(),
            xs[2].as_ptr(),
            xs[3].as_ptr(),
        ];
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let mut o = _mm256_loadu_ps(op.add(i));
            for j in 0..4 {
                o = _mm256_fmadd_ps(va[j], _mm256_loadu_ps(xp[j].add(i)), o);
            }
            _mm256_storeu_ps(op.add(i), o);
            i += 8;
        }
        while i < n {
            let mut o = out[i];
            for j in 0..4 {
                o += alphas[j] * xs[j][i];
            }
            out[i] = o;
            i += 1;
        }
    }

    /// f64 `out += Σ_j alphas[j] · xs[j]`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy4_f64(alphas: [f64; 4], xs: [&[f64]; 4], out: &mut [f64]) {
        let n = xs.iter().fold(out.len(), |acc, x| acc.min(x.len()));
        let va = [
            _mm256_set1_pd(alphas[0]),
            _mm256_set1_pd(alphas[1]),
            _mm256_set1_pd(alphas[2]),
            _mm256_set1_pd(alphas[3]),
        ];
        let xp = [
            xs[0].as_ptr(),
            xs[1].as_ptr(),
            xs[2].as_ptr(),
            xs[3].as_ptr(),
        ];
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let mut o = _mm256_loadu_pd(op.add(i));
            for j in 0..4 {
                o = _mm256_fmadd_pd(va[j], _mm256_loadu_pd(xp[j].add(i)), o);
            }
            _mm256_storeu_pd(op.add(i), o);
            i += 4;
        }
        while i < n {
            let mut o = out[i];
            for j in 0..4 {
                o += alphas[j] * xs[j][i];
            }
            out[i] = o;
            i += 1;
        }
    }

    /// f32 carrier mix-accumulate (see [`super::Kernel::mix_accum`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mix_accum_f32(
        bi: &[f32],
        bq: &[f32],
        cos: &[f32],
        sin: &[f32],
        i_out: &mut [f32],
        q_out: &mut [f32],
    ) {
        let n = bi
            .len()
            .min(bq.len())
            .min(cos.len())
            .min(sin.len())
            .min(i_out.len())
            .min(q_out.len());
        let (bip, bqp, cp, sp) = (bi.as_ptr(), bq.as_ptr(), cos.as_ptr(), sin.as_ptr());
        let (ip, qp) = (i_out.as_mut_ptr(), q_out.as_mut_ptr());
        let mut t = 0;
        while t + 8 <= n {
            let vbi = _mm256_loadu_ps(bip.add(t));
            let vbq = _mm256_loadu_ps(bqp.add(t));
            let vc = _mm256_loadu_ps(cp.add(t));
            let vs = _mm256_loadu_ps(sp.add(t));
            let mut vi = _mm256_loadu_ps(ip.add(t));
            let mut vq = _mm256_loadu_ps(qp.add(t));
            vi = _mm256_fmadd_ps(vbi, vc, vi);
            vi = _mm256_fnmadd_ps(vbq, vs, vi);
            vq = _mm256_fmadd_ps(vbi, vs, vq);
            vq = _mm256_fmadd_ps(vbq, vc, vq);
            _mm256_storeu_ps(ip.add(t), vi);
            _mm256_storeu_ps(qp.add(t), vq);
            t += 8;
        }
        while t < n {
            i_out[t] += bi[t] * cos[t] - bq[t] * sin[t];
            q_out[t] += bi[t] * sin[t] + bq[t] * cos[t];
            t += 1;
        }
    }

    /// f64 carrier mix-accumulate (see [`super::Kernel::mix_accum`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mix_accum_f64(
        bi: &[f64],
        bq: &[f64],
        cos: &[f64],
        sin: &[f64],
        i_out: &mut [f64],
        q_out: &mut [f64],
    ) {
        let n = bi
            .len()
            .min(bq.len())
            .min(cos.len())
            .min(sin.len())
            .min(i_out.len())
            .min(q_out.len());
        let (bip, bqp, cp, sp) = (bi.as_ptr(), bq.as_ptr(), cos.as_ptr(), sin.as_ptr());
        let (ip, qp) = (i_out.as_mut_ptr(), q_out.as_mut_ptr());
        let mut t = 0;
        while t + 4 <= n {
            let vbi = _mm256_loadu_pd(bip.add(t));
            let vbq = _mm256_loadu_pd(bqp.add(t));
            let vc = _mm256_loadu_pd(cp.add(t));
            let vs = _mm256_loadu_pd(sp.add(t));
            let mut vi = _mm256_loadu_pd(ip.add(t));
            let mut vq = _mm256_loadu_pd(qp.add(t));
            vi = _mm256_fmadd_pd(vbi, vc, vi);
            vi = _mm256_fnmadd_pd(vbq, vs, vi);
            vq = _mm256_fmadd_pd(vbi, vs, vq);
            vq = _mm256_fmadd_pd(vbq, vc, vq);
            _mm256_storeu_pd(ip.add(t), vi);
            _mm256_storeu_pd(qp.add(t), vq);
            t += 4;
        }
        while t < n {
            i_out[t] += bi[t] * cos[t] - bq[t] * sin[t];
            q_out[t] += bi[t] * sin[t] + bq[t] * cos[t];
            t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parsing() {
        assert_eq!(KernelBackend::parse("scalar"), Ok(KernelBackend::Scalar));
        assert_eq!(KernelBackend::parse("AVX2"), Ok(KernelBackend::Avx2));
        assert_eq!(KernelBackend::parse(" auto "), Ok(KernelBackend::Auto));
        assert!(KernelBackend::parse("neon").is_err());
    }

    #[test]
    fn scalar_dot_matches_naive_sum() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64) * 0.25 - 4.0).collect();
        let b: Vec<f64> = (0..37).map(|i| 1.5 - (i as f64) * 0.125).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got: f64 = ScalarKernel.dot(&a, &b);
        assert!((got - naive).abs() < 1e-12, "{got} vs {naive}");
    }

    #[test]
    fn scalar_axpy_skips_zero_alpha() {
        let x = [f64::NAN; 3];
        let mut out = [1.0, 2.0, 3.0];
        ScalarKernel.axpy(0.0, &x, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0], "alpha == 0 must not touch out");
    }

    #[test]
    fn scalar_axpy4_is_sequential_axpys() {
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|j| (0..9).map(|i| (i + j) as f64 * 0.5).collect())
            .collect();
        let alphas = [0.5, -1.0, 0.0, 2.0];
        let mut fused = vec![1.0; 9];
        let mut seq = vec![1.0; 9];
        ScalarKernel.axpy4(alphas, [&xs[0], &xs[1], &xs[2], &xs[3]], &mut fused);
        for j in 0..4 {
            ScalarKernel.axpy(alphas[j], &xs[j], &mut seq);
        }
        assert_eq!(fused, seq);
    }

    #[test]
    fn selection_is_reversible_and_reports_names() {
        let scalar = select_kernel(KernelBackend::Scalar).expect("scalar always selectable");
        assert_eq!(scalar, "scalar");
        assert_eq!(active_kernel_name(), "scalar");
        assert_eq!(<f64 as Real>::kernel().name(), "scalar");
        assert_eq!(<f32 as Real>::kernel().name(), "scalar");
        let auto = select_kernel(KernelBackend::Auto).expect("auto always selectable");
        assert_eq!(auto, active_kernel_name());
        assert_eq!(<f64 as Real>::kernel().name(), auto);
        if avx2_available() {
            assert_eq!(auto, "avx2");
            assert!(Avx2Kernel::get().is_some());
        } else {
            assert_eq!(auto, "scalar");
            assert!(Avx2Kernel::get().is_none());
            assert!(select_kernel(KernelBackend::Avx2).is_err());
        }
        // Selection is process-global: put back whatever HERQLES_KERNEL
        // asked for so the rest of this test binary (and the CI kernel
        // matrix's scalar arm in particular) runs on the requested backend.
        let requested = std::env::var("HERQLES_KERNEL")
            .ok()
            .and_then(|v| KernelBackend::parse(&v).ok())
            .unwrap_or(KernelBackend::Auto);
        select_kernel(requested).expect("restoring the env-requested backend");
    }
}
