//! # herqles-num — the `Real` scalar abstraction
//!
//! The paper's thesis is hardware-efficient readout: matched-filter and RMF
//! discriminators are chosen precisely because they fit narrow FPGA
//! datapaths. The software hot path mirrors that by being generic over the
//! scalar the *digital* pipeline computes in: [`Real`], sealed to `f32` and
//! `f64`.
//!
//! The precision boundary is the ADC. Everything before it (trajectory
//! sampling, dispersive crosstalk, carrier phases — the stand-in for analog
//! physics) stays `f64`, exactly like the continuous voltages it models; the
//! digitized planes (`ShotBatch`, baseband bins, filter weights, GEMM
//! accumulators) carry `R: Real`. With `R = f64` every conversion is the
//! identity and the pipeline is bit-for-bit the pre-generic code; with
//! `R = f32` the same kernels run at twice the SIMD width and half the
//! memory traffic.
//!
//! The trait is deliberately small: conversions, the arithmetic the kernels
//! use, `EPS`-style tolerances for parity tests, and the SplitMix64-seeded
//! (via the workspace [`rand::rngs::StdRng`]) Marsaglia-polar
//! [`Real::sample_gaussian`] that lets amplifier noise be drawn directly at
//! pipeline precision.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::{Random, Rng};

pub mod kernel;
pub mod noisegen;

pub use kernel::{
    active_kernel_name, avx2_available, select_kernel, Avx2Kernel, Kernel, KernelBackend,
    KernelSelectError, ScalarKernel,
};
pub use noisegen::{active_noise_kernel_name, Avx2NoiseKernel, NoiseKernel, ScalarNoiseKernel};

mod sealed {
    /// Prevents downstream impls: every generic kernel in the workspace may
    /// assume `Real` is exactly `f32` or `f64` (e.g. for `Any`-based kernel
    /// selection).
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A hardware floating-point scalar the readout hot path can run in.
///
/// Sealed: implemented for `f32` and `f64` only. All default-parameterized
/// types (`ShotBatch<R>`, `Matrix<R>`, `FusedFilterKernel<R>`,
/// `CycleEngine<R>`, …) use `R = f64`, so pre-existing call sites keep their
/// exact numerics; `R = f32` instantiates the same code at single precision.
pub trait Real:
    sealed::Sealed
    + Copy
    + Default
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Random
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the format.
    const EPS: Self;
    /// Relative tolerance appropriate for comparing a chain of fused
    /// multiply-accumulates at this precision against an `f64` reference
    /// (used by the precision-parity tests; a few hundred ulps of headroom
    /// over [`Real::EPS`]).
    const PARITY_TOL: f64;
    /// Bench/JSON label of the format (`"f32"` / `"f64"`).
    const NAME: &'static str;
    /// Bit width of the format.
    const BITS: u32;

    /// Rounds an `f64` into this format (identity for `f64`).
    fn from_f64(v: f64) -> Self;

    /// Widens to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;

    /// Converts a count (exact for the sizes this workspace handles).
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    /// Absolute value.
    fn abs(self) -> Self;

    /// Square root.
    fn sqrt(self) -> Self;

    /// Natural logarithm.
    fn ln(self) -> Self;

    /// Larger of two values (IEEE `max` semantics of the primitive).
    fn max(self, other: Self) -> Self;

    /// Smaller of two values.
    fn min(self, other: Self) -> Self;

    /// Whether the value is neither infinite nor NaN.
    fn is_finite(self) -> bool;

    /// The SIMD microkernel backend the process is dispatched to at this
    /// precision ([`kernel`] module): AVX2+FMA where the CPU supports it,
    /// the scalar reference otherwise, overridable via `HERQLES_KERNEL`
    /// (`scalar|avx2|auto`) or [`kernel::select_kernel`]. The GEMMs in
    /// `readout-nn` route every inner loop through this.
    fn kernel() -> &'static dyn Kernel<Self>;

    /// The bulk Gaussian backend at this precision ([`noisegen`] module),
    /// riding the same process-wide selection as [`Real::kernel`]: the
    /// scalar backend replays [`Real::sample_gaussian`] bit for bit off the
    /// caller's RNG; the AVX2 backend expands one caller draw into an
    /// in-register SplitMix64 → polar pipeline.
    fn noise_kernel() -> &'static dyn NoiseKernel<Self>;

    /// One uniform draw in `[0, 1)` at this precision.
    ///
    /// Consumes exactly one `next_u64` regardless of format, so `f32` and
    /// `f64` pipelines driven by the same seed stay draw-aligned until a
    /// rounding-induced rejection divergence (rare) occurs.
    fn sample_uniform<G: Rng + ?Sized>(rng: &mut G) -> Self {
        Self::random(rng)
    }

    /// One standard-normal draw by the Marsaglia polar method, buffering the
    /// spare deviate in `spare`.
    ///
    /// For `f64` this reproduces the workspace's historical
    /// `GaussianNoise::standard` bit for bit: same uniform mapping, same
    /// constants, same operation order.
    fn sample_gaussian<G: Rng + ?Sized>(rng: &mut G, spare: &mut Option<Self>) -> Self {
        if let Some(z) = spare.take() {
            return z;
        }
        let two = Self::from_f64(2.0);
        loop {
            let u = Self::sample_uniform(rng) * two - Self::ONE;
            let v = Self::sample_uniform(rng) * two - Self::ONE;
            let s = u * u + v * v;
            if s > Self::ZERO && s < Self::ONE {
                let factor = (Self::from_f64(-2.0) * s.ln() / s).sqrt();
                *spare = Some(v * factor);
                return u * factor;
            }
        }
    }
}

macro_rules! impl_real {
    ($t:ty, $name:literal, $bits:literal, $parity_tol:expr, $active_kernel:path, $active_noise:path) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPS: Self = <$t>::EPSILON;
            const PARITY_TOL: f64 = $parity_tol;
            const NAME: &'static str = $name;
            const BITS: u32 = $bits;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }

            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }

            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }

            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }

            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }

            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }

            #[inline]
            fn kernel() -> &'static dyn Kernel<Self> {
                $active_kernel()
            }

            #[inline]
            fn noise_kernel() -> &'static dyn NoiseKernel<Self> {
                $active_noise()
            }
        }
    };
}

impl_real!(
    f32,
    "f32",
    32,
    1e-3,
    kernel::active_f32,
    noisegen::active_noise_f32
);
impl_real!(
    f64,
    "f64",
    64,
    1e-10,
    kernel::active_f64,
    noisegen::active_noise_f64
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(f64::from_f64(1.25), 1.25);
        assert_eq!(f64::to_f64(1.25), 1.25);
        assert_eq!(f32::from_f64(1.25), 1.25f32);
        assert_eq!(f32::from_f64(0.1).to_f64(), 0.1f32 as f64);
        assert_eq!(f32::from_usize(1024), 1024.0f32);
    }

    #[test]
    fn labels_and_widths() {
        assert_eq!(<f32 as Real>::NAME, "f32");
        assert_eq!(<f64 as Real>::NAME, "f64");
        assert_eq!(<f32 as Real>::BITS, 32);
        assert_eq!(<f64 as Real>::BITS, 64);
        let (eps32, eps64) = (<f32 as Real>::EPS, <f64 as Real>::EPS);
        assert!(f64::from(eps32) > eps64);
        let (tol32, tol64) = (<f32 as Real>::PARITY_TOL, <f64 as Real>::PARITY_TOL);
        assert!(tol32 > tol64);
    }

    /// The generic polar sampler instantiated at f64 must match the
    /// historical hand-written f64 implementation draw for draw.
    #[test]
    fn f64_gaussian_matches_reference_polar_method() {
        let reference = |rng: &mut StdRng, spare: &mut Option<f64>| -> f64 {
            if let Some(z) = spare.take() {
                return z;
            }
            loop {
                let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let s = u * u + v * v;
                if s > 0.0 && s < 1.0 {
                    let factor = (-2.0 * s.ln() / s).sqrt();
                    *spare = Some(v * factor);
                    return u * factor;
                }
            }
        };
        use rand::RngExt;
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let (mut sa, mut sb) = (None, None);
        for _ in 0..64 {
            let x = f64::sample_gaussian(&mut a, &mut sa);
            let y = reference(&mut b, &mut sb);
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f32_gaussian_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut spare = None;
        let n = 100_000;
        let xs: Vec<f32> = (0..n)
            .map(|_| f32::sample_gaussian(&mut rng, &mut spare))
            .collect();
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn uniform_draws_consume_one_word_per_sample_in_both_formats() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..32 {
            let _: f32 = f32::sample_uniform(&mut a);
            let _: f64 = f64::sample_uniform(&mut b);
        }
        // Both generators must have advanced identically.
        use rand::Rng as _;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
