//! SIMD Gaussian-noise backends for readout synthesis.
//!
//! The synthesis hot loop adds one `N(0, σ²)` deviate to every I and Q
//! sample of a shot — at 500 MS/s over a 1 µs window that is 1000 scalar
//! Marsaglia-polar draws per shot, enough to keep the whole stream pipeline
//! pinned on one rejection loop. [`NoiseKernel`] abstracts the draw the same
//! way [`crate::Kernel`] abstracts the GEMM primitives, and rides the same
//! process-wide `HERQLES_KERNEL` dispatch:
//!
//! | backend | stream | draw order |
//! |---|---|---|
//! | [`ScalarNoiseKernel`] | the caller's [`Rng`] | bit-identical to repeated [`Real::sample_gaussian`] |
//! | [`Avx2NoiseKernel`] | 4 SplitMix64 lanes seeded from **one** caller draw | lane-interleaved polar, in registers |
//!
//! The scalar backend consumes the caller RNG exactly like the historical
//! per-sample loop, so every determinism/parity pin that ran on scalar stays
//! green unchanged. The AVX2 backend draws a *single* `next_u64` from the
//! caller per bulk fill and expands it into four SplitMix64 lane states
//! (lane `j` starts at `seed + j·γ` with stride `4γ`, so the four lanes
//! together walk one non-overlapping SplitMix64 stream); the fill is then a
//! pure function of that seed. Its values differ from scalar — that is the
//! point — but pooled and serial engines remain bit-identical within the
//! backend because the per-group RNG advances by the same one draw either
//! way.

use rand::Rng;

use crate::kernel::{self, SCALAR_ID};
use crate::Real;

/// One backend of the bulk Gaussian primitives at scalar type `R`.
///
/// `spare` carries the Marsaglia spare deviate *for the scalar backend
/// only* (it is what makes a sequence of calls equal to a sequence of
/// [`Real::sample_gaussian`] draws); the AVX2 backend generates deviates in
/// even pairs and never touches it.
pub trait NoiseKernel<R: Real>: Send + Sync {
    /// Backend label (`"scalar"` / `"avx2"`).
    fn name(&self) -> &'static str;

    /// Fills `out` with standard-normal deviates.
    fn fill_standard(&self, rng: &mut dyn Rng, spare: &mut Option<R>, out: &mut [R]);

    /// Adds `sigma · N(0, 1)` to every sample of an I/Q pair of rows, in
    /// the synthesis draw order `i[0], q[0], i[1], q[1], …` (the scalar
    /// backend reproduces the historical interleaved per-sample loop bit
    /// for bit, including the degenerate `sigma == 0` draws).
    ///
    /// # Panics
    ///
    /// Panics if the two rows differ in length.
    fn add_iq(
        &self,
        rng: &mut dyn Rng,
        sigma: R,
        spare: &mut Option<R>,
        i_out: &mut [R],
        q_out: &mut [R],
    );
}

/// The reference backend: the caller's RNG, one Marsaglia-polar rejection
/// loop per deviate pair, spare buffering — the exact draw order of
/// [`Real::sample_gaussian`], which is the historical synthesis noise
/// stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarNoiseKernel;

impl<R: Real> NoiseKernel<R> for ScalarNoiseKernel {
    #[inline(always)]
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn fill_standard(&self, rng: &mut dyn Rng, spare: &mut Option<R>, out: &mut [R]) {
        for o in out.iter_mut() {
            *o = R::sample_gaussian(rng, spare);
        }
    }

    fn add_iq(
        &self,
        rng: &mut dyn Rng,
        sigma: R,
        spare: &mut Option<R>,
        i_out: &mut [R],
        q_out: &mut [R],
    ) {
        assert_eq!(i_out.len(), q_out.len(), "I/Q rows must share a length");
        for (i, q) in i_out.iter_mut().zip(q_out.iter_mut()) {
            *i += sigma * R::sample_gaussian(rng, spare);
            *q += sigma * R::sample_gaussian(rng, spare);
        }
    }
}

/// The AVX2 backend: four SplitMix64 lanes → `[-1, 1)` uniforms → masked
/// polar rejection → `√(−2 ln s / s)` scaling, all in 256-bit registers
/// (the logarithm is an in-register atanh-series evaluation, not a libm
/// call). Produces 8 deviates per accepted polar batch.
///
/// Only obtainable through [`Avx2NoiseKernel::get`], which returns `Some`
/// exactly when the CPU reports AVX2+FMA.
#[derive(Debug, Clone, Copy)]
pub struct Avx2NoiseKernel(());

static AVX2_NOISE_INSTANCE: Avx2NoiseKernel = Avx2NoiseKernel(());

impl Avx2NoiseKernel {
    /// The AVX2+FMA noise backend, iff the host supports it.
    pub fn get() -> Option<&'static Avx2NoiseKernel> {
        if kernel::avx2_available() {
            Some(&AVX2_NOISE_INSTANCE)
        } else {
            None
        }
    }
}

#[cfg(target_arch = "x86_64")]
impl NoiseKernel<f64> for Avx2NoiseKernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn fill_standard(&self, rng: &mut dyn Rng, _spare: &mut Option<f64>, out: &mut [f64]) {
        let seed = rng.next_u64();
        // SAFETY: an Avx2NoiseKernel only exists when AVX2+FMA were detected.
        unsafe { avx2noise::fill_standard_f64(seed, out) }
    }

    fn add_iq(
        &self,
        rng: &mut dyn Rng,
        sigma: f64,
        _spare: &mut Option<f64>,
        i_out: &mut [f64],
        q_out: &mut [f64],
    ) {
        assert_eq!(i_out.len(), q_out.len(), "I/Q rows must share a length");
        let seed = rng.next_u64();
        // SAFETY: as above.
        unsafe { avx2noise::add_iq_f64(seed, sigma, i_out, q_out) }
    }
}

#[cfg(target_arch = "x86_64")]
impl NoiseKernel<f32> for Avx2NoiseKernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn fill_standard(&self, rng: &mut dyn Rng, _spare: &mut Option<f32>, out: &mut [f32]) {
        let seed = rng.next_u64();
        // SAFETY: an Avx2NoiseKernel only exists when AVX2+FMA were detected.
        unsafe { avx2noise::fill_standard_f32(seed, out) }
    }

    fn add_iq(
        &self,
        rng: &mut dyn Rng,
        sigma: f32,
        _spare: &mut Option<f32>,
        i_out: &mut [f32],
        q_out: &mut [f32],
    ) {
        assert_eq!(i_out.len(), q_out.len(), "I/Q rows must share a length");
        let seed = rng.next_u64();
        // SAFETY: as above.
        unsafe { avx2noise::add_iq_f32(seed, sigma, i_out, q_out) }
    }
}

/// Off `x86_64` the type exists so generic code compiles, but
/// [`Avx2NoiseKernel::get`] never hands one out; delegate to scalar.
#[cfg(not(target_arch = "x86_64"))]
impl<R: Real> NoiseKernel<R> for Avx2NoiseKernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn fill_standard(&self, rng: &mut dyn Rng, spare: &mut Option<R>, out: &mut [R]) {
        ScalarNoiseKernel.fill_standard(rng, spare, out);
    }

    fn add_iq(
        &self,
        rng: &mut dyn Rng,
        sigma: R,
        spare: &mut Option<R>,
        i_out: &mut [R],
        q_out: &mut [R],
    ) {
        ScalarNoiseKernel.add_iq(rng, sigma, spare, i_out, q_out);
    }
}

/// The name of the noise backend the process is currently dispatched to —
/// always in lockstep with [`crate::active_kernel_name`] (one `ACTIVE`
/// selection covers GEMMs and noise).
pub fn active_noise_kernel_name() -> &'static str {
    <f64 as Real>::noise_kernel().name()
}

macro_rules! active_noise_fn {
    ($name:ident, $t:ty) => {
        /// The dispatched noise backend at this scalar type (monomorphic so
        /// the sealed [`Real::noise_kernel`] impls can reference it
        /// directly).
        pub(crate) fn $name() -> &'static dyn NoiseKernel<$t> {
            match kernel::resolved() {
                SCALAR_ID => &ScalarNoiseKernel,
                _ => &AVX2_NOISE_INSTANCE,
            }
        }
    };
}

active_noise_fn!(active_noise_f32, f32);
active_noise_fn!(active_noise_f64, f64);

#[cfg(target_arch = "x86_64")]
mod avx2noise {
    //! The `#[target_feature]` bodies. Callers guarantee AVX2+FMA (see
    //! [`super::Avx2NoiseKernel`]). Everything after the one caller seed
    //! draw runs in registers: SplitMix64 lane advance (64×64 multiply
    //! emulated on 32-bit halves), uniform mapping via the `[1, 2)`
    //! exponent trick, masked polar rejection, and an atanh-series `ln`.

    use std::arch::x86_64::*;

    /// SplitMix64's golden-ratio increment.
    const GAMMA: u64 = 0x9e3779b97f4a7c15;
    const MIX1: u64 = 0xbf58476d1ce4e5b9;
    const MIX2: u64 = 0x94d049bb133111eb;

    /// Lane-wise 64×64→64 multiply by a broadcast constant (AVX2 has no
    /// 64-bit multiply; compose it from 32×32→64 partial products).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let lo = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32))
    }

    /// Advances four interleaved SplitMix64 lanes one step and returns the
    /// four mixed outputs. Lane `j` holds state `seed + (k·4 + j + 1)·γ`
    /// after `k` steps, so the union of lanes is one SplitMix64 stream.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn splitmix4(state: &mut __m256i) -> __m256i {
        *state = _mm256_add_epi64(*state, _mm256_set1_epi64x((GAMMA.wrapping_mul(4)) as i64));
        let mut z = *state;
        z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
        z = mul64(z, _mm256_set1_epi64x(MIX1 as i64));
        z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
        z = mul64(z, _mm256_set1_epi64x(MIX2 as i64));
        _mm256_xor_si256(z, _mm256_srli_epi64(z, 31))
    }

    /// Initial lane states such that the first [`splitmix4`] outputs are
    /// `mix(seed + (j+1)γ)` for lanes `j = 0..4`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn lane_states(seed: u64) -> __m256i {
        let g = GAMMA;
        _mm256_set_epi64x(
            seed.wrapping_sub(g.wrapping_mul(0)) as i64,
            seed.wrapping_sub(g.wrapping_mul(1)) as i64,
            seed.wrapping_sub(g.wrapping_mul(2)) as i64,
            seed.wrapping_sub(g.wrapping_mul(3)) as i64,
        )
    }

    /// Maps 64 random bits per lane to a uniform in `[-1, 1)`: the top 52
    /// bits become the mantissa of a double in `[1, 2)`, then `2d − 3`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn uniform_sym(bits: __m256i) -> __m256d {
        let mant = _mm256_or_si256(
            _mm256_srli_epi64(bits, 12),
            _mm256_set1_epi64x(0x3ff0_0000_0000_0000u64 as i64),
        );
        let d = _mm256_castsi256_pd(mant);
        _mm256_fmsub_pd(d, _mm256_set1_pd(2.0), _mm256_set1_pd(3.0))
    }

    /// Vector natural logarithm for strictly positive normal inputs (the
    /// polar `s ∈ (0, 1)` never hits zero, subnormals, infinities or NaN).
    ///
    /// Decomposes `x = m · 2^e` with `m ∈ [√½, √2)` and evaluates
    /// `ln m = 2·atanh(t)`, `t = (m−1)/(m+1)`, as an 8-term odd series —
    /// `|t| ≤ 0.172` keeps the truncation under ~2·10⁻¹² relative, far
    /// below what the deviate statistics can resolve.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn ln_pd(x: __m256d) -> __m256d {
        let bits = _mm256_castpd_si256(x);
        // Biased exponent, per lane, as 32-bit ints packed to the low half.
        let exp_bits = _mm256_srli_epi64(bits, 52);
        // Mantissa with the exponent forced to 0 → m ∈ [1, 2).
        let mant_bits = _mm256_or_si256(
            _mm256_and_si256(bits, _mm256_set1_epi64x(0x000f_ffff_ffff_ffffu64 as i64)),
            _mm256_set1_epi64x(0x3ff0_0000_0000_0000u64 as i64),
        );
        let mut m = _mm256_castsi256_pd(mant_bits);
        // e as double: exponents here are small (|e| ≤ ~1030), so the
        // 64→32-bit pack + cvtepi32_pd round trip is exact.
        let packed = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
            exp_bits,
            _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0),
        ));
        let mut e = _mm256_cvtepi32_pd(_mm_sub_epi32(packed, _mm_set1_epi32(1023)));
        // Center m in [√½, √2): where m > √2, halve it and bump e.
        let sqrt2 = _mm256_set1_pd(std::f64::consts::SQRT_2);
        let over = _mm256_cmp_pd::<_CMP_GT_OQ>(m, sqrt2);
        m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), over);
        e = _mm256_add_pd(e, _mm256_and_pd(over, _mm256_set1_pd(1.0)));
        // atanh series in u = t².
        let one = _mm256_set1_pd(1.0);
        let t = _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
        let u = _mm256_mul_pd(t, t);
        let mut p = _mm256_set1_pd(1.0 / 15.0);
        for c in [
            1.0 / 13.0,
            1.0 / 11.0,
            1.0 / 9.0,
            1.0 / 7.0,
            1.0 / 5.0,
            1.0 / 3.0,
            1.0,
        ] {
            p = _mm256_fmadd_pd(p, u, _mm256_set1_pd(c));
        }
        let ln_m = _mm256_mul_pd(_mm256_add_pd(t, t), p);
        _mm256_fmadd_pd(e, _mm256_set1_pd(std::f64::consts::LN_2), ln_m)
    }

    /// One accepted polar batch: returns `(u·f, v·f)` — 8 standard-normal
    /// deviates across the two vectors. Rejected lanes are re-drawn with a
    /// blend mask until all four lanes hold an accepted `(u, v, s)`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn polar8(state: &mut __m256i) -> (__m256d, __m256d) {
        let zero = _mm256_setzero_pd();
        let one = _mm256_set1_pd(1.0);
        let mut u = zero;
        let mut v = zero;
        let mut s = one;
        let mut done = zero; // all-zero mask = no lane accepted yet
        loop {
            let cu = uniform_sym(splitmix4(state));
            let cv = uniform_sym(splitmix4(state));
            let cs = _mm256_fmadd_pd(cu, cu, _mm256_mul_pd(cv, cv));
            let ok = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GT_OQ>(cs, zero),
                _mm256_cmp_pd::<_CMP_LT_OQ>(cs, one),
            );
            let fresh = _mm256_andnot_pd(done, ok);
            u = _mm256_blendv_pd(u, cu, fresh);
            v = _mm256_blendv_pd(v, cv, fresh);
            s = _mm256_blendv_pd(s, cs, fresh);
            done = _mm256_or_pd(done, fresh);
            if _mm256_movemask_pd(done) == 0xf {
                break;
            }
        }
        let f = _mm256_sqrt_pd(_mm256_div_pd(
            _mm256_mul_pd(_mm256_set1_pd(-2.0), ln_pd(s)),
            s,
        ));
        (_mm256_mul_pd(u, f), _mm256_mul_pd(v, f))
    }

    /// Fills `out` with standard normals from the lane stream of `seed`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn fill_standard_f64(seed: u64, out: &mut [f64]) {
        let mut state = lane_states(seed);
        let n = out.len();
        let p = out.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let (z0, z1) = polar8(&mut state);
            _mm256_storeu_pd(p.add(i), z0);
            _mm256_storeu_pd(p.add(i + 4), z1);
            i += 8;
        }
        if i < n {
            let mut tail = [0.0f64; 8];
            let (z0, z1) = polar8(&mut state);
            _mm256_storeu_pd(tail.as_mut_ptr(), z0);
            _mm256_storeu_pd(tail.as_mut_ptr().add(4), z1);
            out[i..].copy_from_slice(&tail[..n - i]);
        }
    }

    /// `i_out[t] += σ·z`, `q_out[t] += σ·z'` — one polar batch covers four
    /// samples of both rows.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_iq_f64(seed: u64, sigma: f64, i_out: &mut [f64], q_out: &mut [f64]) {
        let mut state = lane_states(seed);
        let vs = _mm256_set1_pd(sigma);
        let n = i_out.len().min(q_out.len());
        let (ip, qp) = (i_out.as_mut_ptr(), q_out.as_mut_ptr());
        let mut t = 0;
        while t + 4 <= n {
            let (z0, z1) = polar8(&mut state);
            _mm256_storeu_pd(
                ip.add(t),
                _mm256_fmadd_pd(vs, z0, _mm256_loadu_pd(ip.add(t))),
            );
            _mm256_storeu_pd(
                qp.add(t),
                _mm256_fmadd_pd(vs, z1, _mm256_loadu_pd(qp.add(t))),
            );
            t += 4;
        }
        if t < n {
            let mut zi = [0.0f64; 4];
            let mut zq = [0.0f64; 4];
            let (z0, z1) = polar8(&mut state);
            _mm256_storeu_pd(zi.as_mut_ptr(), z0);
            _mm256_storeu_pd(zq.as_mut_ptr(), z1);
            for (k, r) in (t..n).enumerate() {
                i_out[r] += sigma * zi[k];
                q_out[r] += sigma * zq[k];
            }
        }
    }

    /// f32 fill: generates f64 deviates and rounds — the extra precision is
    /// free next to the rejection loop, and keeps one polar core.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn fill_standard_f32(seed: u64, out: &mut [f32]) {
        let mut state = lane_states(seed);
        let n = out.len();
        let p = out.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let (z0, z1) = polar8(&mut state);
            _mm_storeu_ps(p.add(i), _mm256_cvtpd_ps(z0));
            _mm_storeu_ps(p.add(i + 4), _mm256_cvtpd_ps(z1));
            i += 8;
        }
        if i < n {
            let mut tail = [0.0f32; 8];
            let (z0, z1) = polar8(&mut state);
            _mm_storeu_ps(tail.as_mut_ptr(), _mm256_cvtpd_ps(z0));
            _mm_storeu_ps(tail.as_mut_ptr().add(4), _mm256_cvtpd_ps(z1));
            out[i..].copy_from_slice(&tail[..n - i]);
        }
    }

    /// f32 I/Q add, structured like [`add_iq_f64`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_iq_f32(seed: u64, sigma: f32, i_out: &mut [f32], q_out: &mut [f32]) {
        let mut state = lane_states(seed);
        let vs = _mm_set1_ps(sigma);
        let n = i_out.len().min(q_out.len());
        let (ip, qp) = (i_out.as_mut_ptr(), q_out.as_mut_ptr());
        let mut t = 0;
        while t + 4 <= n {
            let (z0, z1) = polar8(&mut state);
            _mm_storeu_ps(
                ip.add(t),
                _mm_fmadd_ps(vs, _mm256_cvtpd_ps(z0), _mm_loadu_ps(ip.add(t))),
            );
            _mm_storeu_ps(
                qp.add(t),
                _mm_fmadd_ps(vs, _mm256_cvtpd_ps(z1), _mm_loadu_ps(qp.add(t))),
            );
            t += 4;
        }
        if t < n {
            let mut zi = [0.0f32; 4];
            let mut zq = [0.0f32; 4];
            let (z0, z1) = polar8(&mut state);
            _mm_storeu_ps(zi.as_mut_ptr(), _mm256_cvtpd_ps(z0));
            _mm_storeu_ps(zq.as_mut_ptr(), _mm256_cvtpd_ps(z1));
            for (k, r) in (t..n).enumerate() {
                i_out[r] += sigma * zi[k];
                q_out[r] += sigma * zq[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_add_iq_matches_sample_gaussian_loop() {
        let n = 37;
        let mut a_i = vec![0.25f64; n];
        let mut a_q = vec![-0.5f64; n];
        let mut rng = StdRng::seed_from_u64(11);
        let mut spare = None;
        ScalarNoiseKernel.add_iq(&mut rng, 1.75, &mut spare, &mut a_i, &mut a_q);

        let mut b_i = vec![0.25f64; n];
        let mut b_q = vec![-0.5f64; n];
        let mut rng2 = StdRng::seed_from_u64(11);
        let mut spare2 = None;
        for t in 0..n {
            b_i[t] += 1.75 * f64::sample_gaussian(&mut rng2, &mut spare2);
            b_q[t] += 1.75 * f64::sample_gaussian(&mut rng2, &mut spare2);
        }
        assert_eq!(a_i, b_i);
        assert_eq!(a_q, b_q);
    }

    #[test]
    fn scalar_fill_matches_sample_gaussian_loop() {
        let mut out = vec![0.0f32; 9];
        let mut rng = StdRng::seed_from_u64(3);
        let mut spare = None;
        ScalarNoiseKernel.fill_standard(&mut rng, &mut spare, &mut out);
        let mut rng2 = StdRng::seed_from_u64(3);
        let mut spare2 = None;
        for (k, &x) in out.iter().enumerate() {
            assert_eq!(x, f32::sample_gaussian(&mut rng2, &mut spare2), "slot {k}");
        }
        // Odd length: the spare survives to the next call, like the loop.
        assert!(spare.is_some());
    }

    #[test]
    fn avx2_fill_is_deterministic_per_caller_state() {
        let Some(k) = Avx2NoiseKernel::get() else {
            return;
        };
        let fill = || {
            let mut rng = StdRng::seed_from_u64(5);
            let mut out = vec![0.0f64; 21];
            k.fill_standard(&mut rng, &mut None, &mut out);
            out
        };
        assert_eq!(fill(), fill());
        for x in fill() {
            assert!(x.is_finite());
        }
    }

    #[test]
    fn avx2_add_iq_consumes_exactly_one_caller_draw() {
        let Some(k) = Avx2NoiseKernel::get() else {
            return;
        };
        use rand::Rng as _;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut i = vec![0.0f64; 19];
        let mut q = vec![0.0f64; 19];
        k.add_iq(&mut a, 2.0, &mut None, &mut i, &mut q);
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64(), "one draw per bulk fill");
    }

    #[test]
    fn dispatch_follows_kernel_selection() {
        use crate::kernel::{select_kernel, KernelBackend};
        select_kernel(KernelBackend::Scalar).unwrap();
        assert_eq!(active_noise_kernel_name(), "scalar");
        let auto = select_kernel(KernelBackend::Auto).unwrap();
        assert_eq!(active_noise_kernel_name(), auto);
        // Restore whatever the environment requested (process-global state).
        let requested = std::env::var("HERQLES_KERNEL")
            .ok()
            .and_then(|v| KernelBackend::parse(&v).ok())
            .unwrap_or(KernelBackend::Auto);
        select_kernel(requested).unwrap();
    }
}
