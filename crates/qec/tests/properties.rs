//! Property-based tests of surface-code invariants.

use proptest::prelude::*;
use surface_code::decoder::decode_block;
use surface_code::syndrome::{DetectionEvent, NoiseParams, SyndromeBlock};
use surface_code::RotatedSurfaceCode;

/// Builds a single-round block from explicit errors with perfect syndromes.
fn block_from_errors(code: &RotatedSurfaceCode, errors: Vec<bool>) -> SyndromeBlock {
    let mut events = Vec::new();
    for (s, stab) in code.stabilizers().iter().enumerate() {
        let parity = stab.support.iter().filter(|&&q| errors[q]).count() % 2 == 1;
        if parity {
            events.push(DetectionEvent { stab: s, round: 0 });
        }
    }
    SyndromeBlock {
        events,
        final_errors: errors,
        rounds: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stabilizer_supports_have_valid_weights(d in prop::sample::select(vec![3usize, 5, 7])) {
        let code = RotatedSurfaceCode::new(d);
        for stab in code.stabilizers() {
            let w = stab.support.len();
            prop_assert!(w == 2 || w == 4, "weight {w}");
            for &q in &stab.support {
                prop_assert!(q < code.n_data());
            }
        }
    }

    #[test]
    fn syndromes_are_linear_in_errors(
        qs1 in proptest::collection::vec(0usize..25, 0..5),
        qs2 in proptest::collection::vec(0usize..25, 0..5),
    ) {
        // syndrome(e1 ⊕ e2) = syndrome(e1) ⊕ syndrome(e2).
        let code = RotatedSurfaceCode::new(5);
        let build = |qs: &[usize]| -> Vec<bool> {
            let mut e = vec![false; code.n_data()];
            for &q in qs {
                e[q] = !e[q];
            }
            e
        };
        let e1 = build(&qs1);
        let e2 = build(&qs2);
        let combined: Vec<bool> = e1.iter().zip(&e2).map(|(a, b)| a ^ b).collect();
        let syndrome = |errors: Vec<bool>| -> Vec<bool> {
            let block = block_from_errors(&code, errors);
            let mut s = vec![false; code.n_stabilizers()];
            for ev in &block.events {
                s[ev.stab] = true;
            }
            s
        };
        let s1 = syndrome(e1);
        let s2 = syndrome(e2);
        let sc = syndrome(combined);
        for i in 0..sc.len() {
            prop_assert_eq!(sc[i], s1[i] ^ s2[i], "stabilizer {}", i);
        }
    }

    #[test]
    fn weight_one_and_two_errors_never_cause_logical_errors(
        q1 in 0usize..25,
        q2 in 0usize..25,
    ) {
        // All weight ≤ 2 errors are correctable at distance 5 by a decoder
        // at least as strong as minimum weight on these configurations.
        let code = RotatedSurfaceCode::new(5);
        let mut errors = vec![false; code.n_data()];
        errors[q1] = true;
        if q2 != q1 {
            errors[q2] = true;
        }
        // Skip the pathological pairs where the two errors form exactly half
        // a logical: at weight 2 < d/2 = 2.5 that cannot happen, so assert.
        let block = block_from_errors(&code, errors);
        let out = decode_block(&code, &block);
        prop_assert!(!out.logical_error, "qubits {q1},{q2}");
    }

    #[test]
    fn decoding_is_deterministic(seed in 0u64..500) {
        let code = RotatedSurfaceCode::new(5);
        let noise = NoiseParams { data_error_prob: 0.05, meas_error_prob: 0.02 };
        let block = SyndromeBlock::simulate_seeded(&code, &noise, 5, seed);
        let a = decode_block(&code, &block);
        let b = decode_block(&code, &block);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn boundary_distances_sum_to_distance(d in prop::sample::select(vec![3usize, 5, 7, 9])) {
        let code = RotatedSurfaceCode::new(d);
        for s in 0..code.n_stabilizers() {
            prop_assert_eq!(code.dist_west(s) + code.dist_east(s), d);
        }
    }
}
