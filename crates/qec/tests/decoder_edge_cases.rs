//! Deterministic edge-case coverage for `decode_block`: the degenerate
//! syndromes a streaming QEC engine feeds the decoder most often (quiet
//! rounds, isolated ancilla flips, pure measurement noise).

use surface_code::syndrome::DetectionEvent;
use surface_code::{decode_block, RotatedSurfaceCode, SyndromeBlock};

fn empty_block(code: &RotatedSurfaceCode, rounds: usize) -> SyndromeBlock {
    SyndromeBlock {
        events: Vec::new(),
        final_errors: vec![false; code.n_data()],
        rounds,
    }
}

#[test]
fn d3_all_zero_syndrome_decodes_to_no_logical_error() {
    let code = RotatedSurfaceCode::new(3);
    for rounds in [1, 3, 7] {
        let block = empty_block(&code, rounds);
        let out = decode_block(&code, &block);
        assert_eq!(out.n_events, 0);
        assert_eq!(out.west_matches, 0);
        assert!(!out.logical_error, "quiet block at {rounds} rounds");
    }
}

#[test]
fn single_flipped_ancilla_per_round_never_flips_the_logical_class() {
    // One measurement flip on stabilizer `s` in round `t` produces the
    // time-like event pair {(s, t), (s, t+1)} and no data error. The decoder
    // must match the pair vertically (distance 1 beats any boundary route)
    // and report no logical error — for every stabilizer and every round.
    let code = RotatedSurfaceCode::new(3);
    let rounds = 4;
    for s in 0..code.n_stabilizers() {
        for t in 0..rounds {
            let block = SyndromeBlock {
                events: vec![
                    DetectionEvent { stab: s, round: t },
                    DetectionEvent {
                        stab: s,
                        round: t + 1,
                    },
                ],
                final_errors: vec![false; code.n_data()],
                rounds,
            };
            let out = decode_block(&code, &block);
            assert!(
                !out.logical_error,
                "stab {s} round {t}: isolated flip mis-decoded"
            );
            assert_eq!(out.west_matches % 2, 0, "stab {s} round {t}");
        }
    }
}

#[test]
fn measurement_error_only_blocks_have_no_false_logical_flip() {
    // Several simultaneous measurement flips, each visible as a time-like
    // pair on a distinct stabilizer: still no data errors, still no logical
    // error. Exercises the multi-pair regime of the exact DP matcher.
    let code = RotatedSurfaceCode::new(3);
    let rounds = 5;
    let flips: &[(usize, usize)] = &[(0, 0), (1, 2), (2, 3), (3, 1)];
    let mut events = Vec::new();
    for &(s, t) in flips {
        events.push(DetectionEvent { stab: s, round: t });
        events.push(DetectionEvent {
            stab: s,
            round: t + 1,
        });
    }
    let block = SyndromeBlock {
        events,
        final_errors: vec![false; code.n_data()],
        rounds,
    };
    let out = decode_block(&code, &block);
    assert_eq!(out.n_events, 8);
    assert!(!out.logical_error, "pure measurement noise caused a flip");
}

#[test]
fn measurement_error_only_simulated_blocks_rarely_flip_at_d3() {
    // Statistical counterpart on the simulator path: with data_error_prob = 0
    // the residual error state is trivial, so a logical flip can only come
    // from the decoder crossing the west boundary an odd number of times on
    // pure time-like noise — which must stay rare.
    let code = RotatedSurfaceCode::new(3);
    let noise = surface_code::NoiseParams {
        data_error_prob: 0.0,
        meas_error_prob: 0.03,
    };
    let mut failures = 0;
    for seed in 0..500 {
        let block = SyndromeBlock::simulate_seeded(&code, &noise, 3, seed);
        assert!(block.final_errors.iter().all(|&e| !e));
        if decode_block(&code, &block).logical_error {
            failures += 1;
        }
    }
    assert!(failures < 10, "{failures}/500 false logical flips");
}
