//! Decoder parity harness: the union-find decoder against the exact
//! subset-DP matcher, and the streaming window against whole-block decode.
//!
//! The exact matcher is the reference oracle up to its
//! `EXACT_MATCHING_LIMIT` (14) events; union-find must agree with its
//! `logical_error` verdict on *every* such block the simulated streams
//! produce — across distances, rounds, seeds, and noise levels spanning the
//! Fig. 13 operating points up to several times threshold-adjacent rates.
//! (Kernel dispatch never touches the decoder, but CI runs this harness
//! under `HERQLES_KERNEL=scalar` and `auto` so the guarantee is pinned on
//! both arms of every runner.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use surface_code::window::SlidingWindowDecoder;
use surface_code::{
    decode_block_exact, decode_block_uf, DecodeScratch, DecodingGraph, NoiseParams,
    RotatedSurfaceCode, SyndromeBlock, SyndromeSim, UnionFindScratch, EXACT_MATCHING_LIMIT,
};

#[test]
fn union_find_matches_exact_logical_error_on_all_small_blocks() {
    let mut exercised = 0usize;
    for d in [3usize, 5, 7] {
        let code = RotatedSurfaceCode::new(d);
        let mut scratch = DecodeScratch::prewarmed(&code, d);
        for (p_data, p_meas) in [(0.002, 0.002), (0.004, 0.004), (0.01, 0.01), (0.02, 0.015)] {
            let noise = NoiseParams {
                data_error_prob: p_data,
                meas_error_prob: p_meas,
            };
            for seed in 0..12u64 {
                let mut rng = StdRng::seed_from_u64(seed * 7919 + d as u64);
                for _ in 0..60 {
                    let block = SyndromeBlock::simulate(&code, &noise, d, &mut rng);
                    if block.events.is_empty() || block.events.len() > EXACT_MATCHING_LIMIT {
                        continue;
                    }
                    let exact = decode_block_exact(&code, &block, &mut scratch);
                    let uf = decode_block_uf(&code, &block, &mut scratch);
                    assert_eq!(
                        uf.logical_error, exact.logical_error,
                        "d={d} p=({p_data},{p_meas}) seed={seed}: union-find \
                         (west {}) disagrees with exact (west {}) on {:?}",
                        uf.west_matches, exact.west_matches, block.events
                    );
                    assert_eq!(uf.n_events, exact.n_events);
                    exercised += 1;
                }
            }
        }
    }
    assert!(
        exercised > 3_000,
        "only {exercised} blocks exercised — harness lost its coverage"
    );
}

#[test]
fn union_find_is_deterministic_across_event_orderings() {
    // Dense blocks (beyond the exact ceiling) under several permutations:
    // the decode must be a function of the event *set*. d = 3 is excluded —
    // its 16 space-time nodes cannot produce more than 14 events.
    for d in [5usize, 7] {
        let code = RotatedSurfaceCode::new(d);
        let noise = NoiseParams {
            data_error_prob: 0.05,
            meas_error_prob: 0.05,
        };
        let mut scratch = DecodeScratch::prewarmed(&code, d);
        let mut rng = StdRng::seed_from_u64(42 + d as u64);
        let mut dense_seen = 0usize;
        for _ in 0..60 {
            let block = SyndromeBlock::simulate(&code, &noise, d, &mut rng);
            if block.events.len() <= EXACT_MATCHING_LIMIT {
                continue;
            }
            dense_seen += 1;
            let base = decode_block_uf(&code, &block, &mut scratch);
            let mut permuted = block.clone();
            for _ in 0..5 {
                permuted.events.rotate_left(3);
                permuted.events.reverse();
                let out = decode_block_uf(&code, &permuted, &mut scratch);
                assert_eq!(out, base, "d={d}: permutation changed the UF decode");
            }
        }
        assert!(dense_seen > 5, "d={d}: only {dense_seen} dense blocks");
    }
}

#[test]
fn sliding_window_matches_whole_block_across_seeds() {
    // Long multi-window streams: the streamed commit-behind decode must land
    // on exactly the whole-block union-find answer, while genuinely
    // committing work ahead of the block end.
    let mut committed_total = 0usize;
    for d in [3usize, 5, 7] {
        let code = RotatedSurfaceCode::new(d);
        let rounds = 50;
        let lag = d;
        let noise = NoiseParams {
            data_error_prob: 0.004,
            meas_error_prob: 0.004,
        };
        let graph = DecodingGraph::new(&code, rounds);
        let mut uf = UnionFindScratch::for_graph(&graph);
        let mut wd = SlidingWindowDecoder::new(lag);
        wd.reserve_for(&graph);
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed * 31 + d as u64);
            let mut sim = SyndromeSim::new(&code, &noise);
            sim.reserve_rounds(rounds);
            let mut fed = 0usize;
            for t in 0..rounds {
                sim.step_round(&mut rng);
                wd.push_events(&sim.events()[fed..]);
                fed = sim.events().len();
                wd.advance(t, &graph, &mut uf);
            }
            sim.finish_perfect_round();
            wd.push_events(&sim.events()[fed..]);
            let streamed = wd.finish(&graph, &mut uf);
            committed_total += wd.committed_clusters();
            let block = sim.into_block();
            let whole = surface_code::uf::decode_events(&graph, &block.events, &mut uf);
            assert_eq!(
                streamed, whole,
                "d={d} seed={seed}: streamed west count diverged from whole-block"
            );
            wd.reset();
        }
    }
    assert!(
        committed_total > 50,
        "streams committed only {committed_total} clusters ahead of block end"
    );
}

#[test]
fn union_find_scales_to_d11_without_ceiling() {
    // The acceptance bar: blocks at d = 11 (and 9) with event counts far
    // past the old 2^14 subset ceiling decode through union-find.
    for d in [9usize, 11] {
        let code = RotatedSurfaceCode::new(d);
        let noise = NoiseParams {
            data_error_prob: 0.01,
            meas_error_prob: 0.01,
        };
        let mut scratch = DecodeScratch::prewarmed(&code, d);
        let mut rng = StdRng::seed_from_u64(d as u64);
        let mut densest = 0usize;
        for _ in 0..20 {
            let block = SyndromeBlock::simulate(&code, &noise, d, &mut rng);
            densest = densest.max(block.events.len());
            let out = surface_code::decode_block_with(&code, &block, &mut scratch);
            assert_eq!(out.n_events, block.events.len());
            assert!(!out.degraded);
        }
        assert!(
            densest > EXACT_MATCHING_LIMIT,
            "d={d}: densest block only {densest} events"
        );
    }
}
