//! Geometry of the rotated surface code (Z-stabilizer sector).
//!
//! Data qubits live on a `d × d` grid. Bulk Z-plaquettes sit between grid
//! cells at positions `(r, c)` with `r, c ∈ 0..d−1` and `(r+c)` even,
//! covering the four data qubits `(r..r+1, c..c+1)`. Weight-2 boundary
//! Z-stabilizers close the north edge (odd `c`) and south edge (even `c`).
//! With this choice the `X` logical operator runs west–east along a row, the
//! `Z` logical along a column, and every data qubit on the west/east columns
//! touches exactly one Z-stabilizer (its other matching endpoint is the
//! virtual west/east boundary node).

/// One Z-stabilizer: its plaquette coordinates and supported data qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZStabilizer {
    /// Plaquette row: `-1` for north boundary stabilizers, `d-1` for south,
    /// `0..d-1` for bulk.
    pub row: i32,
    /// Plaquette column in `0..d-1`.
    pub col: i32,
    /// Indices (into the `d*d` data array, row-major) of supported qubits.
    pub support: Vec<usize>,
}

/// The distance-`d` rotated surface code (Z sector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatedSurfaceCode {
    distance: usize,
    stabilizers: Vec<ZStabilizer>,
    /// For each data qubit: indices of the (1 or 2) Z-stabilizers covering it.
    qubit_stabs: Vec<Vec<usize>>,
}

impl RotatedSurfaceCode {
    /// Builds the code for an odd distance `d ≥ 3`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or smaller than 3.
    pub fn new(distance: usize) -> Self {
        assert!(
            distance >= 3 && distance % 2 == 1,
            "distance must be odd and ≥ 3"
        );
        let d = distance as i32;
        let mut stabilizers = Vec::new();

        // Bulk plaquettes, checkerboard.
        for r in 0..d - 1 {
            for c in 0..d - 1 {
                if (r + c) % 2 == 0 {
                    stabilizers.push(ZStabilizer {
                        row: r,
                        col: c,
                        support: vec![
                            Self::qidx(d, r, c),
                            Self::qidx(d, r, c + 1),
                            Self::qidx(d, r + 1, c),
                            Self::qidx(d, r + 1, c + 1),
                        ],
                    });
                }
            }
        }
        // North boundary (row −1), odd columns.
        for c in (1..d - 1).step_by(2) {
            stabilizers.push(ZStabilizer {
                row: -1,
                col: c,
                support: vec![Self::qidx(d, 0, c), Self::qidx(d, 0, c + 1)],
            });
        }
        // South boundary (row d−1), even columns.
        for c in (0..d - 1).step_by(2) {
            stabilizers.push(ZStabilizer {
                row: d - 1,
                col: c,
                support: vec![Self::qidx(d, d - 1, c), Self::qidx(d, d - 1, c + 1)],
            });
        }

        let mut qubit_stabs = vec![Vec::new(); (d * d) as usize];
        for (s, stab) in stabilizers.iter().enumerate() {
            for &q in &stab.support {
                qubit_stabs[q].push(s);
            }
        }
        RotatedSurfaceCode {
            distance,
            stabilizers,
            qubit_stabs,
        }
    }

    fn qidx(d: i32, r: i32, c: i32) -> usize {
        (r * d + c) as usize
    }

    /// The code distance.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of data qubits (`d²`).
    pub fn n_data(&self) -> usize {
        self.distance * self.distance
    }

    /// The Z-stabilizers.
    pub fn stabilizers(&self) -> &[ZStabilizer] {
        &self.stabilizers
    }

    /// Number of Z-stabilizers (`(d²−1)/2`).
    pub fn n_stabilizers(&self) -> usize {
        self.stabilizers.len()
    }

    /// Z-stabilizer indices covering data qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn stabs_of_qubit(&self, q: usize) -> &[usize] {
        &self.qubit_stabs[q]
    }

    /// Column of data qubit `q`.
    pub fn qubit_col(&self, q: usize) -> usize {
        q % self.distance
    }

    /// Whether data qubit `q` lies on the west boundary (column 0) — the
    /// column whose error parity decides the `X` logical class.
    pub fn is_west_column(&self, q: usize) -> bool {
        self.qubit_col(q) == 0
    }

    /// Spatial matching distance between two Z-stabilizers: diagonal steps
    /// on the plaquette lattice, `max(|Δrow|, |Δcol|)`.
    pub fn stab_distance(&self, a: usize, b: usize) -> usize {
        let (sa, sb) = (&self.stabilizers[a], &self.stabilizers[b]);
        let dr = (sa.row - sb.row).unsigned_abs() as usize;
        let dc = (sa.col - sb.col).unsigned_abs() as usize;
        dr.max(dc)
    }

    /// Matching distance from a Z-stabilizer to the west boundary: diagonal
    /// steps to reach a column-0 plaquette plus the boundary edge itself.
    pub fn dist_west(&self, s: usize) -> usize {
        self.stabilizers[s].col as usize + 1
    }

    /// Matching distance from a Z-stabilizer to the east boundary.
    pub fn dist_east(&self, s: usize) -> usize {
        self.distance - 1 - self.stabilizers[s].col as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilizer_count_matches_formula() {
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            assert_eq!(code.n_stabilizers(), (d * d - 1) / 2, "distance {d}");
            assert_eq!(code.n_data(), d * d);
        }
    }

    #[test]
    fn every_qubit_touches_one_or_two_z_stabilizers() {
        let code = RotatedSurfaceCode::new(5);
        for q in 0..code.n_data() {
            let n = code.stabs_of_qubit(q).len();
            assert!((1..=2).contains(&n), "qubit {q} touches {n} Z-stabilizers");
        }
    }

    #[test]
    fn single_neighbour_qubits_are_on_west_or_east_columns() {
        let code = RotatedSurfaceCode::new(7);
        for q in 0..code.n_data() {
            if code.stabs_of_qubit(q).len() == 1 {
                let c = code.qubit_col(q);
                assert!(
                    c == 0 || c == 6,
                    "qubit {q} (column {c}) has one neighbour but is interior"
                );
            }
        }
    }

    #[test]
    fn interior_qubits_touch_exactly_two() {
        let code = RotatedSurfaceCode::new(7);
        for q in 0..code.n_data() {
            let c = code.qubit_col(q);
            if c != 0 && c != 6 {
                assert_eq!(code.stabs_of_qubit(q).len(), 2, "qubit {q}");
            }
        }
    }

    #[test]
    fn logical_x_row_commutes_with_all_z_stabilizers() {
        // A full row of X errors must flip every Z-stabilizer an even number
        // of times.
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            for row in 0..d {
                let mut flips = vec![0usize; code.n_stabilizers()];
                for c in 0..d {
                    let q = row * d + c;
                    for &s in code.stabs_of_qubit(q) {
                        flips[s] += 1;
                    }
                }
                assert!(
                    flips.iter().all(|&f| f % 2 == 0),
                    "row {row} of distance-{d} code is detectable"
                );
            }
        }
    }

    #[test]
    fn logical_x_row_crosses_west_column_once() {
        let code = RotatedSurfaceCode::new(5);
        // Row 0 of the logical X operator touches column 0 exactly once.
        let crossings = (0..5).filter(|&c| code.is_west_column(c)).count();
        assert_eq!(crossings, 1);
    }

    #[test]
    fn single_errors_are_all_detectable() {
        let code = RotatedSurfaceCode::new(5);
        for q in 0..code.n_data() {
            assert!(!code.stabs_of_qubit(q).is_empty(), "qubit {q} is invisible");
        }
    }

    #[test]
    fn stab_distance_is_symmetric_diagonal_metric() {
        let code = RotatedSurfaceCode::new(5);
        for a in 0..code.n_stabilizers() {
            assert_eq!(code.stab_distance(a, a), 0);
            for b in 0..code.n_stabilizers() {
                assert_eq!(code.stab_distance(a, b), code.stab_distance(b, a));
            }
        }
    }

    #[test]
    fn boundary_distances_cover_the_width() {
        let code = RotatedSurfaceCode::new(7);
        for s in 0..code.n_stabilizers() {
            let w = code.dist_west(s);
            let e = code.dist_east(s);
            assert!(w >= 1 && e >= 1);
            // Crossing the whole code always costs exactly d qubit flips.
            assert_eq!(w + e, code.distance(), "stab {s}: {w} + {e}");
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_panics() {
        let _ = RotatedSurfaceCode::new(4);
    }
}
