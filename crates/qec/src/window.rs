//! Sliding-window streaming decode on top of the union-find decoder.
//!
//! A [`SlidingWindowDecoder`] consumes detection events round by round and
//! decodes *behind* the stream: when round `t` arrives it runs union-find
//! over everything still buffered and **commits** every cluster whose
//! spanning tree stays at rounds `≤ t − w` (`w` = the configured lag),
//! accumulating the committed clusters' west parity and dropping their
//! events. Clusters that reach past the commit horizon are deferred
//! wholesale — kept in the buffer, in arrival order, for re-decoding once
//! more rounds have arrived. Deferring whole clusters (instead of cutting
//! them at the seam) is the window-boundary handling: a cluster is only
//! resolved when the stream has moved far enough past it that later events
//! cannot merge into it, so no artificial boundary ever splits a match.
//!
//! [`SlidingWindowDecoder::finish`] decodes the remaining buffer without a
//! horizon and returns the block's totals. As long as every committed
//! cluster is one the whole-block decode would also have formed — true
//! whenever event clusters are separated by at least the lag, which the lag
//! is chosen to make overwhelmingly likely — the streamed outcome is
//! *identical* to [`crate::uf::decode_events`] over the full block;
//! `herqles-stream`'s parity tests pin this on long multi-window streams.
//!
//! All rounds are absolute block rounds: events are never rebased, the
//! decoding graph spans the whole block, and the caller owns both the graph
//! and the [`UnionFindScratch`], so warm streaming decodes are
//! allocation-free.

use crate::graph::DecodingGraph;
use crate::syndrome::DetectionEvent;
use crate::uf::{decode_events, decode_events_commit, UnionFindScratch};

/// Streaming window state for one block. Reused across blocks via
/// [`SlidingWindowDecoder::reset`]; buffers keep their capacity.
#[derive(Debug, Clone)]
pub struct SlidingWindowDecoder {
    /// Commit lag `w`: with round `t` fed, clusters confined to rounds
    /// `≤ t − w` commit.
    lag: usize,
    /// Uncommitted events, in arrival order.
    buf: Vec<DetectionEvent>,
    /// Swap buffer for the deferred set.
    keep: Vec<DetectionEvent>,
    /// West-boundary edges of committed clusters.
    west: usize,
    /// Clusters committed before [`SlidingWindowDecoder::finish`].
    committed_clusters: usize,
    /// Events consumed this block (committed + still buffered).
    n_events: usize,
}

impl SlidingWindowDecoder {
    /// A window decoder with commit lag `w ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `lag == 0` (committing the round currently arriving would
    /// race the events still being measured).
    pub fn new(lag: usize) -> Self {
        assert!(lag >= 1, "sliding-window lag must be at least one round");
        SlidingWindowDecoder {
            lag,
            buf: Vec::new(),
            keep: Vec::new(),
            west: 0,
            committed_clusters: 0,
            n_events: 0,
        }
    }

    /// Pre-reserves event buffers for blocks on `graph` (every space-time
    /// node could fire at most once), making warm streaming allocation-free.
    pub fn reserve_for(&mut self, graph: &DecodingGraph) {
        let cap = graph.n_nodes();
        self.buf.reserve(cap.saturating_sub(self.buf.capacity()));
        self.keep.reserve(cap.saturating_sub(self.keep.capacity()));
    }

    /// The configured commit lag.
    pub fn lag(&self) -> usize {
        self.lag
    }

    /// West parity accumulated from committed clusters so far.
    pub fn committed_west(&self) -> usize {
        self.west
    }

    /// Clusters committed ahead of the block end so far.
    pub fn committed_clusters(&self) -> usize {
        self.committed_clusters
    }

    /// Events fed this block.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// Events currently buffered (not yet committed).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Clears per-block state for the next block, keeping capacity.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.keep.clear();
        self.west = 0;
        self.committed_clusters = 0;
        self.n_events = 0;
    }

    /// Feeds newly arrived events (any rounds up to the round about to be
    /// advanced past).
    pub fn push_events(&mut self, events: &[DetectionEvent]) {
        self.buf.extend_from_slice(events);
        self.n_events += events.len();
    }

    /// Round `t` has fully arrived: decode the buffer and commit clusters
    /// confined to rounds `≤ t − lag`. No-op until the stream is `lag`
    /// rounds deep or while nothing is buffered.
    pub fn advance(&mut self, t: usize, graph: &DecodingGraph, scratch: &mut UnionFindScratch) {
        if t < self.lag || self.buf.is_empty() {
            return;
        }
        let horizon = t - self.lag;
        self.keep.clear();
        let (west, clusters) =
            decode_events_commit(graph, &self.buf, horizon, scratch, &mut self.keep);
        self.west += west;
        self.committed_clusters += clusters;
        std::mem::swap(&mut self.buf, &mut self.keep);
    }

    /// Ends the block: decodes whatever is still buffered (no horizon) and
    /// returns the block's total west count. The decoder is left ready for
    /// [`SlidingWindowDecoder::reset`].
    pub fn finish(&mut self, graph: &DecodingGraph, scratch: &mut UnionFindScratch) -> usize {
        if !self.buf.is_empty() {
            self.west += decode_events(graph, &self.buf, scratch);
            self.buf.clear();
        }
        self.west
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RotatedSurfaceCode;
    use crate::syndrome::{NoiseParams, SyndromeSim};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Streams a simulated long block through the window round by round and
    /// compares against the whole-block union-find decode.
    #[test]
    fn streamed_decode_matches_whole_block_on_long_streams() {
        for (d, rounds, lag, seed) in [(3, 40, 3, 1u64), (5, 60, 4, 2), (7, 48, 5, 3)] {
            let code = RotatedSurfaceCode::new(d);
            let noise = NoiseParams {
                data_error_prob: 0.004,
                meas_error_prob: 0.004,
            };
            let graph = DecodingGraph::new(&code, rounds);
            let mut scratch = UnionFindScratch::for_graph(&graph);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sim = SyndromeSim::new(&code, &noise);
            sim.reserve_rounds(rounds);
            let mut wd = SlidingWindowDecoder::new(lag);
            wd.reserve_for(&graph);
            let mut fed = 0usize;
            for t in 0..rounds {
                sim.step_round(&mut rng);
                wd.push_events(&sim.events()[fed..]);
                fed = sim.events().len();
                wd.advance(t, &graph, &mut scratch);
            }
            sim.finish_perfect_round();
            wd.push_events(&sim.events()[fed..]);
            let streamed = wd.finish(&graph, &mut scratch);
            let block = sim.into_block();
            let whole = decode_events(&graph, &block.events, &mut scratch);
            assert_eq!(
                streamed, whole,
                "d={d} rounds={rounds} lag={lag}: streamed west diverged"
            );
            assert_eq!(wd.n_events(), block.events.len());
            assert!(
                wd.committed_clusters() > 0,
                "d={d}: long stream never committed ahead of the block end"
            );
        }
    }

    #[test]
    fn quiet_stream_commits_nothing_and_finishes_clean() {
        let code = RotatedSurfaceCode::new(3);
        let graph = DecodingGraph::new(&code, 10);
        let mut scratch = UnionFindScratch::for_graph(&graph);
        let mut wd = SlidingWindowDecoder::new(2);
        for t in 0..10 {
            wd.advance(t, &graph, &mut scratch);
        }
        assert_eq!(wd.finish(&graph, &mut scratch), 0);
        assert_eq!(wd.committed_clusters(), 0);
        assert_eq!(wd.n_events(), 0);
    }

    #[test]
    fn reset_reuses_buffers_across_blocks() {
        let code = RotatedSurfaceCode::new(3);
        let graph = DecodingGraph::new(&code, 8);
        let mut scratch = UnionFindScratch::for_graph(&graph);
        let mut wd = SlidingWindowDecoder::new(2);
        wd.reserve_for(&graph);
        for _ in 0..3 {
            wd.push_events(&[
                DetectionEvent { stab: 0, round: 0 },
                DetectionEvent { stab: 0, round: 1 },
            ]);
            for t in 0..8 {
                wd.advance(t, &graph, &mut scratch);
            }
            let west = wd.finish(&graph, &mut scratch);
            assert_eq!(west, 0, "vertical pair never exits west");
            assert_eq!(wd.n_events(), 2);
            wd.reset();
        }
    }
}
