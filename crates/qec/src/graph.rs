//! Precomputed space-time decoding graph for the union-find decoder.
//!
//! The graph is built once per ([`RotatedSurfaceCode`], block length) and
//! reused for every block: nodes are stabilizer × round pairs laid out
//! layer-major (`round * n_stabs + stab`), plus two virtual boundary nodes
//! (west and east) shared by every layer. Edges carry a uniform weight of
//! [`EDGE_WEIGHT`] half-steps:
//!
//! * **spatial** edges between stabilizers at [`RotatedSurfaceCode::stab_distance`]
//!   1 in the same round (the plaquette lattice's diagonal neighbours — each
//!   pair shares exactly one data qubit, so one edge = one data-qubit flip);
//! * **temporal** edges between the same stabilizer in consecutive rounds
//!   (one measurement flip);
//! * **boundary** edges from stabilizers at `dist_west == 1` (resp.
//!   `dist_east == 1`) to the west (resp. east) virtual node.
//!
//! Along any path, spatial and temporal steps add, so the graph metric
//! equals the matcher metric `stab_distance + |Δround|` used by the exact
//! subset-DP oracle. Spatial adjacency is layer-uniform, so it is stored
//! once per stabilizer and shared by all layers.
//!
//! # Half-edge slot layout
//!
//! Union-find growth tracks per-node half-edge support in fixed slots
//! ([`MAX_SLOTS`] per node): slot 0 is the temporal edge to round `t−1`,
//! slot 1 to round `t+1`, slot 2 the west boundary edge, slot 3 the east
//! boundary edge, and slots 4.. the (≤ 4) spatial neighbours in adjacency
//! order. Each spatial neighbour entry records the *reverse* slot — the
//! index of this stabilizer in the neighbour's adjacency list — so the two
//! halves of one edge find each other in O(1). Boundary nodes never grow;
//! a boundary edge is full when the stabilizer side alone reaches
//! [`EDGE_WEIGHT`].

use crate::layout::RotatedSurfaceCode;

/// Half-edge slots per node: 2 temporal + 2 boundary + up to 4 spatial.
pub const MAX_SLOTS: usize = 8;

/// First spatial slot (after temporal down/up and west/east boundary).
pub const SPATIAL_SLOT0: usize = 4;

/// Uniform edge weight in half-steps: each endpoint can contribute
/// [`EDGE_WEIGHT`]/2 units per growth round, so an edge between two active
/// clusters fills in one round and an edge grown from one side in two.
pub const EDGE_WEIGHT: u8 = 2;

/// One spatial neighbour of a stabilizer: the neighbour's index and the
/// reverse adjacency slot (index of *this* stabilizer in the neighbour's
/// list), offset into the half-edge layout by [`SPATIAL_SLOT0`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpatialNeighbor {
    /// Neighbouring stabilizer index.
    pub stab: u32,
    /// Half-edge slot of the reverse direction (`SPATIAL_SLOT0 + k` where
    /// `k` is this stabilizer's position in the neighbour's list).
    pub rev_slot: u8,
}

/// The precomputed decoding graph of one code at one block length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodingGraph {
    distance: usize,
    n_stabs: usize,
    /// Time layers: `rounds + 1` (detection events carry rounds in
    /// `0..=rounds`, the last being the terminating perfect round).
    layers: usize,
    /// CSR offsets into `adj`, one row per stabilizer (`n_stabs + 1`).
    adj_off: Vec<u32>,
    /// Concatenated spatial neighbour lists.
    adj: Vec<SpatialNeighbor>,
    /// Whether the stabilizer has a west boundary edge (`dist_west == 1`).
    west1: Vec<bool>,
    /// Whether the stabilizer has an east boundary edge (`dist_east == 1`).
    east1: Vec<bool>,
    /// Per-stabilizer plaquette coordinates, for the matching metric.
    rc: Vec<(i16, i16)>,
    /// Per-stabilizer boundary distances (`dist_west`, `dist_east`).
    dw: Vec<u16>,
    de: Vec<u16>,
}

impl DecodingGraph {
    /// Builds the graph for blocks of `rounds` noisy rounds (event rounds
    /// `0..=rounds` — the graph has `rounds + 1` time layers).
    pub fn new(code: &RotatedSurfaceCode, rounds: usize) -> Self {
        let n_stabs = code.n_stabilizers();
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_stabs];
        for (a, list) in lists.iter_mut().enumerate() {
            for b in 0..n_stabs {
                if a != b && code.stab_distance(a, b) == 1 {
                    list.push(b as u32);
                }
            }
            debug_assert!(
                list.len() <= MAX_SLOTS - SPATIAL_SLOT0,
                "stabilizer {a} has {} spatial neighbours",
                list.len()
            );
        }
        let mut adj_off = Vec::with_capacity(n_stabs + 1);
        let mut adj = Vec::new();
        adj_off.push(0u32);
        for (a, list) in lists.iter().enumerate() {
            for &b in list {
                let rev = lists[b as usize]
                    .iter()
                    .position(|&x| x as usize == a)
                    .expect("spatial adjacency is symmetric");
                adj.push(SpatialNeighbor {
                    stab: b,
                    rev_slot: (SPATIAL_SLOT0 + rev) as u8,
                });
            }
            adj_off.push(adj.len() as u32);
        }
        let west1 = (0..n_stabs).map(|s| code.dist_west(s) == 1).collect();
        let east1 = (0..n_stabs).map(|s| code.dist_east(s) == 1).collect();
        let rc = code
            .stabilizers()
            .iter()
            .map(|st| (st.row as i16, st.col as i16))
            .collect();
        let dw = (0..n_stabs).map(|s| code.dist_west(s) as u16).collect();
        let de = (0..n_stabs).map(|s| code.dist_east(s) as u16).collect();
        DecodingGraph {
            distance: code.distance(),
            n_stabs,
            layers: rounds + 1,
            adj_off,
            adj,
            west1,
            east1,
            rc,
            dw,
            de,
        }
    }

    /// The code distance the graph was built for.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Stabilizers per layer.
    pub fn n_stabs(&self) -> usize {
        self.n_stabs
    }

    /// Time layers (`rounds + 1`).
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Real (stabilizer × round) nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_stabs * self.layers
    }

    /// Index of the virtual west boundary node.
    pub fn west_node(&self) -> usize {
        self.n_nodes()
    }

    /// Index of the virtual east boundary node.
    pub fn east_node(&self) -> usize {
        self.n_nodes() + 1
    }

    /// Node index of stabilizer `stab` in round `round`.
    pub fn node(&self, stab: usize, round: usize) -> usize {
        debug_assert!(stab < self.n_stabs && round < self.layers);
        round * self.n_stabs + stab
    }

    /// Stabilizer of a real node.
    pub fn stab_of(&self, node: usize) -> usize {
        node % self.n_stabs
    }

    /// Round of a real node.
    pub fn round_of(&self, node: usize) -> usize {
        node / self.n_stabs
    }

    /// Spatial neighbours of stabilizer `s` (layer-uniform).
    pub fn spatial(&self, s: usize) -> &[SpatialNeighbor] {
        &self.adj[self.adj_off[s] as usize..self.adj_off[s + 1] as usize]
    }

    /// Whether stabilizer `s` has a west boundary edge.
    pub fn has_west_edge(&self, s: usize) -> bool {
        self.west1[s]
    }

    /// Whether stabilizer `s` has an east boundary edge.
    pub fn has_east_edge(&self, s: usize) -> bool {
        self.east1[s]
    }

    /// Matching distance from stabilizer `s` to the west boundary
    /// (same values as [`RotatedSurfaceCode::dist_west`]).
    pub fn dist_west(&self, s: usize) -> usize {
        self.dw[s] as usize
    }

    /// Matching distance from stabilizer `s` to the east boundary.
    pub fn dist_east(&self, s: usize) -> usize {
        self.de[s] as usize
    }

    /// Spatial matching distance between two stabilizers (diagonal steps on
    /// the plaquette lattice — same values as
    /// [`RotatedSurfaceCode::stab_distance`]).
    pub fn stab_distance(&self, a: usize, b: usize) -> usize {
        let (ra, ca) = self.rc[a];
        let (rb, cb) = self.rc[b];
        let dr = (ra - rb).unsigned_abs() as usize;
        let dc = (ca - cb).unsigned_abs() as usize;
        dr.max(dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_adjacency_is_symmetric_and_shares_one_qubit() {
        for d in [3, 5, 7] {
            let code = RotatedSurfaceCode::new(d);
            let graph = DecodingGraph::new(&code, d);
            for a in 0..code.n_stabilizers() {
                for nb in graph.spatial(a) {
                    let b = nb.stab as usize;
                    assert_eq!(code.stab_distance(a, b), 1);
                    // The reverse slot points back at `a`.
                    let k = nb.rev_slot as usize - SPATIAL_SLOT0;
                    assert_eq!(graph.spatial(b)[k].stab as usize, a);
                    // Exactly one shared data qubit: the edge's flip qubit.
                    let sa = &code.stabilizers()[a];
                    let sb = &code.stabilizers()[b];
                    let shared = sa.support.iter().filter(|q| sb.support.contains(q)).count();
                    assert_eq!(shared, 1, "stabs {a},{b} share {shared} qubits");
                }
            }
        }
    }

    #[test]
    fn boundary_edges_cover_first_and_last_plaquette_columns() {
        let code = RotatedSurfaceCode::new(5);
        let graph = DecodingGraph::new(&code, 5);
        for s in 0..code.n_stabilizers() {
            assert_eq!(graph.has_west_edge(s), code.dist_west(s) == 1);
            assert_eq!(graph.has_east_edge(s), code.dist_east(s) == 1);
        }
        assert!((0..code.n_stabilizers()).any(|s| graph.has_west_edge(s)));
        assert!((0..code.n_stabilizers()).any(|s| graph.has_east_edge(s)));
    }

    #[test]
    fn node_indexing_round_trips() {
        let code = RotatedSurfaceCode::new(3);
        let graph = DecodingGraph::new(&code, 4);
        assert_eq!(graph.layers(), 5);
        for round in 0..graph.layers() {
            for stab in 0..graph.n_stabs() {
                let n = graph.node(stab, round);
                assert_eq!(graph.stab_of(n), stab);
                assert_eq!(graph.round_of(n), round);
            }
        }
        assert_eq!(graph.west_node(), graph.n_nodes());
        assert_eq!(graph.east_node(), graph.n_nodes() + 1);
    }
}
