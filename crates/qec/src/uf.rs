//! Union-find decoder: cluster growth, boundary absorption, and peeling.
//!
//! The decoder grows clusters around detection events on the precomputed
//! [`DecodingGraph`] in synchronous half-step rounds (Delfosse–Nickerson
//! style): every node of an *active* cluster — odd defect parity, no
//! boundary contact — adds half a step of support to each of its unsaturated
//! half-edges; an edge whose support reaches [`EDGE_WEIGHT`] merges its
//! endpoints (weighted union by cluster size with path compression, the
//! virtual boundary nodes carrying effectively infinite size so they always
//! remain roots). A cluster that touches the west or east boundary is
//! absorbed — it stops growing, its parity no longer matters. Growth stops
//! when no active cluster remains.
//!
//! The union steps record a spanning forest of the grown clusters. Peeling
//! roots each tree at its boundary node (west first, then east, then the
//! first-touched real node for interior clusters) and walks it bottom-up:
//! a node whose accumulated defect parity is odd puts its parent edge into
//! the correction and flips its parent; boundary nodes absorb whatever
//! parity reaches them. Only west boundary edges can flip the logical `X`
//! class (west-column data qubits touch exactly one Z-stabilizer — see
//! [`crate::decoder`]), so the correction's weight along any interior path
//! is irrelevant and the decoder just counts committed west edges.
//!
//! Tree peeling alone routes a cluster's parity out whichever boundary the
//! growth touched *first*, which on co-optimal configurations can disagree
//! with minimum-weight matching (e.g. three merged defects where pairing
//! two and exiting the third east beats routing everything west — or two
//! defects in *different* clusters whose direct pairing ties both clusters'
//! independent boundary exits). So after peeling assigns commit components,
//! events are linked into **interaction groups** — same component, or
//! within the interaction radius `d + 1` of each other (far enough that a
//! direct pairing can never tie two independent boundary resolutions
//! beyond it) — and every group with at most [`LOCAL_EXACT_LIMIT`] events
//! has its west count *refined* by the exact canonical subset-DP over the
//! group — the identical metric and min-cost/min-west tie-break as
//! [`crate::decoder`]'s oracle. Clusters and their groups are small with
//! overwhelming probability, so the refinement is near-free; only a group
//! beyond the limit keeps the sum of its components' peeled answers.
//!
//! Everything runs against a caller-owned [`UnionFindScratch`]: once sized
//! for a graph (see [`UnionFindScratch::for_graph`]) a decode performs no
//! heap allocation, preserving the streaming engine's warm zero-allocation
//! contract.
//!
//! Processing order — node-index order within each growth round, input
//! order for traversal roots — is fixed, so the decode is deterministic and
//! independent of the order events are listed in.

use crate::graph::{DecodingGraph, EDGE_WEIGHT, MAX_SLOTS, SPATIAL_SLOT0};
use crate::syndrome::DetectionEvent;

const NO_NODE: u32 = u32::MAX;

/// Components with at most this many defects are re-matched exactly (the
/// same ceiling as [`crate::decoder::EXACT_MATCHING_LIMIT`]); larger ones
/// keep the peeled correction.
pub const LOCAL_EXACT_LIMIT: usize = 14;

/// Low bits of the packed local-DP value hold the west count; the cost sits
/// above them, so `min` on the packed value is the canonical
/// (min-cost, then min-west) tie-break.
const WEST_BITS: u32 = 8;

/// One recorded spanning-forest edge (endpoints as graph node indices; the
/// second endpoint may be a virtual boundary node).
#[derive(Debug, Clone, Copy)]
struct TreeEdge {
    a: u32,
    b: u32,
}

/// Caller-owned working memory for union-find decoding. All buffers are
/// sized to the graph's node count plus the two boundary nodes; a scratch
/// pre-sized with [`UnionFindScratch::for_graph`] never allocates during
/// [`decode_events`] / [`decode_events_commit`].
#[derive(Debug, Clone, Default)]
pub struct UnionFindScratch {
    parent: Vec<u32>,
    size: Vec<u32>,
    /// Per-root defect parity of the cluster.
    parity: Vec<bool>,
    /// Per-root boundary-contact flag (absorbed clusters stop growing).
    boundary: Vec<bool>,
    /// Per-node defect marks; consumed as the carry during peeling.
    defect: Vec<bool>,
    /// Per-node half-edge support, [`MAX_SLOTS`] slots per node.
    growth: Vec<u8>,
    /// Spanning-forest edges recorded by the unions.
    tree: Vec<TreeEdge>,
    /// CSR offsets / adjacency of the spanning forest (rebuilt per decode).
    edge_off: Vec<u32>,
    edge_adj: Vec<u32>,
    /// Peeling traversal state.
    visited: Vec<bool>,
    order: Vec<u32>,
    parent_node: Vec<u32>,
    stack: Vec<u32>,
    /// Commit component id per node: trees are split at boundary nodes, so
    /// each physically separate cluster commits independently even when
    /// several absorbed the same virtual boundary.
    comp: Vec<u32>,
    /// Per-component (indexed by component id) latest touched round.
    comp_max_round: Vec<u32>,
    /// Per-component committed west-boundary edges (peeled; the group
    /// refinement overrides these through `group_west`).
    comp_west: Vec<u32>,
    /// Event-level union-find over interaction groups.
    ev_parent: Vec<u32>,
    /// `(group representative, component id, event index)` triples, sorted
    /// so each group's events are contiguous (components contiguous within
    /// a group) for the refinement and the fallback sum.
    by_group: Vec<(u32, u32, u32)>,
    /// Per-group (indexed by representative event) west count.
    group_west: Vec<u32>,
    /// Per-group latest round touched by any member component's tree.
    group_max_round: Vec<u32>,
    /// Per-group commit flag for [`decode_events_commit`].
    group_commit: Vec<bool>,
    /// Subset-DP table for the group refinement (≤ `1 << LOCAL_EXACT_LIMIT`
    /// packed entries).
    memo: Vec<u64>,
}

impl UnionFindScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        UnionFindScratch::default()
    }

    /// A scratch pre-sized for `graph`, so decoding any block on it is
    /// allocation-free.
    pub fn for_graph(graph: &DecodingGraph) -> Self {
        let mut scratch = UnionFindScratch::new();
        scratch.ensure(graph);
        scratch
    }

    /// Grows every buffer to the graph's node count (no-op when already
    /// large enough — the warm path).
    fn ensure(&mut self, graph: &DecodingGraph) {
        let n = graph.n_nodes() + 2;
        if self.parent.len() < n {
            self.parent.resize(n, 0);
            self.size.resize(n, 0);
            self.parity.resize(n, false);
            self.boundary.resize(n, false);
            self.defect.resize(n, false);
            self.growth.resize(graph.n_nodes() * MAX_SLOTS, 0);
            self.visited.resize(n, false);
            self.parent_node.resize(n, NO_NODE);
            self.comp.resize(n, NO_NODE);
            self.comp_max_round.resize(n, 0);
            self.comp_west.resize(n, 0);
            // Every union records ≤ 1 tree edge and each union shrinks the
            // cluster count, so the forest can never exceed n edges.
            self.tree.reserve(n.saturating_sub(self.tree.capacity()));
            self.edge_off.resize(n + 1, 0);
            self.edge_adj.reserve(2 * n);
            self.order.reserve(n.saturating_sub(self.order.capacity()));
            self.stack.reserve(n.saturating_sub(self.stack.capacity()));
            // Event-indexed buffers: a block has at most one event per node.
            self.ev_parent
                .reserve(n.saturating_sub(self.ev_parent.capacity()));
            self.by_group
                .reserve(n.saturating_sub(self.by_group.capacity()));
            self.group_west
                .reserve(n.saturating_sub(self.group_west.capacity()));
            self.group_max_round
                .reserve(n.saturating_sub(self.group_max_round.capacity()));
            self.group_commit
                .reserve(n.saturating_sub(self.group_commit.capacity()));
            self.memo
                .reserve((1usize << LOCAL_EXACT_LIMIT).saturating_sub(self.memo.capacity()));
        }
    }
}

/// Iterative find with path halving.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let grand = parent[parent[x as usize] as usize];
        parent[x as usize] = grand;
        x = grand;
    }
    x
}

/// Decodes a set of detection events on `graph`: grows clusters, peels, and
/// returns the number of west-boundary edges in the correction. The west
/// count's parity is the correction's logical `X` contribution.
pub fn decode_events(
    graph: &DecodingGraph,
    events: &[DetectionEvent],
    scratch: &mut UnionFindScratch,
) -> usize {
    decode_inner(graph, events, scratch);
    let mut west = 0usize;
    for i in 0..events.len() {
        if find(&mut scratch.ev_parent, i as u32) == i as u32 {
            west += scratch.group_west[i] as usize;
        }
    }
    west
}

/// [`decode_events`] with a commit horizon, for sliding-window streaming:
/// interaction groups whose member clusters' spanning trees touch only
/// rounds `≤ horizon_round` are *committed* — their west-edge count is
/// returned — while events belonging to groups that reach past the horizon
/// are appended to `deferred` (preserving input order) for re-decoding once
/// more rounds have arrived. Returns `(committed_west_edges,
/// committed_groups)`.
pub fn decode_events_commit(
    graph: &DecodingGraph,
    events: &[DetectionEvent],
    horizon_round: usize,
    scratch: &mut UnionFindScratch,
    deferred: &mut Vec<DetectionEvent>,
) -> (usize, usize) {
    decode_inner(graph, events, scratch);
    let mut west = 0usize;
    let mut committed = 0usize;
    for i in 0..events.len() {
        if find(&mut scratch.ev_parent, i as u32) == i as u32 {
            let commit = scratch.group_max_round[i] as usize <= horizon_round;
            scratch.group_commit[i] = commit;
            if commit {
                west += scratch.group_west[i] as usize;
                committed += 1;
            }
        }
    }
    for (i, ev) in events.iter().enumerate() {
        let rep = find(&mut scratch.ev_parent, i as u32);
        if !scratch.group_commit[rep as usize] {
            deferred.push(*ev);
        }
    }
    (west, committed)
}

/// Cluster growth + peeling; fills the scratch's per-component west counts
/// and max-round table.
fn decode_inner(graph: &DecodingGraph, events: &[DetectionEvent], scratch: &mut UnionFindScratch) {
    scratch.ensure(graph);
    let n_nodes = graph.n_nodes();
    let n_stabs = graph.n_stabs();
    let west_node = graph.west_node() as u32;
    let east_node = graph.east_node() as u32;
    let total = n_nodes + 2;

    // Reset (O(n_nodes); a few KiB of writes even at d = 11).
    for i in 0..total {
        scratch.parent[i] = i as u32;
    }
    scratch.size[..total].fill(1);
    // Boundary nodes effectively never lose a union-by-size, so they stay
    // roots and `find` of any absorbed cluster lands on them.
    scratch.size[west_node as usize] = u32::MAX / 2;
    scratch.size[east_node as usize] = u32::MAX / 2;
    scratch.parity[..total].fill(false);
    scratch.boundary[..total].fill(false);
    scratch.boundary[west_node as usize] = true;
    scratch.boundary[east_node as usize] = true;
    scratch.defect[..total].fill(false);
    scratch.growth[..n_nodes * MAX_SLOTS].fill(0);
    scratch.tree.clear();

    let mut active = 0usize;
    for ev in events {
        assert!(
            ev.round < graph.layers() && ev.stab < n_stabs,
            "event ({}, {}) outside graph ({} stabs, {} layers)",
            ev.stab,
            ev.round,
            n_stabs,
            graph.layers()
        );
        let node = graph.node(ev.stab, ev.round);
        debug_assert!(!scratch.defect[node], "duplicate detection event");
        scratch.defect[node] = true;
        scratch.parity[node] = true;
        active += 1;
    }

    // Synchronous growth rounds. Any odd cluster reaches a boundary within
    // the graph diameter, so growth terminates well inside this bound.
    let max_growth_rounds = 2 * (graph.layers() + graph.distance() + 2);
    let mut growth_rounds = 0usize;
    while active > 0 {
        growth_rounds += 1;
        assert!(
            growth_rounds <= max_growth_rounds,
            "union-find growth failed to terminate"
        );
        for u in 0..n_nodes {
            let root = find(&mut scratch.parent, u as u32);
            if !scratch.parity[root as usize] || scratch.boundary[root as usize] {
                continue;
            }
            grow_node(graph, scratch, u, west_node, east_node);
        }
        // Recount active clusters (roots with odd parity, no boundary).
        active = 0;
        for u in 0..n_nodes {
            let root = find(&mut scratch.parent, u as u32) as usize;
            if root == u && scratch.parity[root] && !scratch.boundary[root] {
                active += 1;
            }
        }
    }

    peel(graph, scratch);
    refine_groups(graph, events, scratch);
}

/// Interaction radius: events within this graph distance of each other are
/// refined jointly. A defect's independent boundary resolution costs at
/// most `min(dist_west, dist_east) ≤ (d + 1) / 2`, so a direct pairing can
/// only tie or beat two independent resolutions when the pair is at most
/// `d + 1` apart — beyond the radius, per-group refinement loses nothing.
fn interaction_radius(graph: &DecodingGraph) -> usize {
    graph.distance() + 1
}

/// Links events into interaction groups (same grown cluster, or within the
/// interaction radius) and replaces each small group's peeled west count
/// with the exact canonical matching over the group's events: minimum total
/// cost first, minimum west count among co-optimal matchings second —
/// exactly the oracle's tie-break, so union-find agrees with the exact
/// matcher whenever the optimal matching does not pair defects across
/// groups (which the radius makes strictly suboptimal). Fills the
/// per-event-group tables (`ev_parent`, `group_west`, `group_max_round`)
/// that [`decode_events`] / [`decode_events_commit`] read.
fn refine_groups(graph: &DecodingGraph, events: &[DetectionEvent], scratch: &mut UnionFindScratch) {
    let k = events.len();
    scratch.ev_parent.clear();
    scratch.ev_parent.extend(0..k as u32);
    scratch.group_west.clear();
    scratch.group_west.resize(k, 0);
    scratch.group_max_round.clear();
    scratch.group_max_round.resize(k, 0);
    scratch.group_commit.clear();
    scratch.group_commit.resize(k, false);
    if k == 0 {
        return;
    }

    // Link events of the same grown cluster, and events within the
    // interaction radius of each other. O(k²) with an early temporal
    // reject; blocks carry at most one event per space-time node, so k
    // stays small at any operating point worth decoding.
    let radius = interaction_radius(graph);
    scratch.by_group.clear();
    for (i, ev) in events.iter().enumerate() {
        let node = graph.node(ev.stab, ev.round);
        let c = scratch.comp[node];
        debug_assert_ne!(c, NO_NODE, "defect node missing from the forest");
        scratch.by_group.push((c, i as u32, 0));
    }
    // Same component ⇒ same group: sort by component, union neighbours.
    scratch.by_group.sort_unstable();
    for w in 0..k - 1 {
        let (ca, a, _) = scratch.by_group[w];
        let (cb, b, _) = scratch.by_group[w + 1];
        if ca == cb {
            union_events(&mut scratch.ev_parent, a, b);
        }
    }
    for i in 0..k {
        for j in i + 1..k {
            let (ea, eb) = (&events[i], &events[j]);
            if ea.round.abs_diff(eb.round) > radius {
                continue;
            }
            let dist = graph.stab_distance(ea.stab, eb.stab) + ea.round.abs_diff(eb.round);
            if dist <= radius {
                union_events(&mut scratch.ev_parent, i as u32, j as u32);
            }
        }
    }

    // Regroup as (representative, component, event) so each group's events
    // are contiguous, with its components contiguous inside it.
    for w in 0..k {
        let (c, i, _) = scratch.by_group[w];
        let rep = find(&mut scratch.ev_parent, i);
        scratch.by_group[w] = (rep, c, i);
    }
    // In-place unstable sort: no allocation on the warm path. The event
    // index tie-key only orders within one component; the DP below is
    // canonical over the event *set*, so input order cannot leak into the
    // west count.
    scratch.by_group.sort_unstable();

    let UnionFindScratch {
        by_group,
        memo,
        comp_west,
        comp_max_round,
        group_west,
        group_max_round,
        ..
    } = scratch;
    let mut i = 0usize;
    while i < k {
        let rep = by_group[i].0;
        let mut j = i + 1;
        while j < k && by_group[j].0 == rep {
            j += 1;
        }
        let mut max_round = 0u32;
        let mut fallback_west = 0u32;
        let mut prev_comp = NO_NODE;
        for &(_, c, _) in &by_group[i..j] {
            if comp_max_round[c as usize] > max_round {
                max_round = comp_max_round[c as usize];
            }
            if c != prev_comp {
                fallback_west += comp_west[c as usize];
                prev_comp = c;
            }
        }
        group_max_round[rep as usize] = max_round;
        group_west[rep as usize] = if j - i <= LOCAL_EXACT_LIMIT {
            local_exact_west(graph, events, &by_group[i..j], memo)
        } else {
            fallback_west
        };
        i = j;
    }
}

/// Union for the event-level interaction grouping (smaller index wins; the
/// decode only ever reads per-group aggregates, so representative identity
/// never leaks into the outcome).
fn union_events(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra == rb {
        return;
    }
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    parent[hi as usize] = lo;
}

/// Canonical subset-DP over one component's events (≤ [`LOCAL_EXACT_LIMIT`]).
/// Packed values carry `(cost << WEST_BITS) | west`, so the running `min`
/// picks minimum cost and, among ties, minimum west — identical to
/// [`crate::decoder`]'s exact matcher on the same event set.
fn local_exact_west(
    graph: &DecodingGraph,
    events: &[DetectionEvent],
    group: &[(u32, u32, u32)],
    memo: &mut Vec<u64>,
) -> u32 {
    let k = group.len();
    debug_assert!((1..=LOCAL_EXACT_LIMIT).contains(&k));
    let full = (1usize << k) - 1;
    memo.clear();
    memo.resize(full + 1, u64::MAX);
    memo[0] = 0;
    for mask in 1..=full {
        let first = mask.trailing_zeros() as usize;
        let ea = &events[group[first].2 as usize];
        let rest = mask & !(1usize << first);
        // Boundary options for the lowest set event.
        let mut best = memo[rest] + ((graph.dist_west(ea.stab) as u64) << WEST_BITS) + 1;
        best = best.min(memo[rest] + ((graph.dist_east(ea.stab) as u64) << WEST_BITS));
        // Pair it with any other remaining event.
        let mut others = rest;
        while others != 0 {
            let b = others.trailing_zeros() as usize;
            others &= others - 1;
            let eb = &events[group[b].2 as usize];
            let d = graph.stab_distance(ea.stab, eb.stab) + ea.round.abs_diff(eb.round);
            best = best.min(memo[rest & !(1usize << b)] + ((d as u64) << WEST_BITS));
        }
        memo[mask] = best;
    }
    (memo[full] & ((1u64 << WEST_BITS) - 1)) as u32
}

/// Adds half-step support to every unsaturated half-edge of node `u`,
/// merging clusters whose connecting edge fills.
fn grow_node(
    graph: &DecodingGraph,
    scratch: &mut UnionFindScratch,
    u: usize,
    west_node: u32,
    east_node: u32,
) {
    let n_stabs = graph.n_stabs();
    let s = u % n_stabs;
    let round = u / n_stabs;
    let base = u * MAX_SLOTS;

    // Temporal down (slot 0) ↔ neighbour's slot 1.
    if round > 0 {
        let v = u - n_stabs;
        grow_half(scratch, u, base, 0, v, v * MAX_SLOTS + 1);
    }
    // Temporal up (slot 1) ↔ neighbour's slot 0.
    if round + 1 < graph.layers() {
        let v = u + n_stabs;
        grow_half(scratch, u, base, 1, v, v * MAX_SLOTS);
    }
    // Boundary edges: the virtual side contributes nothing, so the edge is
    // full when this node's half alone reaches the weight.
    if graph.has_west_edge(s) {
        grow_boundary_half(scratch, u, base, 2, west_node);
    }
    if graph.has_east_edge(s) {
        grow_boundary_half(scratch, u, base, 3, east_node);
    }
    for (k, nb) in graph.spatial(s).iter().enumerate() {
        let v = round * n_stabs + nb.stab as usize;
        grow_half(
            scratch,
            u,
            base,
            SPATIAL_SLOT0 + k,
            v,
            v * MAX_SLOTS + nb.rev_slot as usize,
        );
    }
}

/// Grows `u`'s half of the edge to real node `v`; unions when full.
fn grow_half(
    scratch: &mut UnionFindScratch,
    u: usize,
    base: usize,
    slot: usize,
    v: usize,
    rev_idx: usize,
) {
    let mine = scratch.growth[base + slot];
    let theirs = scratch.growth[rev_idx];
    if mine + theirs >= EDGE_WEIGHT {
        return;
    }
    scratch.growth[base + slot] = mine + 1;
    if mine + 1 + theirs >= EDGE_WEIGHT {
        union_nodes(scratch, u as u32, v as u32);
    }
}

/// Grows `u`'s half of a boundary edge; unions with the boundary when full.
fn grow_boundary_half(
    scratch: &mut UnionFindScratch,
    u: usize,
    base: usize,
    slot: usize,
    boundary: u32,
) {
    let mine = scratch.growth[base + slot];
    if mine >= EDGE_WEIGHT {
        return;
    }
    scratch.growth[base + slot] = mine + 1;
    if mine + 1 >= EDGE_WEIGHT {
        union_nodes(scratch, u as u32, boundary);
    }
}

/// Union by size with parity/boundary merge; records the spanning-forest
/// edge when the endpoints were in different clusters.
fn union_nodes(scratch: &mut UnionFindScratch, a: u32, b: u32) {
    let ra = find(&mut scratch.parent, a);
    let rb = find(&mut scratch.parent, b);
    if ra == rb {
        return;
    }
    let (winner, loser) = if scratch.size[ra as usize] >= scratch.size[rb as usize] {
        (ra, rb)
    } else {
        (rb, ra)
    };
    scratch.parent[loser as usize] = winner;
    scratch.size[winner as usize] =
        scratch.size[winner as usize].saturating_add(scratch.size[loser as usize]);
    let merged_parity = scratch.parity[ra as usize] ^ scratch.parity[rb as usize];
    let merged_boundary = scratch.boundary[ra as usize] | scratch.boundary[rb as usize];
    scratch.parity[winner as usize] = merged_parity;
    scratch.boundary[winner as usize] = merged_boundary;
    scratch.tree.push(TreeEdge { a, b });
}

/// Peels the spanning forest: roots every tree at its boundary node (west
/// preferred), walks bottom-up, and routes each odd defect parity along its
/// parent edge. Fills `comp`, `comp_west`, and `comp_max_round`.
fn peel(graph: &DecodingGraph, scratch: &mut UnionFindScratch) {
    let n_nodes = graph.n_nodes();
    let total = n_nodes + 2;
    let west_node = graph.west_node() as u32;

    // Forest CSR.
    scratch.edge_off[..total + 1].fill(0);
    for &TreeEdge { a, b } in &scratch.tree {
        scratch.edge_off[a as usize + 1] += 1;
        scratch.edge_off[b as usize + 1] += 1;
    }
    for i in 0..total {
        scratch.edge_off[i + 1] += scratch.edge_off[i];
    }
    scratch.edge_adj.clear();
    scratch.edge_adj.resize(2 * scratch.tree.len(), 0);
    {
        // `edge_off` doubles as the running insert cursor; it is restored to
        // offsets by the reverse sweep below.
        let tree = &scratch.tree;
        for &TreeEdge { a, b } in tree {
            let ia = scratch.edge_off[a as usize];
            scratch.edge_adj[ia as usize] = b;
            scratch.edge_off[a as usize] += 1;
            let ib = scratch.edge_off[b as usize];
            scratch.edge_adj[ib as usize] = a;
            scratch.edge_off[b as usize] += 1;
        }
        for i in (1..=total).rev() {
            scratch.edge_off[i] = scratch.edge_off[i - 1];
        }
        scratch.edge_off[0] = 0;
    }

    scratch.visited[..total].fill(false);
    scratch.comp[..total].fill(NO_NODE);
    scratch.comp_max_round[..total].fill(0);
    scratch.comp_west[..total].fill(0);
    scratch.order.clear();

    // Traversal roots: the west boundary first, then east, then the first
    // endpoint (in recorded-edge order) of any interior tree.
    traverse(graph, scratch, west_node);
    traverse(graph, scratch, graph.east_node() as u32);
    for i in 0..scratch.tree.len() {
        let TreeEdge { a, b } = scratch.tree[i];
        if !scratch.visited[a as usize] {
            traverse(graph, scratch, a);
        }
        if !scratch.visited[b as usize] {
            traverse(graph, scratch, b);
        }
    }

    // Bottom-up sweep (children precede parents in reverse visit order):
    // odd parity routes along the parent edge; boundary nodes absorb.
    for idx in (0..scratch.order.len()).rev() {
        let u = scratch.order[idx] as usize;
        if u >= n_nodes {
            // A boundary node (as root, or east interior to a west-rooted
            // tree) absorbs every parity that reaches it.
            continue;
        }
        let p = scratch.parent_node[u];
        if p == NO_NODE {
            // Interior root of an even cluster: all defects below cancelled.
            debug_assert!(!scratch.defect[u], "odd cluster without boundary");
            continue;
        }
        if scratch.defect[u] {
            scratch.defect[u] = false;
            scratch.defect[p as usize] ^= true;
            if p == west_node {
                let c = scratch.comp[u];
                scratch.comp_west[c as usize] += 1;
            }
        }
    }
}

/// Depth-first traversal from `root`, assigning visit order, parent links,
/// and commit component ids (new component at every child of a boundary
/// node).
fn traverse(graph: &DecodingGraph, scratch: &mut UnionFindScratch, root: u32) {
    let n_nodes = graph.n_nodes();
    if scratch.visited[root as usize] {
        return;
    }
    // Skip boundary roots with no incident tree edges.
    let off = |s: &UnionFindScratch, x: u32| {
        (
            s.edge_off[x as usize] as usize,
            s.edge_off[x as usize + 1] as usize,
        )
    };
    let (rs, re) = off(scratch, root);
    if rs == re && (root as usize) >= n_nodes {
        return;
    }
    scratch.visited[root as usize] = true;
    scratch.parent_node[root as usize] = NO_NODE;
    if (root as usize) < n_nodes {
        scratch.comp[root as usize] = root;
        let r = graph.round_of(root as usize) as u32;
        scratch.comp_max_round[root as usize] = r;
    }
    scratch.order.push(root);
    scratch.stack.clear();
    scratch.stack.push(root);
    while let Some(u) = scratch.stack.pop() {
        let (s0, s1) = off(scratch, u);
        for i in s0..s1 {
            let v = scratch.edge_adj[i];
            if scratch.visited[v as usize] {
                continue;
            }
            scratch.visited[v as usize] = true;
            scratch.parent_node[v as usize] = u;
            if (v as usize) < n_nodes {
                // Trees split at boundary nodes: a child of a boundary node
                // starts its own commit component.
                let c = if (u as usize) >= n_nodes {
                    v
                } else {
                    scratch.comp[u as usize]
                };
                scratch.comp[v as usize] = c;
                let r = graph.round_of(v as usize) as u32;
                if scratch.comp_max_round[c as usize] < r {
                    scratch.comp_max_round[c as usize] = r;
                }
            }
            scratch.order.push(v);
            scratch.stack.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RotatedSurfaceCode;

    fn ev(stab: usize, round: usize) -> DetectionEvent {
        DetectionEvent { stab, round }
    }

    #[test]
    fn no_events_no_correction() {
        let code = RotatedSurfaceCode::new(3);
        let graph = DecodingGraph::new(&code, 3);
        let mut scratch = UnionFindScratch::for_graph(&graph);
        assert_eq!(decode_events(&graph, &[], &mut scratch), 0);
    }

    #[test]
    fn time_like_pair_matches_vertically() {
        // A measurement flip makes two events on the same stabilizer in
        // consecutive rounds; the cluster is even once merged, no boundary.
        let code = RotatedSurfaceCode::new(5);
        let graph = DecodingGraph::new(&code, 5);
        let mut scratch = UnionFindScratch::for_graph(&graph);
        for s in 0..code.n_stabilizers() {
            let west = decode_events(&graph, &[ev(s, 1), ev(s, 2)], &mut scratch);
            assert_eq!(west, 0, "stab {s}: vertical pair must not touch west");
        }
    }

    #[test]
    fn single_event_next_to_west_boundary_matches_west() {
        let code = RotatedSurfaceCode::new(5);
        let graph = DecodingGraph::new(&code, 5);
        let mut scratch = UnionFindScratch::for_graph(&graph);
        for s in 0..code.n_stabilizers() {
            if !graph.has_west_edge(s) || graph.has_east_edge(s) {
                continue;
            }
            let west = decode_events(&graph, &[ev(s, 0)], &mut scratch);
            assert_eq!(west % 2, 1, "stab {s} should exit west");
        }
    }

    #[test]
    fn decode_is_order_independent() {
        let code = RotatedSurfaceCode::new(5);
        let graph = DecodingGraph::new(&code, 5);
        let mut scratch = UnionFindScratch::for_graph(&graph);
        let events = [ev(0, 0), ev(3, 1), ev(7, 2), ev(2, 4), ev(9, 3), ev(1, 5)];
        let base = decode_events(&graph, &events, &mut scratch);
        let mut perm = events;
        perm.reverse();
        assert_eq!(decode_events(&graph, &perm, &mut scratch), base);
        perm.swap(0, 3);
        perm.swap(1, 4);
        assert_eq!(decode_events(&graph, &perm, &mut scratch), base);
    }

    #[test]
    fn commit_splits_early_and_late_clusters() {
        let code = RotatedSurfaceCode::new(5);
        let rounds = 12;
        let graph = DecodingGraph::new(&code, rounds);
        let mut scratch = UnionFindScratch::for_graph(&graph);
        // An early vertical pair and a late one, far apart in time.
        let events = [ev(4, 0), ev(4, 1), ev(6, 10), ev(6, 11)];
        let mut deferred = Vec::new();
        let (west, committed) =
            decode_events_commit(&graph, &events, 4, &mut scratch, &mut deferred);
        assert_eq!(west, 0);
        assert_eq!(committed, 1, "early cluster commits");
        assert_eq!(deferred.len(), 2, "late cluster defers");
        assert!(deferred.iter().all(|e| e.round >= 10));
        // Committing everything matches the whole decode.
        deferred.clear();
        let (west_all, committed_all) =
            decode_events_commit(&graph, &events, rounds, &mut scratch, &mut deferred);
        assert_eq!(west_all, decode_events(&graph, &events, &mut scratch));
        assert_eq!(committed_all, 2);
        assert!(deferred.is_empty());
    }

    #[test]
    fn warm_scratch_handles_larger_then_smaller_blocks() {
        let code = RotatedSurfaceCode::new(7);
        let big = DecodingGraph::new(&code, 10);
        let small = DecodingGraph::new(&code, 3);
        let mut scratch = UnionFindScratch::for_graph(&big);
        let a = decode_events(&big, &[ev(0, 9), ev(0, 10)], &mut scratch);
        assert_eq!(a, 0);
        let b = decode_events(&small, &[ev(0, 2), ev(0, 3)], &mut scratch);
        assert_eq!(b, 0);
    }
}
