//! Surface-code syndrome-extraction cycle timing (Fig. 14(b)).
//!
//! One syndrome cycle of the surface-17-style circuit (Versluis et al.)
//! consists of two single-qubit gate layers (basis changes on ancillas),
//! four two-qubit gate layers (the plaquette CZ/CNOT ladder), and the
//! ancilla measurement. The measurement dominates, which is why shortening
//! readout by 25 % (what HERQULES enables without retraining) compresses the
//! whole cycle to ≈0.8× on Google-like timings and ≈0.84× on IBM-like
//! timings.

/// Gate/readout durations of a hardware generation, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSet {
    /// Descriptive name.
    pub name: &'static str,
    /// Single-qubit gate layer duration.
    pub single_qubit_ns: f64,
    /// Two-qubit gate layer duration.
    pub two_qubit_ns: f64,
    /// Readout (measurement) duration.
    pub readout_ns: f64,
}

impl GateSet {
    /// Google-Sycamore-like timings (fast gates, 1 µs-class readout).
    pub const GOOGLE: GateSet = GateSet {
        name: "Google",
        single_qubit_ns: 30.0,
        two_qubit_ns: 40.0,
        readout_ns: 1000.0,
    };

    /// IBM-like timings (slower two-qubit gates).
    pub const IBM: GateSet = GateSet {
        name: "IBM",
        single_qubit_ns: 50.0,
        two_qubit_ns: 106.0,
        readout_ns: 1000.0,
    };

    /// Returns a copy with a different readout duration.
    #[must_use]
    pub fn with_readout_ns(mut self, readout_ns: f64) -> GateSet {
        self.readout_ns = readout_ns;
        self
    }
}

/// Layer structure of one syndrome-extraction cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleTimes {
    /// Single-qubit gate layers per cycle (surface-17: 2).
    pub single_qubit_layers: usize,
    /// Two-qubit gate layers per cycle (surface-17: 4).
    pub two_qubit_layers: usize,
}

impl CycleTimes {
    /// The surface-17 circuit of Versluis et al. (the paper's ref. 52).
    pub const SURFACE17: CycleTimes = CycleTimes {
        single_qubit_layers: 2,
        two_qubit_layers: 4,
    };

    /// Total cycle duration for a gate set, in nanoseconds.
    pub fn duration_ns(&self, gates: &GateSet) -> f64 {
        self.single_qubit_layers as f64 * gates.single_qubit_ns
            + self.two_qubit_layers as f64 * gates.two_qubit_ns
            + gates.readout_ns
    }

    /// Cycle duration with shortened readout, normalized to the full-readout
    /// cycle (the y-axis of Fig. 14(b)).
    pub fn normalized_duration(&self, gates: &GateSet, readout_scale: f64) -> f64 {
        assert!(readout_scale > 0.0, "readout scale must be positive");
        let short = gates.with_readout_ns(gates.readout_ns * readout_scale);
        self.duration_ns(&short) / self.duration_ns(gates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_cycle_matches_hand_sum() {
        let t = CycleTimes::SURFACE17.duration_ns(&GateSet::GOOGLE);
        assert!((t - (2.0 * 30.0 + 4.0 * 40.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn quarter_shorter_readout_reproduces_fig14b() {
        // Paper Fig. 14(b): normalized cycle times 0.795 (Google) and 0.836
        // (IBM) for a 25 % readout reduction.
        let g = CycleTimes::SURFACE17.normalized_duration(&GateSet::GOOGLE, 0.75);
        let i = CycleTimes::SURFACE17.normalized_duration(&GateSet::IBM, 0.75);
        assert!((g - 0.795).abs() < 0.01, "Google normalized {g}");
        assert!((i - 0.836).abs() < 0.01, "IBM normalized {i}");
    }

    #[test]
    fn faster_gates_benefit_more_from_short_readout() {
        // Paper: "For processors with faster gates, the effect of a shorter
        // readout duration is more pronounced."
        let g = CycleTimes::SURFACE17.normalized_duration(&GateSet::GOOGLE, 0.75);
        let i = CycleTimes::SURFACE17.normalized_duration(&GateSet::IBM, 0.75);
        assert!(g < i);
    }

    #[test]
    fn unit_scale_is_identity() {
        let g = CycleTimes::SURFACE17.normalized_duration(&GateSet::GOOGLE, 1.0);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_readout_overrides_only_readout() {
        let g = GateSet::GOOGLE.with_readout_ns(500.0);
        assert_eq!(g.readout_ns, 500.0);
        assert_eq!(g.single_qubit_ns, GateSet::GOOGLE.single_qubit_ns);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = CycleTimes::SURFACE17.normalized_duration(&GateSet::GOOGLE, 0.0);
    }
}
