//! Greedy space-time matching decoder.
//!
//! Detection events are paired greedily by space-time distance, with the
//! option of matching to the west/east virtual boundaries. Greedy matching
//! is a standard lightweight stand-in for minimum-weight perfect matching:
//! it exhibits the same threshold behaviour at a slightly lower threshold,
//! which is all the Fig. 13 reproduction needs (relative degradation with
//! readout error εR, not absolute Stim/PyMatching numbers).
//!
//! # Logical-class bookkeeping
//!
//! With the layout of [`crate::layout`], correction paths between two
//! stabilizer nodes never traverse west-column data qubits (those qubits
//! touch exactly one Z-stabilizer, so they only appear on stabilizer-to-
//! boundary edges). Therefore only west-boundary matches flip the `X`
//! logical class, and the decoder just counts them.

use crate::layout::RotatedSurfaceCode;
use crate::syndrome::{DetectionEvent, SyndromeBlock};

/// Outcome of decoding one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Number of detection events decoded.
    pub n_events: usize,
    /// Number of events matched to the west boundary.
    pub west_matches: usize,
    /// Whether the block ends in a logical `X` error (correction applied to
    /// the residual error state flips the logical class).
    pub logical_error: bool,
    /// Whether the block exceeded the exact matcher's
    /// `2^EXACT_MATCHING_LIMIT` subset ceiling and fell back to the greedy
    /// matcher — a correct but weaker decode. Blocks this dense usually mean
    /// the upstream readout channel is unhealthy, so streaming callers
    /// surface the flag in their degradation accounting.
    pub degraded: bool,
}

/// Space-time distance between two detection events.
fn event_distance(code: &RotatedSurfaceCode, a: &DetectionEvent, b: &DetectionEvent) -> usize {
    code.stab_distance(a.stab, b.stab) + a.round.abs_diff(b.round)
}

/// How one detection event ended up matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assignment {
    Free,
    Pair(usize),
    West,
    East,
}

/// One greedy-matching candidate: an event pair or a boundary match.
#[derive(Debug, Clone, Copy)]
enum Candidate {
    Pair(usize, usize),
    West(usize),
    East(usize),
}

/// Event sets up to this size are decoded with exact minimum-weight
/// matching (subset DP); larger sets fall back to greedy matching.
const EXACT_MATCHING_LIMIT: usize = 14;

/// Reusable working memory for [`decode_block_with`].
///
/// Decoding allocates in three places — the subset-DP memo of the exact
/// matcher, and the assignment + candidate vectors of the greedy fallback
/// (the candidate sort itself is in-place unstable with an explicit
/// sequence tie-breaker, so it never takes the stable sort's temp buffer).
/// A scratch owns all three so a warm caller (the streaming engine decodes
/// one block per cycle) runs the whole decode without touching the heap;
/// `crates/stream/tests/alloc.rs` pins warm whole cycles at exactly zero
/// allocations on top of this.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    assign: Vec<Assignment>,
    candidates: Vec<(usize, u32, Candidate)>,
    memo: Vec<u64>,
}

impl DecodeScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// A scratch pre-sized so no block within the decoder's normal operating
    /// envelope ever grows it: the exact path's subset memo is reserved to
    /// its hard `2^EXACT_MATCHING_LIMIT` ceiling (128 KiB of `u64`), and the
    /// greedy buffers cover blocks of up to 64 events. Pathological blocks
    /// beyond that grow the greedy buffers once and keep the capacity.
    pub fn prewarmed() -> Self {
        let greedy_events = 64;
        DecodeScratch {
            assign: Vec::with_capacity(greedy_events),
            candidates: Vec::with_capacity(
                greedy_events * (greedy_events - 1) / 2 + 2 * greedy_events,
            ),
            memo: Vec::with_capacity(1 << EXACT_MATCHING_LIMIT),
        }
    }
}

/// Decodes a block and determines the logical class.
///
/// Small detection-event sets (≤ `EXACT_MATCHING_LIMIT`, 14) are decoded with
/// *exact* minimum-weight perfect matching over events and the two virtual
/// boundaries, computed by dynamic programming over subsets; larger sets use
/// greedy pairing with a local-improvement sweep. At Fig. 13's operating
/// points almost every block falls in the exact regime.
///
/// Allocates its working memory per call; hot loops that decode many blocks
/// hold a [`DecodeScratch`] and call [`decode_block_with`], which is
/// identical in outcome and allocation-free once warm.
pub fn decode_block(code: &RotatedSurfaceCode, block: &SyndromeBlock) -> DecodeOutcome {
    decode_block_with(code, block, &mut DecodeScratch::new())
}

/// [`decode_block`] against caller-owned working memory: same algorithm,
/// same outcome for every block, zero heap allocation once `scratch` has
/// seen the block-size high-water mark (see [`DecodeScratch::prewarmed`]).
pub fn decode_block_with(
    code: &RotatedSurfaceCode,
    block: &SyndromeBlock,
    scratch: &mut DecodeScratch,
) -> DecodeOutcome {
    let events = &block.events;
    let n = events.len();
    if n <= EXACT_MATCHING_LIMIT {
        let west_matches = exact_min_weight_west_matches(code, events, &mut scratch.memo);
        let error_parity = block.west_column_error_parity(code);
        return DecodeOutcome {
            n_events: n,
            west_matches,
            logical_error: error_parity != (west_matches % 2 == 1),
            degraded: false,
        };
    }
    let assign = &mut scratch.assign;
    assign.clear();
    assign.resize(n, Assignment::Free);

    // Candidate list: all event pairs plus per-event boundary matches. Each
    // entry carries its push sequence so the in-place unstable sort below
    // reproduces the stable (insertion-order-preserving) ordering the
    // greedy matcher has always consumed — `sort_by_key` would allocate a
    // merge buffer on every decode, breaking the zero-alloc contract.
    let candidates = &mut scratch.candidates;
    candidates.clear();
    for i in 0..n {
        for j in (i + 1)..n {
            let seq = candidates.len() as u32;
            candidates.push((
                event_distance(code, &events[i], &events[j]),
                seq,
                Candidate::Pair(i, j),
            ));
        }
        let seq = candidates.len() as u32;
        candidates.push((code.dist_west(events[i].stab), seq, Candidate::West(i)));
        let seq = candidates.len() as u32;
        candidates.push((code.dist_east(events[i].stab), seq, Candidate::East(i)));
    }
    candidates.sort_unstable_by_key(|&(d, seq, _)| (d, seq));

    for &(_, _, cand) in candidates.iter() {
        match cand {
            Candidate::Pair(i, j) => {
                if assign[i] == Assignment::Free && assign[j] == Assignment::Free {
                    assign[i] = Assignment::Pair(j);
                    assign[j] = Assignment::Pair(i);
                }
            }
            Candidate::West(i) => {
                if assign[i] == Assignment::Free {
                    assign[i] = Assignment::West;
                }
            }
            Candidate::East(i) => {
                if assign[i] == Assignment::Free {
                    assign[i] = Assignment::East;
                }
            }
        }
    }

    // Local-improvement sweep: greedy eagerly grabs cheap boundary matches
    // even when pairing two boundary-stranded events is globally cheaper —
    // the classic greedy-vs-MWPM gap. Rematch any two boundary-matched
    // events whose pair distance beats the sum of their boundary costs.
    fn boundary_cost(
        code: &RotatedSurfaceCode,
        events: &[DetectionEvent],
        assignment: Assignment,
        i: usize,
    ) -> usize {
        match assignment {
            Assignment::West => code.dist_west(events[i].stab),
            Assignment::East => code.dist_east(events[i].stab),
            _ => unreachable!("boundary cost queried for non-boundary assignment"),
        }
    }
    let mut improved = true;
    while improved {
        improved = false;
        for i in 0..n {
            if !matches!(assign[i], Assignment::West | Assignment::East) {
                continue;
            }
            for j in (i + 1)..n {
                if !matches!(assign[j], Assignment::West | Assignment::East) {
                    continue;
                }
                if event_distance(code, &events[i], &events[j])
                    < boundary_cost(code, events, assign[i], i)
                        + boundary_cost(code, events, assign[j], j)
                {
                    assign[i] = Assignment::Pair(j);
                    assign[j] = Assignment::Pair(i);
                    improved = true;
                    break;
                }
            }
        }
    }

    let west_matches = assign.iter().filter(|&&a| a == Assignment::West).count();
    let error_parity = block.west_column_error_parity(code);
    let correction_parity = west_matches % 2 == 1;
    DecodeOutcome {
        n_events: n,
        west_matches,
        logical_error: error_parity != correction_parity,
        degraded: true,
    }
}

/// Exact minimum-weight matching via subset DP; returns the number of
/// west-boundary matches in one optimal solution. `memo` is caller-owned
/// scratch, cleared and resized to the `2^n` subsets here.
fn exact_min_weight_west_matches(
    code: &RotatedSurfaceCode,
    events: &[DetectionEvent],
    memo: &mut Vec<u64>,
) -> usize {
    let n = events.len();
    if n == 0 {
        return 0;
    }
    let full = (1usize << n) - 1;
    const UNSET: u64 = u64::MAX;
    memo.clear();
    memo.resize(1 << n, UNSET);
    memo[0] = 0;

    // Bottom-up over subsets in increasing popcount order works, but a
    // simple increasing-mask order is valid too: every transition clears the
    // lowest set bit, so dependencies have smaller values.
    for mask in 1..=full {
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let mut best = memo[rest] + code.dist_west(events[i].stab) as u64;
        let east = memo[rest] + code.dist_east(events[i].stab) as u64;
        best = best.min(east);
        let mut bits = rest;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let cost = memo[rest & !(1 << j)] + event_distance(code, &events[i], &events[j]) as u64;
            best = best.min(cost);
        }
        memo[mask] = best;
    }

    // Reconstruct one optimal solution, counting west matches.
    let mut mask = full;
    let mut west = 0usize;
    while mask != 0 {
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let target = memo[mask];
        if memo[rest] + (code.dist_west(events[i].stab) as u64) == target {
            west += 1;
            mask = rest;
            continue;
        }
        if memo[rest] + (code.dist_east(events[i].stab) as u64) == target {
            mask = rest;
            continue;
        }
        let mut bits = rest;
        let mut matched = false;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let next = rest & !(1 << j);
            if memo[next] + (event_distance(code, &events[i], &events[j]) as u64) == target {
                mask = next;
                matched = true;
                break;
            }
        }
        assert!(matched, "DP reconstruction failed — memo inconsistent");
    }
    west
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syndrome::NoiseParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn code() -> RotatedSurfaceCode {
        RotatedSurfaceCode::new(5)
    }

    /// Builds a block with a hand-placed error set and perfect measurements.
    fn block_with_errors(code: &RotatedSurfaceCode, error_qubits: &[usize]) -> SyndromeBlock {
        let mut errors = vec![false; code.n_data()];
        for &q in error_qubits {
            errors[q] = true;
        }
        let mut events = Vec::new();
        for (s, stab) in code.stabilizers().iter().enumerate() {
            let mut parity = false;
            for &q in &stab.support {
                parity ^= errors[q];
            }
            if parity {
                events.push(DetectionEvent { stab: s, round: 0 });
            }
        }
        SyndromeBlock {
            events,
            final_errors: errors,
            rounds: 1,
        }
    }

    #[test]
    fn empty_block_decodes_cleanly() {
        let c = code();
        let block = block_with_errors(&c, &[]);
        let out = decode_block(&c, &block);
        assert!(!out.logical_error);
        assert_eq!(out.n_events, 0);
    }

    #[test]
    fn every_single_qubit_error_is_corrected() {
        let c = code();
        for q in 0..c.n_data() {
            let block = block_with_errors(&c, &[q]);
            let out = decode_block(&c, &block);
            assert!(!out.logical_error, "single error on qubit {q} mis-decoded");
        }
    }

    #[test]
    fn every_adjacent_pair_error_is_corrected() {
        // Any two-qubit error is weight 2 < d/2, must be correctable at d=5.
        let c = code();
        for q in 0..c.n_data() {
            let row = q / 5;
            let col = q % 5;
            if col + 1 < 5 {
                let block = block_with_errors(&c, &[q, row * 5 + col + 1]);
                let out = decode_block(&c, &block);
                assert!(
                    !out.logical_error,
                    "pair error at ({row},{col}) mis-decoded"
                );
            }
        }
    }

    #[test]
    fn full_logical_row_is_a_logical_error() {
        // A complete row of X errors has trivial syndrome; the decoder does
        // nothing and the class flips: this must be reported as a logical
        // error.
        let c = code();
        let row: Vec<usize> = (0..5).collect();
        let block = block_with_errors(&c, &row);
        assert!(block.events.is_empty(), "logical row must be undetectable");
        let out = decode_block(&c, &block);
        assert!(out.logical_error);
    }

    #[test]
    fn decoder_beats_raw_error_rate_below_threshold() {
        // At p well below threshold the decoded logical rate must be far
        // below the probability of any error occurring.
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.01,
            meas_error_prob: 0.005,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let blocks = 2_000;
        let mut failures = 0;
        for _ in 0..blocks {
            let block = SyndromeBlock::simulate(&c, &noise, 5, &mut rng);
            if decode_block(&c, &block).logical_error {
                failures += 1;
            }
        }
        let logical = failures as f64 / blocks as f64;
        // Raw chance of ≥1 data error in the block is ≈ 1−(1−p)^{25·5} ≈ 0.71.
        assert!(logical < 0.1, "logical rate {logical}");
    }

    #[test]
    fn measurement_errors_alone_cause_no_logical_errors_often() {
        // Pure measurement noise creates time-like strings that the decoder
        // should almost always match vertically (no data correction).
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.02,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let mut failures = 0;
        for _ in 0..1_000 {
            let block = SyndromeBlock::simulate(&c, &noise, 5, &mut rng);
            if decode_block(&c, &block).logical_error {
                failures += 1;
            }
        }
        assert!(
            failures < 20,
            "{failures} failures from measurement noise alone"
        );
    }
}
