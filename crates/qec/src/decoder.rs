//! Block decoders: exact subset-DP matching and the union-find decoder.
//!
//! Small detection-event sets are decoded with *exact* minimum-weight
//! perfect matching over events and the two virtual boundaries, computed by
//! dynamic programming over subsets; everything larger goes to the
//! union-find decoder ([`crate::uf`]) on the precomputed decoding graph
//! ([`crate::graph`]), which has no defect-count ceiling and near-linear
//! cost in the number of space-time nodes. The subset DP additionally
//! survives as the reference oracle (up to [`EXACT_MATCHING_LIMIT`] events)
//! that the union-find parity tests compare against.
//!
//! # Logical-class bookkeeping
//!
//! With the layout of [`crate::layout`], correction paths between two
//! stabilizer nodes never traverse west-column data qubits (those qubits
//! touch exactly one Z-stabilizer, so they only appear on stabilizer-to-
//! boundary edges). Therefore only west-boundary matches flip the `X`
//! logical class, and the decoders just count them.
//!
//! # Canonical tie-breaking
//!
//! Minimum-weight matchings are frequently non-unique, and co-optimal
//! solutions can disagree on west-match parity. The DP therefore minimizes
//! the pair `(cost, west matches)` lexicographically — both packed into one
//! `u64` so a single numeric `min` does the job — making `west_matches`
//! (and hence `logical_error`) a canonical function of the event *set*,
//! independent of enumeration order. The union-find decoder is
//! deterministic and order-independent by construction (fixed node-order
//! growth sweeps).

use crate::graph::DecodingGraph;
use crate::layout::RotatedSurfaceCode;
use crate::syndrome::{DetectionEvent, SyndromeBlock};
use crate::uf::{self, UnionFindScratch};

/// Outcome of decoding one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Number of detection events decoded.
    pub n_events: usize,
    /// Number of west-boundary matches (exact path) or west-boundary edges
    /// in the peeled correction (union-find path).
    pub west_matches: usize,
    /// Whether the block ends in a logical `X` error (correction applied to
    /// the residual error state flips the logical class).
    pub logical_error: bool,
    /// Whether decoding this block overran its real-time budget. The block
    /// decoders themselves never set this: it is stamped by streaming
    /// callers running sliding-window decode under a latency budget (see
    /// `herqles-stream`'s `CycleEngine::set_decode_budget_ns`). The
    /// historical meaning — "fell back to the greedy matcher" — is gone
    /// along with the greedy matcher itself.
    pub degraded: bool,
}

impl Default for DecodeOutcome {
    /// The outcome of an empty block: nothing decoded, no error.
    fn default() -> Self {
        DecodeOutcome {
            n_events: 0,
            west_matches: 0,
            logical_error: false,
            degraded: false,
        }
    }
}

/// Space-time distance between two detection events.
fn event_distance(code: &RotatedSurfaceCode, a: &DetectionEvent, b: &DetectionEvent) -> usize {
    code.stab_distance(a.stab, b.stab) + a.round.abs_diff(b.round)
}

/// Hard ceiling of the exact subset-DP matcher (`2^n` subsets): the oracle
/// refuses larger sets. Production dispatch hands blocks to union-find well
/// before this (see [`EXACT_DISPATCH_LIMIT`]).
pub const EXACT_MATCHING_LIMIT: usize = 14;

/// Production dispatch threshold: blocks with at most this many events are
/// decoded exactly (the DP is a few microseconds there), larger blocks go
/// to union-find. Chosen so the DP's exponential tail (≈ 250 µs near the
/// 14-event ceiling) stays out of the streaming latency distribution.
pub const EXACT_DISPATCH_LIMIT: usize = 10;

/// Reusable working memory for [`decode_block_with`].
///
/// Owns the subset-DP memo, the union-find scratch, and the decoding graph
/// (rebuilt only when the code distance or block length changes — never on
/// the warm path). A scratch built with [`DecodeScratch::prewarmed`] decodes
/// any block of its `(code, rounds)` envelope without touching the heap;
/// `crates/stream/tests/alloc.rs` pins warm whole cycles at exactly zero
/// allocations on top of this.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    memo: Vec<u64>,
    graph: Option<DecodingGraph>,
    uf: UnionFindScratch,
}

impl DecodeScratch {
    /// An empty scratch; buffers and the graph build on first use.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// A scratch pre-sized for blocks of up to `rounds` noisy rounds on
    /// `code`: the decoding graph is built eagerly, the union-find arrays
    /// cover every space-time node, and the DP memo is reserved to the
    /// dispatch threshold's `2^EXACT_DISPATCH_LIMIT` subsets. Sized from the
    /// worst case, not a guess — a block within the envelope never grows it,
    /// no matter how dense its syndrome gets under fault injection.
    pub fn prewarmed(code: &RotatedSurfaceCode, rounds: usize) -> Self {
        let graph = DecodingGraph::new(code, rounds);
        let uf = UnionFindScratch::for_graph(&graph);
        DecodeScratch {
            memo: Vec::with_capacity(1 << EXACT_DISPATCH_LIMIT),
            graph: Some(graph),
            uf,
        }
    }

    /// The decoding graph for `(code, rounds)`, rebuilding only on a
    /// distance or block-length change (the cold path).
    fn ensure_graph(&mut self, code: &RotatedSurfaceCode, rounds: usize) -> &DecodingGraph {
        let rebuild = match &self.graph {
            Some(g) => g.distance() != code.distance() || g.layers() < rounds + 1,
            None => true,
        };
        if rebuild {
            let graph = DecodingGraph::new(code, rounds);
            self.uf = UnionFindScratch::for_graph(&graph);
            self.graph = Some(graph);
        }
        self.graph.as_ref().expect("graph just ensured")
    }

    /// Borrows the graph and union-find scratch together, for callers that
    /// drive the union-find decoder directly (the sliding-window streaming
    /// path). Rebuilds the graph only on an envelope change.
    pub fn window_parts(
        &mut self,
        code: &RotatedSurfaceCode,
        rounds: usize,
    ) -> (&DecodingGraph, &mut UnionFindScratch) {
        self.ensure_graph(code, rounds);
        (
            self.graph.as_ref().expect("graph just ensured"),
            &mut self.uf,
        )
    }
}

/// Decodes a block and determines the logical class.
///
/// Detection-event sets of at most [`EXACT_DISPATCH_LIMIT`] events are
/// decoded with exact minimum-weight matching (subset DP, canonical
/// tie-break); larger sets — with no upper ceiling — go to the union-find
/// decoder. At Fig. 13's operating points most blocks fall in the exact
/// regime; under drift or at large distances the union-find path keeps
/// decode latency near-linear in block size.
///
/// Allocates its working memory per call; hot loops that decode many blocks
/// hold a [`DecodeScratch`] and call [`decode_block_with`], which is
/// identical in outcome and allocation-free once warm.
pub fn decode_block(code: &RotatedSurfaceCode, block: &SyndromeBlock) -> DecodeOutcome {
    decode_block_with(code, block, &mut DecodeScratch::new())
}

/// [`decode_block`] against caller-owned working memory: same dispatch,
/// same outcome for every block, zero heap allocation once `scratch` covers
/// the block's `(code, rounds)` envelope (see [`DecodeScratch::prewarmed`]).
pub fn decode_block_with(
    code: &RotatedSurfaceCode,
    block: &SyndromeBlock,
    scratch: &mut DecodeScratch,
) -> DecodeOutcome {
    let n = block.events.len();
    if n <= EXACT_DISPATCH_LIMIT {
        return decode_block_exact(code, block, scratch);
    }
    decode_block_uf(code, block, scratch)
}

/// Exact subset-DP decode — the reference oracle. Usable up to
/// [`EXACT_MATCHING_LIMIT`] events.
///
/// # Panics
///
/// Panics if the block has more than [`EXACT_MATCHING_LIMIT`] events.
pub fn decode_block_exact(
    code: &RotatedSurfaceCode,
    block: &SyndromeBlock,
    scratch: &mut DecodeScratch,
) -> DecodeOutcome {
    let n = block.events.len();
    assert!(
        n <= EXACT_MATCHING_LIMIT,
        "exact matcher ceiling is {EXACT_MATCHING_LIMIT} events, block has {n}"
    );
    let west_matches = exact_min_weight_west_matches(code, &block.events, &mut scratch.memo);
    let error_parity = block.west_column_error_parity(code);
    DecodeOutcome {
        n_events: n,
        west_matches,
        logical_error: error_parity != (west_matches % 2 == 1),
        degraded: false,
    }
}

/// Union-find decode of a whole block, regardless of size.
pub fn decode_block_uf(
    code: &RotatedSurfaceCode,
    block: &SyndromeBlock,
    scratch: &mut DecodeScratch,
) -> DecodeOutcome {
    let n = block.events.len();
    let graph = {
        scratch.ensure_graph(code, block.rounds);
        scratch.graph.as_ref().expect("graph just ensured")
    };
    let west_matches = uf::decode_events(graph, &block.events, &mut scratch.uf);
    let error_parity = block.west_column_error_parity(code);
    DecodeOutcome {
        n_events: n,
        west_matches,
        logical_error: error_parity != (west_matches % 2 == 1),
        degraded: false,
    }
}

/// Exact minimum-weight matching via subset DP with a canonical tie-break:
/// every memo entry packs `(cost << WEST_BITS) | west_count`, so the numeric
/// minimum is the lexicographic minimum over `(cost, west_count)` — among
/// co-optimal matchings the one with the fewest west matches wins,
/// independent of event enumeration order. Returns that canonical west
/// count. `memo` is caller-owned scratch, cleared and resized to the `2^n`
/// subsets here.
fn exact_min_weight_west_matches(
    code: &RotatedSurfaceCode,
    events: &[DetectionEvent],
    memo: &mut Vec<u64>,
) -> usize {
    let n = events.len();
    if n == 0 {
        return 0;
    }
    // West counts are at most EXACT_MATCHING_LIMIT (14), so 8 bits of
    // packing leave costs 2^56 of headroom — unreachable for any block.
    const WEST_BITS: u32 = 8;
    const WEST_MASK: u64 = (1 << WEST_BITS) - 1;
    let full = (1usize << n) - 1;
    memo.clear();
    memo.resize(1 << n, u64::MAX);
    memo[0] = 0;

    // Increasing-mask order is valid: every transition clears the lowest set
    // bit, so dependencies have smaller values. Packed sums add component-
    // wise because the west field cannot carry past its 8 bits.
    for mask in 1..=full {
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let west = memo[rest] + ((code.dist_west(events[i].stab) as u64) << WEST_BITS) + 1;
        let east = memo[rest] + ((code.dist_east(events[i].stab) as u64) << WEST_BITS);
        let mut best = west.min(east);
        let mut bits = rest;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let pair = memo[rest & !(1 << j)]
                + ((event_distance(code, &events[i], &events[j]) as u64) << WEST_BITS);
            best = best.min(pair);
        }
        memo[mask] = best;
    }
    (memo[full] & WEST_MASK) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syndrome::NoiseParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn code() -> RotatedSurfaceCode {
        RotatedSurfaceCode::new(5)
    }

    /// Builds a block with a hand-placed error set and perfect measurements.
    fn block_with_errors(code: &RotatedSurfaceCode, error_qubits: &[usize]) -> SyndromeBlock {
        let mut errors = vec![false; code.n_data()];
        for &q in error_qubits {
            errors[q] = true;
        }
        let mut events = Vec::new();
        for (s, stab) in code.stabilizers().iter().enumerate() {
            let mut parity = false;
            for &q in &stab.support {
                parity ^= errors[q];
            }
            if parity {
                events.push(DetectionEvent { stab: s, round: 0 });
            }
        }
        SyndromeBlock {
            events,
            final_errors: errors,
            rounds: 1,
        }
    }

    #[test]
    fn empty_block_decodes_cleanly() {
        let c = code();
        let block = block_with_errors(&c, &[]);
        let out = decode_block(&c, &block);
        assert!(!out.logical_error);
        assert_eq!(out.n_events, 0);
        assert_eq!(out, DecodeOutcome::default());
    }

    #[test]
    fn every_single_qubit_error_is_corrected() {
        let c = code();
        for q in 0..c.n_data() {
            let block = block_with_errors(&c, &[q]);
            let out = decode_block(&c, &block);
            assert!(!out.logical_error, "single error on qubit {q} mis-decoded");
        }
    }

    #[test]
    fn every_adjacent_pair_error_is_corrected() {
        // Any two-qubit error is weight 2 < d/2, must be correctable at d=5.
        let c = code();
        for q in 0..c.n_data() {
            let row = q / 5;
            let col = q % 5;
            if col + 1 < 5 {
                let block = block_with_errors(&c, &[q, row * 5 + col + 1]);
                let out = decode_block(&c, &block);
                assert!(
                    !out.logical_error,
                    "pair error at ({row},{col}) mis-decoded"
                );
            }
        }
    }

    #[test]
    fn full_logical_row_is_a_logical_error() {
        // A complete row of X errors has trivial syndrome; the decoder does
        // nothing and the class flips: this must be reported as a logical
        // error.
        let c = code();
        let row: Vec<usize> = (0..5).collect();
        let block = block_with_errors(&c, &row);
        assert!(block.events.is_empty(), "logical row must be undetectable");
        let out = decode_block(&c, &block);
        assert!(out.logical_error);
    }

    #[test]
    fn exact_tie_break_is_canonical_over_event_orderings() {
        // Co-optimal matchings must not let the enumeration order pick the
        // west parity: decode every block under many event permutations and
        // demand one canonical (west_matches, logical_error) answer. Seeded
        // blocks at d=5 routinely contain co-optimal sets; a rotation +
        // reversal sweep exercises distinct reconstruction orders.
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.015,
            meas_error_prob: 0.01,
        };
        let mut rng = StdRng::seed_from_u64(97);
        let mut scratch = DecodeScratch::new();
        let mut checked = 0;
        for _ in 0..400 {
            let block = SyndromeBlock::simulate(&c, &noise, 5, &mut rng);
            if block.events.len() > EXACT_MATCHING_LIMIT || block.events.is_empty() {
                continue;
            }
            let base = decode_block_exact(&c, &block, &mut scratch);
            let mut permuted = block.clone();
            for rot in 0..permuted.events.len() {
                permuted.events.rotate_left(1);
                let out = decode_block_exact(&c, &permuted, &mut scratch);
                assert_eq!(out, base, "rotation {rot} changed the exact decode");
                permuted.events.reverse();
                let out = decode_block_exact(&c, &permuted, &mut scratch);
                assert_eq!(out, base, "reversal after rotation {rot} changed it");
                permuted.events.reverse();
            }
            checked += 1;
        }
        assert!(checked > 100, "only {checked} blocks exercised");
    }

    #[test]
    fn dispatch_handles_dense_blocks_without_ceiling() {
        // Far beyond the old 2^14 subset ceiling: a dense multi-round block
        // at d=7 must decode through the union-find path.
        let c = RotatedSurfaceCode::new(7);
        let noise = NoiseParams {
            data_error_prob: 0.05,
            meas_error_prob: 0.05,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut scratch = DecodeScratch::prewarmed(&c, 7);
        let mut densest = 0;
        for _ in 0..50 {
            let block = SyndromeBlock::simulate(&c, &noise, 7, &mut rng);
            densest = densest.max(block.events.len());
            let out = decode_block_with(&c, &block, &mut scratch);
            assert_eq!(out.n_events, block.events.len());
            assert!(!out.degraded, "block decoders never set degraded");
        }
        assert!(
            densest > EXACT_MATCHING_LIMIT,
            "noise too low to exercise UF"
        );
    }

    #[test]
    fn decoder_beats_raw_error_rate_below_threshold() {
        // At p well below threshold the decoded logical rate must be far
        // below the probability of any error occurring.
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.01,
            meas_error_prob: 0.005,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let blocks = 2_000;
        let mut failures = 0;
        for _ in 0..blocks {
            let block = SyndromeBlock::simulate(&c, &noise, 5, &mut rng);
            if decode_block(&c, &block).logical_error {
                failures += 1;
            }
        }
        let logical = failures as f64 / blocks as f64;
        // Raw chance of ≥1 data error in the block is ≈ 1−(1−p)^{25·5} ≈ 0.71.
        assert!(logical < 0.1, "logical rate {logical}");
    }

    #[test]
    fn measurement_errors_alone_cause_no_logical_errors_often() {
        // Pure measurement noise creates time-like strings that the decoder
        // should almost always match vertically (no data correction).
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.02,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let mut failures = 0;
        for _ in 0..1_000 {
            let block = SyndromeBlock::simulate(&c, &noise, 5, &mut rng);
            if decode_block(&c, &block).logical_error {
                failures += 1;
            }
        }
        assert!(
            failures < 20,
            "{failures} failures from measurement noise alone"
        );
    }
}
