//! Phenomenological noise blocks and detection events.
//!
//! One block simulates `T` stabilizer-measurement rounds. Each round, every
//! data qubit acquires an `X` error with probability `p`; each stabilizer
//! outcome is flipped with probability `εR` (the readout error rate —
//! the knob HERQULES turns). A final perfect round terminates the block, the
//! standard convention for logical-error benchmarking. Detection events are
//! the XOR of consecutive syndrome rounds.
//!
//! The round-by-round core is [`SyndromeSim`]: both the one-shot
//! [`SyndromeBlock::simulate`] / [`SyndromeBlock::simulate_seeded`] entry
//! points and streaming consumers (the `herqles-stream` cycle engine) drive
//! the same stepper, so offline and online paths cannot drift apart.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::layout::RotatedSurfaceCode;

/// Writes the Z-stabilizer parities of a data-error pattern into `out`.
///
/// `out[s]` becomes the parity of `errors` over stabilizer `s`'s support —
/// the noiseless syndrome that a perfect measurement round would report.
///
/// # Panics
///
/// Panics if `errors` or `out` have the wrong length for `code`.
pub fn stabilizer_parities(code: &RotatedSurfaceCode, errors: &[bool], out: &mut [bool]) {
    assert_eq!(errors.len(), code.n_data(), "one error flag per data qubit");
    assert_eq!(
        out.len(),
        code.n_stabilizers(),
        "one parity slot per stabilizer"
    );
    for (parity, stab) in out.iter_mut().zip(code.stabilizers()) {
        let mut p = false;
        for &q in &stab.support {
            p ^= errors[q];
        }
        *parity = p;
    }
}

/// Noise parameters of a syndrome block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Per-round, per-data-qubit `X` error probability.
    pub data_error_prob: f64,
    /// Per-round syndrome measurement flip probability (`εR`).
    pub meas_error_prob: f64,
}

impl NoiseParams {
    /// Validates probability ranges.
    ///
    /// # Errors
    ///
    /// Returns a message if either probability is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("data_error_prob", self.data_error_prob),
            ("meas_error_prob", self.meas_error_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// A detection event in the space-time syndrome graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectionEvent {
    /// Stabilizer index (into [`RotatedSurfaceCode::stabilizers`]).
    pub stab: usize,
    /// Round index at which the syndrome changed.
    pub round: usize,
}

/// The outcome of simulating one noisy block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromeBlock {
    /// Detection events (syndrome differences).
    pub events: Vec<DetectionEvent>,
    /// Final cumulative data-error state (true = `X` error present).
    pub final_errors: Vec<bool>,
    /// Number of noisy rounds simulated.
    pub rounds: usize,
}

/// Incremental, buffer-reusing syndrome simulation: the single round-stepping
/// core behind [`SyndromeBlock::simulate`], [`SyndromeBlock::simulate_seeded`]
/// and the streaming QEC-cycle engine.
///
/// A block is driven as `rounds × step_round` (noisy rounds) followed by
/// [`SyndromeSim::finish_perfect_round`]. Streaming consumers that replace
/// the phenomenological measurement-flip coin with a *physical* readout
/// pipeline instead call [`SyndromeSim::apply_data_errors`], read the true
/// parities via [`SyndromeSim::true_parities_into`], discriminate, and commit
/// the measured syndrome with [`SyndromeSim::record_measured_syndrome`].
/// All buffers are reused across blocks via [`SyndromeSim::reset`], so the
/// steady-state round path performs no heap allocation (the detection-event
/// buffer is pre-reserved to its hard upper bound of
/// `n_stabilizers × (rounds + 1)` once enough rounds have been seen).
#[derive(Debug, Clone)]
pub struct SyndromeSim<'a> {
    code: &'a RotatedSurfaceCode,
    noise: NoiseParams,
    errors: Vec<bool>,
    prev_syndrome: Vec<bool>,
    parity_scratch: Vec<bool>,
    events: Vec<DetectionEvent>,
    round: usize,
}

impl<'a> SyndromeSim<'a> {
    /// Creates a stepper for one code and noise model.
    ///
    /// # Panics
    ///
    /// Panics if the noise parameters are invalid.
    pub fn new(code: &'a RotatedSurfaceCode, noise: &NoiseParams) -> Self {
        noise.validate().expect("invalid noise parameters");
        let n_stabs = code.n_stabilizers();
        SyndromeSim {
            code,
            noise: *noise,
            errors: vec![false; code.n_data()],
            prev_syndrome: vec![false; n_stabs],
            parity_scratch: vec![false; n_stabs],
            events: Vec::new(),
            round: 0,
        }
    }

    /// Clears all per-block state, keeping buffer capacity.
    pub fn reset(&mut self) {
        self.errors.iter_mut().for_each(|e| *e = false);
        self.prev_syndrome.iter_mut().for_each(|p| *p = false);
        self.events.clear();
        self.round = 0;
    }

    /// Reserves event capacity for blocks of up to `rounds` noisy rounds
    /// (every stabilizer firing every round, incl. the perfect round, is the
    /// hard upper bound), guaranteeing an allocation-free block afterwards.
    pub fn reserve_rounds(&mut self, rounds: usize) {
        let cap = self.code.n_stabilizers() * (rounds + 1);
        self.events.reserve(cap.saturating_sub(self.events.len()));
    }

    /// Noisy rounds committed so far in the current block.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current cumulative data-error pattern.
    pub fn errors(&self) -> &[bool] {
        &self.errors
    }

    /// Detection events recorded so far in the current block.
    pub fn events(&self) -> &[DetectionEvent] {
        &self.events
    }

    /// Flips each data qubit with probability `data_error_prob` (one RNG draw
    /// per qubit, in qubit order).
    pub fn apply_data_errors<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for e in self.errors.iter_mut() {
            if rng.random::<f64>() < self.noise.data_error_prob {
                *e = !*e;
            }
        }
    }

    /// Writes the current noiseless stabilizer parities into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have one slot per stabilizer.
    pub fn true_parities_into(&self, out: &mut [bool]) {
        stabilizer_parities(self.code, &self.errors, out);
    }

    /// Commits an externally measured syndrome as the next noisy round:
    /// records detection events where `measured` differs from the previous
    /// round's syndrome and advances the round counter.
    ///
    /// # Panics
    ///
    /// Panics if `measured` does not have one entry per stabilizer.
    pub fn record_measured_syndrome(&mut self, measured: &[bool]) {
        assert_eq!(
            measured.len(),
            self.prev_syndrome.len(),
            "one measured bit per stabilizer"
        );
        Self::commit(
            &mut self.events,
            &mut self.prev_syndrome,
            measured,
            self.round,
        );
        self.round += 1;
    }

    /// One phenomenological noisy round: data errors, then each stabilizer
    /// outcome flipped with probability `meas_error_prob` (one RNG draw per
    /// stabilizer, in stabilizer order).
    pub fn step_round<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.apply_data_errors(rng);
        let mut scratch = std::mem::take(&mut self.parity_scratch);
        stabilizer_parities(self.code, &self.errors, &mut scratch);
        for p in scratch.iter_mut() {
            if rng.random::<f64>() < self.noise.meas_error_prob {
                *p = !*p;
            }
        }
        Self::commit(
            &mut self.events,
            &mut self.prev_syndrome,
            &scratch,
            self.round,
        );
        self.round += 1;
        self.parity_scratch = scratch;
    }

    /// The terminating perfect round: noiseless parities, events recorded at
    /// the current round index, round counter *not* advanced (the block's
    /// `rounds` counts noisy rounds only, per the offline convention).
    pub fn finish_perfect_round(&mut self) {
        let mut scratch = std::mem::take(&mut self.parity_scratch);
        stabilizer_parities(self.code, &self.errors, &mut scratch);
        Self::commit(
            &mut self.events,
            &mut self.prev_syndrome,
            &scratch,
            self.round,
        );
        self.parity_scratch = scratch;
    }

    fn commit(
        events: &mut Vec<DetectionEvent>,
        prev: &mut [bool],
        measured: &[bool],
        round: usize,
    ) {
        for (s, (&m, p)) in measured.iter().zip(prev.iter_mut()).enumerate() {
            if m != *p {
                events.push(DetectionEvent { stab: s, round });
                *p = m;
            }
        }
    }

    /// Copies the finished block into a caller-owned [`SyndromeBlock`],
    /// reusing its buffers (no allocation once the target has capacity).
    pub fn write_block(&self, out: &mut SyndromeBlock) {
        out.events.clear();
        out.events.extend_from_slice(&self.events);
        out.final_errors.clear();
        out.final_errors.extend_from_slice(&self.errors);
        out.rounds = self.round;
    }

    /// Consumes the stepper into an owned [`SyndromeBlock`].
    pub fn into_block(self) -> SyndromeBlock {
        SyndromeBlock {
            events: self.events,
            final_errors: self.errors,
            rounds: self.round,
        }
    }
}

impl SyndromeBlock {
    /// Simulates one block of `rounds` noisy rounds plus a perfect
    /// terminating round, by driving a [`SyndromeSim`] (the shared core of
    /// the offline and streaming paths).
    ///
    /// # Panics
    ///
    /// Panics if the noise parameters are invalid or `rounds == 0`.
    pub fn simulate<R: Rng + ?Sized>(
        code: &RotatedSurfaceCode,
        noise: &NoiseParams,
        rounds: usize,
        rng: &mut R,
    ) -> SyndromeBlock {
        let mut sim = SyndromeSim::new(code, noise);
        assert!(rounds > 0, "need at least one round");
        for _ in 0..rounds {
            sim.step_round(rng);
        }
        sim.finish_perfect_round();
        sim.into_block()
    }

    /// Simulates a block with a dedicated seeded RNG (deterministic); routed
    /// through the same [`SyndromeSim`] core as [`SyndromeBlock::simulate`].
    pub fn simulate_seeded(
        code: &RotatedSurfaceCode,
        noise: &NoiseParams,
        rounds: usize,
        seed: u64,
    ) -> SyndromeBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::simulate(code, noise, rounds, &mut rng)
    }

    /// Parity of residual `X` errors on the west column (the logical-class
    /// observable).
    pub fn west_column_error_parity(&self, code: &RotatedSurfaceCode) -> bool {
        self.final_errors
            .iter()
            .enumerate()
            .filter(|&(q, &e)| e && code.is_west_column(q))
            .count()
            % 2
            == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> RotatedSurfaceCode {
        RotatedSurfaceCode::new(5)
    }

    #[test]
    fn noiseless_block_has_no_events() {
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.0,
        };
        let block = SyndromeBlock::simulate_seeded(&code(), &noise, 5, 1);
        assert!(block.events.is_empty());
        assert!(block.final_errors.iter().all(|&e| !e));
    }

    #[test]
    fn detection_events_have_even_total_parity_with_boundaries_excluded() {
        // Every error chain has two endpoints (possibly on boundaries), so
        // event counts can be odd; what must hold is that events fall within
        // the simulated rounds.
        let noise = NoiseParams {
            data_error_prob: 0.05,
            meas_error_prob: 0.02,
        };
        let block = SyndromeBlock::simulate_seeded(&code(), &noise, 4, 2);
        for ev in &block.events {
            assert!(ev.round <= 4);
            assert!(ev.stab < code().n_stabilizers());
        }
    }

    #[test]
    fn pure_measurement_noise_leaves_no_data_errors() {
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.3,
        };
        let block = SyndromeBlock::simulate_seeded(&code(), &noise, 6, 3);
        assert!(block.final_errors.iter().all(|&e| !e));
        // Measurement flips show up and are later cancelled by the next
        // round's re-measurement → events come in time-like pairs on the
        // same stabilizer (the final perfect round closes any open flip).
        assert!(!block.events.is_empty());
        let mut per_stab = std::collections::HashMap::new();
        for ev in &block.events {
            *per_stab.entry(ev.stab).or_insert(0usize) += 1;
        }
        for (&stab, &count) in &per_stab {
            assert!(count % 2 == 0, "stab {stab} has odd event count {count}");
        }
    }

    #[test]
    fn single_data_error_produces_matching_events() {
        // Inject exactly one error by hand via an extreme configuration:
        // p = 0 but flip one qubit by simulating with p = 0 and then
        // checking the syndrome logic directly through a 1-round block with
        // a deterministic flip is equivalent to verifying stab supports.
        let c = code();
        let q = 6; // interior qubit
        let stabs = c.stabs_of_qubit(q);
        assert_eq!(stabs.len(), 2);
    }

    #[test]
    fn event_count_grows_with_noise() {
        let c = code();
        let lo = NoiseParams {
            data_error_prob: 0.01,
            meas_error_prob: 0.005,
        };
        let hi = NoiseParams {
            data_error_prob: 0.08,
            meas_error_prob: 0.04,
        };
        let count = |noise: &NoiseParams| -> usize {
            (0..200)
                .map(|s| SyndromeBlock::simulate_seeded(&c, noise, 5, s).events.len())
                .sum()
        };
        assert!(count(&hi) > 2 * count(&lo));
    }

    #[test]
    fn west_parity_reflects_final_errors() {
        let c = code();
        let mut block = SyndromeBlock::simulate_seeded(
            &c,
            &NoiseParams {
                data_error_prob: 0.0,
                meas_error_prob: 0.0,
            },
            1,
            0,
        );
        assert!(!block.west_column_error_parity(&c));
        block.final_errors[0] = true; // qubit (0,0): west column
        assert!(block.west_column_error_parity(&c));
        block.final_errors[1] = true; // qubit (0,1): not west
        assert!(block.west_column_error_parity(&c));
    }

    #[test]
    fn seeded_output_is_pinned_across_refactors() {
        // Regression pin: these exact values were produced by the pre-stepper
        // implementation (seed → identical RNG draw order). Any change to the
        // draw order or event bookkeeping must fail this test.
        let noise = NoiseParams {
            data_error_prob: 0.08,
            meas_error_prob: 0.05,
        };
        let b3 = SyndromeBlock::simulate_seeded(&RotatedSurfaceCode::new(3), &noise, 4, 42);
        let ev3: Vec<(usize, usize)> = b3.events.iter().map(|e| (e.stab, e.round)).collect();
        assert_eq!(ev3, vec![(1, 1), (1, 3)]);
        assert_eq!(
            b3.final_errors,
            vec![true, false, false, false, true, true, false, false, false]
        );

        let b5 = SyndromeBlock::simulate_seeded(&RotatedSurfaceCode::new(5), &noise, 5, 7);
        let ev5: Vec<(usize, usize)> = b5.events.iter().map(|e| (e.stab, e.round)).collect();
        assert_eq!(
            ev5,
            vec![
                (1, 0),
                (3, 0),
                (1, 1),
                (3, 1),
                (5, 1),
                (7, 1),
                (3, 2),
                (7, 2),
                (7, 3),
                (9, 3),
                (7, 4),
                (8, 4),
                (11, 4)
            ]
        );
        let flipped: Vec<usize> = b5
            .final_errors
            .iter()
            .enumerate()
            .filter_map(|(q, &e)| e.then_some(q))
            .collect();
        assert_eq!(flipped, vec![0, 2, 3, 5, 9, 13, 14, 23, 24]);
    }

    #[test]
    fn manual_stepping_matches_simulate() {
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.06,
            meas_error_prob: 0.03,
        };
        let reference = SyndromeBlock::simulate_seeded(&c, &noise, 6, 123);
        let mut rng = StdRng::seed_from_u64(123);
        let mut sim = SyndromeSim::new(&c, &noise);
        sim.reserve_rounds(6);
        for _ in 0..6 {
            sim.step_round(&mut rng);
        }
        sim.finish_perfect_round();
        let mut block = SyndromeBlock {
            events: Vec::new(),
            final_errors: Vec::new(),
            rounds: 0,
        };
        sim.write_block(&mut block);
        assert_eq!(block, reference);
        assert_eq!(sim.into_block(), reference);
    }

    #[test]
    fn sim_reset_reuses_buffers_for_identical_blocks() {
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.05,
            meas_error_prob: 0.02,
        };
        let mut sim = SyndromeSim::new(&c, &noise);
        let run = |sim: &mut SyndromeSim| {
            let mut rng = StdRng::seed_from_u64(9);
            sim.reset();
            for _ in 0..4 {
                sim.step_round(&mut rng);
            }
            sim.finish_perfect_round();
            let mut block = SyndromeBlock {
                events: Vec::new(),
                final_errors: Vec::new(),
                rounds: 0,
            };
            sim.write_block(&mut block);
            block
        };
        let a = run(&mut sim);
        let b = run(&mut sim);
        assert_eq!(a, b);
        assert_eq!(a.rounds, 4);
    }

    #[test]
    fn externally_measured_syndrome_round_trip() {
        // Driving record_measured_syndrome with the *true* parities is a
        // perfect-measurement round: events must mirror data errors only.
        let c = code();
        let noise = NoiseParams {
            data_error_prob: 0.1,
            meas_error_prob: 0.9, // must be ignored by the external path
        };
        let mut rng = StdRng::seed_from_u64(17);
        let mut sim = SyndromeSim::new(&c, &noise);
        let mut parities = vec![false; c.n_stabilizers()];
        for _ in 0..5 {
            sim.apply_data_errors(&mut rng);
            sim.true_parities_into(&mut parities);
            sim.record_measured_syndrome(&parities);
        }
        sim.finish_perfect_round();
        let block = sim.into_block();
        assert_eq!(block.rounds, 5);
        // Perfect measurements ⇒ the terminating perfect round adds nothing.
        assert!(block.events.iter().all(|e| e.round < 5));
    }

    #[test]
    fn stabilizer_parities_match_single_qubit_supports() {
        let c = code();
        for q in 0..c.n_data() {
            let mut errors = vec![false; c.n_data()];
            errors[q] = true;
            let mut parities = vec![false; c.n_stabilizers()];
            stabilizer_parities(&c, &errors, &mut parities);
            let fired: Vec<usize> = parities
                .iter()
                .enumerate()
                .filter_map(|(s, &p)| p.then_some(s))
                .collect();
            assert_eq!(fired, c.stabs_of_qubit(q), "qubit {q}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.0,
        };
        let _ = SyndromeBlock::simulate_seeded(&code(), &noise, 0, 0);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn invalid_probability_panics() {
        let noise = NoiseParams {
            data_error_prob: 1.5,
            meas_error_prob: 0.0,
        };
        let _ = SyndromeBlock::simulate_seeded(&code(), &noise, 1, 0);
    }
}
