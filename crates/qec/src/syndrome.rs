//! Phenomenological noise blocks and detection events.
//!
//! One block simulates `T` stabilizer-measurement rounds. Each round, every
//! data qubit acquires an `X` error with probability `p`; each stabilizer
//! outcome is flipped with probability `εR` (the readout error rate —
//! the knob HERQULES turns). A final perfect round terminates the block, the
//! standard convention for logical-error benchmarking. Detection events are
//! the XOR of consecutive syndrome rounds.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::layout::RotatedSurfaceCode;

/// Noise parameters of a syndrome block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Per-round, per-data-qubit `X` error probability.
    pub data_error_prob: f64,
    /// Per-round syndrome measurement flip probability (`εR`).
    pub meas_error_prob: f64,
}

impl NoiseParams {
    /// Validates probability ranges.
    ///
    /// # Errors
    ///
    /// Returns a message if either probability is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("data_error_prob", self.data_error_prob),
            ("meas_error_prob", self.meas_error_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// A detection event in the space-time syndrome graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectionEvent {
    /// Stabilizer index (into [`RotatedSurfaceCode::stabilizers`]).
    pub stab: usize,
    /// Round index at which the syndrome changed.
    pub round: usize,
}

/// The outcome of simulating one noisy block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyndromeBlock {
    /// Detection events (syndrome differences).
    pub events: Vec<DetectionEvent>,
    /// Final cumulative data-error state (true = `X` error present).
    pub final_errors: Vec<bool>,
    /// Number of noisy rounds simulated.
    pub rounds: usize,
}

impl SyndromeBlock {
    /// Simulates one block of `rounds` noisy rounds plus a perfect
    /// terminating round.
    ///
    /// # Panics
    ///
    /// Panics if the noise parameters are invalid or `rounds == 0`.
    pub fn simulate<R: Rng + ?Sized>(
        code: &RotatedSurfaceCode,
        noise: &NoiseParams,
        rounds: usize,
        rng: &mut R,
    ) -> SyndromeBlock {
        noise.validate().expect("invalid noise parameters");
        assert!(rounds > 0, "need at least one round");
        let n_stabs = code.n_stabilizers();
        let mut errors = vec![false; code.n_data()];
        let mut prev_syndrome = vec![false; n_stabs];
        let mut events = Vec::new();

        for t in 0..=rounds {
            let perfect = t == rounds;
            if !perfect {
                for (q, e) in errors.iter_mut().enumerate() {
                    let _ = q;
                    if rng.random::<f64>() < noise.data_error_prob {
                        *e = !*e;
                    }
                }
            }
            // Measure all Z-stabilizers.
            for (s, stab) in code.stabilizers().iter().enumerate() {
                let mut parity = false;
                for &q in &stab.support {
                    parity ^= errors[q];
                }
                if !perfect && rng.random::<f64>() < noise.meas_error_prob {
                    parity = !parity;
                }
                if parity != prev_syndrome[s] {
                    events.push(DetectionEvent { stab: s, round: t });
                    prev_syndrome[s] = parity;
                }
            }
        }

        SyndromeBlock {
            events,
            final_errors: errors,
            rounds,
        }
    }

    /// Simulates a block with a dedicated seeded RNG (deterministic).
    pub fn simulate_seeded(
        code: &RotatedSurfaceCode,
        noise: &NoiseParams,
        rounds: usize,
        seed: u64,
    ) -> SyndromeBlock {
        let mut rng = StdRng::seed_from_u64(seed);
        Self::simulate(code, noise, rounds, &mut rng)
    }

    /// Parity of residual `X` errors on the west column (the logical-class
    /// observable).
    pub fn west_column_error_parity(&self, code: &RotatedSurfaceCode) -> bool {
        self.final_errors
            .iter()
            .enumerate()
            .filter(|&(q, &e)| e && code.is_west_column(q))
            .count()
            % 2
            == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code() -> RotatedSurfaceCode {
        RotatedSurfaceCode::new(5)
    }

    #[test]
    fn noiseless_block_has_no_events() {
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.0,
        };
        let block = SyndromeBlock::simulate_seeded(&code(), &noise, 5, 1);
        assert!(block.events.is_empty());
        assert!(block.final_errors.iter().all(|&e| !e));
    }

    #[test]
    fn detection_events_have_even_total_parity_with_boundaries_excluded() {
        // Every error chain has two endpoints (possibly on boundaries), so
        // event counts can be odd; what must hold is that events fall within
        // the simulated rounds.
        let noise = NoiseParams {
            data_error_prob: 0.05,
            meas_error_prob: 0.02,
        };
        let block = SyndromeBlock::simulate_seeded(&code(), &noise, 4, 2);
        for ev in &block.events {
            assert!(ev.round <= 4);
            assert!(ev.stab < code().n_stabilizers());
        }
    }

    #[test]
    fn pure_measurement_noise_leaves_no_data_errors() {
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.3,
        };
        let block = SyndromeBlock::simulate_seeded(&code(), &noise, 6, 3);
        assert!(block.final_errors.iter().all(|&e| !e));
        // Measurement flips show up and are later cancelled by the next
        // round's re-measurement → events come in time-like pairs on the
        // same stabilizer (the final perfect round closes any open flip).
        assert!(!block.events.is_empty());
        let mut per_stab = std::collections::HashMap::new();
        for ev in &block.events {
            *per_stab.entry(ev.stab).or_insert(0usize) += 1;
        }
        for (&stab, &count) in &per_stab {
            assert!(count % 2 == 0, "stab {stab} has odd event count {count}");
        }
    }

    #[test]
    fn single_data_error_produces_matching_events() {
        // Inject exactly one error by hand via an extreme configuration:
        // p = 0 but flip one qubit by simulating with p = 0 and then
        // checking the syndrome logic directly through a 1-round block with
        // a deterministic flip is equivalent to verifying stab supports.
        let c = code();
        let q = 6; // interior qubit
        let stabs = c.stabs_of_qubit(q);
        assert_eq!(stabs.len(), 2);
    }

    #[test]
    fn event_count_grows_with_noise() {
        let c = code();
        let lo = NoiseParams {
            data_error_prob: 0.01,
            meas_error_prob: 0.005,
        };
        let hi = NoiseParams {
            data_error_prob: 0.08,
            meas_error_prob: 0.04,
        };
        let count = |noise: &NoiseParams| -> usize {
            (0..200)
                .map(|s| SyndromeBlock::simulate_seeded(&c, noise, 5, s).events.len())
                .sum()
        };
        assert!(count(&hi) > 2 * count(&lo));
    }

    #[test]
    fn west_parity_reflects_final_errors() {
        let c = code();
        let mut block = SyndromeBlock::simulate_seeded(
            &c,
            &NoiseParams {
                data_error_prob: 0.0,
                meas_error_prob: 0.0,
            },
            1,
            0,
        );
        assert!(!block.west_column_error_parity(&c));
        block.final_errors[0] = true; // qubit (0,0): west column
        assert!(block.west_column_error_parity(&c));
        block.final_errors[1] = true; // qubit (0,1): not west
        assert!(block.west_column_error_parity(&c));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let noise = NoiseParams {
            data_error_prob: 0.0,
            meas_error_prob: 0.0,
        };
        let _ = SyndromeBlock::simulate_seeded(&code(), &noise, 0, 0);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn invalid_probability_panics() {
        let noise = NoiseParams {
            data_error_prob: 1.5,
            meas_error_prob: 0.0,
        };
        let _ = SyndromeBlock::simulate_seeded(&code(), &noise, 1, 0);
    }
}
