//! Monte-Carlo logical error rate estimation (the Fig. 13 engine).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::decoder::decode_block;
use crate::layout::RotatedSurfaceCode;
use crate::syndrome::{NoiseParams, SyndromeBlock};

/// Configuration of one logical-error-rate estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalErrorConfig {
    /// Code distance (odd, ≥ 3; the paper's Fig. 13 uses 7).
    pub distance: usize,
    /// Noisy measurement rounds per block (commonly `d`).
    pub rounds: usize,
    /// Per-round data-qubit error probability (x-axis of Fig. 13).
    pub data_error_prob: f64,
    /// Per-round readout error `εR` (the curve family of Fig. 13).
    pub meas_error_prob: f64,
    /// Monte-Carlo blocks to simulate.
    pub blocks: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Estimates the logical `X` error rate **per round**: block failures divided
/// by blocks, divided by rounds — the normalization of the paper's
/// "logical error rate per round" axis.
///
/// # Panics
///
/// Panics if `blocks == 0` or the embedded parameters are invalid.
pub fn estimate_logical_error_rate(config: &LogicalErrorConfig) -> f64 {
    assert!(config.blocks > 0, "need at least one block");
    let code = RotatedSurfaceCode::new(config.distance);
    let noise = NoiseParams {
        data_error_prob: config.data_error_prob,
        meas_error_prob: config.meas_error_prob,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut failures = 0usize;
    for _ in 0..config.blocks {
        let block = SyndromeBlock::simulate(&code, &noise, config.rounds, &mut rng);
        if decode_block(&code, &block).logical_error {
            failures += 1;
        }
    }
    failures as f64 / config.blocks as f64 / config.rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(distance: usize, p: f64, q: f64, blocks: usize) -> LogicalErrorConfig {
        LogicalErrorConfig {
            distance,
            rounds: distance,
            data_error_prob: p,
            meas_error_prob: q,
            blocks,
            seed: 99,
        }
    }

    #[test]
    fn noiseless_rate_is_zero() {
        assert_eq!(estimate_logical_error_rate(&cfg(3, 0.0, 0.0, 200)), 0.0);
    }

    #[test]
    fn rate_increases_with_physical_error() {
        let lo = estimate_logical_error_rate(&cfg(3, 0.005, 0.005, 4_000));
        let hi = estimate_logical_error_rate(&cfg(3, 0.05, 0.005, 4_000));
        assert!(hi > lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn rate_increases_with_readout_error() {
        // The headline mechanism of Fig. 13: worse readout → worse logical
        // rate at fixed gate error.
        let lo = estimate_logical_error_rate(&cfg(3, 0.01, 0.0, 6_000));
        let hi = estimate_logical_error_rate(&cfg(3, 0.01, 0.04, 6_000));
        assert!(hi > lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn larger_distance_suppresses_below_threshold() {
        let d3 = estimate_logical_error_rate(&cfg(3, 0.008, 0.008, 6_000));
        let d7 = estimate_logical_error_rate(&cfg(7, 0.008, 0.008, 6_000));
        assert!(
            d7 < d3,
            "distance scaling violated below threshold: d3 {d3} vs d7 {d7}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = estimate_logical_error_rate(&cfg(3, 0.02, 0.01, 500));
        let b = estimate_logical_error_rate(&cfg(3, 0.02, 0.01, 500));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = estimate_logical_error_rate(&cfg(3, 0.01, 0.0, 0));
    }
}
