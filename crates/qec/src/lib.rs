//! Rotated surface-code simulation with phenomenological noise.
//!
//! This crate is the reproduction's stand-in for the Stim stabilizer
//! simulator used in the paper's Fig. 13 (logical error rate vs physical
//! error rate at several readout-error levels) and the surface-17 syndrome
//! cycle-time study of Fig. 14(b):
//!
//! * [`layout`] — geometry of the distance-`d` rotated surface code
//!   (data qubits, Z-stabilizer plaquettes, boundary structure);
//! * [`syndrome`] — phenomenological noise blocks: per-round data-qubit `X`
//!   errors with probability `p` and syndrome measurement flips with
//!   probability `εR` (the readout error HERQULES improves), producing
//!   space-time detection events;
//! * [`decoder`] — block decoding: exact minimum-weight matching (subset
//!   DP with a canonical tie-break) for small event sets, dispatching to the
//!   union-find decoder for everything larger;
//! * [`graph`] — the precomputed space-time decoding graph (stabilizer ×
//!   round nodes, virtual west/east boundary nodes, uniform-weight edges);
//! * [`uf`] — the union-find decoder: synchronous half-step cluster growth
//!   with weighted union + path compression, boundary absorption, and
//!   spanning-forest peeling — no defect-count ceiling, near-linear cost;
//! * [`window`] — sliding-window streaming decode: commit clusters `lag`
//!   rounds behind the stream, defer seam-straddling clusters wholesale;
//! * [`logical`] — Monte-Carlo logical-error-rate estimation;
//! * [`cycle`] — the surface-code syndrome-extraction cycle-time model with
//!   Google-like and IBM-like gate sets (Fig. 14(b)).
//!
//! Only `X` errors / `Z` stabilizers are simulated; by the code's CSS
//! symmetry the `Z`-error sector behaves identically, so reported logical
//! error rates are per error sector (the convention the paper's figure
//! uses).
//!
//! # Example
//!
//! ```
//! use surface_code::{LogicalErrorConfig, estimate_logical_error_rate};
//!
//! let cfg = LogicalErrorConfig {
//!     distance: 3,
//!     rounds: 3,
//!     data_error_prob: 0.03,
//!     meas_error_prob: 0.0,
//!     blocks: 2_000,
//!     seed: 7,
//! };
//! let rate = estimate_logical_error_rate(&cfg);
//! assert!(rate < 0.5);
//! ```

pub mod cycle;
pub mod decoder;
pub mod graph;
pub mod layout;
pub mod logical;
pub mod syndrome;
pub mod uf;
pub mod window;

pub use cycle::{CycleTimes, GateSet};
pub use decoder::DecodeOutcome;
pub use decoder::{
    decode_block, decode_block_exact, decode_block_uf, decode_block_with, DecodeScratch,
    EXACT_DISPATCH_LIMIT, EXACT_MATCHING_LIMIT,
};
pub use graph::DecodingGraph;
pub use layout::RotatedSurfaceCode;
pub use logical::{estimate_logical_error_rate, LogicalErrorConfig};
pub use syndrome::{stabilizer_parities, NoiseParams, SyndromeBlock, SyndromeSim};
pub use uf::UnionFindScratch;
pub use window::SlidingWindowDecoder;
