//! Classical discriminators for qubit readout.
//!
//! These are the non-neural classifiers the paper compares against and
//! composes with:
//!
//! * [`threshold`] — a 1-D decision threshold on a matched-filter output,
//!   i.e. the plain `mf` design of Table 1;
//! * [`centroid`] — nearest-centroid classification in feature space, the
//!   hardware discriminator cloud systems ship by default (paper §3.4);
//! * [`svm`] — a linear support vector machine trained with the Pegasos
//!   subgradient algorithm, the `mf-svm` / `mf-rmf-svm` designs.
//!
//! # Example
//!
//! ```
//! use readout_classifiers::ThresholdDiscriminator;
//!
//! let ground = [4.0, 4.2, 3.9];
//! let excited = [1.0, 1.2, 0.8];
//! let th = ThresholdDiscriminator::train(&ground, &excited);
//! assert!(th.classify_a(4.1));
//! assert!(!th.classify_a(0.9));
//! ```

pub mod centroid;
pub mod svm;
pub mod threshold;

pub use centroid::CentroidClassifier;
pub use svm::LinearSvm;
pub use threshold::ThresholdDiscriminator;
