//! 1-D threshold discrimination of matched-filter outputs.
//!
//! The plain `mf` design reduces each qubit's trace to one scalar and
//! thresholds it. Training picks the cut that minimizes empirical error on
//! the two labeled classes (equivalent to the optimal 1-D decision stump),
//! which is strictly better than the midpoint rule when the classes are
//! imbalanced by relaxation tails.

/// A trained scalar threshold separating class A from class B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDiscriminator {
    threshold: f64,
    a_is_above: bool,
}

impl ThresholdDiscriminator {
    /// Finds the error-minimizing threshold between two scalar classes.
    ///
    /// Ties are broken toward the midpoint of the adjacent values. With empty
    /// classes the threshold degenerates to classifying everything as the
    /// non-empty class.
    ///
    /// # Panics
    ///
    /// Panics if both classes are empty.
    pub fn train(class_a: &[f64], class_b: &[f64]) -> Self {
        assert!(
            !(class_a.is_empty() && class_b.is_empty()),
            "at least one class must be non-empty"
        );
        if class_a.is_empty() {
            return ThresholdDiscriminator {
                threshold: f64::INFINITY,
                a_is_above: true,
            };
        }
        if class_b.is_empty() {
            return ThresholdDiscriminator {
                threshold: f64::NEG_INFINITY,
                a_is_above: true,
            };
        }
        // Candidate cuts: midpoints of the merged sorted values.
        let mut merged: Vec<(f64, bool)> = class_a
            .iter()
            .map(|&v| (v, true))
            .chain(class_b.iter().map(|&v| (v, false)))
            .collect();
        merged.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("non-NaN filter outputs"));

        let total_a = class_a.len();
        let total_b = class_b.len();
        // Evaluate "A above cut" errors for every prefix boundary: when the
        // cut sits after index i, everything ≤ merged[i] is classified B.
        let mut best_err = usize::MAX;
        let mut best_threshold = 0.0;
        let mut best_above = true;
        let mut a_below = 0usize;
        let mut b_below = 0usize;
        for i in 0..=merged.len() {
            // err(A above) = A below cut + B above cut.
            let err_above = a_below + (total_b - b_below);
            let err_below = b_below + (total_a - a_below);
            let threshold = if i == 0 {
                merged[0].0 - 1.0
            } else if i == merged.len() {
                merged[i - 1].0 + 1.0
            } else {
                0.5 * (merged[i - 1].0 + merged[i].0)
            };
            if err_above < best_err {
                best_err = err_above;
                best_threshold = threshold;
                best_above = true;
            }
            if err_below < best_err {
                best_err = err_below;
                best_threshold = threshold;
                best_above = false;
            }
            if i < merged.len() {
                if merged[i].1 {
                    a_below += 1;
                } else {
                    b_below += 1;
                }
            }
        }
        ThresholdDiscriminator {
            threshold: best_threshold,
            a_is_above: best_above,
        }
    }

    /// The decision boundary value.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether values above the threshold are classified as class A.
    pub fn a_is_above(&self) -> bool {
        self.a_is_above
    }

    /// Classifies a value: `true` means class A.
    pub fn classify_a(&self, value: f64) -> bool {
        (value > self.threshold) == self.a_is_above
    }

    /// Empirical accuracy on labeled scalar data.
    pub fn accuracy(&self, class_a: &[f64], class_b: &[f64]) -> f64 {
        let correct = class_a.iter().filter(|&&v| self.classify_a(v)).count()
            + class_b.iter().filter(|&&v| !self.classify_a(v)).count();
        correct as f64 / (class_a.len() + class_b.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_classes_are_split_perfectly() {
        let a = [3.0, 4.0, 5.0];
        let b = [-1.0, 0.0, 1.0];
        let th = ThresholdDiscriminator::train(&a, &b);
        assert_eq!(th.accuracy(&a, &b), 1.0);
        assert!(th.classify_a(10.0));
        assert!(!th.classify_a(-10.0));
    }

    #[test]
    fn orientation_flips_when_a_is_below() {
        let a = [-5.0, -4.0];
        let b = [4.0, 5.0];
        let th = ThresholdDiscriminator::train(&a, &b);
        assert!(!th.a_is_above());
        assert!(th.classify_a(-6.0));
        assert!(!th.classify_a(6.0));
    }

    #[test]
    fn overlapping_classes_get_min_error_cut() {
        // A = {0, 2, 4}, B = {3, 5, 7}: the best cut (A below) has one error.
        let a = [0.0, 2.0, 4.0];
        let b = [3.0, 5.0, 7.0];
        let th = ThresholdDiscriminator::train(&a, &b);
        let errors = a.iter().filter(|&&v| !th.classify_a(v)).count()
            + b.iter().filter(|&&v| th.classify_a(v)).count();
        assert_eq!(errors, 1);
    }

    #[test]
    fn imbalanced_classes_use_error_count_not_midpoint() {
        // 9 tight A values at 0 plus one B at 0.1; midpoint rules would split
        // inside A's cluster, optimal threshold keeps all A correct.
        let a = [0.0; 9];
        let b = [0.1, 10.0, 10.0, 10.0];
        let th = ThresholdDiscriminator::train(&a, &b);
        assert_eq!(th.accuracy(&a, &b), 1.0);
    }

    #[test]
    fn empty_class_degenerates_gracefully() {
        let th = ThresholdDiscriminator::train(&[], &[1.0, 2.0]);
        assert!(!th.classify_a(0.0));
        assert!(!th.classify_a(100.0));
        let th = ThresholdDiscriminator::train(&[1.0], &[]);
        assert!(th.classify_a(-100.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn both_empty_panics() {
        let _ = ThresholdDiscriminator::train(&[], &[]);
    }

    #[test]
    fn accuracy_counts_both_classes() {
        let th = ThresholdDiscriminator::train(&[1.0], &[-1.0]);
        assert!((th.accuracy(&[1.0, -1.0], &[-1.0, 1.0]) - 0.5).abs() < 1e-12);
    }
}
