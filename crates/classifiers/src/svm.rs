//! Linear support vector machine trained with Pegasos.
//!
//! The paper's `mf-svm` and `mf-rmf-svm` designs replace the small FNN with a
//! per-qubit *linear* SVM over the matched-filter feature vector. Pegasos
//! (primal estimated sub-gradient solver) converges to the same large-margin
//! separator as batch solvers at a fraction of the implementation cost, and
//! its stochastic updates mirror how such classifiers are calibrated online.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hyper-parameters for [`LinearSvm::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Regularization strength λ (larger → wider margin, more bias).
    pub lambda: f64,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
    /// RNG seed for sample selection.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-4,
            epochs: 30,
            seed: 0,
        }
    }
}

/// A trained binary linear SVM: `decision(x) = w·x + b`, positive ⇒ class
/// `true`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains on feature vectors with boolean labels using Pegasos.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths mismatch, only one label value is
    /// present, or dimensions are inconsistent.
    pub fn train(samples: &[Vec<f64>], labels: &[bool], config: &SvmConfig) -> Self {
        assert_eq!(samples.len(), labels.len(), "one label per sample required");
        assert!(!samples.is_empty(), "training set must be non-empty");
        assert!(
            labels.iter().any(|&l| l) && labels.iter().any(|&l| !l),
            "both classes must be present"
        );
        let dim = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == dim),
            "inconsistent dimensions"
        );

        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = samples.len();
        let mut t = 1u64;
        for _ in 0..config.epochs {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                let y = if labels[i] { 1.0 } else { -1.0 };
                let x = &samples[i];
                // Learning-rate schedule with a warm-up floor: the textbook
                // 1/(λt) rate takes enormous first steps for small λ, so cap
                // the effective step size.
                let eta = (1.0 / (config.lambda * t as f64)).min(10.0);
                let margin = y * (dot(&w, x) + b);
                // Bias is treated as an augmented, regularized weight so it
                // shrinks on the same schedule as w.
                let shrink = 1.0 - eta * config.lambda;
                for wj in &mut w {
                    *wj *= shrink;
                }
                b *= shrink;
                if margin < 1.0 {
                    for (wj, &xj) in w.iter_mut().zip(x) {
                        *wj += eta * y * xj;
                    }
                    b += eta * y;
                }
                t += 1;
            }
        }
        LinearSvm {
            weights: w,
            bias: b,
        }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Signed decision value `w·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from training.
    pub fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature dimension mismatch"
        );
        dot(&self.weights, features) + self.bias
    }

    /// Predicted label.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.decision(features) > 0.0
    }

    /// Accuracy on a labeled set.
    pub fn accuracy(&self, samples: &[Vec<f64>], labels: &[bool]) -> f64 {
        assert_eq!(samples.len(), labels.len(), "one label per sample required");
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|(s, &l)| self.predict(s) == l)
            .count();
        correct as f64 / samples.len().max(1) as f64
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, sep: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        // Deterministic pseudo-noise without pulling in a distribution type.
        let mut state = seed | 1;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0 - 0.5
        };
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            samples.push(vec![sep + noise(), noise()]);
            labels.push(true);
            samples.push(vec![-sep + noise(), noise()]);
            labels.push(false);
        }
        (samples, labels)
    }

    #[test]
    fn separates_clear_blobs() {
        let (samples, labels) = blobs(100, 2.0, 1);
        let svm = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        assert!(svm.accuracy(&samples, &labels) > 0.99);
        assert!(svm.predict(&[3.0, 0.0]));
        assert!(!svm.predict(&[-3.0, 0.0]));
    }

    #[test]
    fn decision_scales_with_distance_from_boundary() {
        let (samples, labels) = blobs(100, 2.0, 2);
        let svm = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        assert!(svm.decision(&[5.0, 0.0]) > svm.decision(&[1.0, 0.0]));
    }

    #[test]
    fn handles_overlapping_classes_gracefully() {
        let (samples, labels) = blobs(200, 0.2, 3);
        let svm = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        let acc = svm.accuracy(&samples, &labels);
        // Overlap-limited but far above chance.
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let (samples, labels) = blobs(50, 1.0, 4);
        let a = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        let b = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn weight_vector_points_along_separation_axis() {
        let (samples, labels) = blobs(200, 2.0, 5);
        let svm = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        let w = svm.weights();
        assert!(w[0].abs() > 5.0 * w[1].abs(), "w = {w:?}");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let _ = LinearSvm::train(
            &[vec![0.0], vec![1.0]],
            &[true, true],
            &SvmConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn mismatched_lengths_panic() {
        let _ = LinearSvm::train(&[vec![0.0]], &[true, false], &SvmConfig::default());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dimension_panics() {
        let (samples, labels) = blobs(10, 1.0, 6);
        let svm = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        let _ = svm.decision(&[1.0]);
    }
}
