//! Nearest-centroid classification.
//!
//! The "hardware centroid-based discriminator" cloud systems ship (paper
//! §3.4, ref. IBM selectable discriminators): each class is represented by
//! the mean of its training features and queries are assigned to the nearest
//! centroid.

/// A nearest-centroid classifier over `f64` feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidClassifier {
    centroids: Vec<Vec<f64>>,
}

impl CentroidClassifier {
    /// Computes one centroid per class from labeled samples.
    ///
    /// `classes[k]` holds the samples of class `k`; classes must be
    /// non-empty and share one feature dimension.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two classes, any class is empty, or
    /// dimensions differ.
    pub fn train(classes: &[Vec<Vec<f64>>]) -> Self {
        assert!(classes.len() >= 2, "need at least two classes");
        let dim = classes
            .first()
            .and_then(|c| c.first())
            .map(Vec::len)
            .expect("class 0 must be non-empty");
        let centroids = classes
            .iter()
            .enumerate()
            .map(|(k, samples)| {
                assert!(!samples.is_empty(), "class {k} has no samples");
                let mut c = vec![0.0; dim];
                for s in samples {
                    assert_eq!(s.len(), dim, "inconsistent feature dimension in class {k}");
                    for (acc, &x) in c.iter_mut().zip(s) {
                        *acc += x;
                    }
                }
                for acc in &mut c {
                    *acc /= samples.len() as f64;
                }
                c
            })
            .collect();
        CentroidClassifier { centroids }
    }

    /// The per-class centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Classifies a feature vector by nearest centroid (squared Euclidean).
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension differs from the training dimension.
    pub fn classify(&self, features: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (k, c) in self.centroids.iter().enumerate() {
            assert_eq!(features.len(), c.len(), "feature dimension mismatch");
            let d: f64 = features.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_classifier() -> CentroidClassifier {
        CentroidClassifier::train(&[
            vec![vec![0.0, 0.0], vec![0.2, -0.2], vec![-0.2, 0.2]],
            vec![vec![4.0, 4.0], vec![4.2, 3.8], vec![3.8, 4.2]],
        ])
    }

    #[test]
    fn centroids_are_class_means() {
        let c = two_blob_classifier();
        assert!(c.centroids()[0].iter().all(|&v| v.abs() < 1e-12));
        assert!(c.centroids()[1].iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn classifies_by_proximity() {
        let c = two_blob_classifier();
        assert_eq!(c.classify(&[0.5, 0.5]), 0);
        assert_eq!(c.classify(&[3.5, 3.5]), 1);
    }

    #[test]
    fn boundary_is_equidistant() {
        let c = two_blob_classifier();
        // Exactly between the centroids: first class wins by strict `<`.
        assert_eq!(c.classify(&[2.0, 2.0]), 0);
    }

    #[test]
    fn supports_many_classes() {
        let c = CentroidClassifier::train(&[vec![vec![0.0]], vec![vec![10.0]], vec![vec![20.0]]]);
        assert_eq!(c.n_classes(), 3);
        assert_eq!(c.classify(&[11.0]), 1);
        assert_eq!(c.classify(&[19.0]), 2);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_class_panics() {
        let _ = CentroidClassifier::train(&[vec![vec![0.0]], vec![]]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_class_panics() {
        let _ = CentroidClassifier::train(&[vec![vec![0.0]]]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dimension_panics() {
        let c = two_blob_classifier();
        let _ = c.classify(&[1.0]);
    }
}
