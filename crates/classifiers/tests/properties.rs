//! Property-based tests of the classical classifiers.

use proptest::prelude::*;
use readout_classifiers::svm::SvmConfig;
use readout_classifiers::{CentroidClassifier, LinearSvm, ThresholdDiscriminator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn threshold_accuracy_is_at_least_half(
        a in proptest::collection::vec(-10.0..10.0f64, 1..30),
        b in proptest::collection::vec(-10.0..10.0f64, 1..30),
    ) {
        // The trained cut can always fall back to "classify everything as
        // the majority class", so training accuracy is ≥ the majority rate
        // and hence ≥ 0.5 for the worst split.
        let th = ThresholdDiscriminator::train(&a, &b);
        let majority = a.len().max(b.len()) as f64 / (a.len() + b.len()) as f64;
        prop_assert!(th.accuracy(&a, &b) >= majority - 1e-12);
    }

    #[test]
    fn threshold_is_invariant_to_common_shifts(
        a in proptest::collection::vec(-5.0..5.0f64, 1..15),
        b in proptest::collection::vec(-5.0..5.0f64, 1..15),
        shift in -50.0..50.0f64,
    ) {
        let th = ThresholdDiscriminator::train(&a, &b);
        let sa: Vec<f64> = a.iter().map(|x| x + shift).collect();
        let sb: Vec<f64> = b.iter().map(|x| x + shift).collect();
        let th2 = ThresholdDiscriminator::train(&sa, &sb);
        prop_assert!((th.accuracy(&a, &b) - th2.accuracy(&sa, &sb)).abs() < 1e-12);
    }

    #[test]
    fn centroid_classifies_training_means_correctly(
        c0 in (-10.0..10.0f64, -10.0..10.0f64),
        c1 in (-10.0..10.0f64, -10.0..10.0f64),
    ) {
        prop_assume!(((c0.0 - c1.0).powi(2) + (c0.1 - c1.1).powi(2)).sqrt() > 0.1);
        let cls = CentroidClassifier::train(&[
            vec![vec![c0.0, c0.1]],
            vec![vec![c1.0, c1.1]],
        ]);
        prop_assert_eq!(cls.classify(&[c0.0, c0.1]), 0);
        prop_assert_eq!(cls.classify(&[c1.0, c1.1]), 1);
    }

    #[test]
    fn svm_decision_is_monotone_along_the_weight_vector(
        sep in 1.0..5.0f64,
        step in 0.1..3.0f64,
    ) {
        let samples: Vec<Vec<f64>> = (0..40)
            .map(|k| {
                let noise = ((k * 37) % 17) as f64 / 17.0 - 0.5;
                if k % 2 == 0 { vec![sep + noise] } else { vec![-sep + noise] }
            })
            .collect();
        let labels: Vec<bool> = (0..40).map(|k| k % 2 == 0).collect();
        let svm = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        // Moving further in the positive direction must not decrease the
        // decision value (1-D linear function).
        let d1 = svm.decision(&[sep]);
        let d2 = svm.decision(&[sep + step]);
        if svm.weights()[0] > 0.0 {
            prop_assert!(d2 >= d1);
        } else {
            prop_assert!(d2 <= d1);
        }
    }

    #[test]
    fn svm_prediction_matches_decision_sign(x in -20.0..20.0f64) {
        let samples = vec![vec![2.0], vec![2.5], vec![-2.0], vec![-2.5]];
        let labels = vec![true, true, false, false];
        let svm = LinearSvm::train(&samples, &labels, &SvmConfig::default());
        prop_assert_eq!(svm.predict(&[x]), svm.decision(&[x]) > 0.0);
    }
}
